//! Observational identity of the fast active path.
//!
//! PR 3 adds two busy-cycle accelerators: the CPU's decoded-instruction
//! cache and the SoC's active-slave scheduling (ticking only non-sleeping
//! peripherals instead of walking every slave each cycle). These tests
//! prove both are invisible: with the CPU *busy* (not parked in `wfi`,
//! so whole-SoC skips never apply) the fast configuration and the forced
//! naive one (`set_naive_scheduling(true)` + decode cache off — the same
//! switch `ExecMode::Naive` throws) produce bit-identical traces,
//! activity images, latency statistics and architectural state.

use std::collections::BTreeMap;

use pels_repro::interconnect::ApbSlave;
use pels_repro::periph::{Spi, Timer};
use pels_repro::sim::{ActivityKind, ActivitySet, Rng};
use pels_repro::soc::event_map::{EV_GPIO_RISE, EV_TIMER_CMP};
use pels_repro::soc::mem_map::RESET_PC;
use pels_repro::soc::{ExecMode, Mediator, Scenario, Soc, SocBuilder};
use pels_repro::{core as pels_core, cpu::asm};

/// One externally applied stimulus step, generated once and replayed
/// identically on both SoCs.
#[derive(Debug, Clone, Copy)]
enum Op {
    Run(u64),
    Inject(u32),
    PokeTimerCmp(u32),
    GpioInput(u32),
    Drain,
}

fn activity_image(a: &ActivitySet) -> BTreeMap<(&'static str, ActivityKind), u64> {
    a.iter()
        .filter(|&(_, _, n)| n != 0)
        .map(|(c, k, n)| ((c, k), n))
        .collect()
}

/// The busy-CPU workload: PELS link 0 toggles a GPIO pad on every timer
/// compare match while the CPU spins in a compute loop (mixed compressed
/// and 32-bit instructions, so the decode cache is on the critical path
/// every cycle and the SoC never reaches a whole-chip skip).
fn busy_workload_soc(naive: bool) -> Soc {
    use pels_repro::soc::event_map::AL_GPIO_TOGGLE;
    let mut soc = SocBuilder::new().pels_links(2).build();
    soc.pels_mut()
        .link_mut(0)
        .set_mask(pels_repro::sim::EventVector::mask_of(&[EV_TIMER_CMP]));
    soc.pels_mut()
        .link_mut(0)
        .load_program(
            &pels_core::Program::new(vec![
                pels_core::Command::Action {
                    mode: pels_core::ActionMode::Toggle,
                    group: 0,
                    mask: 1 << (AL_GPIO_TOGGLE - 16),
                },
                pels_core::Command::Halt,
            ])
            .expect("valid"),
        )
        .expect("fits");
    // x1 += 1; x2 += x1; loop — never sleeps.
    soc.load_program(
        RESET_PC,
        &[
            asm::addi(1, 1, 1),
            asm::add(2, 2, 1),
            asm::jal(0, -8),
        ],
    );
    soc.timer_mut().write(Timer::CMP, 16).unwrap();
    soc.timer_mut()
        .write(Timer::CTRL, Timer::CTRL_ENABLE)
        .unwrap();
    soc.spi_mut().write(Spi::CMD, 1).unwrap();
    if naive {
        soc.set_naive_scheduling(true);
        soc.cpu_mut().set_decode_cache_enabled(false);
        soc.cpu_mut().set_superblocks_enabled(false);
    }
    soc
}

/// The same busy workload with only the superblock layer disabled: the
/// CPU retires one instruction per scheduler visit, but active-slave
/// scheduling and the decode cache stay on — the reference point that
/// isolates superblock execution.
fn busy_workload_soc_single_step() -> Soc {
    let mut soc = busy_workload_soc(false);
    soc.cpu_mut().set_superblocks_enabled(false);
    soc
}

fn apply(soc: &mut Soc, op: Op) {
    match op {
        Op::Run(n) => soc.run(n),
        Op::Inject(line) => soc.inject_event(line),
        Op::PokeTimerCmp(v) => {
            soc.timer_mut().write(Timer::CMP, v).unwrap();
        }
        Op::GpioInput(v) => soc.gpio_mut().set_input(v),
        Op::Drain => {}
    }
}

fn assert_identical(fast: &Soc, naive: &Soc, ctx: &str) {
    assert_eq!(fast.cycle(), naive.cycle(), "{ctx}: cycle");
    assert_eq!(
        fast.trace().entries(),
        naive.trace().entries(),
        "{ctx}: trace streams diverge"
    );
    assert_eq!(fast.timer().value(), naive.timer().value(), "{ctx}: timer value");
    assert_eq!(fast.timer().fires(), naive.timer().fires(), "{ctx}: timer fires");
    assert_eq!(fast.gpio().out(), naive.gpio().out(), "{ctx}: gpio out");
    assert_eq!(fast.spi().is_busy(), naive.spi().is_busy(), "{ctx}: spi busy");
    assert_eq!(fast.cpu().cycles(), naive.cpu().cycles(), "{ctx}: cpu cycles");
    assert_eq!(fast.cpu().retired(), naive.cpu().retired(), "{ctx}: cpu retired");
    assert_eq!(fast.cpu().pc(), naive.cpu().pc(), "{ctx}: cpu pc");
    for r in 0..32 {
        assert_eq!(fast.cpu().reg(r), naive.cpu().reg(r), "{ctx}: x{r}");
    }
}

/// The differential property: with a busy CPU, random stimulus schedules
/// observe no difference between the fast active path (decode cache +
/// active-slave scheduling) and the forced-naive reference.
#[test]
fn fast_active_path_is_observationally_identical_to_naive() {
    let mut rng = Rng::seed_from_u64(0xAC71_BE01);
    for case in 0..16 {
        let ops: Vec<Op> = (0..rng.range_u64(4, 16))
            .map(|_| match rng.index(8) {
                0..=2 => Op::Run(rng.range_u64(1, 120)),
                3 => Op::Run(rng.range_u64(200, 1_500)),
                4 => Op::Inject([EV_TIMER_CMP, EV_GPIO_RISE, 9][rng.index(3)]),
                5 => Op::PokeTimerCmp(rng.range_u64(1, 64) as u32),
                6 => Op::GpioInput(rng.next_u32() & 0xF),
                _ => Op::Drain,
            })
            .collect();
        let mut fast = busy_workload_soc(false);
        let mut naive = busy_workload_soc(true);
        for (i, &op) in ops.iter().enumerate() {
            if let Op::Drain = op {
                let af = activity_image(&fast.drain_activity());
                let an = activity_image(&naive.drain_activity());
                assert_eq!(af, an, "case {case} op {i}: activity windows diverge");
            } else {
                apply(&mut fast, op);
                apply(&mut naive, op);
            }
            assert_identical(&fast, &naive, &format!("case {case} op {i} ({op:?})"));
        }
        let af = activity_image(&fast.drain_activity());
        let an = activity_image(&naive.drain_activity());
        assert_eq!(af, an, "case {case}: final activity (power input) diverges");
        let (hits, _) = fast.cpu().decode_cache_stats();
        assert!(hits > 0, "case {case}: busy loop exercised the decode cache");
    }
}

/// Scenario-level identity: every mediator's full measured report —
/// latencies, [`LinkingStats`], completed events, activity images and
/// trace — is bit-identical between [`ExecMode::Fast`] and
/// [`ExecMode::Naive`] builds.
#[test]
fn scenario_reports_identical_fast_vs_naive() {
    for mediator in [
        Mediator::PelsSequenced,
        Mediator::PelsInstant,
        Mediator::IbexIrq,
    ] {
        let fast = Scenario::iso_frequency(mediator).run();
        let naive = Scenario::iso_frequency(mediator)
            .to_builder()
            .exec_mode(ExecMode::Naive)
            .build()
            .expect("preset variant stays valid")
            .run();
        let ctx = format!("{mediator}");
        assert_eq!(fast.events_completed, naive.events_completed, "{ctx}: events");
        assert_eq!(fast.latencies, naive.latencies, "{ctx}: latencies");
        assert_eq!(fast.stats, naive.stats, "{ctx}: LinkingStats");
        assert_eq!(
            activity_image(&fast.active_activity),
            activity_image(&naive.active_activity),
            "{ctx}: active-window activity"
        );
        assert_eq!(
            activity_image(&fast.idle_activity),
            activity_image(&naive.idle_activity),
            "{ctx}: idle-window activity"
        );
        assert_eq!(fast.active_window, naive.active_window, "{ctx}: active window");
        assert_eq!(
            fast.trace.entries(),
            naive.trace.entries(),
            "{ctx}: trace streams diverge"
        );
    }
}

/// The superblock differential property: random stimulus schedules
/// observe no difference between superblock execution (whole decoded
/// blocks retired per scheduler visit, cycles billed in bulk) and
/// single-instruction stepping — including the scheduler statistics,
/// which must attribute sprinted cycles exactly as the fast path would
/// have counted them one by one.
#[test]
fn superblock_execution_is_observationally_identical_to_single_step() {
    let mut rng = Rng::seed_from_u64(0x5B10_C0DE);
    for case in 0..16 {
        let ops: Vec<Op> = (0..rng.range_u64(4, 16))
            .map(|_| match rng.index(8) {
                0..=2 => Op::Run(rng.range_u64(1, 120)),
                3 => Op::Run(rng.range_u64(200, 1_500)),
                4 => Op::Inject([EV_TIMER_CMP, EV_GPIO_RISE, 9][rng.index(3)]),
                5 => Op::PokeTimerCmp(rng.range_u64(1, 64) as u32),
                6 => Op::GpioInput(rng.next_u32() & 0xF),
                _ => Op::Drain,
            })
            .collect();
        let mut fast = busy_workload_soc(false);
        let mut single = busy_workload_soc_single_step();
        for (i, &op) in ops.iter().enumerate() {
            if let Op::Drain = op {
                let af = activity_image(&fast.drain_activity());
                let an = activity_image(&single.drain_activity());
                assert_eq!(af, an, "case {case} op {i}: activity windows diverge");
            } else {
                apply(&mut fast, op);
                apply(&mut single, op);
            }
            assert_identical(&fast, &single, &format!("case {case} op {i} ({op:?})"));
            assert_eq!(
                fast.sched_stats(),
                single.sched_stats(),
                "case {case} op {i}: SchedStats diverge"
            );
        }
        let af = activity_image(&fast.drain_activity());
        let an = activity_image(&single.drain_activity());
        assert_eq!(af, an, "case {case}: final activity (power input) diverges");
        let sb = fast.superblock_stats();
        assert!(
            sb.block_runs > 0,
            "case {case}: the busy loop actually ran from superblocks"
        );
        assert_eq!(
            single.superblock_stats().block_runs,
            0,
            "case {case}: the single-step reference never ran a block"
        );
    }
}

/// Scenario-level superblock identity across all three mediators: the
/// full measured report — per-event latencies (hence every percentile),
/// [`SchedStats`] (bit-for-bit), completed events, activity images,
/// window durations and trace — matches [`ExecMode::SingleStep`], and the
/// paper's headline latencies are unchanged cycle-for-cycle.
#[test]
fn scenario_reports_identical_superblocks_vs_single_step() {
    for (mediator, paper_latency) in [
        (Mediator::PelsSequenced, 7),
        (Mediator::PelsInstant, 2),
        (Mediator::IbexIrq, 16),
    ] {
        let fast = Scenario::iso_frequency(mediator).run();
        let single = Scenario::iso_frequency(mediator)
            .to_builder()
            .exec_mode(ExecMode::SingleStep)
            .build()
            .expect("preset variant stays valid")
            .run();
        // The paper's headline numbers are pinned on the dedicated
        // latency probe — re-check them under superblock execution.
        let probe = Scenario::latency_probe(mediator)
            .to_builder()
            .exec_mode(ExecMode::Fast)
            .build()
            .expect("probe variant stays valid")
            .run();
        let ctx = format!("{mediator}");
        assert_eq!(fast.events_completed, single.events_completed, "{ctx}: events");
        assert_eq!(fast.latencies, single.latencies, "{ctx}: latencies");
        assert_eq!(fast.stats, single.stats, "{ctx}: LinkingStats");
        assert_eq!(fast.sched_stats, single.sched_stats, "{ctx}: SchedStats");
        assert_eq!(
            activity_image(&fast.active_activity),
            activity_image(&single.active_activity),
            "{ctx}: active-window activity"
        );
        assert_eq!(
            activity_image(&fast.idle_activity),
            activity_image(&single.idle_activity),
            "{ctx}: idle-window activity"
        );
        assert_eq!(fast.active_window, single.active_window, "{ctx}: active window");
        assert_eq!(
            fast.trace.entries(),
            single.trace.entries(),
            "{ctx}: trace streams diverge"
        );
        assert_eq!(
            probe.stats.min, paper_latency,
            "{ctx}: paper latency preserved under superblocks"
        );
    }
}

/// IRQ delivery under superblocks, property-style: sweep the external
/// event arrival cycle across several superblock spans and demand the
/// interrupt is taken on exactly the same cycle as single-stepped
/// execution — compared in 3-cycle chunks so a divergence pins to the
/// cycle it happened, not just the endpoint.
#[test]
fn irq_delivery_under_superblocks_is_cycle_exact_across_block_span() {
    use pels_repro::cpu::csr::addr as csr;
    use pels_repro::soc::event_map::{irq_bit_for_event, EV_ADC_DONE};

    let bit = irq_bit_for_event(EV_ADC_DONE);
    let vector_table = RESET_PC + 0x200;
    let build = |single_step: bool| {
        let mut soc = SocBuilder::new().build();
        // Straight-line kernel: six chained ALU ops closed by a jump —
        // an 8-cycle superblock span the IRQ arrival sweeps across.
        soc.load_program(
            RESET_PC,
            &[
                asm::addi(1, 1, 1),
                asm::addi(2, 2, 2),
                asm::add(3, 3, 1),
                asm::add(4, 4, 2),
                asm::xori(5, 5, 1),
                asm::add(6, 6, 5),
                asm::jal(0, -24),
            ],
        );
        // Handler inline at its vector slot: count the entry, return.
        soc.load_program(
            vector_table + 4 * bit,
            &[asm::addi(15, 15, 1), asm::mret()],
        );
        let cpu = soc.cpu_mut();
        cpu.csrs.write(csr::MTVEC, vector_table);
        cpu.csrs.write(csr::MIE, 1 << bit);
        cpu.csrs.write(csr::MSTATUS, 8); // MSTATUS.MIE
        if single_step {
            cpu.set_superblocks_enabled(false);
        }
        soc
    };

    for arrival in 0..48u64 {
        let mut fast = build(false);
        let mut single = build(true);
        fast.run(arrival);
        single.run(arrival);
        fast.inject_event(EV_ADC_DONE);
        single.inject_event(EV_ADC_DONE);
        for chunk in 0..20 {
            fast.run(3);
            single.run(3);
            assert_eq!(
                fast.cpu().irq_entries(),
                single.cpu().irq_entries(),
                "arrival {arrival} chunk {chunk}: IRQ entry cycle diverges"
            );
            assert_identical(
                &fast,
                &single,
                &format!("arrival {arrival} chunk {chunk}"),
            );
        }
        assert_eq!(fast.cpu().irq_entries(), 1, "arrival {arrival}: IRQ taken");
        assert_eq!(fast.cpu().reg(15), 1, "arrival {arrival}: handler ran once");
    }
    // The sweep is only meaningful if the fast side actually sprints.
    let mut fast = build(false);
    fast.run(500);
    assert!(fast.superblock_stats().block_runs > 0, "kernel ran from blocks");
}

/// `run_for_trace_count` (the skipping trace-wait the scenario harness
/// uses) lands on the same cycle and trace as naive single-stepping with
/// a predicate.
#[test]
fn run_for_trace_count_matches_stepped_predicate_wait() {
    let mut fast = busy_workload_soc(false);
    let mut naive = busy_workload_soc(true);
    let done = fast.run_for_trace_count(5_000, "pels.link0", "action", 6);
    let stepped = naive.run_until(5_000, |s| {
        s.trace().all("pels.link0", "action").len() >= 6
    });
    assert!(done && stepped, "both sides saw 6 link actions");
    assert_identical(&fast, &naive, "after trace-count wait");
}

/// [`ExecMode`] selection on the scenario builder: the default is
/// `Fast`, an explicit mode sticks, and the last call wins.
#[test]
fn exec_mode_selection_is_explicit_and_last_wins() {
    let default = Scenario::builder().build().unwrap();
    assert_eq!(default.exec, ExecMode::Fast);
    let naive = Scenario::builder()
        .exec_mode(ExecMode::Naive)
        .build()
        .unwrap();
    assert_eq!(naive.exec, ExecMode::Naive);
    let single = Scenario::builder()
        .exec_mode(ExecMode::SingleStep)
        .build()
        .unwrap();
    assert_eq!(single.exec, ExecMode::SingleStep);
    let last_wins = Scenario::builder()
        .exec_mode(ExecMode::SingleStep)
        .exec_mode(ExecMode::Fast)
        .build()
        .unwrap();
    assert_eq!(last_wins.exec, ExecMode::Fast);
}

/// A never-sleeping compute loop dense in the three fusion classes —
/// a `lui+addi` pair, a same-rd ALU-immediate chain and an
/// always-taken `slt+bne` compare-and-branch — with the timer-driven
/// PELS toggle workload around it.
fn pair_dense_soc() -> Soc {
    use pels_repro::soc::event_map::AL_GPIO_TOGGLE;
    let mut soc = SocBuilder::new().pels_links(2).build();
    soc.pels_mut()
        .link_mut(0)
        .set_mask(pels_repro::sim::EventVector::mask_of(&[EV_TIMER_CMP]));
    soc.pels_mut()
        .link_mut(0)
        .load_program(
            &pels_core::Program::new(vec![
                pels_core::Command::Action {
                    mode: pels_core::ActionMode::Toggle,
                    group: 0,
                    mask: 1 << (AL_GPIO_TOGGLE - 16),
                },
                pels_core::Command::Halt,
            ])
            .expect("valid"),
        )
        .expect("fits");
    soc.load_program(
        RESET_PC,
        &[
            asm::lui(5, 0x1000),    // ┐ LuiAddi pair
            asm::addi(5, 5, 0x21),  // ┘
            asm::addi(1, 1, 1),     // ┐ same-rd AluImmPair
            asm::addi(1, 1, 2),     // ┘
            asm::slt(12, 0, 5),     // ┐ CmpBranch pair, always taken
            asm::bne(12, 0, -20),   // ┘
        ],
    );
    soc.timer_mut().write(Timer::CMP, 16).unwrap();
    soc.timer_mut()
        .write(Timer::CTRL, Timer::CTRL_ENABLE)
        .unwrap();
    soc
}

/// Three-tier SoC differential over the pair-dense workload: fused
/// superblocks, unfused superblocks and single-stepping observe the
/// same stimulus schedule bit-identically — trace, activity image,
/// architectural and peripheral state at every step.
#[test]
fn fused_pair_workload_is_identical_across_tiers() {
    let ops = [
        Op::Run(37),
        Op::Inject(EV_GPIO_RISE),
        Op::Run(101),
        Op::PokeTimerCmp(24),
        Op::Run(500),
        Op::GpioInput(3),
        Op::Run(263),
    ];
    let mut fused = pair_dense_soc();
    let mut unfused = pair_dense_soc();
    unfused.cpu_mut().set_fusion_enabled(false);
    let mut single = pair_dense_soc();
    single.cpu_mut().set_superblocks_enabled(false);
    for (i, &op) in ops.iter().enumerate() {
        apply(&mut fused, op);
        apply(&mut unfused, op);
        apply(&mut single, op);
        assert_identical(&fused, &unfused, &format!("unfused, op {i} ({op:?})"));
        assert_identical(&fused, &single, &format!("single, op {i} ({op:?})"));
    }
    let af = activity_image(&fused.drain_activity());
    let au = activity_image(&unfused.drain_activity());
    let asg = activity_image(&single.drain_activity());
    assert_eq!(af, au, "fused vs unfused activity (power input) diverges");
    assert_eq!(af, asg, "fused vs single-step activity (power input) diverges");
    let s = fused.superblock_stats();
    assert!(s.fused_pairs > 0, "the workload exercised pair fusion: {s:?}");
    assert_eq!(unfused.superblock_stats().fused_ops, 0, "unfused tier stays cold");
}

/// IRQ delivery across *fused pairs*, property-style: sweep the
/// external event arrival cycle across the pair-dense superblock span
/// and demand the interrupt is taken on exactly the same cycle as
/// single-stepped execution.
#[test]
fn irq_delivery_across_fused_pairs_is_cycle_exact() {
    use pels_repro::cpu::csr::addr as csr;
    use pels_repro::soc::event_map::{irq_bit_for_event, EV_ADC_DONE};

    let bit = irq_bit_for_event(EV_ADC_DONE);
    let vector_table = RESET_PC + 0x200;
    let build = |single_step: bool| {
        let mut soc = SocBuilder::new().build();
        soc.load_program(
            RESET_PC,
            &[
                asm::lui(5, 0x1000),
                asm::addi(5, 5, 0x21),
                asm::addi(1, 1, 1),
                asm::addi(1, 1, 2),
                asm::slt(12, 0, 5),
                asm::bne(12, 0, -20),
            ],
        );
        soc.load_program(
            vector_table + 4 * bit,
            &[asm::addi(15, 15, 1), asm::mret()],
        );
        let cpu = soc.cpu_mut();
        cpu.csrs.write(csr::MTVEC, vector_table);
        cpu.csrs.write(csr::MIE, 1 << bit);
        cpu.csrs.write(csr::MSTATUS, 8); // MSTATUS.MIE
        if single_step {
            cpu.set_superblocks_enabled(false);
        }
        soc
    };

    for arrival in 0..32u64 {
        let mut fast = build(false);
        let mut single = build(true);
        fast.run(arrival);
        single.run(arrival);
        fast.inject_event(EV_ADC_DONE);
        single.inject_event(EV_ADC_DONE);
        for chunk in 0..20 {
            fast.run(3);
            single.run(3);
            assert_eq!(
                fast.cpu().irq_entries(),
                single.cpu().irq_entries(),
                "arrival {arrival} chunk {chunk}: IRQ entry cycle diverges"
            );
            assert_identical(
                &fast,
                &single,
                &format!("arrival {arrival} chunk {chunk}"),
            );
        }
        assert_eq!(fast.cpu().irq_entries(), 1, "arrival {arrival}: IRQ taken");
        assert_eq!(fast.cpu().reg(15), 1, "arrival {arrival}: handler ran once");
    }
    // The sweep is only meaningful if the fast side actually fuses.
    let mut fast = build(false);
    fast.run(500);
    assert!(
        fast.superblock_stats().fused_pairs > 0,
        "kernel ran from fused pairs"
    );
}
