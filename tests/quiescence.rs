//! Observational identity of the quiescence-aware peripheral scheduler.
//!
//! The fast scheduler in `pels_soc::Soc` skips ticking peripherals that
//! report themselves idle, replaying the skipped cycles in closed form
//! when a wake condition arrives. These tests prove the optimisation is
//! invisible: for randomized workloads the fast path and the naive
//! tick-everything path (`set_naive_scheduling(true)`) produce the same
//! traces, the same activity image (hence bit-identical power numbers),
//! and the same architectural state. Each wake condition — timer
//! deadline, event wire, APB access, injected external event — also gets
//! a dedicated test.

use std::collections::BTreeMap;

use pels_repro::interconnect::ApbSlave;
use pels_repro::periph::{Spi, Timer};
use pels_repro::sim::{ActivityKind, ActivitySet, Rng};
use pels_repro::soc::event_map::{EV_GPIO_RISE, EV_TIMER_CMP};
use pels_repro::soc::mem_map::{apb_reg, GPIO_OFFSET, RESET_PC};
use pels_repro::soc::{Soc, SocBuilder};
use pels_repro::{core as pels_core, cpu::asm, periph::Gpio};

/// One externally applied stimulus step, generated once and replayed
/// identically on both SoCs.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Advance `n` cycles.
    Run(u64),
    /// Inject an external event pulse on `line`.
    Inject(u32),
    /// Direct-poke the timer compare register (bus-bypassing test path —
    /// exercises the `periph_mut` wake hole).
    PokeTimerCmp(u32),
    /// Flip the GPIO pad input (edge detector feeds `EV_GPIO_RISE`).
    GpioInput(u32),
    /// Drain and compare the activity window.
    Drain,
}

/// Normalizes an [`ActivitySet`] for comparison (drops zero counts — the
/// dense representation may materialize rows the sparse path never
/// touched).
fn activity_image(a: &ActivitySet) -> BTreeMap<(&'static str, ActivityKind), u64> {
    a.iter()
        .filter(|&(_, _, n)| n != 0)
        .map(|(c, k, n)| ((c, k), n))
        .collect()
}

/// Builds the reference workload SoC: PELS link 0 toggles a GPIO pad on
/// every timer compare match, the CPU parks in `wfi` after boot.
fn workload_soc() -> Soc {
    use pels_repro::soc::event_map::AL_GPIO_TOGGLE;
    let mut soc = SocBuilder::new().pels_links(2).build();
    soc.pels_mut()
        .link_mut(0)
        .set_mask(pels_repro::sim::EventVector::mask_of(&[EV_TIMER_CMP]));
    soc.pels_mut()
        .link_mut(0)
        .load_program(
            &pels_core::Program::new(vec![
                pels_core::Command::Action {
                    mode: pels_core::ActionMode::Toggle,
                    group: 0,
                    mask: 1 << (AL_GPIO_TOGGLE - 16),
                },
                pels_core::Command::Halt,
            ])
            .expect("valid"),
        )
        .expect("fits");
    soc.load_program(RESET_PC, &[asm::wfi(), asm::jal(0, -4)]);
    soc.timer_mut().write(Timer::CMP, 16).unwrap();
    soc.timer_mut()
        .write(Timer::CTRL, Timer::CTRL_ENABLE)
        .unwrap();
    soc.spi_mut().write(Spi::CMD, 1).unwrap();
    soc
}

fn apply(soc: &mut Soc, op: Op) {
    match op {
        Op::Run(n) => soc.run(n),
        Op::Inject(line) => soc.inject_event(line),
        Op::PokeTimerCmp(v) => {
            soc.timer_mut().write(Timer::CMP, v).unwrap();
        }
        Op::GpioInput(v) => soc.gpio_mut().set_input(v),
        Op::Drain => {} // handled by the caller so both sides drain together
    }
}

/// Asserts every observable of the two SoCs matches.
fn assert_identical(fast: &Soc, naive: &Soc, ctx: &str) {
    assert_eq!(fast.cycle(), naive.cycle(), "{ctx}: cycle");
    assert_eq!(
        fast.trace().entries(),
        naive.trace().entries(),
        "{ctx}: trace streams diverge"
    );
    assert_eq!(fast.timer().value(), naive.timer().value(), "{ctx}: timer value");
    assert_eq!(fast.timer().fires(), naive.timer().fires(), "{ctx}: timer fires");
    assert_eq!(fast.gpio().out(), naive.gpio().out(), "{ctx}: gpio out");
    assert_eq!(
        fast.gpio().pad_toggles(),
        naive.gpio().pad_toggles(),
        "{ctx}: pad toggles"
    );
    assert_eq!(fast.spi().is_busy(), naive.spi().is_busy(), "{ctx}: spi busy");
    assert_eq!(fast.cpu().cycles(), naive.cpu().cycles(), "{ctx}: cpu cycles");
    assert_eq!(fast.cpu().pc(), naive.cpu().pc(), "{ctx}: cpu pc");
}

/// The differential property: random stimulus schedules observe no
/// difference between the fast and naive schedulers — traces, activity
/// (power input) and architectural state are all identical.
#[test]
fn fast_scheduler_is_observationally_identical_to_naive() {
    let mut rng = Rng::seed_from_u64(0x5C4E_D001);
    for case in 0..24 {
        let ops: Vec<Op> = (0..rng.range_u64(4, 20))
            .map(|_| match rng.index(8) {
                0..=2 => Op::Run(rng.range_u64(1, 120)),
                3 => Op::Run(rng.range_u64(200, 2_000)),
                4 => Op::Inject([EV_TIMER_CMP, EV_GPIO_RISE, 9][rng.index(3)]),
                5 => Op::PokeTimerCmp(rng.range_u64(1, 64) as u32),
                6 => Op::GpioInput(rng.next_u32() & 0xF),
                _ => Op::Drain,
            })
            .collect();
        let mut fast = workload_soc();
        let mut naive = workload_soc();
        naive.set_naive_scheduling(true);
        for (i, &op) in ops.iter().enumerate() {
            if let Op::Drain = op {
                let af = activity_image(&fast.drain_activity());
                let an = activity_image(&naive.drain_activity());
                assert_eq!(af, an, "case {case} op {i}: activity windows diverge");
            } else {
                apply(&mut fast, op);
                apply(&mut naive, op);
            }
            assert_identical(&fast, &naive, &format!("case {case} op {i} ({op:?})"));
        }
        let af = activity_image(&fast.drain_activity());
        let an = activity_image(&naive.drain_activity());
        assert_eq!(af, an, "case {case}: final activity (power input) diverges");
    }
}

/// Wake condition 1 — deadline: a sleeping timer still fires its compare
/// match at exactly the right cycle, with no CPU or bus traffic to wake
/// it early.
#[test]
fn timer_deadline_wakes_sleeping_timer() {
    let mut fast = SocBuilder::new().timer_starts_spi(false).build();
    let mut naive = SocBuilder::new().timer_starts_spi(false).build();
    naive.set_naive_scheduling(true);
    for soc in [&mut fast, &mut naive] {
        soc.timer_mut().write(Timer::CMP, 40).unwrap();
        soc.timer_mut().write(Timer::CTRL, Timer::CTRL_ENABLE).unwrap();
        soc.run(200);
    }
    assert!(fast.timer().fires() >= 4, "timer kept firing while asleep");
    assert_eq!(fast.timer().fires(), naive.timer().fires());
    assert_eq!(fast.timer().value(), naive.timer().value());
    assert_eq!(fast.trace().entries(), naive.trace().entries());
}

/// Wake condition 2 — event wire: the timer's compare pulse lands in the
/// sleeping SPI's wake mask (its start-action line) and starts a
/// transfer on schedule.
#[test]
fn event_wire_wakes_sleeping_spi() {
    let mut fast = SocBuilder::new().build(); // timer_starts_spi default: wired
    let mut naive = SocBuilder::new().build();
    naive.set_naive_scheduling(true);
    for soc in [&mut fast, &mut naive] {
        soc.spi_mut().write(Spi::CMD, 1).unwrap(); // arm last_len
        soc.run(30); // long idle stretch puts the SPI to sleep
        soc.timer_mut().write(Timer::CMP, 10).unwrap();
        soc.timer_mut().write(Timer::CTRL, Timer::CTRL_ENABLE).unwrap();
        soc.run(40);
    }
    assert!(
        fast.trace().first("spi", "eot").is_some(),
        "wire-woken SPI completed a transfer"
    );
    assert_eq!(fast.trace().entries(), naive.trace().entries());
}

/// Wake condition 3 — APB access: a CPU store to a sleeping peripheral's
/// register wakes it (and replays its skipped cycles) before the write
/// lands.
#[test]
fn apb_access_wakes_sleeping_peripheral() {
    let mut fast = SocBuilder::new().build();
    let mut naive = SocBuilder::new().build();
    naive.set_naive_scheduling(true);
    for soc in [&mut fast, &mut naive] {
        let mut p = vec![];
        // Delay loop (~120 cycles) so the GPIO is long asleep, then store.
        p.extend(asm::li32(5, 40));
        p.push(asm::addi(5, 5, -1));
        p.push(asm::bne(5, 0, -4));
        p.extend(asm::li32(1, apb_reg(GPIO_OFFSET, Gpio::PADOUTSET)));
        p.extend(asm::li32(2, 0x3C));
        p.push(asm::sw(1, 2, 0));
        p.push(asm::wfi());
        soc.load_program(RESET_PC, &p);
        soc.run(400);
    }
    assert_eq!(fast.gpio().out(), 0x3C, "store reached the sleeping GPIO");
    assert_eq!(fast.gpio().out(), naive.gpio().out());
    assert_eq!(fast.trace().entries(), naive.trace().entries());
}

/// Wake condition 4 — injected external event: a pad-level pulse on a
/// line in a sleeping peripheral's wake mask starts it.
#[test]
fn injected_event_wakes_sleeping_peripheral() {
    let mut fast = SocBuilder::new().build();
    let mut naive = SocBuilder::new().build();
    naive.set_naive_scheduling(true);
    for soc in [&mut fast, &mut naive] {
        soc.spi_mut().write(Spi::CMD, 1).unwrap();
        soc.run(50); // everything asleep
        soc.inject_event(EV_TIMER_CMP); // SPI's start line, from outside
        soc.run(30);
    }
    assert!(
        fast.trace().first("spi", "eot").is_some(),
        "injected pulse started the sleeping SPI"
    );
    assert_eq!(fast.trace().entries(), naive.trace().entries());
    let af = activity_image(&fast.drain_activity());
    let an = activity_image(&naive.drain_activity());
    assert_eq!(af, an, "activity (power input) identical");
}

/// Mid-sleep observation: `&self` accessors must always see current
/// architectural state, even while the peripheral is being skipped.
#[test]
fn sleeping_timer_is_observable_between_runs() {
    let mut soc = SocBuilder::new().timer_starts_spi(false).build();
    soc.timer_mut().write(Timer::CMP, 1_000_000).unwrap();
    soc.timer_mut().write(Timer::CTRL, Timer::CTRL_ENABLE).unwrap();
    let mut last = 0;
    for _ in 0..10 {
        soc.run(37);
        let v = soc.timer().value();
        assert_eq!(
            u64::from(v),
            u64::from(last) + 37,
            "timer counts every skipped cycle"
        );
        last = v;
    }
}

/// `run_until` predicates observe synced state: waiting on a timer value
/// works even though the timer sleeps between predicate calls.
#[test]
fn run_until_sees_synced_peripheral_state() {
    let mut soc = SocBuilder::new().timer_starts_spi(false).build();
    soc.timer_mut().write(Timer::CMP, 1_000_000).unwrap();
    soc.timer_mut().write(Timer::CTRL, Timer::CTRL_ENABLE).unwrap();
    let reached = soc.run_until(10_000, |s| s.timer().value() >= 123);
    assert!(reached);
    assert_eq!(soc.timer().value(), 123);
}
