//! Randomized tests on PELS behavioural invariants: trigger accounting,
//! latency determinism, program robustness, arbiter fairness and
//! power-model monotonicity. Seeded [`Rng`] draws keep the suite
//! deterministic without an external property-testing crate.

use pels_repro::core::pels::NoBus;
use pels_repro::core::{
    ActionMode, Command, Cond, PelsBuilder, Program, TriggerCond, TriggerUnit,
};
use pels_repro::interconnect::{Arbiter, RoundRobin};
use pels_repro::power::{Calibration, PowerModel};
use pels_repro::sim::{ActivityKind, ActivitySet, EventVector, Rng, SimTime, Trace};

/// Random *terminating* program: no `loop` commands with a jump-back
/// (forward-only control flow), bounded waits.
fn arb_terminating_program(rng: &mut Rng, max_len: usize) -> Program {
    let len = 1 + rng.index(max_len - 1);
    let mut cmds: Vec<Command> = (0..len)
        .map(|_| match rng.index(3) {
            0 => Command::Nop,
            1 => Command::Wait {
                cycles: rng.next_below(20) as u32,
            },
            _ => Command::Action {
                mode: ActionMode::Pulse,
                group: rng.index(2) as u8,
                mask: rng.next_u32(),
            },
        })
        .collect();
    cmds.push(Command::Halt);
    Program::new(cmds).expect("generated commands are always valid")
}

/// Any bus-free program terminates: the link returns to idle within a
/// budget bounded by its wait cycles, and never panics.
#[test]
fn random_programs_terminate() {
    let mut rng = Rng::seed_from_u64(0x9E15_0001);
    for case in 0..128 {
        let program = arb_terminating_program(&mut rng, 12);
        let mut pels = PelsBuilder::new().links(1).scm_lines(16).build();
        pels.link_mut(0).set_mask(EventVector::mask_of(&[0]));
        pels.link_mut(0).load_program(&program).expect("16-line scm fits");
        let mut trace = Trace::disabled();
        let mut bus = NoBus;
        let mut events = EventVector::mask_of(&[0]);
        let budget = 16 * 2 + 20 * 16 + 8;
        let mut idle_at = None;
        for cycle in 0..budget {
            pels.tick(events, SimTime::from_ps(cycle * 1000), &mut bus, &mut trace);
            events = EventVector::EMPTY;
            if cycle > 2 && !pels.is_busy() {
                idle_at = Some(cycle);
                break;
            }
        }
        assert!(
            idle_at.is_some(),
            "case {case}: program must halt within {budget} cycles"
        );
    }
}

/// The instant-action latency is exactly 2 cycles for any action payload
/// and any trigger mask containing the event line — the fixed-latency
/// guarantee the paper sells.
#[test]
fn instant_latency_is_payload_independent() {
    let mut rng = Rng::seed_from_u64(0x9E15_0002);
    for case in 0..128 {
        let mask = rng.next_u32().max(1);
        let group = rng.index(2) as u8;
        let extra_lines = rng.next_u32() as u16;
        let trigger_line = 5u32;
        let mut listen = EventVector::mask_of(&[trigger_line]);
        // Add arbitrary other lines to the mask; they must not matter
        // under the `any` condition when only line 5 pulses.
        for b in 0..16 {
            if extra_lines & (1 << b) != 0 {
                listen.set(16 + b);
            }
        }
        let mut pels = PelsBuilder::new().links(1).scm_lines(4).build();
        pels.link_mut(0).set_mask(listen).set_condition(TriggerCond::Any);
        pels.link_mut(0)
            .load_program(
                &Program::new(vec![
                    Command::Action {
                        mode: ActionMode::Pulse,
                        group,
                        mask,
                    },
                    Command::Halt,
                ])
                .expect("valid"),
            )
            .expect("fits");
        let mut trace = Trace::disabled();
        let mut bus = NoBus;
        let mut outs = Vec::new();
        for cycle in 0..6u64 {
            let ev = if cycle == 0 {
                EventVector::mask_of(&[trigger_line])
            } else {
                EventVector::EMPTY
            };
            outs.push(pels.tick(ev, SimTime::from_ps(cycle * 1000), &mut bus, &mut trace));
        }
        let expected = EventVector::from_bits(u64::from(mask) << (32 * u64::from(group)));
        assert!(outs[0].is_empty(), "case {case}");
        assert!(outs[1].is_empty(), "case {case}");
        assert_eq!(outs[2], expected, "case {case}: pulse exactly at cycle 2");
        assert!(outs[3].is_empty(), "case {case}");
    }
}

/// Trigger accounting conservation: pops + pending + drops equals the
/// number of accepted triggers, for arbitrary event sequences.
#[test]
fn trigger_unit_conserves_tokens() {
    let mut rng = Rng::seed_from_u64(0x9E15_0003);
    for case in 0..256 {
        let depth = rng.index(6);
        let n_events = 1 + rng.index(63);
        let mask = rng.next_u64();
        let pop_every = rng.range_u64(1, 5) as usize;
        let mut t = TriggerUnit::new(depth);
        t.set_mask(EventVector::from_bits(mask));
        let mut pops = 0u64;
        for i in 0..n_events {
            t.sample(EventVector::from_bits(rng.next_u64()), i as u64);
            if i % pop_every == 0 && t.pop().is_some() {
                pops += 1;
            }
        }
        let pending = t.pending() as u64;
        assert_eq!(
            t.triggers(),
            pops + pending + t.drops(),
            "case {case}: depth {depth} mask {mask:#x}"
        );
        assert!(pending <= depth as u64, "case {case}");
    }
}

/// Round-robin fairness: for persistent requesters, grant counts never
/// differ by more than one, for any requester subset.
#[test]
fn round_robin_is_fair_for_any_subset() {
    let mut rng = Rng::seed_from_u64(0x9E15_0004);
    let mut cases = 0;
    while cases < 128 {
        let n = 1 + rng.index(7);
        let subset = rng.next_u32() as u8;
        let rounds = rng.range_u64(10, 200) as usize;
        let requests: Vec<bool> = (0..n).map(|i| subset & (1 << i) != 0).collect();
        if !requests.iter().any(|&r| r) {
            continue;
        }
        cases += 1;
        let mut rr = RoundRobin::new();
        let mut grants = vec![0u64; n];
        for _ in 0..rounds {
            let g = rr.grant(&requests).expect("someone requests");
            assert!(requests[g], "only requesters are granted");
            grants[g] += 1;
        }
        let active: Vec<u64> = grants
            .iter()
            .zip(&requests)
            .filter(|(_, &r)| r)
            .map(|(&g, _)| g)
            .collect();
        let min = active.iter().min().expect("non-empty");
        let max = active.iter().max().expect("non-empty");
        assert!(
            max - min <= 1,
            "grants {grants:?} for requests {requests:?}"
        );
    }
}

/// Power is monotone in activity: adding events never lowers the
/// reported total.
#[test]
fn power_is_monotone_in_activity() {
    let mut rng = Rng::seed_from_u64(0x9E15_0005);
    let kinds = [
        ActivityKind::SramRead,
        ActivityKind::BusTransfer,
        ActivityKind::InstrRetired,
        ActivityKind::ClockCycle,
    ];
    for case in 0..256 {
        let mut model = PowerModel::new(Calibration::tsmc65());
        model.add_component("x", 20.0);
        let mut a = ActivitySet::new();
        for _ in 0..rng.index(16) {
            a.record_named("x", kinds[rng.index(4)], rng.next_below(1000));
        }
        let extra_kind = rng.index(4);
        let extra = rng.range_u64(1, 1000);
        let window = SimTime::from_us(10);
        let before = model.report(&a, window).total().as_uw();
        a.record_named("x", kinds[extra_kind], extra);
        let after = model.report(&a, window).total().as_uw();
        assert!(after >= before, "case {case}: {after} < {before}");
    }
}

/// A `jump-if` with any condition either falls through or redirects —
/// and the destination command executes in both cases (no lost control
/// flow), for arbitrary operands and datapath values.
#[test]
fn jump_if_always_reaches_a_pulse() {
    let mut rng = Rng::seed_from_u64(0x9E15_0006);
    let conds = [
        Cond::Eq,
        Cond::Ne,
        Cond::LtU,
        Cond::GeU,
        Cond::LtS,
        Cond::GeS,
    ];
    for case in 0..128 {
        let cond = conds[rng.index(6)];
        let operand = if rng.ratio(1, 4) { 0 } else { rng.next_u32() };
        // dpr is 0 (no capture ran). Both paths pulse a different line.
        let program = Program::new(vec![
            Command::JumpIf {
                cond,
                target: 3,
                operand,
            },
            Command::Action {
                mode: ActionMode::Pulse,
                group: 0,
                mask: 1,
            },
            Command::Halt,
            Command::Action {
                mode: ActionMode::Pulse,
                group: 0,
                mask: 2,
            },
        ])
        .expect("valid");
        let mut pels = PelsBuilder::new().links(1).scm_lines(4).build();
        pels.link_mut(0).set_mask(EventVector::mask_of(&[0]));
        pels.link_mut(0).load_program(&program).expect("fits");
        let mut trace = Trace::disabled();
        let mut bus = NoBus;
        let mut seen = EventVector::EMPTY;
        let mut ev = EventVector::mask_of(&[0]);
        for cycle in 0..12u64 {
            seen |= pels.tick(ev, SimTime::from_ps(cycle * 1000), &mut bus, &mut trace);
            ev = EventVector::EMPTY;
        }
        let taken = cond.eval(0, operand);
        assert_eq!(
            seen.is_set(1),
            taken,
            "case {case}: taken path pulses line 1"
        );
        assert_eq!(
            seen.is_set(0),
            !taken,
            "case {case}: fall-through pulses line 0"
        );
        assert!(!pels.is_busy(), "case {case}: program halted either way");
    }
}
