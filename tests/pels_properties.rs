//! Property-based tests on PELS behavioural invariants: trigger
//! accounting, latency determinism, program robustness, arbiter fairness
//! and power-model monotonicity.

use pels_repro::core::pels::NoBus;
use pels_repro::core::{
    ActionMode, Command, Cond, PelsBuilder, Program, TriggerCond, TriggerUnit,
};
use pels_repro::interconnect::{Arbiter, RoundRobin};
use pels_repro::power::{Calibration, PowerModel};
use pels_repro::sim::{ActivityKind, ActivitySet, EventVector, SimTime, Trace};
use proptest::prelude::*;

/// Random *terminating* programs: no `loop` commands with a jump-back
/// (forward-only control flow), bounded waits.
fn arb_terminating_program(max_len: usize) -> impl Strategy<Value = Program> {
    let cmd = prop_oneof![
        Just(Command::Nop),
        (0u32..20).prop_map(|cycles| Command::Wait { cycles }),
        (0u8..=1, any::<u32>()).prop_map(|(group, mask)| Command::Action {
            mode: ActionMode::Pulse,
            group,
            mask,
        }),
    ];
    proptest::collection::vec(cmd, 1..max_len).prop_map(|mut cmds| {
        cmds.push(Command::Halt);
        Program::new(cmds).expect("generated commands are always valid")
    })
}

proptest! {
    /// Any bus-free program terminates: the link returns to idle within
    /// a budget bounded by its wait cycles, and never panics.
    #[test]
    fn random_programs_terminate(program in arb_terminating_program(12)) {
        let mut pels = PelsBuilder::new().links(1).scm_lines(16).build();
        pels.link_mut(0).set_mask(EventVector::mask_of(&[0]));
        pels.link_mut(0).load_program(&program).expect("16-line scm fits");
        let mut trace = Trace::disabled();
        let mut bus = NoBus;
        let mut events = EventVector::mask_of(&[0]);
        let budget = 16 * 2 + 20 * 16 + 8;
        let mut idle_at = None;
        for cycle in 0..budget {
            pels.tick(events, SimTime::from_ps(cycle * 1000), &mut bus, &mut trace);
            events = EventVector::EMPTY;
            if cycle > 2 && !pels.is_busy() {
                idle_at = Some(cycle);
                break;
            }
        }
        prop_assert!(idle_at.is_some(), "program must halt within {budget} cycles");
    }

    /// The instant-action latency is exactly 2 cycles for any action
    /// payload and any trigger mask containing the event line — the
    /// fixed-latency guarantee the paper sells.
    #[test]
    fn instant_latency_is_payload_independent(
        mask in 1u32..,
        group in 0u8..=1,
        extra_lines in any::<u16>(),
    ) {
        let trigger_line = 5u32;
        let mut listen = EventVector::mask_of(&[trigger_line]);
        // Add arbitrary other lines to the mask; they must not matter
        // under the `any` condition when only line 5 pulses.
        for b in 0..16 {
            if extra_lines & (1 << b) != 0 {
                listen.set(16 + b);
            }
        }
        let mut pels = PelsBuilder::new().links(1).scm_lines(4).build();
        pels.link_mut(0).set_mask(listen).set_condition(TriggerCond::Any);
        pels.link_mut(0)
            .load_program(&Program::new(vec![
                Command::Action { mode: ActionMode::Pulse, group, mask },
                Command::Halt,
            ]).expect("valid"))
            .expect("fits");
        let mut trace = Trace::disabled();
        let mut bus = NoBus;
        let mut outs = Vec::new();
        for cycle in 0..6u64 {
            let ev = if cycle == 0 {
                EventVector::mask_of(&[trigger_line])
            } else {
                EventVector::EMPTY
            };
            outs.push(pels.tick(ev, SimTime::from_ps(cycle * 1000), &mut bus, &mut trace));
        }
        let expected = EventVector::from_bits(u64::from(mask) << (32 * u64::from(group)));
        prop_assert!(outs[0].is_empty());
        prop_assert!(outs[1].is_empty());
        prop_assert_eq!(outs[2], expected, "pulse exactly at cycle 2");
        prop_assert!(outs[3].is_empty());
    }

    /// Trigger accounting conservation: pops + pending + drops equals
    /// the number of accepted triggers, for arbitrary event sequences.
    #[test]
    fn trigger_unit_conserves_tokens(
        depth in 0usize..6,
        events in proptest::collection::vec(any::<u64>(), 1..64),
        mask in any::<u64>(),
        pop_every in 1u8..5,
    ) {
        let mut t = TriggerUnit::new(depth);
        t.set_mask(EventVector::from_bits(mask));
        let mut pops = 0u64;
        for (i, &e) in events.iter().enumerate() {
            t.sample(EventVector::from_bits(e), i as u64);
            if i % usize::from(pop_every) == 0 && t.pop().is_some() {
                pops += 1;
            }
        }
        let pending = t.pending() as u64;
        prop_assert_eq!(t.triggers(), pops + pending + t.drops());
        prop_assert!(pending <= depth as u64);
    }

    /// Round-robin fairness: for persistent requesters, grant counts
    /// never differ by more than one, for any requester subset.
    #[test]
    fn round_robin_is_fair_for_any_subset(
        n in 1usize..8,
        subset in any::<u8>(),
        rounds in 10usize..200,
    ) {
        let requests: Vec<bool> = (0..n).map(|i| subset & (1 << i) != 0).collect();
        prop_assume!(requests.iter().any(|&r| r));
        let mut rr = RoundRobin::new();
        let mut grants = vec![0u64; n];
        for _ in 0..rounds {
            let g = rr.grant(&requests).expect("someone requests");
            prop_assert!(requests[g], "only requesters are granted");
            grants[g] += 1;
        }
        let active: Vec<u64> = grants
            .iter()
            .zip(&requests)
            .filter(|(_, &r)| r)
            .map(|(&g, _)| g)
            .collect();
        let min = active.iter().min().expect("non-empty");
        let max = active.iter().max().expect("non-empty");
        prop_assert!(max - min <= 1, "grants {grants:?} for requests {requests:?}");
    }

    /// Power is monotone in activity: adding events never lowers the
    /// reported total.
    #[test]
    fn power_is_monotone_in_activity(
        base in proptest::collection::vec((0usize..4, 0u64..1000), 0..16),
        extra_kind in 0usize..4,
        extra in 1u64..1000,
    ) {
        let kinds = [
            ActivityKind::SramRead,
            ActivityKind::BusTransfer,
            ActivityKind::InstrRetired,
            ActivityKind::ClockCycle,
        ];
        let mut model = PowerModel::new(Calibration::tsmc65());
        model.add_component("x", 20.0);
        let mut a = ActivitySet::new();
        for (k, n) in base {
            a.record("x", kinds[k], n);
        }
        let window = SimTime::from_us(10);
        let before = model.report(&a, window).total().as_uw();
        a.record("x", kinds[extra_kind], extra);
        let after = model.report(&a, window).total().as_uw();
        prop_assert!(after >= before, "{after} < {before}");
    }

    /// A `jump-if` with any condition either falls through or redirects —
    /// and the destination command executes in both cases (no lost
    /// control flow), for arbitrary operands and datapath values.
    #[test]
    fn jump_if_always_reaches_a_pulse(cond_idx in 0usize..6, operand in any::<u32>()) {
        let cond = [Cond::Eq, Cond::Ne, Cond::LtU, Cond::GeU, Cond::LtS, Cond::GeS][cond_idx];
        // dpr is 0 (no capture ran). Both paths pulse a different line.
        let program = Program::new(vec![
            Command::JumpIf { cond, target: 3, operand },
            Command::Action { mode: ActionMode::Pulse, group: 0, mask: 1 },
            Command::Halt,
            Command::Action { mode: ActionMode::Pulse, group: 0, mask: 2 },
        ]).expect("valid");
        let mut pels = PelsBuilder::new().links(1).scm_lines(4).build();
        pels.link_mut(0).set_mask(EventVector::mask_of(&[0]));
        pels.link_mut(0).load_program(&program).expect("fits");
        let mut trace = Trace::disabled();
        let mut bus = NoBus;
        let mut seen = EventVector::EMPTY;
        let mut ev = EventVector::mask_of(&[0]);
        for cycle in 0..12u64 {
            seen |= pels.tick(ev, SimTime::from_ps(cycle * 1000), &mut bus, &mut trace);
            ev = EventVector::EMPTY;
        }
        let taken = cond.eval(0, operand);
        prop_assert_eq!(seen.is_set(1), taken, "taken path pulses line 1");
        prop_assert_eq!(seen.is_set(0), !taken, "fall-through pulses line 0");
        prop_assert!(!pels.is_busy(), "program halted either way");
    }
}
