//! Differential proof that the observability layer is pure observation.
//!
//! `pels-obs` instruments every layer of the stack — decode-cache and
//! scheduler counters, metrics snapshots, host-time spans — and the
//! contract is that none of it can perturb architectural results: traces,
//! activity images, latencies and power inputs must be bit-identical
//! whether observability is off, on, or maximally on (metrics snapshot
//! *and* the global span profiler). These tests run the same workloads
//! both ways and compare everything the simulation derives.

use pels_fleet::{FleetEngine, SweepSpec};
use pels_repro::soc::{ExecMode, Mediator, Scenario, ScenarioReport, SocBuilder};

/// Every simulation-derived field of two reports must match exactly.
/// Host-time fields (there are none in `ScenarioReport`) and the metrics
/// snapshot itself are the only allowed differences.
fn assert_reports_identical(plain: &ScenarioReport, observed: &ScenarioReport) {
    assert_eq!(plain.latencies, observed.latencies);
    assert_eq!(plain.events_completed, observed.events_completed);
    assert_eq!(plain.trace.entries(), observed.trace.entries());
    assert_eq!(plain.active_activity, observed.active_activity);
    assert_eq!(plain.idle_activity, observed.idle_activity);
    assert_eq!(plain.active_window, observed.active_window);
    assert_eq!(plain.idle_window, observed.idle_window);
    assert_eq!(plain.sched_stats, observed.sched_stats);
    assert_eq!(plain.decode_cache_hits, observed.decode_cache_hits);
    assert_eq!(plain.decode_cache_misses, observed.decode_cache_misses);
}

#[test]
fn metrics_snapshot_never_perturbs_any_mediator() {
    for mediator in [
        Mediator::PelsSequenced,
        Mediator::PelsInstant,
        Mediator::IbexIrq,
    ] {
        let base = Scenario::iso_frequency(mediator);
        let plain = base.run();
        let observed = base.to_builder().obs(true).build().unwrap().run();
        assert!(plain.metrics.is_none(), "obs is opt-in");
        assert!(observed.metrics.is_some(), "obs(true) snapshots");
        assert_reports_identical(&plain, &observed);
    }
}

#[test]
fn span_profiler_enable_never_perturbs_results() {
    let base = Scenario::iso_frequency(Mediator::IbexIrq);
    let off = base.run();
    // Maximum observability: global profiler on *and* metrics collected.
    pels_obs::profile::set_enabled(true);
    let on = base.to_builder().obs(true).build().unwrap().run();
    pels_obs::profile::set_enabled(false);
    assert_reports_identical(&off, &on);
}

#[test]
fn timeline_sampling_never_perturbs_any_mediator() {
    for mediator in [
        Mediator::PelsSequenced,
        Mediator::PelsInstant,
        Mediator::IbexIrq,
    ] {
        let base = Scenario::iso_frequency(mediator);
        let plain = base.run();
        // Maximum time resolution: a window boundary is crossed on nearly
        // every cycle, so every observation point in the run loops closes
        // a window. A coarser window exercises the skip-stretch path.
        for window in [1, 64, 4096] {
            let sampled = base
                .to_builder()
                .timeline_window(window)
                .build()
                .unwrap()
                .run();
            assert!(plain.timeline.is_none(), "timelines are opt-in");
            let timeline = sampled.timeline.as_ref().expect("sampled timeline");
            assert!(!timeline.windows.is_empty());
            assert_eq!(timeline.window_cycles, window);
            // The windows partition the run: contiguous, in order, and
            // their activity sums to exactly the full-run image.
            let mut prev_end = 0;
            for w in &timeline.windows {
                assert_eq!(w.start_cycle, prev_end, "windows are contiguous");
                assert!(w.end_cycle > w.start_cycle);
                prev_end = w.end_cycle;
            }
            // Window deltas sum to the drained active image: exact for
            // every event counter; clock rows with integer gating
            // residuals (`cycles / 10`) may round down per window, so
            // only the ungated fabric clock is compared exactly.
            let total = timeline.total_activity();
            let mut summed = pels_sim::ActivitySet::new();
            let mut drained = pels_sim::ActivitySet::new();
            for (name, kind, n) in total.iter() {
                if kind != pels_sim::ActivityKind::ClockCycle {
                    summed.record_named(name, kind, n);
                }
            }
            for (name, kind, n) in sampled.active_activity.iter() {
                if kind != pels_sim::ActivityKind::ClockCycle {
                    drained.record_named(name, kind, n);
                }
            }
            assert_eq!(summed, drained, "window deltas sum to the drained image");
            assert_eq!(
                total.count("fabric", pels_sim::ActivityKind::ClockCycle),
                sampled
                    .active_activity
                    .count("fabric", pels_sim::ActivityKind::ClockCycle),
                "ungated clock rows sum exactly"
            );
            assert_reports_identical(&plain, &sampled);
        }
    }
}

#[test]
fn superblock_execution_never_perturbs_any_mediator() {
    for mediator in [
        Mediator::PelsSequenced,
        Mediator::PelsInstant,
        Mediator::IbexIrq,
    ] {
        let base = Scenario::iso_frequency(mediator);
        let fast = base.run();
        let single = base
            .to_builder()
            .exec_mode(ExecMode::SingleStep)
            .build()
            .unwrap()
            .run();
        // Everything simulation-derived must match. Decode-cache hit/miss
        // counters are the one deliberate exception: block-mode execution
        // bypasses the per-instruction cache probe, so those host-side
        // counters legitimately differ between the two modes (exactly as
        // they differ between cache-on and cache-off runs).
        assert_eq!(fast.latencies, single.latencies);
        assert_eq!(fast.events_completed, single.events_completed);
        assert_eq!(fast.trace.entries(), single.trace.entries());
        assert_eq!(fast.active_activity, single.active_activity);
        assert_eq!(fast.idle_activity, single.idle_activity);
        assert_eq!(fast.active_window, single.active_window);
        assert_eq!(fast.idle_window, single.idle_window);
        assert_eq!(fast.sched_stats, single.sched_stats);
    }
}

#[test]
fn fleet_digest_is_invariant_under_superblock_execution() {
    let mediators = [Mediator::PelsSequenced, Mediator::IbexIrq];
    let fast = FleetEngine::new(2)
        .run_sweep(&SweepSpec::new().mediators(&mediators))
        .unwrap();
    let single = FleetEngine::new(1)
        .run_sweep(
            &SweepSpec::new()
                .mediators(&mediators)
                .exec_mode(ExecMode::SingleStep),
        )
        .unwrap();
    // Superblock execution is a host-speed technique: the digest hashes
    // every simulation-derived field of every job and must not move.
    assert_eq!(fast.digest(), single.digest());
}

#[test]
fn fleet_digest_is_invariant_under_timeline_sampling() {
    let mediators = [Mediator::PelsSequenced, Mediator::IbexIrq];
    let plain = FleetEngine::new(1)
        .run_sweep(&SweepSpec::new().mediators(&mediators))
        .unwrap();
    let sampled = FleetEngine::new(2)
        .run_sweep(
            &SweepSpec::new()
                .mediators(&mediators)
                .obs(true)
                .timeline_window(128),
        )
        .unwrap();
    // Timeline sampling is passive observation: the digest hashes every
    // simulation-derived field of every job and must not move.
    assert_eq!(plain.digest(), sampled.digest());
}

#[test]
fn fleet_digest_is_invariant_under_obs_and_worker_count() {
    let mediators = [Mediator::PelsSequenced, Mediator::IbexIrq];
    let plain = FleetEngine::new(1)
        .run_sweep(&SweepSpec::new().mediators(&mediators))
        .unwrap();
    let observed = FleetEngine::new(2)
        .run_sweep(&SweepSpec::new().mediators(&mediators).obs(true))
        .unwrap();
    // The digest hashes every simulation-derived field of every job;
    // worker attribution and metrics snapshots are host-side observation
    // and must not move it.
    assert_eq!(plain.digest(), observed.digest());
}

#[test]
fn publishing_metrics_mid_run_leaves_the_soc_untouched() {
    let mut observed = SocBuilder::new().build();
    let mut reference = SocBuilder::new().build();
    let mut reg = pels_obs::MetricsRegistry::new();
    for _ in 0..10 {
        observed.run(100);
        reference.run(100);
        // Observation point in the middle of the run: gauges republish on
        // every pass (set semantics, idempotent).
        observed.publish_metrics(&mut reg);
        let _ = observed.sched_stats();
        let _ = observed.decode_cache_stats();
        let _ = observed.master_stats();
    }
    assert_eq!(observed.cycle(), reference.cycle());
    assert_eq!(observed.trace().entries(), reference.trace().entries());
    assert_eq!(observed.sched_stats(), reference.sched_stats());
    assert_eq!(observed.drain_activity(), reference.drain_activity());
    // And the counters the snapshot reports match the accessors exactly.
    let snap = reg.snapshot();
    let (hits, _) = reference.decode_cache_stats();
    if hits > 0 {
        assert_eq!(snap.get("cpu.decode_cache.hits"), Some(hits));
    }
}
