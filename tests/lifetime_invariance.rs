//! Differential proof that the energy-and-lifetime layer is pure
//! observation.
//!
//! The `lifetime` switch integrates the run's power into an
//! [`pels_power::EnergyLedger`] and projects battery lifetime — all of
//! it post-processing over activity the run records anyway. The
//! contract mirrors `tests/obs_invariance.rs`: traces, activity images,
//! latencies and scheduler stats must be bit-identical with the ledger
//! on and off, fleet digests must not move under the switch or the
//! worker count, and the ledger itself must partition the power
//! timeline exactly (blame rows telescope to mean-power × span).

use pels_fleet::{FleetEngine, SweepSpec};
use pels_power::{Battery, EnergyLedger};
use pels_repro::soc::{Mediator, Scenario, ScenarioReport};
use pels_sim::SimTime;

/// Every simulation-derived field of two reports must match exactly;
/// the ledger and projection are the only allowed differences.
fn assert_reports_identical(plain: &ScenarioReport, measured: &ScenarioReport) {
    assert_eq!(plain.latencies, measured.latencies);
    assert_eq!(plain.events_completed, measured.events_completed);
    assert_eq!(plain.trace.entries(), measured.trace.entries());
    assert_eq!(plain.active_activity, measured.active_activity);
    assert_eq!(plain.idle_activity, measured.idle_activity);
    assert_eq!(plain.active_window, measured.active_window);
    assert_eq!(plain.idle_window, measured.idle_window);
    assert_eq!(plain.sched_stats, measured.sched_stats);
    assert_eq!(plain.decode_cache_hits, measured.decode_cache_hits);
    assert_eq!(plain.decode_cache_misses, measured.decode_cache_misses);
}

#[test]
fn energy_ledger_never_perturbs_any_mediator() {
    for mediator in [
        Mediator::PelsSequenced,
        Mediator::PelsInstant,
        Mediator::IbexIrq,
    ] {
        let base = Scenario::iso_frequency(mediator);
        let plain = base.run();
        let measured = base.to_builder().lifetime(true).build().unwrap().run();
        assert!(plain.energy.is_none(), "the ledger is opt-in");
        assert!(measured.energy.is_some() && measured.lifetime.is_some());
        assert_reports_identical(&plain, &measured);

        // With a sampled timeline on top, still bit-identical.
        let timed = base
            .to_builder()
            .lifetime(true)
            .timeline_window(128)
            .build()
            .unwrap()
            .run();
        assert_reports_identical(&plain, &timed);
        assert!(timed.energy.as_ref().unwrap().windows() > 1);
    }
}

#[test]
fn ledger_partitions_the_power_timeline_exactly() {
    let report = Scenario::iso_frequency(Mediator::PelsSequenced)
        .to_builder()
        .lifetime(true)
        .timeline_window(256)
        .build()
        .unwrap()
        .run();
    let ledger = report.energy.as_ref().expect("ledger");
    let timeline = report
        .power_timeline(&report.power_model())
        .expect("sampled timeline");

    // Rebuilding the ledger from the report's own power timeline gives
    // the identical ledger: same integration, same result, bit-for-bit.
    assert_eq!(&EnergyLedger::from_timeline(&timeline), ledger);

    // Blame rows partition the total: the floor row is the residual by
    // construction, so components + floor telescope back to the total.
    let rows = ledger.blame();
    let row_sum_uj: f64 = rows.iter().map(|r| r.uj).sum();
    assert!(
        (row_sum_uj - ledger.total_uj()).abs() <= 1e-12 * ledger.total_uj(),
        "blame rows {row_sum_uj} vs total {}",
        ledger.total_uj()
    );
    let share_sum: f64 = rows.iter().map(|r| r.share).sum();
    assert!((share_sum - 1.0).abs() < 1e-12);

    // The total telescopes to mean-power × span, and the ledger's mean
    // is exactly the timeline's duration-weighted mean.
    let span_s = ledger.span().as_secs_f64();
    let reconstructed_uj = ledger.mean_power().as_uw() * span_s;
    assert!(
        (reconstructed_uj - ledger.total_uj()).abs() <= 1e-9 * ledger.total_uj(),
        "mean × span {reconstructed_uj} vs total {}",
        ledger.total_uj()
    );
    assert!((ledger.mean_power().as_uw() - timeline.mean_total_uw()).abs() <= 1e-9);

    // And the projection's blame telescopes to the projected days.
    let projection = report.lifetime.as_ref().expect("projection");
    let day_sum: f64 = projection.blame.iter().map(|r| r.days_cost).sum();
    assert!((day_sum - projection.days()).abs() <= 1e-9 * projection.days());
}

#[test]
fn duty_cycled_horizon_integrates_sleep_cheaply() {
    // 100 ms duty periods over 10 s of simulated time: the node sleeps
    // >99.9% of the span, which quiescence skipping makes nearly free.
    let s = Scenario::duty_cycled(
        Mediator::PelsSequenced,
        SimTime::from_ms(100),
        SimTime::from_ms(10_000),
    );
    assert_eq!(s.events, 100);
    let report = s.run();
    let ledger = report.energy.as_ref().expect("ledger");
    // The span covers (at least) the horizon and the mean collapses
    // toward the idle floor — far below the busy-window power.
    assert!(ledger.span() >= SimTime::from_ms(10_000));
    let idle_uw = report
        .idle_power(&report.power_model())
        .total()
        .as_uw();
    assert!(
        ledger.mean_power().as_uw() < idle_uw * 1.05,
        "duty-cycled mean {} vs idle floor {idle_uw}",
        ledger.mean_power().as_uw()
    );
    // A plausible coin-cell lifetime: months, not hours and not ∞.
    let projection = report.lifetime.as_ref().expect("projection");
    assert!(projection.days() > 30.0 && projection.days() < 10_000.0);
}

#[test]
fn pels_outlives_the_irq_baseline_when_duty_cycled() {
    let days = |mediator| {
        Scenario::duty_cycled(mediator, SimTime::from_ms(10), SimTime::from_ms(500))
            .run()
            .lifetime
            .expect("projection")
            .days()
    };
    let pels = days(Mediator::PelsSequenced);
    let irq = days(Mediator::IbexIrq);
    assert!(
        pels > irq,
        "PELS mediation must outlast the IRQ baseline: {pels} vs {irq} days"
    );
}

#[test]
fn fleet_digest_is_invariant_under_lifetime_and_worker_count() {
    let mediators = [Mediator::PelsSequenced, Mediator::IbexIrq];
    let plain = FleetEngine::new(1)
        .run_sweep(&SweepSpec::new().mediators(&mediators))
        .unwrap();
    let measured = FleetEngine::new(2)
        .run_sweep(
            &SweepSpec::new()
                .mediators(&mediators)
                .lifetime(true)
                .timeline_window(128),
        )
        .unwrap();
    // The ledger is pure post-processing: the digest hashes every
    // simulation-derived field of every job and must not move.
    assert_eq!(plain.digest(), measured.digest());
}

#[test]
fn merged_ledger_is_identical_across_worker_counts() {
    let spec = SweepSpec::new()
        .mediators(&[Mediator::PelsSequenced, Mediator::IbexIrq])
        .sample_periods_us(&[100, 500])
        .lifetime(true);
    let mut digests = Vec::new();
    let mut ledgers = Vec::new();
    for workers in [1, 2, 8] {
        let report = FleetEngine::new(workers).run_sweep(&spec).unwrap();
        assert_eq!(report.failed().count(), 0);
        digests.push(report.digest());
        ledgers.push(report.merged_energy_ledger());
    }
    // Same jobs, any schedule: digests and the input-order ledger fold
    // are bit-identical (PartialEq over every f64 accumulator).
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
    assert!(ledgers.windows(2).all(|w| w[0] == w[1]));
    let merged = &ledgers[0];
    // 2 mediators × 2 sample periods, one integrated window per job.
    assert_eq!(merged.windows(), 4, "every job contributes");
    assert!(merged.total_uj() > 0.0);
    // Projecting the merged ledger works like any other ledger.
    let projection = Battery::coin_cell().project(merged);
    assert!(projection.days() > 0.0);
}
