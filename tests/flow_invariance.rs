//! Differential proof that causal flow tracing is pure observation.
//!
//! Flow recording threads ids through every layer of the stack — event
//! wires, trigger FIFOs, the execution pipelines, the IRQ path — so the
//! contract must be airtight: every observation point is a branch that
//! reads architectural state and never writes it. These tests run the
//! same workloads with flows off and on, across all three execution
//! strategies, and compare everything the simulation derives.

use pels_fleet::{FleetEngine, SweepSpec};
use pels_repro::soc::{ExecMode, Mediator, Scenario, ScenarioReport};

/// Every simulation-derived field of two reports must match exactly;
/// the flow record itself is the only allowed difference.
fn assert_reports_identical(plain: &ScenarioReport, flowed: &ScenarioReport) {
    assert_eq!(plain.latencies, flowed.latencies);
    assert_eq!(plain.events_completed, flowed.events_completed);
    assert_eq!(plain.trace.entries(), flowed.trace.entries());
    assert_eq!(plain.active_activity, flowed.active_activity);
    assert_eq!(plain.idle_activity, flowed.idle_activity);
    assert_eq!(plain.active_window, flowed.active_window);
    assert_eq!(plain.idle_window, flowed.idle_window);
    assert_eq!(plain.sched_stats, flowed.sched_stats);
    assert_eq!(plain.decode_cache_hits, flowed.decode_cache_hits);
    assert_eq!(plain.decode_cache_misses, flowed.decode_cache_misses);
}

#[test]
fn flow_recording_never_perturbs_any_mediator_or_exec_mode() {
    for mediator in [
        Mediator::PelsSequenced,
        Mediator::PelsInstant,
        Mediator::IbexIrq,
    ] {
        for exec in [ExecMode::Fast, ExecMode::SingleStep, ExecMode::Naive] {
            let base = Scenario::iso_frequency(mediator)
                .to_builder()
                .exec_mode(exec)
                .build()
                .unwrap();
            let plain = base.run();
            let flowed = base.to_builder().flows(true).build().unwrap().run();
            assert!(plain.flows.is_none(), "flows are opt-in");
            let flows = flowed.flows.as_ref().expect("flows(true) records");
            assert!(!flows.is_empty(), "{mediator} {exec:?}: flows recorded");
            assert_reports_identical(&plain, &flowed);
        }
    }
}

#[test]
fn flow_attribution_is_identical_across_exec_modes() {
    for mediator in [
        Mediator::PelsSequenced,
        Mediator::PelsInstant,
        Mediator::IbexIrq,
    ] {
        let report_for = |exec| {
            Scenario::latency_probe(mediator)
                .to_builder()
                .exec_mode(exec)
                .flows(true)
                .build()
                .unwrap()
                .run()
                .flow_report()
                .expect("flow report")
        };
        let fast = report_for(ExecMode::Fast);
        // The measured eot→actuation segment is architectural, so its
        // decomposition cannot depend on the host execution strategy.
        for exec in [ExecMode::SingleStep, ExecMode::Naive] {
            assert_eq!(fast, report_for(exec), "{mediator} {exec:?}");
        }
    }
}

#[test]
fn flows_compose_with_full_observability() {
    // Maximum observation: metrics snapshot, timeline sampling and flow
    // recording all at once must still change nothing architectural.
    let base = Scenario::iso_frequency(Mediator::IbexIrq);
    let plain = base.run();
    let maxed = base
        .to_builder()
        .obs(true)
        .timeline_window(128)
        .flows(true)
        .build()
        .unwrap()
        .run();
    assert!(maxed.metrics.is_some());
    assert!(maxed.timeline.is_some());
    assert!(maxed.flows.is_some());
    assert_reports_identical(&plain, &maxed);
}

#[test]
fn fleet_digest_is_invariant_under_flow_recording() {
    let mediators = [Mediator::PelsSequenced, Mediator::IbexIrq];
    let plain = FleetEngine::new(1)
        .run_sweep(&SweepSpec::new().mediators(&mediators))
        .unwrap();
    let flowed = FleetEngine::new(2)
        .run_sweep(&SweepSpec::new().mediators(&mediators).flows(true))
        .unwrap();
    // The digest hashes every simulation-derived field of every job;
    // flow recording is host-side observation and must not move it.
    assert_eq!(plain.digest(), flowed.digest());
    assert!(flowed.flow_report().flows() > 0);
}
