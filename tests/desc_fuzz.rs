//! Description-driven fuzzing and construction-equivalence suite.
//!
//! The seeded topology fuzzer ([`DescFuzzer`]) generates hundreds of
//! system/scenario descriptions — permuted memory maps, varied clock
//! plans, PELS shapes and stimuli — and every accepted description must
//! (a) survive the JSON round trip bit-identically, and (b) produce a
//! bit-identical measured report under fast and naive host scheduling
//! (the same differential the hand-written `tests/active_path.rs` suite
//! runs on the paper presets). Deliberately broken descriptions must be
//! rejected with a [`DescError`] that names the offending JSON path.
//!
//! A second set of tests pins the API redesign itself: the legacy
//! setter-chain builders are thin wrappers over [`ScenarioDesc`], so a
//! scenario built either way must be *equal* — and must measure
//! identically, down to the fleet digest.

use pels_fleet::{FleetEngine, SweepSpec};
use pels_repro::desc::{DescFuzzer, FuzzCase};
use pels_repro::soc::{ExecMode, Mediator, Scenario, ScenarioDesc, SystemDesc};
use pels_sim::Frequency;

/// Generate→validate→differential iterations (the ISSUE floor is 200).
const ITERATIONS: usize = 240;
const SEED: u64 = 0x5EED_DE5C;

#[test]
fn fuzzed_descriptions_round_trip_and_run_differentially() {
    let mut fuzzer = DescFuzzer::new(SEED);
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for i in 0..ITERATIONS {
        match fuzzer.next_case() {
            FuzzCase::Valid(desc) => {
                desc.validate()
                    .unwrap_or_else(|e| panic!("iter {i}: generated-valid desc rejected: {e}"));

                // (a) JSON round trip is the identity.
                let json = desc.to_json();
                let back = ScenarioDesc::from_json(&json)
                    .unwrap_or_else(|e| panic!("iter {i}: emitted JSON fails to parse: {e}"));
                assert_eq!(back, desc, "iter {i}: round trip is not the identity");

                // (b) fast-vs-naive differential: the host scheduling
                // strategy must never perturb the measured report.
                let fast = Scenario::from_desc(desc.clone())
                    .unwrap_or_else(|e| panic!("iter {i}: from_desc: {e}"))
                    .try_run()
                    .unwrap_or_else(|e| panic!("iter {i}: fast run: {e}"));
                let mut naive_desc = desc;
                naive_desc.exec = ExecMode::Naive;
                let naive = Scenario::from_desc(naive_desc)
                    .unwrap_or_else(|e| panic!("iter {i}: from_desc(naive): {e}"))
                    .try_run()
                    .unwrap_or_else(|e| panic!("iter {i}: naive run: {e}"));

                assert_eq!(fast.events_completed, naive.events_completed, "iter {i}: events");
                assert_eq!(fast.latencies, naive.latencies, "iter {i}: latencies");
                assert_eq!(fast.stats, naive.stats, "iter {i}: LinkingStats");
                assert_eq!(fast.active_window, naive.active_window, "iter {i}: active window");
                assert_eq!(fast.idle_window, naive.idle_window, "iter {i}: idle window");
                assert_eq!(fast.trace.entries(), naive.trace.entries(), "iter {i}: trace");
                assert_eq!(
                    fast.active_activity, naive.active_activity,
                    "iter {i}: active-window activity"
                );
                assert_eq!(
                    fast.idle_activity, naive.idle_activity,
                    "iter {i}: idle-window activity"
                );
                accepted += 1;
            }
            FuzzCase::Invalid { desc, broke } => {
                let err = desc
                    .validate()
                    .expect_err(&format!("iter {i}: broken desc ({broke}) validated"));
                assert!(
                    err.path.starts_with('/'),
                    "iter {i} ({broke}): diagnostic path {:?} is not a JSON path",
                    err.path
                );
                assert!(!err.message.is_empty(), "iter {i} ({broke}): empty message");
                assert!(
                    Scenario::from_desc(desc).is_err(),
                    "iter {i} ({broke}): from_desc accepted a broken desc"
                );
                rejected += 1;
            }
        }
    }
    assert_eq!(accepted + rejected, ITERATIONS);
    assert!(accepted >= 150, "only {accepted} accepted cases — fuzzer drifted");
    assert!(rejected >= 10, "only {rejected} rejected cases — fuzzer drifted");
}

#[test]
fn shipped_corpus_round_trips_bit_identically() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/descs");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("examples/descs exists (regenerate with `reproduce -- desc`)")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 10, "corpus went thin: {} files", paths.len());
    for path in &paths {
        let text = std::fs::read_to_string(path).expect("corpus file readable");
        let ctx = path.display();
        // Scenario documents nest the system; the rest are bare systems.
        match ScenarioDesc::from_json(&text) {
            Ok(desc) => {
                let back = ScenarioDesc::from_json(&desc.to_json())
                    .unwrap_or_else(|e| panic!("{ctx}: re-parse: {e}"));
                assert_eq!(back, desc, "{ctx}: scenario round trip");
            }
            Err(_) => {
                let desc = SystemDesc::from_json(&text)
                    .unwrap_or_else(|e| panic!("{ctx}: neither scenario nor system: {e}"));
                let back = SystemDesc::from_json(&desc.to_json())
                    .unwrap_or_else(|e| panic!("{ctx}: re-parse: {e}"));
                assert_eq!(back, desc, "{ctx}: system round trip");
            }
        }
    }
}

#[test]
fn from_desc_equals_legacy_builder_and_measures_identically() {
    // The same scenario, built both ways.
    let legacy = Scenario::builder()
        .mediator(Mediator::PelsInstant)
        .frequency(Frequency::from_mhz(27.0))
        .pels_links(4)
        .events(10)
        .build()
        .expect("legacy chain is valid");
    let mut desc = ScenarioDesc {
        mediator: Mediator::PelsInstant,
        events: 10,
        ..ScenarioDesc::default()
    };
    desc.system.freq = Frequency::from_mhz(27.0);
    desc.system.pels.links = 4;
    let described = Scenario::from_desc(desc).expect("desc is valid");
    assert_eq!(legacy, described, "setters are a thin wrapper over the desc");

    let a = legacy.run();
    let b = described.run();
    assert_eq!(a.latencies, b.latencies);
    assert_eq!(a.events_completed, b.events_completed);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.active_window, b.active_window);
    assert_eq!(a.idle_window, b.idle_window);
    assert_eq!(a.trace.entries(), b.trace.entries());
    assert_eq!(a.active_activity, b.active_activity);
    assert_eq!(a.idle_activity, b.idle_activity);
}

#[test]
fn fleet_digest_identical_for_sweep_and_hand_built_desc_jobs() {
    let mediators = [Mediator::PelsSequenced, Mediator::IbexIrq];
    let via_spec = FleetEngine::new(1)
        .run_sweep(&SweepSpec::new().mediators(&mediators))
        .expect("spec is valid");
    let jobs: Vec<(String, Scenario)> = mediators
        .iter()
        .map(|&m| {
            let desc = ScenarioDesc {
                mediator: m,
                ..ScenarioDesc::default()
            };
            let label = format!("{m}@55MHz links1 shared round-robin");
            (label, Scenario::from_desc(desc).expect("desc is valid"))
        })
        .collect();
    let via_desc = FleetEngine::new(1).run_scenarios(&jobs);
    assert_eq!(
        via_spec.digest(),
        via_desc.digest(),
        "description-built jobs must hash identically to the sweep's"
    );
}
