//! Properties of the causal flow layer: per-flow hop deltas must
//! telescope to exactly the end-to-end latencies the architectural trace
//! measures, and flow-report aggregation must be order-invariant.
//!
//! The first property is the whole point of the attribution: if the
//! per-stage blame table did not sum to the measured latency, the
//! decomposition would be narrative rather than accounting.

use pels_repro::obs::FlowReport;
use pels_repro::sim::{FlowTrace, Rng, SimTime};
use pels_repro::soc::{Mediator, Scenario, ScenarioReport};

/// The terminal stage of the measured segment for a mediator (matches
/// `Scenario::completion_marker`).
fn terminal_of(mediator: Mediator) -> &'static str {
    match mediator {
        Mediator::PelsInstant => "action",
        _ => "padout",
    }
}

/// Per-flow end-to-end cycles (first `eot` hop to the first terminal hop
/// after it), in mint order — chronological, because flows are minted at
/// their originating stimulus.
fn flow_e2e_cycles(flows: &FlowTrace, period_ps: u64, terminal: &str) -> Vec<u64> {
    let mut e2e = Vec::new();
    for id in flows.flow_ids() {
        let hops: Vec<_> = flows.hops_of(id).collect();
        let Some(start) = hops.iter().position(|h| h.stage == "eot") else {
            continue;
        };
        let Some(end) = hops[start..].iter().find(|h| h.stage == terminal) else {
            continue;
        };
        e2e.push((end.time.as_ps() - hops[start].time.as_ps()) / period_ps);
        // Within the segment, consecutive deltas telescope by
        // construction — assert the hop times are monotone so the
        // deltas are all the attribution sees.
        for pair in hops.windows(2) {
            assert!(pair[0].time <= pair[1].time, "hop times are monotone");
        }
    }
    e2e
}

fn assert_attribution_is_exact(report: &ScenarioReport, scenario: &Scenario) {
    let flows = report.flows.as_ref().expect("flows recorded");
    let terminal = terminal_of(scenario.mediator);
    let e2e = flow_e2e_cycles(flows, scenario.freq().period_ps(), terminal);
    // One complete flow per measured event, with identical per-event
    // latencies: the causal pairing reproduces the trace pairing
    // (`latencies_all`) exactly on an always-actuating workload.
    assert_eq!(
        e2e, report.latencies,
        "per-flow e2e must equal the measured per-event latencies"
    );
    // The per-stage attribution telescopes: stage totals sum to exactly
    // the end-to-end total, and the distribution matches the stats.
    let fr = report.flow_report().expect("flow report");
    assert_eq!(fr.flows(), report.latencies.len() as u64);
    assert_eq!(fr.attributed_cycles(), fr.end_to_end().sum());
    assert_eq!(fr.end_to_end().sum(), report.latencies.iter().sum::<u64>());
    assert_eq!(fr.end_to_end().min(), Some(report.stats.min));
    assert_eq!(fr.end_to_end().max(), Some(report.stats.max));
}

#[test]
fn paper_probes_decompose_exactly() {
    for mediator in [
        Mediator::PelsSequenced,
        Mediator::PelsInstant,
        Mediator::IbexIrq,
    ] {
        let s = Scenario::latency_probe(mediator)
            .to_builder()
            .flows(true)
            .build()
            .unwrap();
        let report = s.run();
        assert_attribution_is_exact(&report, &s);
        // The pinned paper latencies stay visible through the flow lens.
        let expect = match mediator {
            Mediator::PelsSequenced => 7,
            Mediator::PelsInstant => 2,
            Mediator::IbexIrq => 16,
        };
        let fr = report.flow_report().unwrap();
        assert_eq!(fr.end_to_end().p50(), Some(expect), "{mediator}");
    }
}

#[test]
fn attribution_sums_exactly_in_randomized_scenarios() {
    let mut rng = Rng::seed_from_u64(0xf10a_cafe);
    for trial in 0..12 {
        let mediator = match rng.index(3) {
            0 => Mediator::PelsSequenced,
            1 => Mediator::PelsInstant,
            _ => Mediator::IbexIrq,
        };
        let period_ps = 5_000 + rng.next_below(45_000);
        let cycles = 96 + rng.next_below(160);
        let mut b = Scenario::builder()
            .mediator(mediator)
            .frequency(pels_repro::sim::Frequency::from_period_ps(period_ps))
            .sample_period(SimTime::from_ps(cycles * period_ps))
            .spi_words(1 + rng.next_below(2) as u32)
            .events(3 + rng.next_below(6) as u32)
            .flows(true);
        // The threshold program needs the constant 2.5 V default sensor
        // (always above threshold) so every readout actuates before the
        // next eot — the precondition for causal pairing == trace
        // pairing.
        if mediator != Mediator::IbexIrq && rng.next_below(2) == 0 {
            b = b.rmw_only(true);
        }
        if mediator != Mediator::IbexIrq {
            b = b.pels_links(1 + rng.next_below(4) as usize);
        }
        let s = b.build().unwrap();
        let report = s.run();
        assert!(
            report.latencies.len() >= 3,
            "trial {trial}: measured enough events"
        );
        assert_attribution_is_exact(&report, &s);
    }
}

#[test]
fn flow_report_merge_is_order_invariant() {
    let reports: Vec<FlowReport> = [
        Mediator::PelsSequenced,
        Mediator::PelsInstant,
        Mediator::IbexIrq,
    ]
    .into_iter()
    .map(|m| {
        Scenario::latency_probe(m)
            .to_builder()
            .flows(true)
            .build()
            .unwrap()
            .run()
            .flow_report()
            .unwrap()
    })
    .collect();
    // Fold in every permutation of three: all six aggregates identical.
    let fold = |order: [usize; 3]| {
        let mut merged = FlowReport::default();
        for i in order {
            merged.merge(&reports[i]);
        }
        merged
    };
    let reference = fold([0, 1, 2]);
    for order in [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
        assert_eq!(fold(order), reference, "order {order:?}");
    }
    assert_eq!(
        reference.flows(),
        reports.iter().map(FlowReport::flows).sum::<u64>()
    );
    assert_eq!(reference.attributed_cycles(), reference.end_to_end().sum());
}

#[test]
fn fleet_merges_flow_reports_across_jobs() {
    use pels_repro::fleet::{FleetEngine, SweepSpec};
    let spec = SweepSpec::new()
        .mediators(&[Mediator::PelsSequenced, Mediator::IbexIrq])
        .rmw_only(true)
        .events(5)
        .flows(true);
    let batch = FleetEngine::new(2).run_sweep(&spec).unwrap();
    let merged = batch.flow_report();
    assert_eq!(merged.flows(), 10, "5 events per job, 2 jobs");
    assert_eq!(merged.attributed_cycles(), merged.end_to_end().sum());
    // Both mediation paths are present in the merged blame table.
    let labels: Vec<&str> = merged.stages().map(|(l, _)| l).collect();
    assert!(labels.contains(&"pels.link0.write"), "{labels:?}");
    assert!(labels.contains(&"ibex.irq_enter"), "{labels:?}");
    // Without the switch, no job records flows and the merge is empty.
    let plain = FleetEngine::new(1)
        .run_sweep(&SweepSpec::new().events(5))
        .unwrap();
    assert_eq!(plain.flow_report().flows(), 0);
}
