//! Randomized property tests on the core invariants: the 48-bit command
//! encoding, the assembler, the event vector, the simulation kernel's
//! data structures, and the CPU's arithmetic against reference
//! implementations.
//!
//! Each test draws its cases from a seeded [`Rng`] so the suite is fully
//! deterministic and needs no external property-testing crate. A failing
//! case prints its iteration index; re-running reproduces it exactly.

use pels_repro::core::{
    assemble, decode_command, encode_command, ActionMode, Command, Cond, Program,
};
use pels_repro::cpu::{asm, Cpu, SimpleBus};
use pels_repro::sim::{Clock, EventVector, Fifo, Frequency, Rng, Scheduler, SimTime};

const CASES: usize = 256;

/// Draws any encodable command.
fn arb_command(rng: &mut Rng) -> Command {
    let offset = (rng.next_u32() & 0xFFF) as u16;
    let target = (rng.next_u32() & 0x1FF) as u16;
    let value = rng.next_u32();
    let cond = [
        Cond::Eq,
        Cond::Ne,
        Cond::LtU,
        Cond::GeU,
        Cond::LtS,
        Cond::GeS,
    ][rng.index(6)];
    let mode = [
        ActionMode::Pulse,
        ActionMode::Set,
        ActionMode::Clear,
        ActionMode::Toggle,
    ][rng.index(4)];
    match rng.index(11) {
        0 => Command::Nop,
        1 => Command::Halt,
        2 => Command::Write { offset, value },
        3 => Command::Set {
            offset,
            mask: value,
        },
        4 => Command::Clear {
            offset,
            mask: value,
        },
        5 => Command::Toggle {
            offset,
            mask: value,
        },
        6 => Command::Capture {
            offset,
            mask: value,
        },
        7 => Command::JumpIf {
            cond,
            target,
            operand: value,
        },
        8 => Command::Loop {
            target,
            count: value,
        },
        9 => Command::Wait { cycles: value },
        _ => Command::Action {
            mode,
            group: rng.index(2) as u8,
            mask: value,
        },
    }
}

/// Every encodable command decodes back to itself, and fits 48 bits.
#[test]
fn command_encoding_roundtrips() {
    let mut rng = Rng::seed_from_u64(0xC0DE_0001);
    for case in 0..CASES {
        let cmd = arb_command(&mut rng);
        let raw = encode_command(&cmd).expect("generator only builds encodable commands");
        assert!(raw >> 48 == 0, "case {case}: 48-bit encoding for {cmd:?}");
        assert_eq!(
            decode_command(raw).expect("encoded word decodes"),
            cmd,
            "case {case}"
        );
    }
}

/// The assembler parses the `Display` rendering of any command back to
/// the same command (the textual syntax is lossless). Jump/loop targets
/// are kept valid by padding the program with `nop` lines.
#[test]
fn assembler_roundtrips_display() {
    let mut rng = Rng::seed_from_u64(0xC0DE_0002);
    for case in 0..CASES {
        let cmd = arb_command(&mut rng);
        let mut text = cmd.to_string();
        for _ in 0..512 {
            text.push_str("\nnop");
        }
        let program =
            assemble(&text).unwrap_or_else(|e| panic!("case {case}: `{cmd}` failed: {e}"));
        assert_eq!(program.commands().len(), 513, "case {case}");
        assert_eq!(program.commands()[0], cmd, "case {case}");
    }
}

/// Program validation accepts exactly the in-range jump targets.
#[test]
fn program_validation_checks_targets() {
    let mut rng = Rng::seed_from_u64(0xC0DE_0003);
    for case in 0..CASES {
        let target = rng.next_below(32) as u16;
        let len = rng.range_u64(1, 16) as usize;
        let mut cmds = vec![Command::Nop; len];
        cmds.push(Command::JumpIf {
            cond: Cond::Eq,
            target,
            operand: 0,
        });
        let total = cmds.len();
        let result = Program::new(cmds);
        assert_eq!(
            result.is_ok(),
            usize::from(target) < total,
            "case {case}: target {target} in len {total}"
        );
    }
}

/// EventVector behaves exactly like its u64 bit image.
#[test]
fn event_vector_matches_u64_semantics() {
    let mut rng = Rng::seed_from_u64(0xC0DE_0004);
    for case in 0..CASES {
        let a = rng.next_u64();
        let b = rng.next_u64();
        let line = rng.next_below(64) as u32;
        let va = EventVector::from_bits(a);
        let vb = EventVector::from_bits(b);
        assert_eq!((va | vb).bits(), a | b, "case {case}");
        assert_eq!((va & vb).bits(), a & b, "case {case}");
        assert_eq!((!va).bits(), !a, "case {case}");
        assert_eq!(va.is_set(line), a & (1 << line) != 0, "case {case}");
        assert_eq!(va.count(), a.count_ones(), "case {case}");
        let collected: EventVector = va.iter().collect();
        assert_eq!(collected, va, "case {case}");
    }
}

/// The FIFO is a bounded queue: contents always equal a reference
/// VecDeque truncated at capacity.
#[test]
fn fifo_matches_reference_queue() {
    let mut rng = Rng::seed_from_u64(0xC0DE_0005);
    for case in 0..CASES {
        let capacity = rng.index(8);
        let ops = rng.index(64);
        let mut fifo = Fifo::new(capacity);
        let mut reference = std::collections::VecDeque::new();
        for op in 0..ops {
            if rng.bool() {
                let v = rng.next_u32() as u8;
                let accepted = fifo.push_lossy(v);
                if reference.len() < capacity {
                    reference.push_back(v);
                    assert!(accepted, "case {case} op {op}");
                } else {
                    assert!(!accepted, "case {case} op {op}");
                }
            } else {
                assert_eq!(fifo.pop(), reference.pop_front(), "case {case} op {op}");
            }
            assert_eq!(fifo.len(), reference.len(), "case {case} op {op}");
        }
    }
}

/// Scheduler edges are globally time-ordered and per-clock periodic, for
/// arbitrary clock sets.
#[test]
fn scheduler_orders_arbitrary_clock_sets() {
    let mut rng = Rng::seed_from_u64(0xC0DE_0006);
    for case in 0..64 {
        let n = rng.range_u64(1, 5) as usize;
        let periods: Vec<u64> = (0..n).map(|_| rng.range_u64(1_000, 1_000_000)).collect();
        let mut sched = Scheduler::new();
        let ids: Vec<_> = periods
            .iter()
            .enumerate()
            .map(|(i, &p)| sched.add_clock(Clock::new(format!("c{i}"), Frequency::from_period_ps(p))))
            .collect();
        let mut last = SimTime::ZERO;
        let mut counts = vec![0u64; ids.len()];
        for _ in 0..200 {
            let edge = sched.advance().expect("clocks registered");
            assert!(edge.time >= last, "case {case}");
            // The edge lands exactly on its clock's grid.
            assert_eq!(edge.time.as_ps() % periods[edge.clock.index()], 0, "case {case}");
            assert_eq!(edge.cycle, counts[edge.clock.index()], "case {case}");
            counts[edge.clock.index()] += 1;
            last = edge.time;
        }
    }
}

/// CPU ALU instructions agree with Rust's wrapping integer semantics.
#[test]
fn cpu_alu_matches_reference() {
    let mut rng = Rng::seed_from_u64(0xC0DE_0007);
    for case in 0..128 {
        // Mix raw draws with corner values so the interesting boundaries
        // are always hit.
        let corner = [0u32, 1, 31, 32, 0x7FFF_FFFF, 0x8000_0000, u32::MAX];
        let a = if rng.ratio(1, 4) { corner[rng.index(7)] } else { rng.next_u32() };
        let b = if rng.ratio(1, 4) { corner[rng.index(7)] } else { rng.next_u32() };
        let mut program = Vec::new();
        program.extend(asm::li32(1, a));
        program.extend(asm::li32(2, b));
        program.push(asm::add(3, 1, 2));
        program.push(asm::sub(4, 1, 2));
        program.push(asm::xor(5, 1, 2));
        program.push(asm::and(6, 1, 2));
        program.push(asm::or(7, 1, 2));
        program.push(asm::sltu(8, 1, 2));
        program.push(asm::slt(9, 1, 2));
        program.push(asm::sll(20, 1, 2));
        program.push(asm::srl(21, 1, 2));
        program.push(asm::sra(22, 1, 2));
        program.push(asm::ecall());
        let mut bus = SimpleBus::new(64 * 1024);
        bus.load(0, &program);
        let mut cpu = Cpu::new(0);
        cpu.run(&mut bus, 0, 200);
        assert_eq!(cpu.reg(3), a.wrapping_add(b), "case {case}: add {a:#x} {b:#x}");
        assert_eq!(cpu.reg(4), a.wrapping_sub(b), "case {case}: sub {a:#x} {b:#x}");
        assert_eq!(cpu.reg(5), a ^ b, "case {case}");
        assert_eq!(cpu.reg(6), a & b, "case {case}");
        assert_eq!(cpu.reg(7), a | b, "case {case}");
        assert_eq!(cpu.reg(8), u32::from(a < b), "case {case}");
        assert_eq!(cpu.reg(9), u32::from((a as i32) < (b as i32)), "case {case}");
        assert_eq!(cpu.reg(20), a.wrapping_shl(b & 31), "case {case}");
        assert_eq!(cpu.reg(21), a.wrapping_shr(b & 31), "case {case}");
        assert_eq!(
            cpu.reg(22),
            ((a as i32).wrapping_shr(b & 31)) as u32,
            "case {case}"
        );
    }
}

/// M-extension results match 64-bit reference math, including the RISC-V
/// division corner cases.
#[test]
fn cpu_muldiv_matches_reference() {
    let mut rng = Rng::seed_from_u64(0xC0DE_0008);
    for case in 0..128 {
        let corner = [0u32, 1, 0x7FFF_FFFF, 0x8000_0000, u32::MAX];
        let a = if rng.ratio(1, 4) { corner[rng.index(5)] } else { rng.next_u32() };
        let b = if rng.ratio(1, 4) { corner[rng.index(5)] } else { rng.next_u32() };
        let mut program = Vec::new();
        program.extend(asm::li32(1, a));
        program.extend(asm::li32(2, b));
        program.push(asm::mul(3, 1, 2));
        program.push(asm::mulhu(4, 1, 2));
        program.push(asm::mulh(5, 1, 2));
        program.push(asm::divu(6, 1, 2));
        program.push(asm::remu(7, 1, 2));
        program.push(asm::div(8, 1, 2));
        program.push(asm::rem(9, 1, 2));
        program.push(asm::ecall());
        let mut bus = SimpleBus::new(64 * 1024);
        bus.load(0, &program);
        let mut cpu = Cpu::new(0);
        cpu.run(&mut bus, 0, 400);
        assert_eq!(cpu.reg(3), a.wrapping_mul(b), "case {case}: mul {a:#x} {b:#x}");
        assert_eq!(
            cpu.reg(4),
            ((u64::from(a) * u64::from(b)) >> 32) as u32,
            "case {case}"
        );
        assert_eq!(
            cpu.reg(5),
            (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
            "case {case}"
        );
        let divu = a.checked_div(b).unwrap_or(u32::MAX);
        let remu = a.checked_rem(b).unwrap_or(a);
        assert_eq!(cpu.reg(6), divu, "case {case}");
        assert_eq!(cpu.reg(7), remu, "case {case}");
        let (div, rem) = if b == 0 {
            (u32::MAX, a)
        } else if a == 0x8000_0000 && b == u32::MAX {
            (a, 0)
        } else {
            (
                ((a as i32).wrapping_div(b as i32)) as u32,
                ((a as i32).wrapping_rem(b as i32)) as u32,
            )
        };
        assert_eq!(cpu.reg(8), div, "case {case}: div {a:#x} {b:#x}");
        assert_eq!(cpu.reg(9), rem, "case {case}: rem {a:#x} {b:#x}");
    }
}

/// Loads and stores of every width round-trip through memory for
/// arbitrary values and (aligned) addresses.
#[test]
fn cpu_memory_roundtrips() {
    let mut rng = Rng::seed_from_u64(0xC0DE_0009);
    for case in 0..128 {
        let value = rng.next_u32();
        let word = rng.next_below(64) as u32;
        let addr = 0x1000 + word * 4;
        let mut program = Vec::new();
        program.extend(asm::li32(1, addr));
        program.extend(asm::li32(2, value));
        program.push(asm::sw(1, 2, 0));
        program.push(asm::lw(3, 1, 0));
        program.push(asm::lhu(4, 1, 0));
        program.push(asm::lhu(5, 1, 2));
        program.push(asm::lbu(6, 1, 0));
        program.push(asm::lbu(7, 1, 3));
        program.push(asm::ecall());
        let mut bus = SimpleBus::new(64 * 1024);
        bus.load(0, &program);
        let mut cpu = Cpu::new(0);
        cpu.run(&mut bus, 0, 100);
        assert_eq!(cpu.reg(3), value, "case {case}");
        assert_eq!(cpu.reg(4), value & 0xFFFF, "case {case}");
        assert_eq!(cpu.reg(5), value >> 16, "case {case}");
        assert_eq!(cpu.reg(6), value & 0xFF, "case {case}");
        assert_eq!(cpu.reg(7), value >> 24, "case {case}");
    }
}

/// The RV32 decoder never panics on arbitrary words.
#[test]
fn rv32_decoder_total_on_arbitrary_words() {
    let mut rng = Rng::seed_from_u64(0xC0DE_000A);
    for _ in 0..4096 {
        let word = rng.next_u32();
        let pc = rng.next_u32() & !1;
        let _ = pels_repro::cpu::decode(word, pc);
    }
}

/// The compressed decoder never panics on arbitrary halfwords, and only
/// claims parcels whose low bits are not `11`. Exhaustive — the space is
/// only 2^16.
#[test]
fn rv32c_decoder_total_on_arbitrary_halfwords() {
    use pels_repro::cpu::{decode_compressed, is_compressed};
    for half in 0..=u16::MAX {
        let r = decode_compressed(half, 0);
        if half & 0b11 == 0b11 {
            // A 32-bit parcel is never a valid compressed instruction;
            // our decoder may still be called on it by fuzzers — it must
            // just return an error, not nonsense.
            assert!(!is_compressed(half));
        }
        let _ = r;
    }
}

/// Running the CPU on arbitrary memory images never panics: illegal
/// instructions halt cleanly with a cause.
#[test]
fn cpu_survives_random_memory() {
    let mut rng = Rng::seed_from_u64(0xC0DE_000B);
    for case in 0..128 {
        let len = rng.range_u64(8, 64) as usize;
        let words: Vec<u32> = (0..len).map(|_| rng.next_u32()).collect();
        let mut bus = pels_repro::cpu::SimpleBus::new(64 * 1024);
        bus.load(0, &words);
        let mut cpu = pels_repro::cpu::Cpu::new(0);
        cpu.run(&mut bus, 0, 500);
        // Either still running (looping in random code), sleeping, or
        // halted with a recorded cause — never a panic, never a wedge
        // that `run` cannot bound.
        assert!(cpu.cycles() <= 500, "case {case}");
    }
}

/// PELS config space is total: no offset/value pair panics, and a
/// register that accepts writes must be readable. Exhaustive over the
/// 4 KiB aligned window.
#[test]
fn pels_config_space_is_total() {
    let mut rng = Rng::seed_from_u64(0xC0DE_000C);
    let mut pels = pels_repro::core::PelsBuilder::new()
        .links(2)
        .scm_lines(4)
        .build();
    for offset in (0u32..0x1000).step_by(4) {
        let value = rng.next_u32();
        let w = pels.config_write(offset, value);
        let r = pels.config_read(offset);
        if w.is_ok() {
            assert!(
                r.is_ok(),
                "offset {offset:#x} accepted a write but rejects reads"
            );
        }
    }
}
