//! Property-based tests on the core invariants: the 48-bit command
//! encoding, the assembler, the event vector, the simulation kernel's
//! data structures, and the CPU's arithmetic against reference
//! implementations.

use pels_repro::core::{
    assemble, decode_command, encode_command, ActionMode, Command, Cond, Program,
};
use pels_repro::cpu::{asm, Cpu, SimpleBus};
use pels_repro::sim::{Clock, EventVector, Fifo, Frequency, Scheduler, SimTime};
use proptest::prelude::*;

/// Strategy producing any encodable command.
fn arb_command() -> impl Strategy<Value = Command> {
    let offset = 0u16..=0xFFF;
    let target = 0u16..=0x1FF;
    let cond = prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::LtU),
        Just(Cond::GeU),
        Just(Cond::LtS),
        Just(Cond::GeS),
    ];
    let mode = prop_oneof![
        Just(ActionMode::Pulse),
        Just(ActionMode::Set),
        Just(ActionMode::Clear),
        Just(ActionMode::Toggle),
    ];
    prop_oneof![
        Just(Command::Nop),
        Just(Command::Halt),
        (offset.clone(), any::<u32>())
            .prop_map(|(offset, value)| Command::Write { offset, value }),
        (offset.clone(), any::<u32>()).prop_map(|(offset, mask)| Command::Set { offset, mask }),
        (offset.clone(), any::<u32>())
            .prop_map(|(offset, mask)| Command::Clear { offset, mask }),
        (offset.clone(), any::<u32>())
            .prop_map(|(offset, mask)| Command::Toggle { offset, mask }),
        (offset, any::<u32>()).prop_map(|(offset, mask)| Command::Capture { offset, mask }),
        (cond, target.clone(), any::<u32>()).prop_map(|(cond, target, operand)| {
            Command::JumpIf {
                cond,
                target,
                operand,
            }
        }),
        (target, any::<u32>()).prop_map(|(target, count)| Command::Loop { target, count }),
        any::<u32>().prop_map(|cycles| Command::Wait { cycles }),
        (mode, 0u8..=1, any::<u32>())
            .prop_map(|(mode, group, mask)| Command::Action { mode, group, mask }),
    ]
}

proptest! {
    /// Every encodable command decodes back to itself, and fits 48 bits.
    #[test]
    fn command_encoding_roundtrips(cmd in arb_command()) {
        let raw = encode_command(&cmd).expect("strategy only builds encodable commands");
        prop_assert!(raw >> 48 == 0, "48-bit encoding");
        prop_assert_eq!(decode_command(raw).expect("encoded word decodes"), cmd);
    }

    /// The assembler parses the `Display` rendering of any command back
    /// to the same command (the textual syntax is lossless). Jump/loop
    /// targets are kept valid by padding the program with `nop` lines.
    #[test]
    fn assembler_roundtrips_display(cmd in arb_command()) {
        let mut text = cmd.to_string();
        for _ in 0..512 {
            text.push_str("\nnop");
        }
        let program = assemble(&text)
            .unwrap_or_else(|e| panic!("`{}` failed to assemble: {e}", cmd));
        prop_assert_eq!(program.commands().len(), 513);
        prop_assert_eq!(program.commands()[0], cmd);
    }

    /// Program validation accepts exactly the in-range jump targets.
    #[test]
    fn program_validation_checks_targets(target in 0u16..32, len in 1usize..16) {
        let mut cmds = vec![Command::Nop; len];
        cmds.push(Command::JumpIf { cond: Cond::Eq, target, operand: 0 });
        let total = cmds.len();
        let result = Program::new(cmds);
        if usize::from(target) < total {
            prop_assert!(result.is_ok());
        } else {
            prop_assert!(result.is_err());
        }
    }

    /// EventVector behaves exactly like its u64 bit image.
    #[test]
    fn event_vector_matches_u64_semantics(a in any::<u64>(), b in any::<u64>(), line in 0u32..64) {
        let va = EventVector::from_bits(a);
        let vb = EventVector::from_bits(b);
        prop_assert_eq!((va | vb).bits(), a | b);
        prop_assert_eq!((va & vb).bits(), a & b);
        prop_assert_eq!((!va).bits(), !a);
        prop_assert_eq!(va.is_set(line), a & (1 << line) != 0);
        prop_assert_eq!(va.count(), a.count_ones());
        let collected: EventVector = va.iter().collect();
        prop_assert_eq!(collected, va);
    }

    /// The FIFO is a bounded queue: contents always equal a reference
    /// VecDeque truncated at capacity.
    #[test]
    fn fifo_matches_reference_queue(capacity in 0usize..8, ops in proptest::collection::vec(any::<Option<u8>>(), 0..64)) {
        let mut fifo = Fifo::new(capacity);
        let mut reference = std::collections::VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    let accepted = fifo.push_lossy(v);
                    if reference.len() < capacity {
                        reference.push_back(v);
                        prop_assert!(accepted);
                    } else {
                        prop_assert!(!accepted);
                    }
                }
                None => {
                    prop_assert_eq!(fifo.pop(), reference.pop_front());
                }
            }
            prop_assert_eq!(fifo.len(), reference.len());
        }
    }

    /// Scheduler edges are globally time-ordered and per-clock periodic,
    /// for arbitrary clock sets.
    #[test]
    fn scheduler_orders_arbitrary_clock_sets(periods in proptest::collection::vec(1_000u64..1_000_000, 1..5)) {
        let mut sched = Scheduler::new();
        let ids: Vec<_> = periods
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                sched.add_clock(Clock::new(format!("c{i}"), Frequency::from_period_ps(p)))
            })
            .collect();
        let mut last = SimTime::ZERO;
        let mut counts = vec![0u64; ids.len()];
        for _ in 0..200 {
            let edge = sched.advance().expect("clocks registered");
            prop_assert!(edge.time >= last);
            // The edge lands exactly on its clock's grid.
            prop_assert_eq!(edge.time.as_ps() % periods[edge.clock.index()], 0);
            prop_assert_eq!(edge.cycle, counts[edge.clock.index()]);
            counts[edge.clock.index()] += 1;
            last = edge.time;
        }
    }

    /// CPU ALU instructions agree with Rust's wrapping integer semantics.
    #[test]
    fn cpu_alu_matches_reference(a in any::<u32>(), b in any::<u32>()) {
        let mut program = Vec::new();
        program.extend(asm::li32(1, a));
        program.extend(asm::li32(2, b));
        program.push(asm::add(3, 1, 2));
        program.push(asm::sub(4, 1, 2));
        program.push(asm::xor(5, 1, 2));
        program.push(asm::and(6, 1, 2));
        program.push(asm::or(7, 1, 2));
        program.push(asm::sltu(8, 1, 2));
        program.push(asm::slt(9, 1, 2));
        program.push(asm::sll(20, 1, 2));
        program.push(asm::srl(21, 1, 2));
        program.push(asm::sra(22, 1, 2));
        program.push(asm::ecall());
        let mut bus = SimpleBus::new(64 * 1024);
        bus.load(0, &program);
        let mut cpu = Cpu::new(0);
        cpu.run(&mut bus, 0, 200);
        prop_assert_eq!(cpu.reg(3), a.wrapping_add(b));
        prop_assert_eq!(cpu.reg(4), a.wrapping_sub(b));
        prop_assert_eq!(cpu.reg(5), a ^ b);
        prop_assert_eq!(cpu.reg(6), a & b);
        prop_assert_eq!(cpu.reg(7), a | b);
        prop_assert_eq!(cpu.reg(8), u32::from(a < b));
        prop_assert_eq!(cpu.reg(9), u32::from((a as i32) < (b as i32)));
        prop_assert_eq!(cpu.reg(20), a.wrapping_shl(b & 31));
        prop_assert_eq!(cpu.reg(21), a.wrapping_shr(b & 31));
        prop_assert_eq!(cpu.reg(22), ((a as i32).wrapping_shr(b & 31)) as u32);
    }

    /// M-extension results match 64-bit reference math, including the
    /// RISC-V division corner cases.
    #[test]
    fn cpu_muldiv_matches_reference(a in any::<u32>(), b in any::<u32>()) {
        let mut program = Vec::new();
        program.extend(asm::li32(1, a));
        program.extend(asm::li32(2, b));
        program.push(asm::mul(3, 1, 2));
        program.push(asm::mulhu(4, 1, 2));
        program.push(asm::mulh(5, 1, 2));
        program.push(asm::divu(6, 1, 2));
        program.push(asm::remu(7, 1, 2));
        program.push(asm::div(8, 1, 2));
        program.push(asm::rem(9, 1, 2));
        program.push(asm::ecall());
        let mut bus = SimpleBus::new(64 * 1024);
        bus.load(0, &program);
        let mut cpu = Cpu::new(0);
        cpu.run(&mut bus, 0, 400);
        prop_assert_eq!(cpu.reg(3), a.wrapping_mul(b));
        prop_assert_eq!(cpu.reg(4), ((u64::from(a) * u64::from(b)) >> 32) as u32);
        prop_assert_eq!(
            cpu.reg(5),
            (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32
        );
        let divu = a.checked_div(b).unwrap_or(u32::MAX);
        let remu = a.checked_rem(b).unwrap_or(a);
        prop_assert_eq!(cpu.reg(6), divu);
        prop_assert_eq!(cpu.reg(7), remu);
        let (div, rem) = if b == 0 {
            (u32::MAX, a)
        } else if a == 0x8000_0000 && b == u32::MAX {
            (a, 0)
        } else {
            (
                ((a as i32).wrapping_div(b as i32)) as u32,
                ((a as i32).wrapping_rem(b as i32)) as u32,
            )
        };
        prop_assert_eq!(cpu.reg(8), div);
        prop_assert_eq!(cpu.reg(9), rem);
    }

    /// Loads and stores of every width round-trip through memory for
    /// arbitrary values and (aligned) addresses.
    #[test]
    fn cpu_memory_roundtrips(value in any::<u32>(), word in 0u32..64) {
        let addr = 0x1000 + word * 4;
        let mut program = Vec::new();
        program.extend(asm::li32(1, addr));
        program.extend(asm::li32(2, value));
        program.push(asm::sw(1, 2, 0));
        program.push(asm::lw(3, 1, 0));
        program.push(asm::lhu(4, 1, 0));
        program.push(asm::lhu(5, 1, 2));
        program.push(asm::lbu(6, 1, 0));
        program.push(asm::lbu(7, 1, 3));
        program.push(asm::ecall());
        let mut bus = SimpleBus::new(64 * 1024);
        bus.load(0, &program);
        let mut cpu = Cpu::new(0);
        cpu.run(&mut bus, 0, 100);
        prop_assert_eq!(cpu.reg(3), value);
        prop_assert_eq!(cpu.reg(4), value & 0xFFFF);
        prop_assert_eq!(cpu.reg(5), value >> 16);
        prop_assert_eq!(cpu.reg(6), value & 0xFF);
        prop_assert_eq!(cpu.reg(7), value >> 24);
    }
}

proptest! {
    /// The RV32 decoder never panics on arbitrary words, and accepted
    /// words re-encode consistently for the instruction classes the
    /// assembler can produce.
    #[test]
    fn rv32_decoder_total_on_arbitrary_words(word in any::<u32>(), pc in any::<u32>()) {
        let _ = pels_repro::cpu::decode(word, pc & !1);
    }

    /// The compressed decoder never panics on arbitrary halfwords, and
    /// only claims parcels whose low bits are not `11`.
    #[test]
    fn rv32c_decoder_total_on_arbitrary_halfwords(half in any::<u16>()) {
        use pels_repro::cpu::{decode_compressed, is_compressed};
        let r = decode_compressed(half, 0);
        if half & 0b11 == 0b11 {
            // A 32-bit parcel is never a valid compressed instruction;
            // our decoder may still be called on it by fuzzers — it must
            // just return an error, not nonsense.
            prop_assert!(!is_compressed(half));
        }
        let _ = r;
    }

    /// Running the CPU on arbitrary memory images never panics: illegal
    /// instructions halt cleanly with a cause.
    #[test]
    fn cpu_survives_random_memory(words in proptest::collection::vec(any::<u32>(), 8..64)) {
        let mut bus = pels_repro::cpu::SimpleBus::new(64 * 1024);
        bus.load(0, &words);
        let mut cpu = pels_repro::cpu::Cpu::new(0);
        cpu.run(&mut bus, 0, 500);
        // Either still running (looping in random code), sleeping, or
        // halted with a recorded cause — never a panic, never a wedge
        // that `run` cannot bound.
        prop_assert!(cpu.cycles() <= 500);
    }

    /// PELS config space is total: no offset/value pair panics, and
    /// unmapped offsets error symmetrically for read and write.
    #[test]
    fn pels_config_space_is_total(offset in 0u32..0x1000, value in any::<u32>()) {
        let mut pels = pels_repro::core::PelsBuilder::new()
            .links(2)
            .scm_lines(4)
            .build();
        let aligned = offset & !3;
        let w = pels.config_write(aligned, value);
        let r = pels.config_read(aligned);
        // A register that accepts writes must be readable, except the
        // write-only SCM window is also readable — so: writable implies
        // readable.
        if w.is_ok() {
            prop_assert!(
                r.is_ok(),
                "offset {aligned:#x} accepted a write but rejects reads"
            );
        }
    }
}
