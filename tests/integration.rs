//! Cross-crate integration tests: the full SoC driven end-to-end,
//! including the path the scenarios shortcut — the CPU configuring PELS
//! entirely over the bus.

use pels_repro::core::{encode_command, regs, ActionMode, Command, Cond};
use pels_repro::cpu::asm;
use pels_repro::interconnect::ApbSlave;
use pels_repro::periph::{Gpio, Spi, Timer};
use pels_repro::sim::EventVector;
use pels_repro::soc::mem_map::{
    apb_reg, pels_word_offset, APB_BASE, GPIO_OFFSET, PELS_BASE, RESET_PC, TIMER_OFFSET,
};
use pels_repro::soc::{Mediator, Scenario, SensorKind, SocBuilder};

/// Helper: emit `sw value -> addr` using scratch registers x28/x29.
fn store_imm(program: &mut Vec<u32>, addr: u32, value: u32) {
    program.extend(asm::li32(28, addr));
    program.extend(asm::li32(29, value));
    program.push(asm::sw(28, 29, 0));
}

/// The full firmware flow of a real deployment: the core boots, programs
/// PELS's mask/base/microcode **through the memory-mapped config port**,
/// arms the timer **through the APB fabric**, and goes to sleep; from
/// then on the linking runs without it.
#[test]
fn cpu_configures_and_launches_autonomous_linking_over_the_bus() {
    let mut soc = SocBuilder::new().sensor(SensorKind::Constant(2.5)).build();
    soc.spi_mut().set_default_len(1);

    let link0 = PELS_BASE + regs::LINK0;
    let mut p = Vec::new();
    // Link 0: listen to SPI end-of-transfer (line 0).
    store_imm(&mut p, link0 + regs::LINK_MASK_LO, 1 << 0);
    // Base address for sequenced offsets.
    store_imm(&mut p, link0 + regs::LINK_BASE, APB_BASE);
    // Microcode through the SCM window: toggle GPIO PADOUT, halt.
    let toggle = encode_command(&Command::Toggle {
        offset: pels_word_offset(GPIO_OFFSET, Gpio::PADOUT),
        mask: 1,
    })
    .unwrap();
    let halt = encode_command(&Command::Halt).unwrap();
    for (i, raw) in [toggle, halt].into_iter().enumerate() {
        let base = link0 + regs::SCM_WINDOW + 8 * i as u32;
        store_imm(&mut p, base, raw as u32);
        store_imm(&mut p, base + 4, (raw >> 32) as u32);
    }
    // Arm the timer over the APB fabric: CMP = 60, enable.
    store_imm(&mut p, apb_reg(TIMER_OFFSET, Timer::CMP), 60);
    store_imm(&mut p, apb_reg(TIMER_OFFSET, Timer::CTRL), 1);
    // Sleep forever.
    p.push(asm::wfi());
    p.push(asm::jal(0, -4));
    soc.load_program(RESET_PC, &p);

    soc.run(1_500);

    assert!(soc.cpu().is_sleeping(), "boot finished and the core slept");
    let toggles = soc.gpio().pad_toggles();
    assert!(
        toggles >= 2,
        "autonomous linking actuated repeatedly ({toggles} toggles)"
    );
    // The whole linking loop ran with the core asleep.
    let events = soc.trace().all("spi", "eot").len();
    assert!(events >= 2, "periodic readouts happened ({events})");
}

#[test]
fn sequenced_latency_survives_cpu_bus_traffic() {
    // A polling CPU hammers the bus while PELS handles linking events:
    // round-robin arbitration keeps PELS serviced (latency bounded), even
    // though it may occasionally wait a transfer slot.
    let mut soc = SocBuilder::new().sensor(SensorKind::Constant(2.5)).build();
    soc.spi_mut().set_default_len(1);
    {
        let link = soc.pels_mut().link_mut(0);
        link.set_mask(EventVector::mask_of(&[0])).set_base(APB_BASE);
        link.load_program(
            &pels_repro::core::Program::new(vec![
                Command::Toggle {
                    offset: pels_word_offset(GPIO_OFFSET, Gpio::PADOUT),
                    mask: 1,
                },
                Command::Halt,
            ])
            .unwrap(),
        )
        .unwrap();
    }
    // CPU: endless loads from the UART status register.
    let mut p = Vec::new();
    p.extend(asm::li32(5, apb_reg(4 * 0x400, 0x04))); // UART STATUS
    p.push(asm::lw(6, 5, 0));
    p.push(asm::jal(0, -4));
    soc.load_program(RESET_PC, &p);
    soc.timer_mut().write(Timer::CMP, 60).unwrap();
    soc.timer_mut().write(Timer::CTRL, 1).unwrap();

    soc.run(2_000);

    let lats: Vec<u64> = soc
        .trace()
        .latencies_all(("spi", "eot"), ("gpio", "padout"))
        .iter()
        .map(|t| t.as_ps() / soc.frequency().period_ps())
        .collect();
    assert!(lats.len() >= 10, "events kept completing under contention");
    assert!(*lats.iter().min().unwrap() >= 7, "never faster than uncontended");
    assert!(
        *lats.iter().max().unwrap() <= 7 + 8,
        "round-robin bounds the added wait (got {:?})",
        lats.iter().max()
    );
}

#[test]
fn all_three_mediators_give_identical_functional_behaviour() {
    // Same workload, three mediators: every one must toggle the GPIO once
    // per above-threshold readout — only timing and power differ.
    let mut counts = Vec::new();
    for mediator in [
        Mediator::PelsSequenced,
        Mediator::PelsInstant,
        Mediator::IbexIrq,
    ] {
        let s = Scenario::builder()
            .mediator(mediator)
            .events(6)
            .build()
            .expect("valid scenario");
        let report = s.run();
        counts.push(report.events_completed.min(8));
        assert!(report.events_completed >= 6, "{mediator} completed events");
    }
    assert!(counts.iter().all(|&c| c >= 6));
}

#[test]
fn trigger_condition_all_links_two_peripherals() {
    // AND-condition: the link fires only when the timer compare AND the
    // SPI end-of-transfer pulse in the same cycle — which never happens
    // here (EOT trails the compare by a full transfer), so OR fires and
    // AND stays quiet. Verifies condition plumbing end-to-end.
    for (cond, expect_fire) in [
        (pels_repro::core::TriggerCond::Any, true),
        (pels_repro::core::TriggerCond::All, false),
    ] {
        let mut soc = SocBuilder::new().sensor(SensorKind::Constant(2.5)).build();
        soc.spi_mut().set_default_len(1);
        {
            let link = soc.pels_mut().link_mut(0);
            link.set_mask(EventVector::mask_of(&[0, 2]))
                .set_condition(cond)
                .set_base(APB_BASE);
            link.load_program(
                &pels_repro::core::Program::new(vec![
                    Command::Action {
                        mode: ActionMode::Pulse,
                        group: 0,
                        mask: 1 << 20,
                    },
                    Command::Halt,
                ])
                .unwrap(),
            )
            .unwrap();
        }
        soc.load_program(RESET_PC, &[asm::wfi(), asm::jal(0, -4)]);
        soc.timer_mut().write(Timer::CMP, 50).unwrap();
        soc.timer_mut().write(Timer::CTRL, 1).unwrap();
        soc.run(500);
        let fired = soc.trace().first("pels.link0", "action").is_some();
        assert_eq!(fired, expect_fire, "condition {cond:?}");
    }
}

#[test]
fn capture_jump_if_paths_agree_with_cpu_computation() {
    // PELS's threshold decision must match what the CPU would compute on
    // the same sample: run the ramp until the crossing and compare the
    // first-actuation sample against the configured threshold.
    let s = Scenario::builder()
        .sensor(SensorKind::Ramp {
            start: 1.0,
            slope_per_us: 0.02,
        })
        .events(40)
        .build()
        .expect("valid scenario");
    let report = s.run();
    let threshold = s.threshold_code();
    // The capture trace carries the masked sample for each trigger.
    let captures: Vec<u64> = report
        .trace
        .all("pels.link0", "capture")
        .iter()
        .map(|e| e.value)
        .collect();
    assert!(!captures.is_empty());
    let padouts = report.trace.all("gpio", "padout").len();
    let above = captures
        .iter()
        .filter(|&&v| v >= u64::from(threshold))
        .count();
    assert_eq!(
        padouts, above,
        "actuations must equal above-threshold samples"
    );
    // And the ramp means the early samples were below threshold.
    assert!(above < captures.len(), "ramp started below the threshold");
}

#[test]
fn instant_and_sequenced_flavours_toggle_the_same_pad() {
    // The two Figure 3 flavours must produce identical pad behaviour.
    let run = |mediator| {
        let s = Scenario::builder()
            .mediator(mediator)
            .events(5)
            .build()
            .expect("valid scenario");
        let r = s.run();
        r.trace.all("gpio", "padout").len()
    };
    let sequenced = run(Mediator::PelsSequenced);
    let instant = run(Mediator::PelsInstant);
    // The runs stop at their respective completion markers (pad change vs
    // action pulse), so the instant run may cut off one cycle before its
    // final pad change lands.
    assert!(sequenced >= 5 && instant >= 4);
    assert!(
        sequenced.abs_diff(instant) <= 1,
        "same pad behaviour: {sequenced} vs {instant}"
    );
}

#[test]
fn spi_udma_and_cpu_share_l2_coherently() {
    // µDMA lands samples at 0x4000 while the CPU reads them back: the
    // single L2 model guarantees coherence; this checks the plumbing.
    let mut soc = SocBuilder::new().sensor(SensorKind::Constant(3.3)).build();
    soc.spi_mut().set_default_len(2);
    soc.spi_mut().write(Spi::UDMA_SADDR, 0x4000).unwrap();
    soc.spi_mut().write(Spi::UDMA_SIZE, 8).unwrap();
    let mut p = Vec::new();
    // Busy-wait then read the landed word into x5.
    p.extend(asm::li32(5, 0x1C00_4000));
    p.push(asm::lw(6, 5, 0));
    p.push(asm::beq(6, 0, -4)); // loop until non-zero
    p.push(asm::ecall());
    soc.load_program(RESET_PC, &p);
    soc.timer_mut().write(Timer::CMP, 30).unwrap();
    soc.timer_mut().write(Timer::CTRL, 1).unwrap();
    soc.run(400);
    assert_eq!(soc.cpu().reg(6), 4095, "full-scale sample visible to the CPU");
}

#[test]
fn fabric_decode_error_reaches_pels_as_bus_error() {
    // A link whose base points at unmapped space must abort cleanly, not
    // wedge the SoC.
    let mut soc = SocBuilder::new().build();
    soc.spi_mut().set_default_len(1);
    {
        let link = soc.pels_mut().link_mut(0);
        link.set_mask(EventVector::mask_of(&[2]))
            .set_base(0x0BAD_0000);
        link.load_program(
            &pels_repro::core::Program::new(vec![
                Command::Capture { offset: 0, mask: 1 },
                Command::Halt,
            ])
            .unwrap(),
        )
        .unwrap();
    }
    soc.load_program(RESET_PC, &[asm::wfi(), asm::jal(0, -4)]);
    soc.timer_mut().write(Timer::CMP, 40).unwrap();
    soc.timer_mut().write(Timer::CTRL, 1).unwrap();
    soc.run(300);
    assert!(soc.trace().first("pels.link0", "bus_error").is_some());
    assert!(
        !soc.pels().link(0).is_busy(),
        "link returned to idle after the error"
    );
    let decode_errors = soc.fabric_stats().decode_errors;
    assert!(decode_errors >= 1);
}

#[test]
fn jump_if_signed_condition_works_end_to_end() {
    // GeS vs GeU differ on a sign-bit sample; drive a capture of a known
    // pattern through GPIO PADOUT and check the signed branch.
    let mut soc = SocBuilder::new().timer_starts_spi(false).build();
    soc.gpio_mut().write(Gpio::PADOUT, 0x8000_0001).unwrap();
    {
        let link = soc.pels_mut().link_mut(0);
        link.set_mask(EventVector::mask_of(&[2])).set_base(APB_BASE);
        link.load_program(
            &pels_repro::core::Program::new(vec![
                // Capture full PADOUT (mask keeps the sign bit).
                Command::Capture {
                    offset: pels_word_offset(GPIO_OFFSET, Gpio::PADOUT),
                    mask: 0xFFFF_FFFF,
                },
                // Signed: 0x80000001 < 0, so GeS 0 must NOT jump...
                Command::JumpIf {
                    cond: Cond::GeS,
                    target: 3,
                    operand: 0,
                },
                Command::Halt,
                // ...and this action must not run.
                Command::Action {
                    mode: ActionMode::Pulse,
                    group: 0,
                    mask: 1 << 20,
                },
            ])
            .unwrap(),
        )
        .unwrap();
    }
    soc.load_program(RESET_PC, &[asm::wfi(), asm::jal(0, -4)]);
    soc.timer_mut().write(Timer::CMP, 20).unwrap();
    soc.timer_mut().write(Timer::CTRL, 1).unwrap();
    soc.run(200);
    assert!(soc.trace().first("pels.link0", "capture").is_some());
    assert!(
        soc.trace().first("pels.link0", "action").is_none(),
        "signed compare took the not-taken path"
    );
}

#[test]
fn disabled_pels_soc_still_boots_and_runs_cpu_code() {
    let mut soc = SocBuilder::new().build();
    soc.pels_mut().set_enabled(false);
    let mut p = Vec::new();
    p.extend(asm::li32(1, 7));
    p.extend(asm::li32(2, 6));
    p.push(asm::mul(3, 1, 2));
    p.push(asm::ecall());
    soc.load_program(RESET_PC, &p);
    soc.run(20);
    assert_eq!(soc.cpu().reg(3), 42);
}

#[test]
fn spi_scenario_reports_compose_over_multiple_runs() {
    // Determinism: the same scenario run twice gives identical latencies
    // and identical activity (the whole stack is seeded/deterministic).
    let s = Scenario::iso_frequency(Mediator::PelsSequenced);
    let a = s.run();
    let b = s.run();
    assert_eq!(a.latencies, b.latencies);
    assert_eq!(a.stats, b.stats);
    assert_eq!(
        a.active_activity, b.active_activity,
        "activity accounting is deterministic"
    );
}

#[test]
fn pels_generates_pwm_without_cpu_or_timer() {
    // Section III-2: `loop` and `wait` subsume timer functions. One
    // trigger launches a self-timed pulse train: N pulses with a fixed
    // period, CPU and timer both idle — an autonomous PWM burst.
    let mut soc = SocBuilder::new().timer_starts_spi(false).build();
    {
        let link = soc.pels_mut().link_mut(0);
        link.set_mask(EventVector::mask_of(&[2]));
        link.load_program(
            &pels_repro::core::Program::new(vec![
                Command::Action {
                    mode: ActionMode::Pulse,
                    group: 0,
                    mask: 1 << 20,
                },
                Command::Wait { cycles: 9 },
                Command::Loop { target: 0, count: 7 },
                Command::Halt,
            ])
            .unwrap(),
        )
        .unwrap();
    }
    soc.load_program(RESET_PC, &[asm::wfi(), asm::jal(0, -4)]);
    // One single trigger via the timer in one-shot mode.
    soc.timer_mut().write(Timer::CMP, 5).unwrap();
    soc.timer_mut()
        .write(Timer::CTRL, Timer::CTRL_ENABLE | Timer::CTRL_ONE_SHOT)
        .unwrap();
    soc.run(200);

    let pulses = soc.trace().all("pels.link0", "action");
    assert_eq!(pulses.len(), 8, "loop count 7 = 8 pulse iterations");
    // Fixed period: wait(9) + loop redirect(2) + action(1) = 12 cycles.
    let period_ps = soc.frequency().period_ps();
    let times: Vec<u64> = pulses.iter().map(|e| e.time.as_ps() / period_ps).collect();
    let deltas: Vec<u64> = times.windows(2).map(|w| w[1] - w[0]).collect();
    assert!(
        deltas.windows(2).all(|w| w[0] == w[1]),
        "jitter-free period: {deltas:?}"
    );
    assert_eq!(soc.timer().fires(), 1, "single launch trigger");
}

#[test]
fn cpu_store_to_read_only_peripheral_register_faults() {
    let mut soc = SocBuilder::new().build();
    let mut p = Vec::new();
    // PADIN is read-only; the slave rejects the store with PSLVERR.
    p.extend(asm::li32(1, apb_reg(GPIO_OFFSET, Gpio::PADIN)));
    p.extend(asm::li32(2, 1));
    p.push(asm::sw(1, 2, 0));
    p.push(asm::ecall());
    soc.load_program(RESET_PC, &p);
    soc.run(50);
    assert!(matches!(
        soc.cpu().halt_cause(),
        Some(pels_repro::cpu::core::HaltCause::BusFault { .. })
    ));
}

#[test]
fn at_least_k_condition_votes_across_sensors() {
    // 2-of-3 voting: timer compare (2), SPI EOT (0), ADC done (3). Wire
    // the ADC to the timer so ADC-done and SPI-EOT can coincide; with
    // AtLeast(2), single pulses never fire the link.
    let mut soc = SocBuilder::new()
        .sensor(SensorKind::Constant(2.0))
        .spi_clkdiv(4)
        .build();
    soc.spi_mut().set_default_len(4); // 16 cycles, matches ADC conversion
    soc.adc_mut()
        .wire_start_action(pels_repro::soc::event_map::EV_TIMER_CMP);
    {
        let link = soc.pels_mut().link_mut(0);
        link.set_mask(EventVector::mask_of(&[0, 2, 3]))
            .set_condition(pels_repro::core::TriggerCond::AtLeast(2));
        link.load_program(
            &pels_repro::core::Program::new(vec![
                Command::Action {
                    mode: ActionMode::Pulse,
                    group: 0,
                    mask: 1 << 21,
                },
                Command::Halt,
            ])
            .unwrap(),
        )
        .unwrap();
    }
    soc.load_program(RESET_PC, &[asm::wfi(), asm::jal(0, -4)]);
    soc.timer_mut().write(Timer::CMP, 100).unwrap();
    soc.timer_mut().write(Timer::CTRL, 1).unwrap();
    soc.run(600);
    let votes = soc.trace().all("pels.link0", "action").len();
    let eots = soc.trace().all("spi", "eot").len();
    assert!(eots >= 4);
    assert_eq!(votes, eots, "every coincident pair fired the vote");
}

#[test]
fn action_latch_modes_drive_levels_visible_to_peripherals() {
    // `set`-mode actions latch the line; the GPIO keeps seeing it and
    // re-applies the action every cycle — so a latched *toggle* line
    // would flip the pad each cycle. A latched SET is idempotent: the
    // pad goes high and stays high.
    let mut soc = SocBuilder::new().timer_starts_spi(false).build();
    {
        let link = soc.pels_mut().link_mut(0);
        link.set_mask(EventVector::mask_of(&[2]));
        link.load_program(
            &pels_repro::core::Program::new(vec![
                Command::Action {
                    mode: ActionMode::Set,
                    group: 0,
                    mask: 1 << 19, // AL_GPIO_SET
                },
                Command::Halt,
            ])
            .unwrap(),
        )
        .unwrap();
    }
    soc.load_program(RESET_PC, &[asm::wfi(), asm::jal(0, -4)]);
    soc.timer_mut().write(Timer::CMP, 10).unwrap();
    soc.timer_mut()
        .write(Timer::CTRL, Timer::CTRL_ENABLE | Timer::CTRL_ONE_SHOT)
        .unwrap();
    soc.run(100);
    assert!(soc.gpio().pin(0), "latched set-line holds the pad high");
    assert!(
        soc.pels().action_lines().is_set(19),
        "line latched, not pulsed"
    );
}

#[test]
fn pels_sequenced_action_launches_uart_dma_message() {
    // A single sequenced `write` to UART.UDMA_SIZE launches a multi-byte
    // alert message streamed by the TX µDMA from L2 — an entire
    // notification pipeline with the core asleep. This is the kind of
    // "arbitrary command realizable through the system interconnect" the
    // paper's sequenced actions enable (Section II conclusion).
    use pels_repro::periph::Uart;
    use pels_repro::soc::mem_map::UART_OFFSET;

    let mut soc = SocBuilder::new()
        .sensor(SensorKind::Constant(2.5))
        .timer_starts_spi(true)
        .build();
    soc.spi_mut().set_default_len(1);
    // The alert text lives in L2 (placed by boot firmware in real life).
    let msg = b"ALRT";
    soc.l2_mut()
        .load(0x5000, &[u32::from_le_bytes(*msg)]);
    soc.uart_mut().write(Uart::UDMA_SADDR, 0x5000).unwrap();
    soc.uart_mut().write(Uart::CLKDIV, 2).unwrap();
    {
        let link = soc.pels_mut().link_mut(0);
        link.set_mask(EventVector::mask_of(&[0])) // SPI end-of-transfer
            .set_base(APB_BASE);
        link.load_program(
            &pels_repro::core::Program::new(vec![
                Command::Write {
                    offset: pels_word_offset(UART_OFFSET, Uart::UDMA_SIZE),
                    value: msg.len() as u32,
                },
                Command::Halt,
            ])
            .unwrap(),
        )
        .unwrap();
    }
    soc.load_program(RESET_PC, &[asm::wfi(), asm::jal(0, -4)]);
    soc.timer_mut().write(Timer::CMP, 30).unwrap();
    soc.timer_mut()
        .write(Timer::CTRL, Timer::CTRL_ENABLE | Timer::CTRL_ONE_SHOT)
        .unwrap();

    soc.run(200);
    assert_eq!(soc.uart().sent(), msg, "the alert went out");
    assert!(soc.cpu().is_sleeping(), "without the core");
    assert!(
        soc.trace().first("uart", "tx_done").is_some(),
        "tx-done event available for further linking"
    );
}

#[test]
fn pels_links_i2c_sensor_end_to_end() {
    // The second serial sensor path: timer -> instant action starts an
    // I2C read transaction -> done event triggers a threshold check on
    // the big-endian LAST16 register -> GPIO actuation. Two peripherals
    // PELS has never been "co-designed" with, linked purely through the
    // generic mechanisms.
    use pels_repro::periph::I2c;
    use pels_repro::soc::event_map::{AL_I2C_START, EV_I2C_DONE, EV_TIMER_CMP};
    use pels_repro::soc::mem_map::I2C_OFFSET;

    // Link 0 starts the I2C transaction off the timer; link 1 runs the
    // threshold check off the I2C completion.
    let mut soc = {
        let mut soc2 = SocBuilder::new()
            .pels_links(2)
            .sensor(SensorKind::Constant(2.5))
            .timer_starts_spi(false)
            .build();
        soc2.i2c_mut()
            .set_default_cmd(0x48 | I2c::CMD_READ | (2 << 8));
        {
            let l0 = soc2.pels_mut().link_mut(0);
            l0.set_mask(EventVector::mask_of(&[EV_TIMER_CMP]));
            l0.load_program(
                &pels_repro::core::Program::new(vec![
                    Command::Action {
                        mode: ActionMode::Pulse,
                        group: 0,
                        mask: 1 << AL_I2C_START,
                    },
                    Command::Halt,
                ])
                .unwrap(),
            )
            .unwrap();
        }
        {
            let l1 = soc2.pels_mut().link_mut(1);
            l1.set_mask(EventVector::mask_of(&[EV_I2C_DONE]))
                .set_base(APB_BASE);
            l1.load_program(
                &pels_repro::core::Program::new(vec![
                    Command::Capture {
                        offset: pels_word_offset(I2C_OFFSET, I2c::LAST16),
                        mask: 0xFFFF,
                    },
                    Command::JumpIf {
                        cond: Cond::LtU,
                        target: 3,
                        operand: 2000,
                    },
                    Command::Toggle {
                        offset: pels_word_offset(GPIO_OFFSET, Gpio::PADOUT),
                        mask: 1,
                    },
                    Command::Halt,
                ])
                .unwrap(),
            )
            .unwrap();
        }
        soc2
    };
    soc.load_program(RESET_PC, &[asm::wfi(), asm::jal(0, -4)]);
    soc.timer_mut().write(Timer::CMP, 150).unwrap();
    soc.timer_mut().write(Timer::CTRL, 1).unwrap();
    soc.run(1_200);

    let transactions = soc.i2c().transactions();
    let toggles = soc.gpio().pad_toggles();
    assert!(transactions >= 5, "i2c sampled repeatedly ({transactions})");
    assert_eq!(toggles, soc.trace().all("gpio", "padout").len() as u64);
    assert!(toggles >= 5, "every sample actuated ({toggles})");
    // 2.5 V on a 12-bit 3.3 V scale = 3102: above the 2000 threshold.
    assert!(soc.i2c().last16() > 3000);
    assert!(soc.cpu().is_sleeping());
}
