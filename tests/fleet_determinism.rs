//! Fleet determinism: scheduling must never leak into results.
//!
//! The contract under test: the same `SweepSpec` reduced on 1, 2, and N
//! workers yields **bit-identical** `FleetReport`s — same job order, same
//! latencies, same `f64` power bit patterns — and a job that fails does
//! so in its own slot without poisoning its siblings.

use pels_fleet::{FleetEngine, JobError, SweepSpec};
use pels_soc::{Mediator, Scenario, ScenarioError, SensorKind};

fn reference_spec() -> SweepSpec {
    SweepSpec::new()
        .mediators(&[Mediator::PelsSequenced, Mediator::PelsInstant])
        .freqs_mhz(&[27.0, 55.0])
        .links(&[1, 4])
        .events(5)
}

#[test]
fn reports_are_bit_identical_across_worker_counts() {
    let spec = reference_spec();
    let one = FleetEngine::new(1).run_sweep(&spec).expect("valid spec");
    let two = FleetEngine::new(2).run_sweep(&spec).expect("valid spec");
    let many = FleetEngine::new(8).run_sweep(&spec).expect("valid spec");

    assert_eq!(one.jobs.len(), 8);
    assert_eq!(one.digest(), two.digest(), "1 vs 2 workers");
    assert_eq!(one.digest(), many.digest(), "1 vs 8 workers");

    // The digest covers everything simulation-derived; spot-check the
    // strongest fields directly too, including exact f64 bit patterns.
    for (a, b) in one.jobs.iter().zip(&many.jobs) {
        assert_eq!(a.label, b.label, "input order is preserved");
        let (oa, ob) = (
            a.result.as_ref().expect("job succeeded"),
            b.result.as_ref().expect("job succeeded"),
        );
        assert_eq!(oa.report.latencies, ob.report.latencies, "{}", a.label);
        assert_eq!(
            oa.active_uw.to_bits(),
            ob.active_uw.to_bits(),
            "{}: active power must be bit-identical",
            a.label
        );
        assert_eq!(
            oa.idle_uw.to_bits(),
            ob.idle_uw.to_bits(),
            "{}: idle power must be bit-identical",
            a.label
        );
    }
}

#[test]
fn repeated_runs_on_the_same_engine_are_stable() {
    let spec = SweepSpec::new().events(3);
    let engine = FleetEngine::new(4);
    let a = engine.run_sweep(&spec).expect("valid spec");
    let b = engine.run_sweep(&spec).expect("valid spec");
    assert_eq!(a.digest(), b.digest());
}

#[test]
fn failing_job_is_isolated_to_its_own_slot() {
    // Job 1 of 4 uses a below-threshold sensor: readouts happen but no
    // linking event ever completes, so try_run fails with NoEvents.
    let good = |events| {
        Scenario::builder()
            .events(events)
            .build()
            .expect("valid scenario")
    };
    let bad = Scenario::builder()
        .sensor(SensorKind::Constant(1.0))
        .events(3)
        .build()
        .expect("builds fine; fails at run time");
    let jobs = vec![
        ("good-a".to_string(), good(4)),
        ("bad".to_string(), bad),
        ("good-b".to_string(), good(5)),
        ("good-c".to_string(), good(6)),
    ];
    let report = FleetEngine::new(2).run_scenarios(&jobs);

    assert_eq!(report.jobs.len(), 4);
    assert_eq!(report.succeeded().count(), 3, "siblings unaffected");
    let (label, err) = report.failed().next().expect("one failure");
    assert_eq!(label, "bad");
    match err {
        JobError::Scenario(ScenarioError::NoEvents { mediator, .. }) => {
            assert_eq!(*mediator, Mediator::PelsSequenced);
        }
        other => panic!("expected NoEvents, got {other:?}"),
    }
    // And the failure is deterministic too: the digest (which folds in
    // the error text) matches a serial run.
    let serial = FleetEngine::new(1).run_scenarios(&jobs);
    assert_eq!(report.digest(), serial.digest());
}

#[test]
fn invalid_sweep_axis_is_rejected_before_any_simulation() {
    let spec = SweepSpec::new().links(&[0]);
    match FleetEngine::new(2).run_sweep(&spec) {
        Err(ScenarioError::Config(_)) => {}
        other => panic!("expected a config rejection, got {other:?}"),
    }
}
