//! PELS subsuming a watchdog (paper Section III-2: `loop` and `wait`
//! "subsume watchdog-like functions without requiring an external
//! timer").
//!
//! Two runs of the same SoC with an armed hardware watchdog:
//!
//! 1. nobody kicks it → it bites repeatedly;
//! 2. a PELS link kicks it from microcode — a `wait`/`loop` pair pulsing
//!    the kick action line — with the CPU asleep throughout.
//!
//! ```text
//! cargo run --example watchdog_link
//! ```

use pels_repro::core::{assemble, TriggerCond};
use pels_repro::interconnect::ApbSlave;
use pels_repro::periph::{Timer, Watchdog};
use pels_repro::sim::EventVector;
use pels_repro::soc::mem_map::RESET_PC;
use pels_repro::soc::{Soc, SocBuilder};

const WDT_TIMEOUT: u32 = 40;
const RUN_CYCLES: u64 = 2_000;

fn arm_watchdog(soc: &mut Soc) {
    soc.wdt_mut().write(Watchdog::LOAD, WDT_TIMEOUT).unwrap();
    soc.wdt_mut().write(Watchdog::CTRL, 1).unwrap();
    soc.load_program(
        RESET_PC,
        &[pels_repro::cpu::asm::wfi(), pels_repro::cpu::asm::jal(0, -4)],
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Run 1: unattended watchdog.
    let mut soc = SocBuilder::new().timer_starts_spi(false).build();
    arm_watchdog(&mut soc);
    soc.run(RUN_CYCLES);
    let unattended_bites = soc.wdt().bites();
    println!("unattended watchdog: {unattended_bites} bites in {RUN_CYCLES} cycles");

    // Run 2: a PELS link kicks it every 25 cycles (well inside the
    // 40-cycle timeout). The kick is an instant action on line 25; the
    // link re-triggers itself off the periodic timer.
    let mut soc = SocBuilder::new().timer_starts_spi(false).build();
    arm_watchdog(&mut soc);
    let kick_program = assemble(
        "; watchdog service, no CPU involved
         kick: action pulse, 0, 0x2000000  ; line 25 = watchdog kick
               halt",
    )?;
    {
        let link = soc.pels_mut().link_mut(0);
        link.set_mask(EventVector::mask_of(&[2])) // timer compare event
            .set_condition(TriggerCond::Any);
        link.load_program(&kick_program)?;
    }
    soc.timer_mut().write(Timer::CMP, 25).unwrap();
    soc.timer_mut().write(Timer::CTRL, Timer::CTRL_ENABLE).unwrap();
    soc.run(RUN_CYCLES);
    println!(
        "PELS-serviced watchdog: {} bites in {RUN_CYCLES} cycles ({} kicks delivered)",
        soc.wdt().bites(),
        soc.trace().all("pels.link0", "action").len()
    );
    println!(
        "cpu stayed asleep: {} of its cycles were sleep",
        soc.cpu().sleep_cycles()
    );

    assert!(unattended_bites > 0);
    assert_eq!(soc.wdt().bites(), 0, "the link kept the dog fed");
    println!("\nthe same loop/wait machinery can also replace the external");
    println!("timer entirely: a `wait N` + self-looping program is a");
    println!("watchdog with zero dedicated hardware.");
    Ok(())
}
