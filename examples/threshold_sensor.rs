//! The paper's Figure 3 workload on the full SoC: a ramping sensor is
//! read out autonomously (timer → SPI → µDMA), PELS threshold-checks each
//! sample and actuates a GPIO — first with a *sequenced action* (bus
//! read-modify-write), then with an *instant action* (single-wire line) —
//! while the Ibex-class core sleeps the entire time.
//!
//! ```text
//! cargo run --example threshold_sensor
//! ```

use pels_repro::soc::{Mediator, Scenario, SensorKind};

fn main() {
    for mediator in [Mediator::PelsSequenced, Mediator::PelsInstant] {
        // A thermistor-style ramp: starts below the 1.6 V threshold and
        // crosses it at a known time; only readouts after the crossing
        // may actuate.
        let scenario = Scenario::builder()
            .mediator(mediator)
            .sensor(SensorKind::NoisyRamp {
                start: 1.2,
                slope_per_us: 0.05,
                sigma: 0.01,
                seed: 2024,
            })
            .events(8)
            .build()
            .expect("valid scenario");

        let report = scenario.run();
        println!("== mediator: {mediator} @ {} ==", report.freq);
        println!(
            "  linking events completed : {}",
            report.events_completed
        );
        println!(
            "  latency (cycles)         : min {} / mean {} / max {} (jitter {})",
            report.stats.min,
            report.stats.mean,
            report.stats.max,
            report.stats.jitter()
        );
        println!("  latency (wall clock)     : {}", report.mean_latency_time());

        let model = report.power_model();
        let active = report.active_power(&model);
        let idle = report.idle_power(&model);
        println!("  SoC power active / idle  : {} / {}", active.total(), idle.total());
        println!(
            "  memory-system power      : {} (active)",
            active.memory_system()
        );
        let core_awake = report
            .active_activity
            .count("ibex", pels_repro::sim::ActivityKind::ClockCycle);
        println!("  core clock cycles awake  : {core_awake} (slept through it all)\n");
    }

    println!("note: the sequenced flavour needs no GPIO event wiring (works");
    println!("with any memory-mapped peripheral); the instant flavour is");
    println!("faster and jitter-free but requires the co-designed wire —");
    println!("exactly the trade-off of the paper's Figure 1.");
}
