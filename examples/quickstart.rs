//! Quickstart: assemble a PELS microcode program, build a PELS instance,
//! feed it an event and watch the action lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pels_repro::core::pels::NoBus;
use pels_repro::core::{assemble, PelsBuilder, TriggerCond};
use pels_repro::sim::{EventVector, SimTime, Trace};
use pels_repro::soc::SystemDesc;

/// The committed description of the minimal quickstart system
/// (regenerate with `reproduce -- desc`).
const SYSTEM_JSON: &str =
    include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/descs/quickstart_system.json"));

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write the linking program in the paper's pseudocode style.
    //    This one waits two cycles, then pulses outgoing event line 8 —
    //    an *instant action*.
    let program = assemble(
        "; my first linking program
         wait 2
         action pulse, 0, 0x100   ; line 8
         halt",
    )?;
    println!("assembled program:\n{program}");

    // 2. Describe the system in JSON and build from the description —
    //    here the paper's minimal 1-link, 4-command, ~7 kGE PELS
    //    configuration, loaded from `examples/descs/` — and configure
    //    link 0 to trigger on event line 3.
    let desc = SystemDesc::from_json(SYSTEM_JSON)?;
    let mut pels = PelsBuilder::new()
        .links(desc.pels.links)
        .scm_lines(desc.pels.scm_lines)
        .build();
    pels.link_mut(0)
        .set_mask(EventVector::mask_of(&[3]))
        .set_condition(TriggerCond::Any);
    pels.link_mut(0).load_program(&program)?;

    // 3. Tick the unit: an event pulse on line 3 at cycle 0, then idle.
    //    (`NoBus` because this program uses no sequenced actions.)
    let mut trace = Trace::new();
    let mut bus = NoBus;
    for cycle in 0..8u64 {
        let events = if cycle == 0 {
            EventVector::mask_of(&[3])
        } else {
            EventVector::EMPTY
        };
        let out = pels.tick(events, SimTime::from_ns(cycle * 18), &mut bus, &mut trace);
        println!(
            "cycle {cycle}: in={events:<12} out={}",
            if out.is_empty() {
                "-".to_string()
            } else {
                out.to_string()
            }
        );
    }

    // The pulse lands on line 8 exactly 2 (trigger) + 2 (wait) cycles
    // after the event.
    println!("\ntrace:\n{trace}");
    Ok(())
}
