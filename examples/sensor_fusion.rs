//! Multi-sensor fusion with an AND trigger condition — the paper's
//! introduction motivates event linking with exactly this class of
//! workload ("multi-sensor fusion techniques", refs [3][6]).
//!
//! Two independent sensor paths produce events: the SPI front-end
//! (end-of-transfer, line 0) and the on-chip ADC (conversion done,
//! line 3). A single PELS link is configured with the **all-selected-
//! active (AND)** trigger condition, so it fires only in cycles where
//! *both* sensors delivered — and then raises the fused alert. The CPU
//! sleeps throughout.
//!
//! ```text
//! cargo run --example sensor_fusion
//! ```

use pels_repro::core::{assemble, TriggerCond};
use pels_repro::interconnect::ApbSlave;
use pels_repro::periph::Timer;
use pels_repro::sim::EventVector;
use pels_repro::soc::event_map::{EV_ADC_DONE, EV_SPI_EOT};
use pels_repro::soc::mem_map::RESET_PC;
use pels_repro::soc::{SocBuilder, SystemDesc};

/// The committed description of the fusion system: the default SoC with
/// a 2.0 V constant sensor (regenerate with `reproduce -- desc`).
const SYSTEM_JSON: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/examples/descs/sensor_fusion_system.json"
));

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let desc = SystemDesc::from_json(SYSTEM_JSON)?;
    let mut soc = SocBuilder::from_desc(desc.clone()).build();

    // Both front-ends are kicked by the same timer event; their
    // completion latencies differ (SPI: 8 cycles for 2 words at clkdiv 4;
    // ADC: 16-cycle conversion), so their done-pulses only line up if we
    // make them: SPI reads 4 words (16 cycles)... they won't align, which
    // is the point — watch the AND condition reject the skewed pair, then
    // align the latencies and watch it fire.
    soc.spi_mut().set_default_len(4); // 4 words x 4 cycles = 16 cycles
    soc.adc_mut().wire_start_action(pels_repro::soc::event_map::EV_TIMER_CMP);

    let fused_alert = assemble(
        "action pulse, 0, 0x2000   ; fused-event line 13
         halt",
    )?;
    {
        let link = soc.pels_mut().link_mut(0);
        link.set_mask(EventVector::mask_of(&[EV_SPI_EOT, EV_ADC_DONE]))
            .set_condition(TriggerCond::All);
        link.load_program(&fused_alert)?;
    }
    soc.load_program(
        RESET_PC,
        &[pels_repro::cpu::asm::wfi(), pels_repro::cpu::asm::jal(0, -4)],
    );
    soc.timer_mut().write(Timer::CMP, 100).unwrap();
    soc.timer_mut().write(Timer::CTRL, Timer::CTRL_ENABLE).unwrap();

    soc.run(600);
    let spi_events = soc.trace().all("spi", "eot").len();
    let adc_events = soc.trace().all("adc", "done").len();
    let fused = soc.trace().all("pels.link0", "action").len();
    println!("SPI readouts: {spi_events}, ADC conversions: {adc_events}, fused alerts: {fused}");
    assert!(spi_events >= 4 && adc_events >= 4);
    assert_eq!(fused, spi_events, "16-cycle SPI aligns with the 16-cycle ADC");

    // Now skew the ADC by one cycle (17-cycle conversions): the pulses
    // never coincide and the AND condition goes quiet. Same described
    // system, second instance.
    let mut soc = SocBuilder::from_desc(desc).build();
    soc.spi_mut().set_default_len(4);
    // Rebuild the ADC with a 17-cycle conversion by re-wiring through the
    // public API: the builder fixes conversion cycles, so emulate the
    // skew by shortening the SPI transfer instead (3 words = 12 cycles).
    soc.spi_mut().set_default_len(3);
    soc.adc_mut().wire_start_action(pels_repro::soc::event_map::EV_TIMER_CMP);
    {
        let link = soc.pels_mut().link_mut(0);
        link.set_mask(EventVector::mask_of(&[EV_SPI_EOT, EV_ADC_DONE]))
            .set_condition(TriggerCond::All);
        link.load_program(&fused_alert)?;
    }
    soc.load_program(
        RESET_PC,
        &[pels_repro::cpu::asm::wfi(), pels_repro::cpu::asm::jal(0, -4)],
    );
    soc.timer_mut().write(Timer::CMP, 100).unwrap();
    soc.timer_mut().write(Timer::CTRL, Timer::CTRL_ENABLE).unwrap();
    soc.run(600);
    let fused_skewed = soc.trace().all("pels.link0", "action").len();
    println!("with skewed completions, fused alerts: {fused_skewed}");
    assert_eq!(fused_skewed, 0, "AND condition rejects non-coincident events");

    println!("\nthe same link with condition `any` would fire on either");
    println!("sensor; `at-least-k` generalizes to k-of-n sensor voting.");
    Ok(())
}
