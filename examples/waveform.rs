//! Dumps VCD waveforms of one linking event — the debugging workflow an
//! RTL engineer would use on the original SystemVerilog PELS, available
//! here without any external tooling.
//!
//! Two documents are written:
//!
//! * `pels_linking.vcd` — hand-picked architectural state sampled every
//!   cycle (clock, SPI/link busy, SCM program counter, GPIO pad);
//! * `pels_flows.vcd` — the architectural trace bridged through
//!   [`pels_repro::sim::vcd::trace_to_vcd`] with causal flows on: one
//!   pulse track per trace event, one 16-bit `<channel>.flow` track per
//!   PELS channel and one `flow.<stage>` track per typed flow stage,
//!   each pulsing the flow id as the event crosses it.
//!
//! ```text
//! cargo run --example waveform      # writes both .vcd files
//! gtkwave pels_flows.vcd            # (on a machine with GTKWave)
//! ```

use pels_repro::interconnect::ApbSlave;
use pels_repro::periph::Timer;
use pels_repro::sim::vcd::{trace_to_vcd, VcdWriter};
use pels_repro::soc::{Mediator, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::latency_probe(Mediator::PelsSequenced);
    // The scenario builds its own SoC; we step it ourselves with a short
    // timer period so the linking event lands inside the capture window.
    let mut soc = scenario.build_soc();
    soc.enable_flows();
    soc.timer_mut().write(Timer::CMP, 20)?;
    soc.timer_mut().write(Timer::CTRL, Timer::CTRL_ENABLE)?;

    let mut vcd = VcdWriter::new("pels_soc");
    let clk = vcd.add_signal("clk", 1);
    let spi_busy = vcd.add_signal("spi_busy", 1);
    let link_busy = vcd.add_signal("link0_busy", 1);
    let link_pc = vcd.add_signal("link0_pc", 4);
    let gpio_out = vcd.add_signal("gpio_padout", 8);
    let events = vcd.add_signal("event_lines", 16);

    for _ in 0..80 {
        let t = soc.time();
        vcd.change(t, clk, soc.cycle() & 1);
        vcd.change(t, spi_busy, u64::from(soc.spi().is_busy()));
        vcd.change(t, link_busy, u64::from(soc.pels().link(0).is_busy()));
        vcd.change(t, link_pc, soc.pels().link(0).exec().pc() as u64);
        vcd.change(t, gpio_out, u64::from(soc.gpio().out()));
        vcd.change(t, events, soc.pels().action_lines().bits());
        soc.step();
    }

    let doc = vcd.finish();
    std::fs::write("pels_linking.vcd", &doc)?;
    println!(
        "wrote pels_linking.vcd ({} bytes) covering one {}-cycle linking event",
        doc.len(),
        scenario.timer_period_cycles() + 20
    );
    println!("signals: clk, spi_busy, link0_busy, link0_pc, gpio_padout, event_lines");

    // The same window through the causal flow lens: the trace's pulse
    // tracks plus the per-channel / per-stage flow-id tracks.
    let flows = soc.trace().flow_trace().expect("flows enabled above");
    let flow_doc = trace_to_vcd(soc.trace(), Some(flows), "pels_soc");
    std::fs::write("pels_flows.vcd", &flow_doc)?;
    println!(
        "wrote pels_flows.vcd ({} bytes): {} causal hops across {} flow(s)",
        flow_doc.len(),
        flows.len(),
        flows.minted(),
    );
    Ok(())
}
