//! Dumps a VCD waveform of one linking event — the debugging workflow an
//! RTL engineer would use on the original SystemVerilog PELS, available
//! here without any external tooling.
//!
//! ```text
//! cargo run --example waveform      # writes pels_linking.vcd
//! gtkwave pels_linking.vcd          # (on a machine with GTKWave)
//! ```

use pels_repro::interconnect::ApbSlave;
use pels_repro::periph::Timer;
use pels_repro::sim::vcd::VcdWriter;
use pels_repro::soc::{Mediator, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::latency_probe(Mediator::PelsSequenced);
    // The scenario builds its own SoC; we step it ourselves with a short
    // timer period so the linking event lands inside the capture window.
    let mut soc = scenario.build_soc();
    soc.timer_mut().write(Timer::CMP, 20)?;
    soc.timer_mut().write(Timer::CTRL, Timer::CTRL_ENABLE)?;

    let mut vcd = VcdWriter::new("pels_soc");
    let clk = vcd.add_signal("clk", 1);
    let spi_busy = vcd.add_signal("spi_busy", 1);
    let link_busy = vcd.add_signal("link0_busy", 1);
    let link_pc = vcd.add_signal("link0_pc", 4);
    let gpio_out = vcd.add_signal("gpio_padout", 8);
    let events = vcd.add_signal("event_lines", 16);

    for _ in 0..80 {
        let t = soc.time();
        vcd.change(t, clk, soc.cycle() & 1);
        vcd.change(t, spi_busy, u64::from(soc.spi().is_busy()));
        vcd.change(t, link_busy, u64::from(soc.pels().link(0).is_busy()));
        vcd.change(t, link_pc, soc.pels().link(0).exec().pc() as u64);
        vcd.change(t, gpio_out, u64::from(soc.gpio().out()));
        vcd.change(t, events, soc.pels().action_lines().bits());
        soc.step();
    }

    let doc = vcd.finish();
    std::fs::write("pels_linking.vcd", &doc)?;
    println!(
        "wrote pels_linking.vcd ({} bytes) covering one {}-cycle linking event",
        doc.len(),
        scenario.timer_period_cycles() + 20
    );
    println!("signals: clk, spi_busy, link0_busy, link0_pc, gpio_padout, event_lines");
    Ok(())
}
