//! Side-by-side run of all three mediation paths on the same workload —
//! the comparison behind the paper's Figure 5 and latency table.
//!
//! ```text
//! cargo run --release --example baseline_comparison
//! ```

use pels_repro::soc::{Mediator, Scenario};

fn main() {
    println!(
        "{:<18} {:>8} {:>9} {:>12} {:>12} {:>12}",
        "mediator", "f [MHz]", "lat [cyc]", "lat [ns]", "active [uW]", "idle [uW]"
    );
    for mediator in [
        Mediator::PelsInstant,
        Mediator::PelsSequenced,
        Mediator::IbexIrq,
    ] {
        let report = Scenario::latency_probe(mediator).run();
        let model = report.power_model();
        let active = report.active_power(&model);
        let idle = report.idle_power(&model);
        println!(
            "{:<18} {:>8.1} {:>9} {:>12} {:>12.1} {:>12.1}",
            mediator.to_string(),
            report.freq.as_mhz(),
            report.stats.min,
            report.mean_latency_time().as_ns(),
            active.total().as_uw(),
            idle.total().as_uw(),
        );
    }
    println!();
    println!("expected shape (paper Section IV-B): instant 2 cycles,");
    println!("sequenced 7 cycles, Ibex interrupt 16 cycles; PELS active");
    println!("power well under the interrupt baseline.");
}
