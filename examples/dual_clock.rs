//! Two clock domains: the SoC at 55 MHz and an always-on 32.768 kHz
//! domain whose RTC tick wakes the linking machinery — the standard ULP
//! partitioning of the paper's Section I ("the processing domain and the
//! I/O domain in different power regions") driven by the simulation
//! kernel's multi-clock [`pels_repro::sim::Scheduler`].
//!
//! Every 32 kHz edge injects a wake-up event; a PELS link responds with
//! an instant action (kicking the watchdog) without the 55 MHz core ever
//! leaving WFI.
//!
//! ```text
//! cargo run --example dual_clock
//! ```

use pels_repro::core::{assemble, TriggerCond};
use pels_repro::interconnect::ApbSlave;
use pels_repro::periph::Watchdog;
use pels_repro::sim::{Clock, EventVector, Frequency, Scheduler};
use pels_repro::soc::mem_map::RESET_PC;
use pels_repro::soc::SocBuilder;

/// Global event line carrying the always-on domain's tick into the SoC.
const EV_RTC_TICK: u32 = 12;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc_freq = Frequency::from_mhz(55.0);
    let rtc_freq = Frequency::from_period_ps(30_517_578); // ~32.768 kHz

    let mut soc = SocBuilder::new()
        .frequency(soc_freq)
        .timer_starts_spi(false)
        .build();

    // The watchdog would bite every ~1100 cycles (20 us at 55 MHz); the
    // 32 kHz tick (every ~30.5 us)... would be too slow, so give it a
    // 2500-cycle timeout (~45 us) instead: serviced on every RTC tick.
    soc.wdt_mut().write(Watchdog::LOAD, 2_500)?;
    soc.wdt_mut().write(Watchdog::CTRL, 1)?;

    let program = assemble(
        "action pulse, 0, 0x2000000   ; line 25 = watchdog kick
         halt",
    )?;
    {
        let link = soc.pels_mut().link_mut(0);
        link.set_mask(EventVector::mask_of(&[EV_RTC_TICK]))
            .set_condition(TriggerCond::Any);
        link.load_program(&program)?;
    }
    soc.load_program(
        RESET_PC,
        &[pels_repro::cpu::asm::wfi(), pels_repro::cpu::asm::jal(0, -4)],
    );

    // Drive both domains from the multi-clock scheduler: each SoC edge
    // steps the SoC; each RTC edge injects the wake-up pulse.
    let mut sched = Scheduler::new();
    let soc_clk = sched.add_clock(Clock::new("soc", soc_freq));
    let rtc_clk = sched.add_clock(Clock::new("rtc", rtc_freq));

    let mut rtc_ticks = 0u64;
    sched.run_until(pels_repro::sim::SimTime::from_us(400), |edge| {
        if edge.clock == soc_clk {
            soc.step();
        } else if edge.clock == rtc_clk {
            soc.inject_event(EV_RTC_TICK);
            rtc_ticks += 1;
        }
    })?;

    let kicks = soc.trace().all("pels.link0", "action").len();
    println!("simulated 400 us: {rtc_ticks} rtc ticks at 32.768 kHz");
    println!("pels delivered {kicks} watchdog kicks, {} bites", soc.wdt().bites());
    println!("core sleep cycles: {}", soc.cpu().sleep_cycles());

    assert_eq!(kicks as u64, rtc_ticks, "one kick per tick");
    assert_eq!(soc.wdt().bites(), 0, "the 32 kHz domain kept the dog fed");
    assert!(soc.cpu().is_sleeping());
    println!("\ntwo clock domains, zero core wake-ups: the Figure 1c profile.");
    Ok(())
}
