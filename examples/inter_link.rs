//! Inter-link triggering through action-line loopback (paper Figure 2 ⑨
//! and Section III-2: links "trigger each other through specific instant
//! actions", enabling "link specialization and diversification").
//!
//! Link 0 is the *detector*: it threshold-checks the sensor sample and —
//! instead of actuating directly — pulses loopback line 40. Link 1 is the
//! *alert generator*: triggered by line 40, it writes an alert byte to
//! the UART with a sequenced action. Neither link could do the whole job
//! alone with a 4-line SCM; together they implement a 6-command flow.
//!
//! ```text
//! cargo run --example inter_link
//! ```

use pels_repro::core::{assemble, TriggerCond};
use pels_repro::interconnect::ApbSlave;
use pels_repro::periph::Timer;
use pels_repro::sim::EventVector;
use pels_repro::soc::mem_map::{pels_word_offset, APB_BASE, SPI_OFFSET, UART_OFFSET};
use pels_repro::soc::{SensorKind, SocBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut soc = SocBuilder::new()
        .pels_links(2)
        .scm_lines(4)
        .sensor(SensorKind::Constant(2.8)) // above threshold
        .build();

    // Link 0: capture SPI sample, compare, chain to link 1 via line 40.
    let spi_last = pels_word_offset(SPI_OFFSET, pels_repro::periph::Spi::LAST);
    let detector = assemble(&format!(
        "      capture {spi_last}, 0xFFF
               jump-if ltu, @quiet, 2000
               action pulse, 1, 0x100   ; loopback line 40 (group 1, bit 8)
        quiet: halt"
    ))?;

    // Link 1: sequenced write of '!' into the UART TX register.
    let uart_tx = pels_word_offset(UART_OFFSET, pels_repro::periph::Uart::TXDATA);
    let alerter = assemble(&format!(
        "write {uart_tx}, 0x21   ; '!'
         halt"
    ))?;

    {
        let l0 = soc.pels_mut().link_mut(0);
        l0.set_mask(EventVector::mask_of(&[0])) // SPI end-of-transfer
            .set_condition(TriggerCond::Any)
            .set_base(APB_BASE);
        l0.load_program(&detector)?;
    }
    {
        let l1 = soc.pels_mut().link_mut(1);
        l1.set_mask(EventVector::mask_of(&[40])) // loopback from link 0
            .set_condition(TriggerCond::Any)
            .set_base(APB_BASE);
        l1.load_program(&alerter)?;
    }

    // CPU sleeps; periodic readout every 120 cycles.
    soc.load_program(
        pels_repro::soc::mem_map::RESET_PC,
        &[pels_repro::cpu::asm::wfi(), pels_repro::cpu::asm::jal(0, -4)],
    );
    soc.spi_mut().set_default_len(1);
    soc.timer_mut().write(Timer::CMP, 120).unwrap();
    soc.timer_mut().write(Timer::CTRL, Timer::CTRL_ENABLE).unwrap();

    soc.run(1_000);

    println!("uart transmitted: {:?}", String::from_utf8_lossy(soc.uart().sent()));
    println!("link0 detections : {}", soc.trace().all("pels.link0", "action").len());
    println!("link1 alerts     : {}", soc.trace().all("pels.link1", "halt").len());
    assert!(!soc.uart().sent().is_empty(), "alert bytes were sent");
    assert!(soc.uart().sent().iter().all(|&b| b == b'!'));

    println!("\nevent flow: timer -> spi readout -> link0 (detect) ->");
    println!("loopback line 40 -> link1 (alert) -> uart, all core-asleep.");
    Ok(())
}
