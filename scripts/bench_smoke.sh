#!/usr/bin/env bash
# Smoke-runs the sim_throughput and fleet bench groups so performance
# regressions are at least *executed* on every verify pass, not just
# compiled, then gates the workspace on clippy. Fails on any panic,
# lint or non-zero exit. Part of the tier-1 verify flow (ROADMAP.md).
set -euo pipefail
cd "$(dirname "$0")/.."

# Includes the active-path groups (busy_cpu_quiescent_slaves{,_naive},
# active_path_naive/*) so the decode-cache and active-slave fast paths
# are executed against their forced-naive references on every pass.
cargo bench -q -p pels-bench --bench sim_throughput -- --sample-size 10
echo "bench_smoke: sim_throughput OK"

# Compile guard: the ExecMode differential switch (ScenarioBuilder::
# exec_mode + Soc::set_naive_scheduling + Cpu::set_decode_cache_enabled)
# must keep compiling — the differential tests and the *_naive bench
# groups are the only proof the fast path is observationally invisible.
cargo test -q --test active_path --no-run
echo "bench_smoke: active_path differential suite compiles OK"

# Superblock differential gate: run (not just compile) the suites that
# prove bulk block retirement is observationally identical to
# single-stepped execution — the SoC-level differential + IRQ sweep, the
# CPU-level lockstep/self-modifying-code tests, and the report/fleet
# digest invariance tests.
cargo test -q --test active_path superblock
cargo test -q --test active_path irq_delivery_under_superblocks
cargo test -q -p pels-cpu --test decode_cache superblock
cargo test -q --test obs_invariance superblock
echo "bench_smoke: superblock differential suite OK"

# Fused-tier differential gate: op fusion and the probe-free sprint
# dispatch must stay observationally invisible — the CPU-level fused
# lockstep/self-modifying-code suite, the SoC-level fused pair workload
# + IRQ sweep, and the per-guard sprint bail-out/token suite.
cargo test -q -p pels-cpu --test decode_cache fused
cargo test -q --test active_path fused
cargo test -q -p pels-soc sprint
echo "bench_smoke: fused-tier differential suite OK"

# The fleet bench also asserts serial-vs-parallel digest equality.
cargo bench -q -p pels-bench --bench fleet -- --sample-size 10
echo "bench_smoke: fleet OK"

# Causal flow gate: run (not just compile) the suites that prove flow
# recording is pure observation (bit-identical runs with flows on/off
# across every ExecMode, fleet digest invariant) and that the per-stage
# attribution telescopes exactly to the measured per-event latencies
# (paper probes decompose to 7/2/16 cycles, randomized scenarios sum
# exactly, FlowReport merge is order-invariant).
cargo test -q --test flow_invariance
cargo test -q --test flow_properties
echo "bench_smoke: causal flow differential + property suites OK"

# Energy-ledger gate: run the differential suite that proves the
# lifetime layer is pure observation — ledger on/off runs bit-identical
# across every mediator, blame rows partition the timeline exactly, and
# fleet digests plus the merged ledger are invariant under worker count.
cargo test -q --test lifetime_invariance
echo "bench_smoke: energy ledger invariance suite OK"

# Observability gate: regenerate the OBS artifacts with the profiler on
# (plus a reduced-horizon lifetime projection), then schema-check them —
# the reference counters (decode cache, scheduler, superblock/fusion
# tiers, fleet workers, energy ledger, battery projection) must be
# present and nonzero, the Chrome trace must be well-formed trace-event
# JSON with power counter tracks, a battery state-of-charge track and
# causal flow arrows (every "s" matched by an "f", ids bound to
# enclosing slices), the power timeline must have contiguous
# non-negative windows, OBS_flows.json must carry non-empty per-mediator
# flow reports with monotone hop times and allowlisted stages, and
# BENCH_lifetime.json must carry the battery parameters, a positive
# PELS-vs-IRQ headline and non-empty sweep rows. Drift in any exporter
# fails here instead of shipping broken artifacts.
cargo run -q --release -p pels-bench --bin reproduce -- sim_throughput lifetime --quick --obs > /dev/null
cargo run -q --release -p pels-bench --bin obs_check
echo "bench_smoke: obs + lifetime artifacts OK"

# The throughput artifact must carry the tracked superblock and fused
# before/after pairs — a missing key means a busy-linking tier or its
# speedup serialization silently dropped out of the measurement — and
# the fused tier must not run slower than the unfused superblock tier.
grep -q '"linking_superblock_speedup"' BENCH_sim_throughput.json
grep -q '"linking_superblock_single_step_cycles_per_sec"' BENCH_sim_throughput.json
grep -q '"linking_fused_speedup"' BENCH_sim_throughput.json
grep -q '"linking_fused_cycles_per_sec"' BENCH_sim_throughput.json
fused=$(sed -n 's/.*"linking_fused_cycles_per_sec": \([0-9.]*\).*/\1/p' BENCH_sim_throughput.json)
unfused=$(sed -n 's/.*"linking_superblock_cycles_per_sec": \([0-9.]*\).*/\1/p' BENCH_sim_throughput.json)
awk -v f="$fused" -v s="$unfused" 'BEGIN { exit !(f >= s) }' || {
    echo "bench_smoke: fused tier ($fused cycles/s) slower than unfused superblocks ($unfused cycles/s)" >&2
    exit 1
}
echo "bench_smoke: superblock + fused speedup keys OK"

# Description gate: regenerate the canonical corpus under
# examples/descs/ (round-trip checked on emit), then validate every
# committed file — parse, validate, round-trip identity and a one-cycle
# smoke build — and run the seeded desc fuzzer (fixed seed, 200+
# generate -> validate -> fast-vs-naive differential iterations).
cargo run -q --release -p pels-bench --bin reproduce -- desc > /dev/null
cargo run -q --release -p pels-bench --bin desc_check
cargo test -q --test desc_fuzz
echo "bench_smoke: description corpus + fuzzer OK"

# Hygiene: every generated artifact class must stay ignored — a missing
# pattern means `git status` noise at best and a committed multi-MB
# artifact at worst.
for f in BENCH_lifetime.json BENCH_sim_throughput.json BENCH_fleet_throughput.json \
         OBS_metrics.json OBS_trace.json OBS_timeline.json OBS_flows.json wave.vcd; do
    git check-ignore -q "$f" || {
        echo "bench_smoke: generated artifact $f is not gitignored" >&2
        exit 1
    }
done
echo "bench_smoke: artifact gitignore audit OK"

cargo clippy --workspace --all-targets -q -- -D warnings
echo "bench_smoke: clippy OK"

# Rustdoc gate: broken intra-doc links or malformed doc examples fail
# the pass — the API docs are part of the reproduction artifact.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q
echo "bench_smoke: rustdoc OK"
