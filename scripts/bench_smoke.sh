#!/usr/bin/env bash
# Smoke-runs the sim_throughput and fleet bench groups so performance
# regressions are at least *executed* on every verify pass, not just
# compiled, then gates the workspace on clippy. Fails on any panic,
# lint or non-zero exit. Part of the tier-1 verify flow (ROADMAP.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench -q -p pels-bench --bench sim_throughput -- --sample-size 10
echo "bench_smoke: sim_throughput OK"

# The fleet bench also asserts serial-vs-parallel digest equality.
cargo bench -q -p pels-bench --bench fleet -- --sample-size 10
echo "bench_smoke: fleet OK"

cargo clippy --workspace --all-targets -q -- -D warnings
echo "bench_smoke: clippy OK"
