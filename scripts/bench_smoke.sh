#!/usr/bin/env bash
# Smoke-runs the sim_throughput bench group so performance regressions are
# at least *executed* on every verify pass, not just compiled. Fails on
# any panic or non-zero exit. Part of the tier-1 verify flow (ROADMAP.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench -q -p pels-bench --bench sim_throughput -- --sample-size 10
echo "bench_smoke: sim_throughput OK"
