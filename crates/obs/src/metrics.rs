//! Named counters and gauges with interned keys and dense storage.
//!
//! The shape mirrors `pels_sim::ActivitySet`: a global append-only
//! interning registry maps each distinct metric name to a small dense
//! [`MetricKey`], and a [`MetricsRegistry`] is a plain `Vec<u64>` indexed
//! by key — recording is an array add, no hashing, no allocation on the
//! steady state. A disabled registry reduces every record to one branch.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// A dense handle to an interned metric name.
///
/// Identical names intern to identical keys process-wide, so hot callers
/// intern once up front and record through the integer handle.
///
/// ```
/// use pels_obs::MetricKey;
/// let a = MetricKey::intern("soc.sched.rebuilds");
/// let b = MetricKey::intern("soc.sched.rebuilds");
/// assert_eq!(a, b);
/// assert_eq!(a.name(), "soc.sched.rebuilds");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey(u32);

struct Registry {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

impl MetricKey {
    /// Interns `name`, returning its stable key. The first call for a
    /// given name allocates (and leaks) one copy of the string; every
    /// subsequent call is a hash lookup. Bounded by the number of
    /// *distinct* metric names a process ever creates.
    pub fn intern(name: &str) -> MetricKey {
        let mut reg = registry().lock().expect("metric registry poisoned");
        if let Some(&id) = reg.by_name.get(name) {
            return MetricKey(id);
        }
        let id = u32::try_from(reg.names.len()).expect("metric registry overflow");
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        reg.names.push(leaked);
        reg.by_name.insert(leaked, id);
        MetricKey(id)
    }

    /// Looks up an already-interned name without interning it.
    pub fn lookup(name: &str) -> Option<MetricKey> {
        let reg = registry().lock().expect("metric registry poisoned");
        reg.by_name.get(name).map(|&id| MetricKey(id))
    }

    /// The interned name.
    pub fn name(self) -> &'static str {
        let reg = registry().lock().expect("metric registry poisoned");
        reg.names[self.0 as usize]
    }

    /// The dense index backing this key.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    fn from_index(i: usize) -> MetricKey {
        MetricKey(u32::try_from(i).expect("metric index out of range"))
    }
}

impl std::fmt::Display for MetricKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Dense per-key counter/gauge storage.
///
/// Counters add ([`MetricsRegistry::add`]); gauges overwrite
/// ([`MetricsRegistry::set`]). Both are no-ops on a disabled registry, so
/// instrumented code pays one branch when observability is off.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counts: Vec<u64>,
    enabled: bool,
}

impl MetricsRegistry {
    /// Creates an enabled, empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            counts: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a disabled registry: every record is a no-op.
    pub fn disabled() -> Self {
        MetricsRegistry {
            counts: Vec::new(),
            enabled: false,
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Adds `n` to the counter behind `key` (no-op when disabled or
    /// `n == 0`).
    #[inline]
    pub fn add(&mut self, key: MetricKey, n: u64) {
        if !self.enabled || n == 0 {
            return;
        }
        let idx = key.index();
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
    }

    /// Overwrites the gauge behind `key` with `v` (no-op when disabled).
    #[inline]
    pub fn set(&mut self, key: MetricKey, v: u64) {
        if !self.enabled {
            return;
        }
        let idx = key.index();
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] = v;
    }

    /// Adds `n` under a metric name, interning it if needed — the cold
    /// path for dynamically composed names (`fleet.worker3.jobs`).
    pub fn add_named(&mut self, name: &str, n: u64) {
        if !self.enabled {
            return;
        }
        self.add(MetricKey::intern(name), n);
    }

    /// Overwrites the gauge under a metric name, interning it if needed.
    pub fn set_named(&mut self, name: &str, v: u64) {
        if !self.enabled {
            return;
        }
        self.set(MetricKey::intern(name), v);
    }

    /// Current value behind `key` (0 when never recorded).
    pub fn get(&self, key: MetricKey) -> u64 {
        self.counts.get(key.index()).copied().unwrap_or(0)
    }

    /// Current value under `name` (0 when unknown).
    pub fn get_named(&self, name: &str) -> u64 {
        MetricKey::lookup(name).map(|k| self.get(k)).unwrap_or(0)
    }

    /// Adds every entry of a snapshot into this registry (counters add).
    pub fn absorb(&mut self, snapshot: &MetricsSnapshot) {
        for (name, v) in snapshot.iter() {
            self.add_named(name, v);
        }
    }

    /// A point-in-time view: every non-zero metric, sorted by name for
    /// deterministic reporting and diffing.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut entries: Vec<(&'static str, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v > 0)
            .map(|(i, &v)| (MetricKey::from_index(i).name(), v))
            .collect();
        entries.sort_by_key(|&(name, _)| name);
        MetricsSnapshot { entries }
    }
}

/// A sorted, immutable `(name, value)` view of a [`MetricsRegistry`],
/// ready for reports and JSON export.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    entries: Vec<(&'static str, u64)>,
}

impl MetricsSnapshot {
    /// The value of `name`, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries
            .binary_search_by(|&(n, _)| n.cmp(name))
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of metrics captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes as a flat JSON object (one `"name": value` pair per
    /// metric, sorted by name).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        for (i, (name, v)) in self.entries.iter().enumerate() {
            let sep = if i + 1 < self.entries.len() { "," } else { "" };
            s.push_str(&format!("  \"{}\": {v}{sep}\n", crate::json::escape(name)));
        }
        s.push_str("}\n");
        s
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "metrics:")?;
        for (name, v) in self.iter() {
            writeln!(f, "  {name:<40} {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let a = MetricKey::intern("obs-test.metric.a");
        let b = MetricKey::intern("obs-test.metric.a");
        assert_eq!(a, b);
        assert_eq!(a.name(), "obs-test.metric.a");
        assert_eq!(MetricKey::lookup("obs-test.metric.a"), Some(a));
        assert_eq!(MetricKey::lookup("obs-test.metric.never"), None);
    }

    #[test]
    fn counters_add_and_gauges_overwrite() {
        let c = MetricKey::intern("obs-test.counter");
        let g = MetricKey::intern("obs-test.gauge");
        let mut reg = MetricsRegistry::new();
        reg.add(c, 2);
        reg.add(c, 3);
        reg.set(g, 7);
        reg.set(g, 5);
        assert_eq!(reg.get(c), 5);
        assert_eq!(reg.get(g), 5);
        assert_eq!(reg.get_named("obs-test.counter"), 5);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let c = MetricKey::intern("obs-test.disabled");
        let mut reg = MetricsRegistry::disabled();
        reg.add(c, 9);
        reg.set(c, 9);
        reg.add_named("obs-test.disabled", 9);
        assert_eq!(reg.get(c), 0);
        assert!(reg.snapshot().is_empty());
        reg.set_enabled(true);
        reg.add(c, 1);
        assert_eq!(reg.get(c), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let mut reg = MetricsRegistry::new();
        reg.add_named("obs-test.z", 1);
        reg.add_named("obs-test.a", 2);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap
            .iter()
            .map(|(n, _)| n)
            .filter(|n| n.starts_with("obs-test."))
            .collect();
        assert_eq!(names, vec!["obs-test.a", "obs-test.z"]);
        assert_eq!(snap.get("obs-test.a"), Some(2));
        assert_eq!(snap.get("obs-test.missing"), None);
    }

    #[test]
    fn absorb_adds_by_name() {
        let mut a = MetricsRegistry::new();
        a.add_named("obs-test.absorb", 1);
        let mut b = MetricsRegistry::new();
        b.add_named("obs-test.absorb", 2);
        a.absorb(&b.snapshot());
        assert_eq!(a.get_named("obs-test.absorb"), 3);
    }

    #[test]
    fn json_is_flat_and_sorted() {
        let mut reg = MetricsRegistry::new();
        reg.add_named("obs-test-json.b", 2);
        reg.add_named("obs-test-json.a", 1);
        let j = reg.snapshot().to_json();
        assert!(j.starts_with("{\n") && j.ends_with("}\n"));
        let a = j.find("obs-test-json.a").unwrap();
        let b = j.find("obs-test-json.b").unwrap();
        assert!(a < b, "entries sorted by name");
        assert!(!j.contains(",\n}"));
        // Round-trips through the crate's own parser.
        assert!(crate::json::parse(&j).is_ok());
    }
}
