//! Per-stage latency attribution over causal event flows.
//!
//! A [`pels_sim::FlowTrace`] answers *which* completion each stimulus
//! caused; this module answers *where the cycles went*. A [`FlowReport`]
//! walks every recorded flow from its first `origin` hop (the paper's
//! measurement start, the SPI `eot`) to its first `terminal` hop (the
//! actuation: `padout`, or the instant-action `action`) and attributes
//! each consecutive hop delta to the *later* hop's `source.stage` label.
//! Because consecutive deltas telescope, the per-stage cycle totals sum
//! to **exactly** the end-to-end latencies `LinkingStats` measures from
//! the architectural trace — `tests/flow_properties.rs` proves it per
//! event.
//!
//! Reports merge like [`Histogram`]s: stage rows add elementwise keyed
//! by label, so fleet-side aggregation is order-invariant.

use crate::hist::Histogram;
use pels_sim::{FlowHop, FlowTrace};
use std::collections::BTreeMap;

/// Accumulated attribution for one `source.stage` label.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageRow {
    /// Hops attributed to this stage across all flows.
    pub count: u64,
    /// Total cycles attributed to this stage (sum of hop deltas).
    pub total_cycles: u64,
    /// Distribution of the per-hop deltas.
    pub hist: Histogram,
}

/// Per-stage latency decomposition of the flows recorded during a run —
/// the "where do the cycles go?" blame table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowReport {
    /// Attribution rows keyed by `source.stage`, in label order (the
    /// `BTreeMap` keeps merging order-invariant).
    stages: BTreeMap<String, StageRow>,
    /// End-to-end origin→terminal latency distribution (cycles).
    end_to_end: Histogram,
    /// Flows with a complete origin→terminal segment.
    flows: u64,
    /// The origin stage the decomposition starts at.
    origin: String,
    /// The terminal stage the decomposition ends at.
    terminal: String,
}

impl FlowReport {
    /// Decomposes every flow in `flows` over its first
    /// `origin`-stage hop to its first subsequent `terminal`-stage hop.
    /// Flows without a complete segment (e.g. a trailing readout whose
    /// actuation fell outside the measurement window) are skipped; hop
    /// deltas are converted to cycles of the `period_ps` clock with the
    /// same integer arithmetic the latency statistics use.
    pub fn from_flows(
        flows: &FlowTrace,
        period_ps: u64,
        origin: &str,
        terminal: &str,
    ) -> FlowReport {
        let mut report = FlowReport {
            origin: origin.to_string(),
            terminal: terminal.to_string(),
            ..FlowReport::default()
        };
        for id in flows.flow_ids() {
            let hops: Vec<&FlowHop> = flows.hops_of(id).collect();
            let Some(start) = hops.iter().position(|h| h.stage == origin) else {
                continue;
            };
            let Some(end) = hops[start..]
                .iter()
                .position(|h| h.stage == terminal)
                .map(|i| start + i)
            else {
                continue;
            };
            let segment = &hops[start..=end];
            for pair in segment.windows(2) {
                let delta =
                    (pair[1].time.as_ps() - pair[0].time.as_ps()) / period_ps;
                let label = format!("{}.{}", pair[1].source_name(), pair[1].stage);
                let row = report.stages.entry(label).or_default();
                row.count += 1;
                row.total_cycles += delta;
                row.hist.record(delta);
            }
            let e2e = (segment[segment.len() - 1].time.as_ps()
                - segment[0].time.as_ps())
                / period_ps;
            report.end_to_end.record(e2e);
            report.flows += 1;
        }
        report
    }

    /// Order-invariant union of two `|`-separated stage-label sets, so
    /// merging reports with different terminals (e.g. `padout` jobs with
    /// instant-`action` jobs) stays commutative.
    fn join_labels(a: &str, b: &str) -> String {
        let mut parts: Vec<&str> = a
            .split('|')
            .chain(b.split('|'))
            .filter(|s| !s.is_empty())
            .collect();
        parts.sort_unstable();
        parts.dedup();
        parts.join("|")
    }

    /// Adds every flow of `other` into `self`. Stage rows add
    /// elementwise by label, histograms merge commutatively, and the
    /// origin/terminal labels union, so any grouping of per-job reports
    /// produces the same aggregate (`tests/flow_properties.rs`).
    pub fn merge(&mut self, other: &FlowReport) {
        self.origin = Self::join_labels(&self.origin, &other.origin);
        self.terminal = Self::join_labels(&self.terminal, &other.terminal);
        for (label, row) in &other.stages {
            let dst = self.stages.entry(label.clone()).or_default();
            dst.count += row.count;
            dst.total_cycles += row.total_cycles;
            dst.hist.merge(&row.hist);
        }
        self.end_to_end.merge(&other.end_to_end);
        self.flows += other.flows;
    }

    /// Flows with a complete origin→terminal segment.
    pub fn flows(&self) -> u64 {
        self.flows
    }

    /// The origin stage of the decomposition.
    pub fn origin(&self) -> &str {
        &self.origin
    }

    /// The terminal stage of the decomposition.
    pub fn terminal(&self) -> &str {
        &self.terminal
    }

    /// End-to-end latency distribution (cycles).
    pub fn end_to_end(&self) -> &Histogram {
        &self.end_to_end
    }

    /// Attribution rows as `(label, row)` pairs in label order.
    pub fn stages(&self) -> impl Iterator<Item = (&str, &StageRow)> {
        self.stages.iter().map(|(l, r)| (l.as_str(), r))
    }

    /// Total cycles attributed across all stages. Telescoping makes this
    /// equal [`Histogram::sum`] of [`FlowReport::end_to_end`] exactly.
    pub fn attributed_cycles(&self) -> u64 {
        self.stages.values().map(|r| r.total_cycles).sum()
    }

    /// Renders the blame table: one row per stage sorted by attributed
    /// cycles (largest first, label as tiebreak), with the share of the
    /// total end-to-end time, plus the end-to-end summary row.
    pub fn render(&self) -> String {
        if self.flows == 0 {
            return String::from("(no complete flows)\n");
        }
        let mut out = format!(
            "flow blame ({} -> {}), {} flows\n  {:<28} {:>6} {:>7} {:>5} {:>5} {:>7}\n",
            self.origin, self.terminal, self.flows, "stage", "count", "mean", "p50", "p99", "share"
        );
        let total = self.end_to_end.sum().max(1);
        let mut rows: Vec<(&String, &StageRow)> = self.stages.iter().collect();
        rows.sort_by(|a, b| b.1.total_cycles.cmp(&a.1.total_cycles).then(a.0.cmp(b.0)));
        for (label, row) in rows {
            out.push_str(&format!(
                "  {:<28} {:>6} {:>7.2} {:>5} {:>5} {:>6.1}%\n",
                label,
                row.count,
                row.hist.mean().unwrap_or(0.0),
                row.hist.p50().unwrap_or(0),
                row.hist.p99().unwrap_or(0),
                100.0 * row.total_cycles as f64 / total as f64,
            ));
        }
        out.push_str(&format!(
            "  {:<28} {:>6} {:>7.2} {:>5} {:>5} {:>6.1}%\n",
            "end-to-end",
            self.end_to_end.count(),
            self.end_to_end.mean().unwrap_or(0.0),
            self.end_to_end.p50().unwrap_or(0),
            self.end_to_end.p99().unwrap_or(0),
            100.0,
        ));
        out
    }

    /// Serializes the report as one JSON object (the per-mediator halves
    /// of `OBS_flows.json`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("{\n");
        let _ = writeln!(s, "    \"flows\": {},", self.flows);
        let _ = writeln!(s, "    \"origin\": \"{}\",", crate::json::escape(&self.origin));
        let _ = writeln!(
            s,
            "    \"terminal\": \"{}\",",
            crate::json::escape(&self.terminal)
        );
        let _ = writeln!(
            s,
            "    \"end_to_end\": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"p50\": {}, \"p99\": {}}},",
            self.end_to_end.count(),
            self.end_to_end.sum(),
            self.end_to_end.mean().unwrap_or(0.0),
            self.end_to_end.p50().unwrap_or(0),
            self.end_to_end.p99().unwrap_or(0),
        );
        s.push_str("    \"stages\": {");
        for (i, (label, row)) in self.stages.iter().enumerate() {
            let sep = if i + 1 < self.stages.len() { "," } else { "" };
            let _ = write!(
                s,
                "\n      \"{}\": {{\"count\": {}, \"total_cycles\": {}, \"mean\": {}, \"p50\": {}, \"p99\": {}}}{sep}",
                crate::json::escape(label),
                row.count,
                row.total_cycles,
                row.hist.mean().unwrap_or(0.0),
                row.hist.p50().unwrap_or(0),
                row.hist.p99().unwrap_or(0),
            );
        }
        s.push_str("\n    }\n  }");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pels_sim::{ComponentId, SimTime};

    /// A hand-built two-flow trace: eot at t0, trigger +2cy, padout +5cy.
    fn sample_flows(period_ps: u64) -> FlowTrace {
        let spi = ComponentId::intern("flowrep-test-spi");
        let link = ComponentId::intern("flowrep-test-link");
        let gpio = ComponentId::intern("flowrep-test-gpio");
        let mut f = FlowTrace::default();
        for base in [100u64, 300] {
            let t = |cy: u64| SimTime::from_ps((base + cy) * period_ps);
            f.raise(t(0), spi, 1, "eot");
            f.cycle_end();
            let flow = f.flow_on_lines(1 << 1);
            assert_ne!(flow, 0);
            f.begin(t(2), link, flow, "trigger");
            f.stage_reg_write(gpio, flow);
            assert!(f.take_reg_write(t(7), gpio, "padout"));
            f.begin(t(7), spi, 0, "eot"); // re-originate next readout
            f.begin(t(7), link, 0, "trigger");
            f.begin(t(7), gpio, 0, "padout");
            f.cycle_end();
            f.cycle_end();
        }
        f
    }

    #[test]
    fn attribution_telescopes_to_end_to_end() {
        let period = 10_000;
        let flows = sample_flows(period);
        let r = FlowReport::from_flows(&flows, period, "eot", "padout");
        assert_eq!(r.flows(), 2);
        assert_eq!(r.end_to_end().count(), 2);
        assert_eq!(r.end_to_end().p50(), Some(7));
        // trigger: 2 cycles, padout: 5 cycles, per flow.
        assert_eq!(r.attributed_cycles(), r.end_to_end().sum());
        let rows: Vec<_> = r.stages().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "flowrep-test-gpio.padout");
        assert_eq!(rows[0].1.total_cycles, 10);
        assert_eq!(rows[1].0, "flowrep-test-link.trigger");
        assert_eq!(rows[1].1.total_cycles, 4);
    }

    #[test]
    fn incomplete_flows_are_skipped() {
        let period = 10_000;
        let spi = ComponentId::intern("flowrep-test-spi2");
        let mut f = FlowTrace::default();
        f.raise(SimTime::from_ps(100), spi, 1, "eot");
        let r = FlowReport::from_flows(&f, period, "eot", "padout");
        assert_eq!(r.flows(), 0);
        assert_eq!(r.render(), "(no complete flows)\n");
    }

    #[test]
    fn merge_is_order_invariant() {
        let period = 10_000;
        let a = FlowReport::from_flows(&sample_flows(period), period, "eot", "padout");
        let mut b = FlowReport::from_flows(&sample_flows(period), period, "eot", "padout");
        b.merge(&FlowReport::default()); // merging empty is a no-op
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.flows(), 4);
        assert_eq!(ab.attributed_cycles(), ab.end_to_end().sum());
    }

    #[test]
    fn render_and_json_carry_the_blame_rows() {
        let period = 10_000;
        let r = FlowReport::from_flows(&sample_flows(period), period, "eot", "padout");
        let table = r.render();
        assert!(table.contains("flow blame (eot -> padout), 2 flows"));
        assert!(table.contains("flowrep-test-gpio.padout"));
        assert!(table.contains("end-to-end"));
        let json = r.to_json();
        let v = crate::json::parse(&json).expect("well-formed JSON");
        assert_eq!(v.get("flows").and_then(crate::json::Value::as_u64), Some(2));
        let stages = v.get("stages").unwrap();
        assert!(stages.get("flowrep-test-link.trigger").is_some());
    }
}
