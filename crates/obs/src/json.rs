//! Minimal hand-rolled JSON support shared by the exporters and the
//! `obs_check` schema gate.
//!
//! The workspace builds offline with zero external dependencies, so
//! there is no serde. The exporters only *write* JSON (string
//! composition plus [`escape`]), and the schema checks only need to
//! *read* what this crate itself emitted — a small recursive-descent
//! parser into a dynamic [`Value`] covers both without pulling anything
//! in.

use std::fmt;

/// Escapes a string for inclusion inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
///
/// Objects keep insertion order (a `Vec` of pairs, not a map) so that
/// round-trip comparisons against our deterministic, sorted emitters are
/// meaningful.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key, if this is an object and the key exists.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the parser stopped at.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our own
                            // output (we only \u-escape control chars).
                            s.push(char::from_u32(hex).ok_or_else(|| self.err("bad \\u escape"))?);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let tail = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = tail.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number slice");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x\n"}], "c": null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Null));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").and_then(Value::as_str), Some("x\n"));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escape_round_trip() {
        let v = parse("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }

    #[test]
    fn object_preserves_order() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a"]);
    }
}
