//! # pels-obs — unified metrics, profiling, and trace export
//!
//! After three rounds of fast-path work (interned recording, quiescence
//! skipping, the decoded-instruction cache, active-slave scheduling) the
//! simulator had no way to show whether those machines actually engage on
//! a given workload. This crate is the observability layer the rest of
//! the workspace publishes into:
//!
//! * [`metrics`] — a [`MetricsRegistry`] of named counters and gauges.
//!   Keys are interned once ([`MetricKey`]), storage is a dense `Vec<u64>`
//!   indexed by key, and a disabled registry turns every record into a
//!   single branch. Layers *publish* into a registry at observation
//!   points (`Soc::publish_metrics`, `FleetReport::publish_metrics`, …);
//!   the hot simulation loops keep their existing plain-`u64` internal
//!   counters, so instrumentation can never perturb architectural
//!   results — the differential test in `tests/obs_invariance.rs` proves
//!   obs-on and obs-off runs are bit-identical.
//! * [`profile`] — a host-time span profiler: [`profile::span`] guards
//!   around run loops, fleet jobs and bench phases aggregate per-span
//!   call counts and total/self time into a rendered hierarchical
//!   report, and keep the raw intervals for Chrome trace export. Globally
//!   disabled by default; a disabled `span()` is one relaxed atomic load.
//! * [`chrome`] — serializes the simulated-time [`pels_sim::Trace`] and
//!   the host-time span intervals to Chrome trace-event JSON, loadable
//!   in Perfetto / `chrome://tracing`.
//! * [`flow`] — per-stage latency attribution over the causal
//!   [`pels_sim::FlowTrace`]: a mergeable [`FlowReport`] whose per-stage
//!   cycle sums telescope to exactly the end-to-end latencies — the
//!   "where do the cycles go?" blame table behind `OBS_flows.json`.
//! * [`hist`] — a mergeable log-bucketed [`Histogram`] (exact buckets
//!   below 64, 16 sub-buckets per octave above, so quantiles carry a
//!   ≤ 1/16 relative-error bound) plus the [`hist::sparkline`] render —
//!   the distribution layer behind per-scenario latency histograms and
//!   the fleet's deterministic cross-job merge.
//! * [`json`] — the tiny hand-rolled JSON writer/parser the exporters
//!   and the `obs_check` schema gate share (no serde in the offline
//!   dependency graph).
//!
//! ## Example
//!
//! ```
//! use pels_obs::{MetricKey, MetricsRegistry};
//! let hits = MetricKey::intern("cpu.decode_cache.hits");
//! let mut reg = MetricsRegistry::new();
//! reg.add(hits, 41);
//! reg.add(hits, 1);
//! let snap = reg.snapshot();
//! assert_eq!(snap.get("cpu.decode_cache.hits"), Some(42));
//! assert!(snap.to_json().contains("\"cpu.decode_cache.hits\": 42"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod flow;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod profile;

pub use chrome::ChromeTrace;
pub use flow::{FlowReport, StageRow};
pub use hist::Histogram;
pub use metrics::{MetricKey, MetricsRegistry, MetricsSnapshot};
pub use profile::{ProfileReport, SpanEvent, SpanGuard, SpanStats};
