//! Chrome trace-event export.
//!
//! Serializes two time domains into one document loadable in Perfetto or
//! `chrome://tracing`:
//!
//! * the **simulated-time** [`Trace`] — every entry becomes an instant
//!   event on a per-component track under the `sim` process, with the
//!   picosecond timestamp mapped onto the format's microsecond axis;
//! * the **host-time** profiler intervals ([`SpanEvent`]) — complete
//!   (`"X"`) events on per-thread tracks under the `host` process.
//!
//! Only the JSON-array-of-events subset of the trace-event format is
//! emitted (`{"traceEvents": [...]}`), which both viewers accept.

use crate::json::{self, Value};
use crate::profile::SpanEvent;
use pels_sim::{ComponentId, Trace};
use std::collections::HashMap;

/// Process id used for simulated-time events.
pub const SIM_PID: u64 = 1;
/// Process id used for host-time profiler spans.
pub const HOST_PID: u64 = 2;

/// Builder for a Chrome trace-event document.
///
/// ```
/// use pels_obs::ChromeTrace;
/// use pels_sim::{SimTime, Trace};
/// let mut t = Trace::new();
/// t.record_named(SimTime::from_ns(10), "spi", "eot", 1);
/// let mut ct = ChromeTrace::new();
/// ct.add_sim_trace(&t);
/// let doc = ct.finish();
/// assert!(doc.contains("\"traceEvents\""));
/// assert!(pels_obs::chrome::validate(&doc).is_ok());
/// ```
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
    sim_tids: HashMap<ComponentId, u64>,
    named_threads: Vec<(u64, u64)>,
}

impl ChromeTrace {
    /// Creates an empty document builder.
    pub fn new() -> Self {
        let mut ct = ChromeTrace::default();
        ct.name_process(SIM_PID, "sim (simulated time)");
        ct.name_process(HOST_PID, "host (wall time)");
        ct
    }

    fn name_process(&mut self, pid: u64, name: &str) {
        self.events.push(format!(
            "{{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": {pid}, \"tid\": 0, \
             \"args\": {{\"name\": \"{}\"}}}}",
            json::escape(name)
        ));
    }

    fn name_thread(&mut self, pid: u64, tid: u64, name: &str) {
        if self.named_threads.contains(&(pid, tid)) {
            return;
        }
        self.named_threads.push((pid, tid));
        self.events.push(format!(
            "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": {pid}, \"tid\": {tid}, \
             \"args\": {{\"name\": \"{}\"}}}}",
            json::escape(name)
        ));
    }

    /// Adds every entry of a simulated-time trace as instant events, one
    /// track per source component. 1 simulated µs maps to 1 trace µs.
    pub fn add_sim_trace(&mut self, trace: &Trace) {
        for e in trace.entries() {
            let next = self.sim_tids.len() as u64 + 1;
            let tid = *self.sim_tids.entry(e.source).or_insert(next);
            self.name_thread(SIM_PID, tid, e.source.name());
            self.events.push(format!(
                "{{\"ph\": \"i\", \"name\": \"{}.{}\", \"cat\": \"sim\", \"s\": \"t\", \
                 \"ts\": {}, \"pid\": {SIM_PID}, \"tid\": {tid}, \"args\": {{\"value\": {}}}}}",
                json::escape(e.source.name()),
                json::escape(e.label),
                e.time.as_ps() as f64 / 1e6,
                e.value,
            ));
        }
    }

    /// Adds one counter-track sample (`"ph": "C"`) under the `sim`
    /// process: a named set of numeric series at a simulated-time
    /// timestamp (µs on the trace axis). Perfetto renders each series of
    /// a given counter name as one track, so a sequence of calls with
    /// the same `name` and timestamps in order draws a curve — power or
    /// activity over simulated time next to the instant-event tracks.
    ///
    /// Series values must be finite (NaN/infinity have no JSON
    /// representation); entries are emitted in the order given.
    pub fn add_counter(&mut self, name: &str, ts_us: f64, series: &[(&str, f64)]) {
        let mut args = String::new();
        for (i, (key, value)) in series.iter().enumerate() {
            debug_assert!(value.is_finite(), "counter series must be finite");
            if i > 0 {
                args.push_str(", ");
            }
            args.push_str(&format!("\"{}\": {}", json::escape(key), value));
        }
        self.events.push(format!(
            "{{\"ph\": \"C\", \"name\": \"{}\", \"cat\": \"sim\", \"ts\": {ts_us}, \
             \"pid\": {SIM_PID}, \"tid\": 0, \"args\": {{{args}}}}}",
            json::escape(name),
        ));
    }

    /// Adds host-time profiler intervals as complete (`"X"`) events, one
    /// track per profiled thread.
    pub fn add_host_spans(&mut self, spans: &[SpanEvent]) {
        for s in spans {
            self.name_thread(HOST_PID, s.thread, &format!("host thread {}", s.thread));
            self.events.push(format!(
                "{{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"host\", \
                 \"ts\": {}, \"dur\": {}, \"pid\": {HOST_PID}, \"tid\": {}}}",
                json::escape(&s.path),
                s.start_us,
                s.dur_us,
                s.thread,
            ));
        }
    }

    /// Number of events added so far (including metadata events).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether only the builder preamble is present.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the `{"traceEvents": [...]}` document.
    pub fn finish(self) -> String {
        let mut out = String::from("{\"traceEvents\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            let sep = if i + 1 < self.events.len() { "," } else { "" };
            out.push_str("  ");
            out.push_str(e);
            out.push_str(sep);
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }
}

/// Schema-checks a rendered trace document: well-formed JSON, a
/// `traceEvents` array, and per-event field requirements (`ph`/`name`
/// strings, numeric `ts`/`pid`/`tid`, `dur` on complete events).
///
/// This is the gate `bench_smoke.sh` runs (through the `obs_check`
/// binary) against `reproduce --obs` output.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate(doc: &str) -> Result<(), String> {
    let v = json::parse(doc).map_err(|e| e.to_string())?;
    let events = v
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }
    for (i, e) in events.iter().enumerate() {
        let ctx = |msg: &str| format!("event {i}: {msg}");
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| ctx("missing string ph"))?;
        e.get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| ctx("missing string name"))?;
        for field in ["pid", "tid"] {
            e.get(field)
                .and_then(Value::as_u64)
                .ok_or_else(|| ctx(&format!("missing integer {field}")))?;
        }
        match ph {
            "M" => {}
            "i" | "I" | "X" | "B" | "E" => {
                e.get("ts")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| ctx("missing numeric ts"))?;
                if ph == "X" {
                    e.get("dur")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| ctx("missing numeric dur on X event"))?;
                }
            }
            "C" => {
                e.get("ts")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| ctx("missing numeric ts"))?;
                let args = e
                    .get("args")
                    .and_then(Value::as_object)
                    .ok_or_else(|| ctx("missing args object on C event"))?;
                if args.is_empty() {
                    return Err(ctx("C event has no counter series"));
                }
                for (key, value) in args {
                    value.as_f64().ok_or_else(|| {
                        ctx(&format!("counter series `{key}` is not numeric"))
                    })?;
                }
            }
            other => return Err(ctx(&format!("unsupported phase {other:?}"))),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pels_sim::SimTime;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.record_named(SimTime::from_ns(10), "chrome-test-spi", "eot", 0);
        t.record_named(SimTime::from_ns(80), "chrome-test-gpio", "set", 1);
        t.record_named(SimTime::from_ns(120), "chrome-test-spi", "eot", 1);
        t
    }

    #[test]
    fn sim_trace_renders_instant_events_per_source_track() {
        let mut ct = ChromeTrace::new();
        ct.add_sim_trace(&sample_trace());
        let doc = ct.finish();
        validate(&doc).expect("valid document");
        let v = json::parse(&doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let instants: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("i"))
            .collect();
        assert_eq!(instants.len(), 3);
        assert_eq!(
            instants[0].get("name").and_then(Value::as_str),
            Some("chrome-test-spi.eot")
        );
        // 10 ns = 0.01 µs on the trace axis.
        assert_eq!(instants[0].get("ts").and_then(Value::as_f64), Some(0.01));
        // Same source, same track.
        assert_eq!(
            instants[0].get("tid").and_then(Value::as_u64),
            instants[2].get("tid").and_then(Value::as_u64)
        );
        assert_ne!(
            instants[0].get("tid").and_then(Value::as_u64),
            instants[1].get("tid").and_then(Value::as_u64)
        );
    }

    #[test]
    fn host_spans_render_complete_events() {
        let mut ct = ChromeTrace::new();
        ct.add_host_spans(&[SpanEvent {
            path: "outer/inner".into(),
            start_us: 5.0,
            dur_us: 2.5,
            thread: 3,
        }]);
        let doc = ct.finish();
        validate(&doc).expect("valid document");
        assert!(doc.contains("\"ph\": \"X\""));
        assert!(doc.contains("\"name\": \"outer/inner\""));
        assert!(doc.contains("\"dur\": 2.5"));
        assert!(doc.contains(&format!("\"pid\": {HOST_PID}")));
    }

    #[test]
    fn thread_metadata_emitted_once_per_track() {
        let mut ct = ChromeTrace::new();
        ct.add_sim_trace(&sample_trace());
        ct.add_sim_trace(&sample_trace());
        let doc = ct.finish();
        assert_eq!(doc.matches("\"chrome-test-spi\"").count(), 1);
    }

    #[test]
    fn counter_events_render_and_validate() {
        let mut ct = ChromeTrace::new();
        ct.add_counter("power_uw", 0.5, &[("ibex", 120.25), ("sram", 80.0)]);
        ct.add_counter("power_uw", 1.5, &[("ibex", 60.5), ("sram", 80.0)]);
        let doc = ct.finish();
        validate(&doc).expect("valid document");
        let v = json::parse(&doc).unwrap();
        let counters: Vec<&Value> = v
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 2);
        let args = counters[0].get("args").unwrap();
        assert_eq!(args.get("ibex").and_then(Value::as_f64), Some(120.25));
        assert_eq!(args.get("sram").and_then(Value::as_f64), Some(80.0));
        assert_eq!(counters[1].get("ts").and_then(Value::as_f64), Some(1.5));
    }

    #[test]
    fn validate_gates_counter_events() {
        // No args object.
        assert!(validate(
            "{\"traceEvents\": [{\"ph\": \"C\", \"name\": \"p\", \"ts\": 1, \"pid\": 1, \"tid\": 0}]}"
        )
        .is_err());
        // Empty args.
        assert!(validate(
            "{\"traceEvents\": [{\"ph\": \"C\", \"name\": \"p\", \"ts\": 1, \"pid\": 1, \"tid\": 0, \"args\": {}}]}"
        )
        .is_err());
        // Non-numeric series.
        assert!(validate(
            "{\"traceEvents\": [{\"ph\": \"C\", \"name\": \"p\", \"ts\": 1, \"pid\": 1, \"tid\": 0, \"args\": {\"a\": \"x\"}}]}"
        )
        .is_err());
        // Well-formed.
        assert!(validate(
            "{\"traceEvents\": [{\"ph\": \"C\", \"name\": \"p\", \"ts\": 1, \"pid\": 1, \"tid\": 0, \"args\": {\"a\": 2.5}}]}"
        )
        .is_ok());
    }

    #[test]
    fn validate_rejects_bad_documents() {
        assert!(validate("not json").is_err());
        assert!(validate("{\"traceEvents\": 3}").is_err());
        assert!(validate("{\"traceEvents\": []}").is_err());
        assert!(
            validate("{\"traceEvents\": [{\"ph\": \"X\", \"name\": \"a\", \"ts\": 1, \"pid\": 1, \"tid\": 1}]}")
                .is_err(),
            "X event without dur rejected"
        );
        assert!(
            validate("{\"traceEvents\": [{\"ph\": \"i\", \"name\": \"a\", \"ts\": 1, \"pid\": 1, \"tid\": 1}]}")
                .is_ok()
        );
    }
}
