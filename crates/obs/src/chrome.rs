//! Chrome trace-event export.
//!
//! Serializes two time domains into one document loadable in Perfetto or
//! `chrome://tracing`:
//!
//! * the **simulated-time** [`Trace`] — every entry becomes an instant
//!   event on a per-component track under the `sim` process, with the
//!   picosecond timestamp mapped onto the format's microsecond axis;
//! * the **host-time** profiler intervals ([`SpanEvent`]) — complete
//!   (`"X"`) events on per-thread tracks under the `host` process.
//!
//! Only the JSON-array-of-events subset of the trace-event format is
//! emitted (`{"traceEvents": [...]}`), which both viewers accept.

use crate::json::{self, Value};
use crate::profile::SpanEvent;
use pels_sim::{ComponentId, FlowHop, FlowTrace, Trace};
use std::collections::HashMap;

/// Process id used for simulated-time events.
pub const SIM_PID: u64 = 1;
/// Process id used for host-time profiler spans.
pub const HOST_PID: u64 = 2;

/// Builder for a Chrome trace-event document.
///
/// ```
/// use pels_obs::ChromeTrace;
/// use pels_sim::{SimTime, Trace};
/// let mut t = Trace::new();
/// t.record_named(SimTime::from_ns(10), "spi", "eot", 1);
/// let mut ct = ChromeTrace::new();
/// ct.add_sim_trace(&t);
/// let doc = ct.finish();
/// assert!(doc.contains("\"traceEvents\""));
/// assert!(pels_obs::chrome::validate(&doc).is_ok());
/// ```
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
    sim_tids: HashMap<ComponentId, u64>,
    named_threads: Vec<(u64, u64)>,
    flow_id_base: u64,
}

impl ChromeTrace {
    /// Creates an empty document builder.
    pub fn new() -> Self {
        let mut ct = ChromeTrace::default();
        ct.name_process(SIM_PID, "sim (simulated time)");
        ct.name_process(HOST_PID, "host (wall time)");
        ct
    }

    fn name_process(&mut self, pid: u64, name: &str) {
        self.events.push(format!(
            "{{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": {pid}, \"tid\": 0, \
             \"args\": {{\"name\": \"{}\"}}}}",
            json::escape(name)
        ));
    }

    fn name_thread(&mut self, pid: u64, tid: u64, name: &str) {
        if self.named_threads.contains(&(pid, tid)) {
            return;
        }
        self.named_threads.push((pid, tid));
        self.events.push(format!(
            "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": {pid}, \"tid\": {tid}, \
             \"args\": {{\"name\": \"{}\"}}}}",
            json::escape(name)
        ));
    }

    /// Adds every entry of a simulated-time trace as instant events, one
    /// track per source component. 1 simulated µs maps to 1 trace µs.
    pub fn add_sim_trace(&mut self, trace: &Trace) {
        for e in trace.entries() {
            let next = self.sim_tids.len() as u64 + 1;
            let tid = *self.sim_tids.entry(e.source).or_insert(next);
            self.name_thread(SIM_PID, tid, e.source.name());
            self.events.push(format!(
                "{{\"ph\": \"i\", \"name\": \"{}.{}\", \"cat\": \"sim\", \"s\": \"t\", \
                 \"ts\": {}, \"pid\": {SIM_PID}, \"tid\": {tid}, \"args\": {{\"value\": {}}}}}",
                json::escape(e.source.name()),
                json::escape(e.label),
                e.time.as_ps() as f64 / 1e6,
                e.value,
            ));
        }
    }

    /// Adds one counter-track sample (`"ph": "C"`) under the `sim`
    /// process: a named set of numeric series at a simulated-time
    /// timestamp (µs on the trace axis). Perfetto renders each series of
    /// a given counter name as one track, so a sequence of calls with
    /// the same `name` and timestamps in order draws a curve — power or
    /// activity over simulated time next to the instant-event tracks.
    ///
    /// Series values must be finite (NaN/infinity have no JSON
    /// representation); entries are emitted in the order given.
    pub fn add_counter(&mut self, name: &str, ts_us: f64, series: &[(&str, f64)]) {
        let mut args = String::new();
        for (i, (key, value)) in series.iter().enumerate() {
            debug_assert!(value.is_finite(), "counter series must be finite");
            if i > 0 {
                args.push_str(", ");
            }
            args.push_str(&format!("\"{}\": {}", json::escape(key), value));
        }
        self.events.push(format!(
            "{{\"ph\": \"C\", \"name\": \"{}\", \"cat\": \"sim\", \"ts\": {ts_us}, \
             \"pid\": {SIM_PID}, \"tid\": 0, \"args\": {{{args}}}}}",
            json::escape(name),
        ));
    }

    /// Adds every causal flow as a Perfetto flow-arrow chain: each hop
    /// becomes a short anchor slice (`"X"`) on its component's track
    /// under the `sim` process, bound to a `"s"`/`"t"`/`"f"` flow event
    /// carrying the [`pels_sim::FlowId`] as the binding id. Viewers draw
    /// arrows from slice to slice along each flow — the rendered causal
    /// thread from trigger edge to task retirement. Flows with fewer
    /// than two hops draw no arrow and are skipped.
    ///
    /// Binding ids from distinct calls are offset into disjoint ranges,
    /// so flow traces from independent runs (each minting ids from 1)
    /// can share one document without their arrows merging.
    pub fn add_flow_events(&mut self, flows: &FlowTrace) {
        let base = self.flow_id_base;
        for id in flows.flow_ids() {
            self.flow_id_base = self.flow_id_base.max(base + id.0);
            let hops: Vec<&FlowHop> = flows.hops_of(id).collect();
            if hops.len() < 2 {
                continue;
            }
            for (i, h) in hops.iter().enumerate() {
                let next = self.sim_tids.len() as u64 + 1;
                let tid = *self.sim_tids.entry(h.source).or_insert(next);
                self.name_thread(SIM_PID, tid, h.source.name());
                let ts = h.time.as_ps() as f64 / 1e6;
                // Anchor slice the flow event binds to (flow arrows
                // attach to slices, not instants).
                self.events.push(format!(
                    "{{\"ph\": \"X\", \"name\": \"{}.{}\", \"cat\": \"flow\", \
                     \"ts\": {ts}, \"dur\": 0.001, \"pid\": {SIM_PID}, \"tid\": {tid}}}",
                    json::escape(h.source.name()),
                    json::escape(h.stage),
                ));
                let ph = if i == 0 {
                    "s"
                } else if i + 1 == hops.len() {
                    "f"
                } else {
                    "t"
                };
                let bp = if ph == "f" { ", \"bp\": \"e\"" } else { "" };
                self.events.push(format!(
                    "{{\"ph\": \"{ph}\", \"name\": \"flow\", \"cat\": \"flow\", \
                     \"id\": {}, \"ts\": {ts}, \"pid\": {SIM_PID}, \"tid\": {tid}{bp}}}",
                    base + id.0,
                ));
            }
        }
    }

    /// Adds host-time profiler intervals as complete (`"X"`) events, one
    /// track per profiled thread.
    pub fn add_host_spans(&mut self, spans: &[SpanEvent]) {
        for s in spans {
            self.name_thread(HOST_PID, s.thread, &format!("host thread {}", s.thread));
            self.events.push(format!(
                "{{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"host\", \
                 \"ts\": {}, \"dur\": {}, \"pid\": {HOST_PID}, \"tid\": {}}}",
                json::escape(&s.path),
                s.start_us,
                s.dur_us,
                s.thread,
            ));
        }
    }

    /// Number of events added so far (including metadata events).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether only the builder preamble is present.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the `{"traceEvents": [...]}` document.
    pub fn finish(self) -> String {
        let mut out = String::from("{\"traceEvents\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            let sep = if i + 1 < self.events.len() { "," } else { "" };
            out.push_str("  ");
            out.push_str(e);
            out.push_str(sep);
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }
}

/// Schema-checks a rendered trace document: well-formed JSON, a
/// `traceEvents` array, per-event field requirements (`ph`/`name`
/// strings, numeric `ts`/`pid`/`tid`, `dur` on complete events), and
/// flow-event well-formedness — every `"s"` start has a matching `"f"`
/// end with the same binding id, no step/end appears for a flow that was
/// never started, and every flow event binds to an enclosing `"X"` slice
/// on the same track.
///
/// This is the gate `bench_smoke.sh` runs (through the `obs_check`
/// binary) against `reproduce --obs` output.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate(doc: &str) -> Result<(), String> {
    let v = json::parse(doc).map_err(|e| e.to_string())?;
    let events = v
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }
    // (pid, tid, ts, dur) of every complete slice — the binding targets
    // flow events are checked against.
    let mut slices: Vec<(u64, u64, f64, f64)> = Vec::new();
    // (index, ph, id, pid, tid, ts) of every flow event.
    let mut flow_events: Vec<(usize, char, u64, u64, u64, f64)> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let ctx = |msg: &str| format!("event {i}: {msg}");
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| ctx("missing string ph"))?;
        e.get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| ctx("missing string name"))?;
        let mut ids = [0u64; 2];
        for (slot, field) in ids.iter_mut().zip(["pid", "tid"]) {
            *slot = e
                .get(field)
                .and_then(Value::as_u64)
                .ok_or_else(|| ctx(&format!("missing integer {field}")))?;
        }
        let [pid, tid] = ids;
        match ph {
            "M" => {}
            "i" | "I" | "X" | "B" | "E" => {
                let ts = e
                    .get("ts")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| ctx("missing numeric ts"))?;
                if ph == "X" {
                    let dur = e
                        .get("dur")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| ctx("missing numeric dur on X event"))?;
                    slices.push((pid, tid, ts, dur));
                }
            }
            "s" | "t" | "f" => {
                let ts = e
                    .get("ts")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| ctx("missing numeric ts"))?;
                let id = e
                    .get("id")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| ctx("missing integer id on flow event"))?;
                flow_events.push((i, ph.chars().next().unwrap(), id, pid, tid, ts));
            }
            "C" => {
                e.get("ts")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| ctx("missing numeric ts"))?;
                let args = e
                    .get("args")
                    .and_then(Value::as_object)
                    .ok_or_else(|| ctx("missing args object on C event"))?;
                if args.is_empty() {
                    return Err(ctx("C event has no counter series"));
                }
                for (key, value) in args {
                    value.as_f64().ok_or_else(|| {
                        ctx(&format!("counter series `{key}` is not numeric"))
                    })?;
                }
            }
            other => return Err(ctx(&format!("unsupported phase {other:?}"))),
        }
    }
    // Flow well-formedness: matched start/end ids, slice-bound events.
    let starts: Vec<u64> = flow_events
        .iter()
        .filter(|f| f.1 == 's')
        .map(|f| f.2)
        .collect();
    for &(i, ph, id, pid, tid, ts) in &flow_events {
        match ph {
            's' => {
                if !flow_events.iter().any(|f| f.1 == 'f' && f.2 == id) {
                    return Err(format!("event {i}: flow {id} starts but never finishes"));
                }
            }
            _ => {
                if !starts.contains(&id) {
                    return Err(format!(
                        "event {i}: flow {id} has a {ph:?} event but no start"
                    ));
                }
            }
        }
        let bound = slices
            .iter()
            .any(|&(p, t, s_ts, dur)| p == pid && t == tid && s_ts <= ts && ts <= s_ts + dur);
        if !bound {
            return Err(format!(
                "event {i}: flow {id} {ph:?} event binds to no slice on pid {pid} tid {tid}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pels_sim::SimTime;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.record_named(SimTime::from_ns(10), "chrome-test-spi", "eot", 0);
        t.record_named(SimTime::from_ns(80), "chrome-test-gpio", "set", 1);
        t.record_named(SimTime::from_ns(120), "chrome-test-spi", "eot", 1);
        t
    }

    #[test]
    fn sim_trace_renders_instant_events_per_source_track() {
        let mut ct = ChromeTrace::new();
        ct.add_sim_trace(&sample_trace());
        let doc = ct.finish();
        validate(&doc).expect("valid document");
        let v = json::parse(&doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let instants: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("i"))
            .collect();
        assert_eq!(instants.len(), 3);
        assert_eq!(
            instants[0].get("name").and_then(Value::as_str),
            Some("chrome-test-spi.eot")
        );
        // 10 ns = 0.01 µs on the trace axis.
        assert_eq!(instants[0].get("ts").and_then(Value::as_f64), Some(0.01));
        // Same source, same track.
        assert_eq!(
            instants[0].get("tid").and_then(Value::as_u64),
            instants[2].get("tid").and_then(Value::as_u64)
        );
        assert_ne!(
            instants[0].get("tid").and_then(Value::as_u64),
            instants[1].get("tid").and_then(Value::as_u64)
        );
    }

    #[test]
    fn host_spans_render_complete_events() {
        let mut ct = ChromeTrace::new();
        ct.add_host_spans(&[SpanEvent {
            path: "outer/inner".into(),
            start_us: 5.0,
            dur_us: 2.5,
            thread: 3,
        }]);
        let doc = ct.finish();
        validate(&doc).expect("valid document");
        assert!(doc.contains("\"ph\": \"X\""));
        assert!(doc.contains("\"name\": \"outer/inner\""));
        assert!(doc.contains("\"dur\": 2.5"));
        assert!(doc.contains(&format!("\"pid\": {HOST_PID}")));
    }

    #[test]
    fn thread_metadata_emitted_once_per_track() {
        let mut ct = ChromeTrace::new();
        ct.add_sim_trace(&sample_trace());
        ct.add_sim_trace(&sample_trace());
        let doc = ct.finish();
        assert_eq!(doc.matches("\"chrome-test-spi\"").count(), 1);
    }

    #[test]
    fn counter_events_render_and_validate() {
        let mut ct = ChromeTrace::new();
        ct.add_counter("power_uw", 0.5, &[("ibex", 120.25), ("sram", 80.0)]);
        ct.add_counter("power_uw", 1.5, &[("ibex", 60.5), ("sram", 80.0)]);
        let doc = ct.finish();
        validate(&doc).expect("valid document");
        let v = json::parse(&doc).unwrap();
        let counters: Vec<&Value> = v
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 2);
        let args = counters[0].get("args").unwrap();
        assert_eq!(args.get("ibex").and_then(Value::as_f64), Some(120.25));
        assert_eq!(args.get("sram").and_then(Value::as_f64), Some(80.0));
        assert_eq!(counters[1].get("ts").and_then(Value::as_f64), Some(1.5));
    }

    #[test]
    fn validate_gates_counter_events() {
        // No args object.
        assert!(validate(
            "{\"traceEvents\": [{\"ph\": \"C\", \"name\": \"p\", \"ts\": 1, \"pid\": 1, \"tid\": 0}]}"
        )
        .is_err());
        // Empty args.
        assert!(validate(
            "{\"traceEvents\": [{\"ph\": \"C\", \"name\": \"p\", \"ts\": 1, \"pid\": 1, \"tid\": 0, \"args\": {}}]}"
        )
        .is_err());
        // Non-numeric series.
        assert!(validate(
            "{\"traceEvents\": [{\"ph\": \"C\", \"name\": \"p\", \"ts\": 1, \"pid\": 1, \"tid\": 0, \"args\": {\"a\": \"x\"}}]}"
        )
        .is_err());
        // Well-formed.
        assert!(validate(
            "{\"traceEvents\": [{\"ph\": \"C\", \"name\": \"p\", \"ts\": 1, \"pid\": 1, \"tid\": 0, \"args\": {\"a\": 2.5}}]}"
        )
        .is_ok());
    }

    #[test]
    fn flow_events_render_bound_arrow_chains() {
        use pels_sim::ComponentId;
        let spi = ComponentId::intern("chrome-test-flow-spi");
        let link = ComponentId::intern("chrome-test-flow-link");
        let mut flows = FlowTrace::default();
        flows.raise(SimTime::from_ns(10), spi, 1, "eot");
        flows.cycle_end();
        assert!(flows.adopt_wire(SimTime::from_ns(20), link, 1, "trigger"));
        let mut ct = ChromeTrace::new();
        ct.add_flow_events(&flows);
        let doc = ct.finish();
        validate(&doc).expect("valid document");
        // One "s" and one "f" with the same binding id, each with an
        // anchor slice.
        let v = json::parse(&doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let of_ph = |ph: &str| -> Vec<&Value> {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Value::as_str) == Some(ph))
                .collect()
        };
        let (starts, ends, slices) = (of_ph("s"), of_ph("f"), of_ph("X"));
        assert_eq!(starts.len(), 1);
        assert_eq!(ends.len(), 1);
        assert_eq!(slices.len(), 2);
        assert_eq!(
            starts[0].get("id").and_then(Value::as_u64),
            ends[0].get("id").and_then(Value::as_u64)
        );
        assert!(doc.contains("chrome-test-flow-spi.eot"));
        assert!(doc.contains("chrome-test-flow-link.trigger"));
        // Single-hop flows draw no arrow.
        let mut lone = FlowTrace::default();
        lone.raise(SimTime::ZERO, spi, 2, "compare");
        let mut ct = ChromeTrace::new();
        ct.add_flow_events(&lone);
        assert!(!ct.finish().contains("\"ph\": \"s\""));
    }

    #[test]
    fn validate_gates_flow_events() {
        let slice = "{\"ph\": \"X\", \"name\": \"a\", \"ts\": 1, \"dur\": 1, \"pid\": 1, \"tid\": 1}";
        // A started flow must finish.
        assert!(validate(&format!(
            "{{\"traceEvents\": [{slice}, {{\"ph\": \"s\", \"name\": \"flow\", \"id\": 7, \"ts\": 1, \"pid\": 1, \"tid\": 1}}]}}"
        ))
        .is_err());
        // A step without a start is rejected.
        assert!(validate(&format!(
            "{{\"traceEvents\": [{slice}, {{\"ph\": \"t\", \"name\": \"flow\", \"id\": 7, \"ts\": 1, \"pid\": 1, \"tid\": 1}}]}}"
        ))
        .is_err());
        // A flow event off any slice is rejected.
        assert!(validate(
            "{\"traceEvents\": [{\"ph\": \"s\", \"name\": \"flow\", \"id\": 7, \"ts\": 1, \"pid\": 1, \"tid\": 1}, \
             {\"ph\": \"f\", \"name\": \"flow\", \"id\": 7, \"bp\": \"e\", \"ts\": 2, \"pid\": 1, \"tid\": 1}]}"
        )
        .is_err());
        // Matched, slice-bound start/end validates.
        assert!(validate(&format!(
            "{{\"traceEvents\": [{slice}, \
             {{\"ph\": \"X\", \"name\": \"b\", \"ts\": 2, \"dur\": 1, \"pid\": 1, \"tid\": 1}}, \
             {{\"ph\": \"s\", \"name\": \"flow\", \"id\": 7, \"ts\": 1, \"pid\": 1, \"tid\": 1}}, \
             {{\"ph\": \"f\", \"name\": \"flow\", \"id\": 7, \"bp\": \"e\", \"ts\": 2, \"pid\": 1, \"tid\": 1}}]}}"
        ))
        .is_ok());
        // A flow event without an id is rejected.
        assert!(validate(&format!(
            "{{\"traceEvents\": [{slice}, {{\"ph\": \"s\", \"name\": \"flow\", \"ts\": 1, \"pid\": 1, \"tid\": 1}}]}}"
        ))
        .is_err());
    }

    #[test]
    fn validate_rejects_bad_documents() {
        assert!(validate("not json").is_err());
        assert!(validate("{\"traceEvents\": 3}").is_err());
        assert!(validate("{\"traceEvents\": []}").is_err());
        assert!(
            validate("{\"traceEvents\": [{\"ph\": \"X\", \"name\": \"a\", \"ts\": 1, \"pid\": 1, \"tid\": 1}]}")
                .is_err(),
            "X event without dur rejected"
        );
        assert!(
            validate("{\"traceEvents\": [{\"ph\": \"i\", \"name\": \"a\", \"ts\": 1, \"pid\": 1, \"tid\": 1}]}")
                .is_ok()
        );
    }
}
