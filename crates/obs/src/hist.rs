//! Mergeable log-bucketed latency histograms.
//!
//! The paper's latency table (Section IV-B) is really a jitter argument:
//! PELS is interesting because its event-to-action latency is a *tight
//! distribution*, not just a good mean. This module turns raw per-event
//! cycle counts into a distribution that
//!
//! * is **exact for small values** — every value below
//!   [`Histogram::EXACT_LIMIT`] gets its own bucket, so the paper's
//!   2/7/16-cycle latencies are represented with zero error;
//! * has **bounded relative error above that** — 16 linear sub-buckets
//!   per power-of-two octave, so any reported quantile is within
//!   [`Histogram::RELATIVE_ERROR`] (1/16 ≈ 6.25 %) of the exact sample
//!   statistic;
//! * **merges deterministically** — bucket counts add elementwise, so
//!   `merge(a, b) == merge(b, a)` and fleet worker count cannot change
//!   an aggregated histogram (proven in `tests/obs_invariance.rs` and
//!   the unit tests below).
//!
//! ```
//! use pels_obs::Histogram;
//! let mut h = Histogram::new();
//! for v in [7, 7, 7, 8, 7, 9, 7] {
//!     h.record(v);
//! }
//! assert_eq!(h.p50(), Some(7));
//! assert_eq!(h.max(), Some(9));
//! assert_eq!(h.count(), 7);
//! ```

/// A mergeable histogram over `u64` samples with log-spaced buckets.
///
/// Values below [`Histogram::EXACT_LIMIT`] are counted exactly (one
/// bucket per value); larger values fall into one of 16 linear
/// sub-buckets per power-of-two octave, bounding the relative error of
/// any quantile by [`Histogram::RELATIVE_ERROR`]. `count`, `sum`, `min`
/// and `max` are always tracked exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts, indexed by [`bucket_index`]. Trailing
    /// buckets are allocated lazily; the vector length is a function of
    /// the largest recorded value only, so equal sample multisets always
    /// produce structurally equal histograms.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Bucket index for a sample value (exact below
/// [`Histogram::EXACT_LIMIT`], 16 sub-buckets per octave above).
fn bucket_index(v: u64) -> usize {
    if v < Histogram::EXACT_LIMIT {
        return v as usize;
    }
    // e = floor(log2 v) >= 6; the top 4 bits after the leading one pick
    // the sub-bucket, so each bucket spans 2^(e-4) out of a 2^e floor:
    // relative error <= 1/16.
    let e = 63 - v.leading_zeros() as u64;
    let sub = (v >> (e - 4)) & 0xF;
    (Histogram::EXACT_LIMIT + (e - 6) * 16 + sub) as usize
}

/// Inclusive lower bound of a bucket — the value [`Histogram::quantile`]
/// reports for samples that landed in it.
fn bucket_lower_bound(index: usize) -> u64 {
    let index = index as u64;
    if index < Histogram::EXACT_LIMIT {
        return index;
    }
    let e = (index - Histogram::EXACT_LIMIT) / 16 + 6;
    let sub = (index - Histogram::EXACT_LIMIT) % 16;
    (1u64 << e) + (sub << (e - 4))
}

impl Histogram {
    /// Values strictly below this limit are counted exactly.
    pub const EXACT_LIMIT: u64 = 64;

    /// Worst-case relative error of a quantile for values at or above
    /// [`Histogram::EXACT_LIMIT`] (buckets span 1/16 of their octave
    /// floor). Below the limit quantiles are exact.
    pub const RELATIVE_ERROR: f64 = 1.0 / 16.0;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.sum = self.sum.saturating_add(v);
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
    }

    /// Adds every sample of `other` into `self`. Bucket counts add
    /// elementwise, so merging is commutative and associative: any
    /// grouping of per-job histograms produces the same aggregate.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Number of recorded samples (exact).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (exact, saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (exact), or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (exact), or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.sum as f64 / self.count as f64)
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) as the lower bound of the
    /// bucket holding the rank-`ceil(q * count)` sample — exact for
    /// values below [`Histogram::EXACT_LIMIT`], within
    /// [`Histogram::RELATIVE_ERROR`] otherwise. Returns `None` if the
    /// histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp into the exact envelope so q=1.0 reports the
                // true max and tiny samples never report below min.
                return Some(bucket_lower_bound(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median (see [`Histogram::quantile`] for error bounds).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Iterates the non-empty buckets as `(lower_bound, count)` pairs in
    /// ascending value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower_bound(i), c))
    }

    /// Renders a terminal-width ASCII histogram: one row per non-empty
    /// bucket with a `#` bar scaled to the modal bucket, plus a summary
    /// line with count / p50 / p99 / max.
    pub fn render(&self, unit: &str) -> String {
        if self.count == 0 {
            return String::from("(empty histogram)\n");
        }
        const BAR: usize = 40;
        let peak = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (lo, c) in self.nonzero_buckets() {
            let width = ((c as f64 / peak as f64) * BAR as f64).ceil() as usize;
            out.push_str(&format!(
                "  {lo:>8} {unit} | {:<BAR$} {c}\n",
                "#".repeat(width.max(1))
            ));
        }
        out.push_str(&format!(
            "  n={} p50={} p99={} max={} {unit}\n",
            self.count,
            self.p50().unwrap_or(0),
            self.p99().unwrap_or(0),
            self.max().unwrap_or(0),
        ));
        out
    }
}

/// Renders a series as a one-line Unicode sparkline (`▁▂▃▄▅▆▇█`),
/// scaling linearly from 0 to the series maximum. Empty input renders
/// an empty string; an all-zero series renders all-minimum ticks.
///
/// ```
/// use pels_obs::hist::sparkline;
/// assert_eq!(sparkline(&[0.0, 1.0]), "▁█");
/// ```
pub fn sparkline(values: &[f64]) -> String {
    const TICKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let peak = values.iter().copied().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if peak <= 0.0 || v <= 0.0 {
                TICKS[0]
            } else {
                let level = (v / peak * (TICKS.len() - 1) as f64).round() as usize;
                TICKS[level.min(TICKS.len() - 1)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pels_sim::Rng;

    /// Exact quantile of a sorted sample at rank `ceil(q * n)`.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        let sample = [2u64, 7, 7, 16, 7, 2, 16, 7, 63, 0];
        for &v in &sample {
            h.record(v);
        }
        let mut sorted = sample.to_vec();
        sorted.sort_unstable();
        for q in [0.01, 0.25, 0.50, 0.90, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(exact_quantile(&sorted, q)), "q={q}");
        }
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(63));
        assert_eq!(h.sum(), sample.iter().sum::<u64>());
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Bucket indices are monotone in the value over a dense range...
        let mut prev = 0usize;
        for v in 0..1u64 << 16 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "monotone at v={v}");
            prev = idx;
        }
        // ...and every bucket's lower bound maps back to its own bucket,
        // never exceeding the values it covers, out to u64::MAX.
        for v in (0..1u64 << 16).chain([1 << 20, 1 << 33, u64::MAX / 2, u64::MAX]) {
            let idx = bucket_index(v);
            let lo = bucket_lower_bound(idx);
            assert_eq!(bucket_index(lo), idx, "v={v} lo={lo}");
            assert!(lo <= v);
        }
    }

    #[test]
    fn quantiles_within_relative_error_randomized() {
        let mut rng = Rng::seed_from_u64(0x5e1f_ca57);
        for trial in 0..50 {
            let n = 1 + rng.next_below(2000) as usize;
            let mut sample = Vec::with_capacity(n);
            let mut h = Histogram::new();
            for _ in 0..n {
                // Mix of tiny exact values and large log-bucketed ones.
                let v = if rng.next_below(2) == 0 {
                    rng.next_below(64)
                } else {
                    let octave = rng.next_below(30);
                    rng.next_below(1 << (6 + octave))
                };
                sample.push(v);
                h.record(v);
            }
            sample.sort_unstable();
            for q in [0.25, 0.50, 0.90, 0.99, 1.0] {
                let exact = exact_quantile(&sample, q);
                let got = h.quantile(q).unwrap() as f64;
                let bound = Histogram::RELATIVE_ERROR * exact as f64;
                assert!(
                    (got - exact as f64).abs() <= bound.max(0.0) + f64::EPSILON,
                    "trial {trial}: q={q} exact={exact} got={got} n={n}"
                );
            }
            assert_eq!(h.count(), n as u64);
            assert_eq!(h.min(), sample.first().copied());
            assert_eq!(h.max(), sample.last().copied());
        }
    }

    #[test]
    fn merge_is_order_invariant_randomized() {
        let mut rng = Rng::seed_from_u64(0xfee1_600d);
        for _ in 0..50 {
            let mut a = Histogram::new();
            let mut b = Histogram::new();
            for _ in 0..rng.next_below(500) {
                a.record(rng.next_below(1 << 40));
            }
            for _ in 0..rng.next_below(500) {
                b.record(rng.next_below(1 << 12));
            }
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba, "merge must be commutative");
            assert_eq!(ab.count(), a.count() + b.count());
            assert_eq!(ab.sum(), a.sum() + b.sum());
        }
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let mut rng = Rng::seed_from_u64(7);
        let values: Vec<u64> = (0..300).map(|_| rng.next_below(1 << 24)).collect();
        let mut whole = Histogram::new();
        let mut parts = [Histogram::new(), Histogram::new(), Histogram::new()];
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            parts[i % 3].record(v);
        }
        let mut merged = Histogram::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged, whole);
    }

    #[test]
    fn empty_histogram_queries() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.render("cy"), "(empty histogram)\n");
        // Merging an empty histogram is a no-op in both directions.
        let mut a = Histogram::new();
        a.record(5);
        let before = a.clone();
        a.merge(&h);
        assert_eq!(a, before);
        let mut e = Histogram::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn single_sample_answers_every_quantile() {
        // A lifetime sweep cell can hold exactly one latency sample;
        // every quantile must collapse to it, exact and non-None.
        for v in [0, 1, 63, 64, 12_345, u64::MAX >> 8] {
            let mut h = Histogram::new();
            h.record(v);
            assert_eq!(h.count(), 1);
            assert_eq!(h.min(), Some(v));
            assert_eq!(h.max(), Some(v));
            for q in [0.0, 0.001, 0.5, 0.9, 0.99, 1.0] {
                let got = h.quantile(q).expect("single sample has every quantile");
                if v < 64 {
                    assert_eq!(got, v, "exact bucket, q={q}");
                } else {
                    // Log-bucketed: within the bucket's relative error.
                    let rel = (got as f64 - v as f64).abs() / v as f64;
                    assert!(rel <= 0.04, "v={v} q={q} got={got}");
                }
            }
            assert_eq!(h.p50(), h.quantile(0.5));
            assert_eq!(h.p99(), h.quantile(0.99));
        }
    }

    #[test]
    fn merge_empty_into_single_sample_preserves_quantiles() {
        let mut h = Histogram::new();
        h.record(42);
        h.merge(&Histogram::new());
        assert_eq!(h.quantile(0.5), Some(42));
        assert_eq!(h.mean(), Some(42.0));
        // And the other direction: empty absorbing one sample adopts it.
        let mut e = Histogram::new();
        e.merge(&h);
        assert_eq!(e.quantile(1.0), Some(42));
        assert_eq!(e.count(), 1);
    }

    #[test]
    fn render_shows_every_nonzero_bucket() {
        let mut h = Histogram::new();
        for v in [7, 7, 7, 2, 16] {
            h.record(v);
        }
        let r = h.render("cycles");
        assert!(r.contains("7 cycles"));
        assert!(r.contains("2 cycles"));
        assert!(r.contains("16 cycles"));
        assert!(r.contains("n=5 p50=7 p99=16 max=16"));
    }

    #[test]
    fn sparkline_scales_to_peak() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        let s = sparkline(&[1.0, 2.0, 4.0, 8.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.ends_with('█'));
    }
}
