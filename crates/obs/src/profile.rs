//! Host-time span profiler.
//!
//! Wraps interesting host-side regions (scenario run loops, fleet jobs,
//! bench phases) in RAII [`SpanGuard`]s. Per-path aggregates (call
//! count, total and self time) feed the rendered [`ProfileReport`]; the
//! raw intervals are kept (bounded) for Chrome trace export via
//! [`take_events`].
//!
//! The profiler is **globally disabled by default**: a [`span`] call on
//! the disabled profiler is one relaxed atomic load and constructs an
//! inert guard, so instrumented code paths cost nothing measurable when
//! observability is off. Enabling ([`set_enabled`]) is process-wide.
//!
//! Guards use thread-local stacks, so nesting is tracked per thread and
//! parent paths compose as `parent/child`. Guards must be dropped in
//! LIFO order within a thread (the natural scoping discipline); they are
//! deliberately `!Send` so a span cannot end on a different thread than
//! it started on.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

/// Cap on retained raw intervals, so a long profiled run cannot grow the
/// event buffer without bound. Aggregates keep counting past the cap.
const MAX_EVENTS: usize = 65_536;

/// Enables or disables the profiler process-wide.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the profiler is currently recording.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The host-time origin all span timestamps are measured from
/// (initialized lazily by the first recorded span).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// One completed span interval, for trace export.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Full nesting path, e.g. `fleet.map/job`.
    pub path: String,
    /// Start offset from the profiler epoch, in microseconds.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Dense profiler-assigned thread number (stable per thread).
    pub thread: u64,
}

/// Aggregate statistics for one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Number of completed spans at this path.
    pub calls: u64,
    /// Total wall time, nanoseconds (including children).
    pub total_ns: u64,
    /// Wall time excluding child spans, nanoseconds.
    pub self_ns: u64,
}

#[derive(Default)]
struct Store {
    agg: BTreeMap<String, SpanStats>,
    events: Vec<SpanEvent>,
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Store::default()))
}

struct Frame {
    path: String,
    start: Instant,
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static THREAD_NUM: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// Opens a profiled span; the region ends when the guard drops.
///
/// Inert (and nearly free) while the profiler is disabled.
///
/// ```
/// pels_obs::profile::reset();
/// pels_obs::profile::set_enabled(true);
/// {
///     let _outer = pels_obs::profile::span("outer");
///     let _inner = pels_obs::profile::span("inner");
/// }
/// pels_obs::profile::set_enabled(false);
/// let report = pels_obs::profile::report();
/// assert_eq!(report.get("outer").unwrap().calls, 1);
/// assert_eq!(report.get("outer/inner").unwrap().calls, 1);
/// ```
#[must_use = "the span ends when the guard is dropped"]
pub fn span(name: &'static str) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard {
            active: false,
            _not_send: PhantomData,
        };
    }
    let _ = epoch();
    STACK.with(|s| {
        let mut s = s.borrow_mut();
        let path = match s.last() {
            Some(parent) => format!("{}/{name}", parent.path),
            None => name.to_owned(),
        };
        s.push(Frame {
            path,
            start: Instant::now(),
            child_ns: 0,
        });
    });
    SpanGuard {
        active: true,
        _not_send: PhantomData,
    }
}

/// RAII guard for an open span (see [`span`]).
#[derive(Debug)]
pub struct SpanGuard {
    active: bool,
    // Spans must end on the thread they started on.
    _not_send: PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let Some(frame) = STACK.with(|s| s.borrow_mut().pop()) else {
            return;
        };
        let total_ns = u64::try_from(frame.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let self_ns = total_ns.saturating_sub(frame.child_ns);
        STACK.with(|s| {
            if let Some(parent) = s.borrow_mut().last_mut() {
                parent.child_ns += total_ns;
            }
        });
        let start_us = frame
            .start
            .saturating_duration_since(epoch())
            .as_secs_f64()
            * 1e6;
        let thread = THREAD_NUM.with(|t| *t);
        let mut st = store().lock().expect("profiler store poisoned");
        let agg = st.agg.entry(frame.path.clone()).or_default();
        agg.calls += 1;
        agg.total_ns += total_ns;
        agg.self_ns += self_ns;
        if st.events.len() < MAX_EVENTS {
            st.events.push(SpanEvent {
                path: frame.path,
                start_us,
                dur_us: total_ns as f64 / 1e3,
                thread,
            });
        }
    }
}

/// Clears all aggregates and retained events (the enabled flag is left
/// alone). Call before a profiled region you want to report in
/// isolation.
pub fn reset() {
    let mut st = store().lock().expect("profiler store poisoned");
    st.agg.clear();
    st.events.clear();
}

/// Drains and returns the retained raw intervals (for Chrome export).
pub fn take_events() -> Vec<SpanEvent> {
    let mut st = store().lock().expect("profiler store poisoned");
    std::mem::take(&mut st.events)
}

/// Snapshots the per-path aggregates into a report.
pub fn report() -> ProfileReport {
    let st = store().lock().expect("profiler store poisoned");
    ProfileReport {
        entries: st.agg.iter().map(|(k, v)| (k.clone(), *v)).collect(),
    }
}

/// A snapshot of span aggregates, sorted by path so children follow
/// their parents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    entries: Vec<(String, SpanStats)>,
}

impl ProfileReport {
    /// Stats for an exact span path.
    pub fn get(&self, path: &str) -> Option<&SpanStats> {
        self.entries
            .binary_search_by(|(p, _)| p.as_str().cmp(path))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Iterates `(path, stats)` in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SpanStats)> + '_ {
        self.entries.iter().map(|(p, s)| (p.as_str(), s))
    }

    /// Whether any spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the hierarchical table: indentation follows nesting, with
    /// call counts and total/self milliseconds per path.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<44} {:>8} {:>12} {:>12}\n",
            "span", "calls", "total ms", "self ms"
        ));
        for (path, s) in self.iter() {
            let depth = path.matches('/').count();
            let leaf = path.rsplit('/').next().unwrap_or(path);
            let label = format!("{}{leaf}", "  ".repeat(depth));
            out.push_str(&format!(
                "{label:<44} {:>8} {:>12.3} {:>12.3}\n",
                s.calls,
                s.total_ns as f64 / 1e6,
                s.self_ns as f64 / 1e6,
            ));
        }
        out
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profiler is a process-wide singleton; tests touching it must
    // not interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _l = lock();
        reset();
        set_enabled(false);
        {
            let _g = span("profile-test-disabled");
        }
        assert!(report().get("profile-test-disabled").is_none());
        assert!(take_events().is_empty());
    }

    #[test]
    fn nested_spans_compose_paths_and_self_time() {
        let _l = lock();
        reset();
        set_enabled(true);
        {
            let _outer = span("profile-test-outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        set_enabled(false);
        let rep = report();
        let outer = rep.get("profile-test-outer").expect("outer recorded");
        let inner = rep
            .get("profile-test-outer/inner")
            .expect("inner recorded under outer");
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        assert!(outer.total_ns >= inner.total_ns);
        assert!(
            outer.self_ns <= outer.total_ns - inner.total_ns + 1_000_000,
            "outer self time excludes the inner span"
        );
        let events = take_events();
        assert_eq!(events.len(), 2);
        // Drop order: inner completes first.
        assert_eq!(events[0].path, "profile-test-outer/inner");
        assert_eq!(events[1].path, "profile-test-outer");
        assert!(events[1].dur_us >= events[0].dur_us);
        assert_eq!(events[0].thread, events[1].thread);
    }

    #[test]
    fn repeated_spans_aggregate_calls() {
        let _l = lock();
        reset();
        set_enabled(true);
        for _ in 0..3 {
            let _g = span("profile-test-repeat");
        }
        set_enabled(false);
        assert_eq!(report().get("profile-test-repeat").unwrap().calls, 3);
        let _ = take_events();
    }

    #[test]
    fn render_indents_children() {
        let _l = lock();
        reset();
        set_enabled(true);
        {
            let _a = span("profile-test-render");
            let _b = span("child");
        }
        set_enabled(false);
        let text = report().render();
        assert!(text.contains("profile-test-render"));
        assert!(text.contains("  child"), "child is indented: {text}");
        let _ = take_events();
    }
}
