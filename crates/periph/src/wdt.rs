//! Watchdog timer.
//!
//! The paper notes that PELS's `loop`/`wait` commands "subsume
//! watchdog-like functions without requiring an external timer" (Section
//! III-2). This peripheral is the *external timer* being subsumed: it
//! exists so the watchdog example and the ablation can compare a
//! conventional watchdog against a PELS microcode watchdog.

use crate::traits::{wake_mask_of, IdleHint, PeriphCtx, Peripheral, RegAccessCounter};
use pels_interconnect::{ApbSlave, BusError};
use pels_sim::{ActivityKind, ComponentId, EventVector};

/// A down-counting watchdog that pulses a *bite* event at zero and
/// reloads.
///
/// ## Register map (byte offsets)
///
/// | offset | name    | access | function                       |
/// |-------:|---------|--------|--------------------------------|
/// | 0x00   | `CTRL`  | RW     | bit0 enable                    |
/// | 0x04   | `LOAD`  | RW     | reload value                   |
/// | 0x08   | `KICK`  | WO     | any write restarts the counter |
/// | 0x0C   | `VALUE` | RO     | current count                  |
///
/// ## Event wiring
///
/// * [`Watchdog::wire_bite_event`] — pulses when the counter expires;
/// * [`Watchdog::wire_kick_action`] — an incoming pulse kicks the dog
///   (what a PELS instant action does in the watchdog example).
#[derive(Debug)]
pub struct Watchdog {
    id: ComponentId,
    enable: bool,
    load: u32,
    value: u32,
    bite_line: Option<u32>,
    kick_line: Option<u32>,
    regs: RegAccessCounter,
    bites: u64,
}

impl Watchdog {
    /// `CTRL` byte offset.
    pub const CTRL: u32 = 0x00;
    /// `LOAD` byte offset.
    pub const LOAD: u32 = 0x04;
    /// `KICK` byte offset.
    pub const KICK: u32 = 0x08;
    /// `VALUE` byte offset.
    pub const VALUE: u32 = 0x0C;

    /// Creates a disabled watchdog.
    pub fn new(name: impl AsRef<str>) -> Self {
        Watchdog {
            id: ComponentId::intern(name.as_ref()),
            enable: false,
            load: 0,
            value: 0,
            bite_line: None,
            kick_line: None,
            regs: RegAccessCounter::default(),
            bites: 0,
        }
    }

    /// Pulses `line` when the counter expires.
    pub fn wire_bite_event(&mut self, line: u32) -> &mut Self {
        self.bite_line = Some(line);
        self
    }

    /// Restarts the counter when `line` pulses.
    pub fn wire_kick_action(&mut self, line: u32) -> &mut Self {
        self.kick_line = Some(line);
        self
    }

    /// Times the watchdog has bitten.
    pub fn bites(&self) -> u64 {
        self.bites
    }

    /// Current countdown value.
    pub fn value(&self) -> u32 {
        self.value
    }
}

impl ApbSlave for Watchdog {
    fn read(&mut self, offset: u32) -> Result<u32, BusError> {
        self.regs.read();
        match offset {
            Self::CTRL => Ok(u32::from(self.enable)),
            Self::LOAD => Ok(self.load),
            Self::VALUE => Ok(self.value),
            _ => Err(BusError::Slave { addr: offset }),
        }
    }

    fn write(&mut self, offset: u32, value: u32) -> Result<(), BusError> {
        self.regs.write();
        match offset {
            Self::CTRL => {
                let was = self.enable;
                self.enable = value & 1 != 0;
                if self.enable && !was {
                    self.value = self.load;
                }
            }
            Self::LOAD => self.load = value,
            Self::KICK => self.value = self.load,
            _ => return Err(BusError::Slave { addr: offset }),
        }
        Ok(())
    }
}

impl Peripheral for Watchdog {
    fn component(&self) -> ComponentId {
        self.id
    }

    fn tick(&mut self, ctx: &mut PeriphCtx<'_>) {
        if ctx.wired_high(self.kick_line) {
            self.value = self.load;
        }
        if !self.enable {
            return;
        }
        ctx.activity.record(self.id, ActivityKind::ActiveCycle, 1);
        if self.value == 0 {
            self.bites += 1;
            self.value = self.load;
            if let Some(line) = self.bite_line {
                ctx.raise(line, self.id, "bite");
            }
        } else {
            self.value -= 1;
        }
    }

    fn idle_hint(&self) -> IdleHint {
        if !self.enable {
            return IdleHint::Idle;
        }
        // Counting down is unobservable until the bite: `value` reaches 0
        // after `value` ticks, and the bite happens one tick later.
        IdleHint::IdleFor(u64::from(self.value) + 1)
    }

    fn wake_mask(&self) -> EventVector {
        wake_mask_of(&[self.kick_line])
    }

    fn catch_up_is_noop(&self) -> bool {
        !self.enable
    }

    fn catch_up(&mut self, ctx: &mut PeriphCtx<'_>, elapsed: u64) {
        if !self.enable || elapsed == 0 {
            return;
        }
        // The scheduler never skips across the bite tick, so the counter
        // cannot underflow here.
        ctx.activity.record(self.id, ActivityKind::ActiveCycle, elapsed);
        debug_assert!(
            elapsed <= u64::from(self.value),
            "watchdog catch-up skipped across a bite"
        );
        self.value -= elapsed as u32;
    }

    fn drain_activity(&mut self, into: &mut pels_sim::ActivitySet) {
        self.regs.drain(self.id, into);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testctx::Harness;
    use pels_sim::EventVector;

    fn armed(load: u32) -> Watchdog {
        let mut w = Watchdog::new("wdt");
        w.write(Watchdog::LOAD, load).unwrap();
        w.write(Watchdog::CTRL, 1).unwrap();
        w.wire_bite_event(6);
        w
    }

    #[test]
    fn bites_after_load_plus_one_cycles() {
        let mut w = armed(3);
        let mut h = Harness::new();
        let out = h.run(&mut w, 3);
        assert!(!out.is_set(6));
        let out = h.run(&mut w, 1);
        assert!(out.is_set(6));
        assert_eq!(w.bites(), 1);
        assert_eq!(w.value(), 3, "reloads after biting");
    }

    #[test]
    fn register_kick_prevents_bite() {
        let mut w = armed(3);
        let mut h = Harness::new();
        for _ in 0..5 {
            h.run(&mut w, 2);
            w.write(Watchdog::KICK, 0).unwrap();
        }
        assert_eq!(w.bites(), 0);
    }

    #[test]
    fn action_line_kick_prevents_bite() {
        let mut w = armed(2);
        w.wire_kick_action(4);
        let mut h = Harness::new();
        for _ in 0..6 {
            h.tick(&mut w, EventVector::mask_of(&[4]));
        }
        assert_eq!(w.bites(), 0);
    }

    #[test]
    fn unkicked_watchdog_bites_repeatedly() {
        let mut w = armed(1);
        let mut h = Harness::new();
        h.run(&mut w, 8);
        assert_eq!(w.bites(), 4);
    }

    #[test]
    fn enabling_loads_counter() {
        let mut w = Watchdog::new("wdt");
        w.write(Watchdog::LOAD, 10).unwrap();
        w.write(Watchdog::CTRL, 1).unwrap();
        assert_eq!(w.value(), 10);
        assert_eq!(w.read(Watchdog::VALUE).unwrap(), 10);
    }
}
