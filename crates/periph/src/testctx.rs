//! Shared unit-test harness: drives a single peripheral cycle-by-cycle
//! with a synthetic [`PeriphCtx`].

use crate::l2::L2Memory;
use crate::traits::{PeriphCtx, Peripheral};
use pels_sim::{ActivitySet, EventVector, Frequency, SimTime, Trace};

pub(crate) struct Harness {
    pub l2: L2Memory,
    pub activity: ActivitySet,
    pub trace: Trace,
    pub cycle: u64,
    pub period: SimTime,
}

impl Harness {
    pub fn new() -> Self {
        Harness {
            l2: L2Memory::new(4096),
            activity: ActivitySet::new(),
            trace: Trace::new(),
            cycle: 0,
            period: Frequency::from_mhz(55.0).period(),
        }
    }

    /// Ticks `p` once with `events_in`; returns the pulses it raised.
    pub fn tick(&mut self, p: &mut dyn Peripheral, events_in: EventVector) -> EventVector {
        let mut ctx = PeriphCtx {
            cycle: self.cycle,
            time: SimTime::from_ps(self.period.as_ps() * self.cycle),
            events_in,
            events_out: EventVector::EMPTY,
            l2: &mut self.l2,
            activity: &mut self.activity,
            trace: &mut self.trace,
        };
        p.tick(&mut ctx);
        self.cycle += 1;
        ctx.events_out
    }

    /// Ticks `n` times with no input events, ORing all pulses raised.
    pub fn run(&mut self, p: &mut dyn Peripheral, n: u64) -> EventVector {
        let mut out = EventVector::EMPTY;
        for _ in 0..n {
            out |= self.tick(p, EventVector::EMPTY);
        }
        out
    }

    /// Replays an `elapsed`-cycle skipped span in closed form
    /// ([`Peripheral::catch_up`]), advancing the harness clock as the
    /// scheduler would.
    pub fn catch_up(&mut self, p: &mut dyn Peripheral, elapsed: u64) {
        let mut ctx = PeriphCtx {
            cycle: self.cycle,
            time: SimTime::from_ps(self.period.as_ps() * self.cycle),
            events_in: EventVector::EMPTY,
            events_out: EventVector::EMPTY,
            l2: &mut self.l2,
            activity: &mut self.activity,
            trace: &mut self.trace,
        };
        p.catch_up(&mut ctx, elapsed);
        self.cycle += elapsed;
    }
}
