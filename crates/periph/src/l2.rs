//! L2 scratchpad memory.
//!
//! PULPissimo's 192 KiB interleaved L2 SRAM holds code and data; the Ibex
//! core fetches from it every cycle and the µDMA lands peripheral data in
//! it. Its access energy is the power-hungry path the paper's Section I
//! singles out — the activity counted here drives the `3.7×`/`4.3×`
//! memory-system power gap of Figure 5.

use pels_sim::{ActivityKind, ActivitySet};

/// A word-addressed SRAM with access accounting.
///
/// Byte addresses are relative to the memory's own base (the SoC handles
/// mapping). Sub-word accesses are modelled at word granularity, which is
/// what the energy accounting needs.
///
/// ```
/// use pels_periph::L2Memory;
/// let mut l2 = L2Memory::new(192 * 1024); // paper's configuration
/// l2.write_word(0x100, 42);
/// assert_eq!(l2.read_word(0x100), 42);
/// ```
#[derive(Debug, Clone)]
pub struct L2Memory {
    words: Vec<u32>,
    reads: u64,
    writes: u64,
}

impl L2Memory {
    /// Creates a zeroed memory of `size_bytes` (rounded up to a word).
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero.
    pub fn new(size_bytes: u32) -> Self {
        assert!(size_bytes > 0, "memory must have non-zero size");
        L2Memory {
            words: vec![0; (size_bytes as usize).div_ceil(4)],
            reads: 0,
            writes: 0,
        }
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> u32 {
        (self.words.len() * 4) as u32
    }

    /// Reads the word containing byte offset `addr`, counting one SRAM
    /// read.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the memory.
    pub fn read_word(&mut self, addr: u32) -> u32 {
        self.reads += 1;
        self.words[self.word_index(addr)]
    }

    /// Writes the word containing byte offset `addr`, counting one SRAM
    /// write.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the memory.
    pub fn write_word(&mut self, addr: u32, value: u32) {
        self.writes += 1;
        let i = self.word_index(addr);
        self.words[i] = value;
    }

    /// Reads without counting activity — for loaders and test assertions,
    /// not for modelled traffic.
    pub fn peek_word(&self, addr: u32) -> u32 {
        self.words[self.word_index(addr)]
    }

    /// Writes without counting activity — for program loading.
    pub fn poke_word(&mut self, addr: u32, value: u32) {
        let i = self.word_index(addr);
        self.words[i] = value;
    }

    /// Loads a slice of words starting at byte offset `addr` (no activity).
    ///
    /// # Panics
    ///
    /// Panics if the slice does not fit.
    pub fn load(&mut self, addr: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            self.poke_word(addr + (i as u32) * 4, w);
        }
    }

    /// Charges `n` word reads' accounting without transferring data
    /// (bulk-verified instruction fetches whose words were already
    /// peeked).
    pub fn charge_reads(&mut self, n: u64) {
        self.reads += n;
    }

    /// Counted read accesses so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Counted write accesses so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Drains access counts into `into` under component name `sram`.
    pub fn drain_activity(&mut self, into: &mut ActivitySet) {
        into.record_named("sram", ActivityKind::SramRead, self.reads);
        into.record_named("sram", ActivityKind::SramWrite, self.writes);
        self.reads = 0;
        self.writes = 0;
    }

    fn word_index(&self, addr: u32) -> usize {
        let i = (addr / 4) as usize;
        assert!(
            i < self.words.len(),
            "L2 access at {addr:#x} outside {} bytes",
            self.size_bytes()
        );
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip_counts() {
        let mut l2 = L2Memory::new(64);
        l2.write_word(0, 0xAA);
        l2.write_word(60, 0xBB);
        assert_eq!(l2.read_word(0), 0xAA);
        assert_eq!(l2.read_word(60), 0xBB);
        assert_eq!((l2.reads(), l2.writes()), (2, 2));
    }

    #[test]
    fn peek_poke_do_not_count() {
        let mut l2 = L2Memory::new(64);
        l2.poke_word(4, 9);
        assert_eq!(l2.peek_word(4), 9);
        assert_eq!((l2.reads(), l2.writes()), (0, 0));
    }

    #[test]
    fn load_places_program() {
        let mut l2 = L2Memory::new(64);
        l2.load(8, &[1, 2, 3]);
        assert_eq!(l2.peek_word(8), 1);
        assert_eq!(l2.peek_word(12), 2);
        assert_eq!(l2.peek_word(16), 3);
    }

    #[test]
    fn sub_word_addresses_hit_containing_word() {
        let mut l2 = L2Memory::new(64);
        l2.write_word(5, 7); // within word 1
        assert_eq!(l2.peek_word(4), 7);
    }

    #[test]
    fn drain_activity_resets() {
        let mut l2 = L2Memory::new(64);
        l2.write_word(0, 1);
        l2.read_word(0);
        let mut a = ActivitySet::new();
        l2.drain_activity(&mut a);
        assert_eq!(a.count("sram", ActivityKind::SramRead), 1);
        assert_eq!(a.count("sram", ActivityKind::SramWrite), 1);
        assert_eq!(l2.reads(), 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_panics() {
        let mut l2 = L2Memory::new(16);
        let _ = l2.read_word(16);
    }
}
