//! # pels-periph — peripheral models for the PULPissimo-like SoC
//!
//! The paper evaluates PELS against an event-linking application built from
//! PULPissimo peripherals: a timer kicks a µDMA-managed **SPI** sensor
//! readout, and the arriving sample must be threshold-checked and actuated
//! on a **GPIO** (paper Figure 3 and Section IV-B). This crate provides
//! those peripherals — and the supporting cast (ADC, UART, watchdog, the
//! analog sensor sources, the L2 scratchpad the µDMA lands data in) — as
//! cycle-accurate behavioural models.
//!
//! Every peripheral:
//!
//! * is an APB slave ([`pels_interconnect::ApbSlave`]) with a documented
//!   register map,
//! * participates in the **single-wire event system**: it can raise event
//!   pulses (e.g. [`Spi`] end-of-transfer) and react to incoming action
//!   lines (e.g. [`Gpio`] set/clear/toggle) — the "instant action"
//!   interface of Figure 1,
//! * records its switching activity for the power model.
//!
//! Peripherals are ticked once per bus-clock cycle with a [`PeriphCtx`]
//! carrying the sampled event lines and platform handles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adc;
pub mod gpio;
pub mod i2c;
pub mod l2;
pub mod sensor;
pub mod spi;
pub mod timer;
pub mod traits;
pub mod uart;
pub mod udma;
pub mod wdt;

pub use adc::Adc;
pub use gpio::Gpio;
pub use i2c::{I2c, I2cDevice, SensorDevice};
pub use l2::L2Memory;
pub use sensor::{AnalogSource, Composite, Constant, GaussianNoise, Quantizer, Ramp, Sine};
pub use spi::{Spi, SpiDevice};
pub use timer::Timer;
pub use traits::{wake_mask_of, IdleHint, PeriphCtx, Peripheral};
pub use uart::Uart;
pub use udma::{UdmaChannel, UdmaTxChannel};
pub use wdt::Watchdog;

#[cfg(test)]
pub(crate) mod testctx;
