//! SPI master with built-in µDMA RX channel.
//!
//! The sensor front-end of the paper's evaluation workload: "I/O
//! DMA-managed sensor readout through the SPI interface" (Section IV-B). A
//! transfer shifts words from an attached [`SpiDevice`] (the digitized
//! sensor), lands them in the RX FIFO and — when armed — streams them to L2
//! through the embedded µDMA channel, then pulses **end-of-transfer**: the
//! event PELS (or the Ibex interrupt path) links on.

use crate::sensor::Quantizer;
use crate::traits::{wake_mask_of, IdleHint, PeriphCtx, Peripheral, RegAccessCounter};
use crate::udma::UdmaChannel;
use pels_interconnect::{ApbSlave, BusError};
use pels_sim::{ActivityKind, ComponentId, EventVector, Fifo, SimTime};
use std::fmt;

/// The device on the other end of the SPI bus.
///
/// `Send` is a supertrait: SPI masters (and the SoCs that own them) cross
/// thread boundaries in batch sweeps.
pub trait SpiDevice: Send {
    /// Full-duplex word exchange at simulation time `time`.
    fn transfer(&mut self, mosi: u32, time: SimTime) -> u32;
}

/// A quantized analog sensor is the canonical SPI device of the paper's
/// workload: each exchanged word is the current ADC code.
impl SpiDevice for Quantizer {
    fn transfer(&mut self, _mosi: u32, time: SimTime) -> u32 {
        self.convert(time)
    }
}

/// An SPI device replaying a fixed word sequence (repeats the last word).
#[derive(Debug, Clone)]
pub struct ReplayDevice {
    words: Vec<u32>,
    pos: usize,
}

impl ReplayDevice {
    /// Creates a device that answers with `words` in order.
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty.
    pub fn new(words: Vec<u32>) -> Self {
        assert!(!words.is_empty(), "replay device needs at least one word");
        ReplayDevice { words, pos: 0 }
    }
}

impl SpiDevice for ReplayDevice {
    fn transfer(&mut self, _mosi: u32, _time: SimTime) -> u32 {
        let w = self.words[self.pos];
        if self.pos + 1 < self.words.len() {
            self.pos += 1;
        }
        w
    }
}

/// SPI master peripheral.
///
/// ## Register map (byte offsets)
///
/// | offset | name        | access | function                                  |
/// |-------:|-------------|--------|-------------------------------------------|
/// | 0x00   | `STATUS`    | RO     | bit0 busy, bits\[15:8\] RX FIFO level     |
/// | 0x04   | `CMD`       | WO     | start a transfer of N words               |
/// | 0x08   | `DATA`      | RO     | pop RX FIFO (0 when empty)                |
/// | 0x0C   | `CLKDIV`    | RW     | bus-clock cycles per word (≥1)            |
/// | 0x10   | `UDMA_SADDR`| RW     | µDMA RX target address in L2              |
/// | 0x14   | `UDMA_SIZE` | WO     | arm µDMA RX channel with N bytes          |
/// | 0x18   | `LAST`      | RO     | most recent received word (no side effect)|
/// | 0x1C   | `UDMA_CFG`  | RW     | bit 0: continuous (ring-buffer) µDMA mode |
///
/// `LAST` exists so a PELS `capture` can read the newest sample without
/// perturbing FIFO state — the access pattern of the paper's Figure 3.
///
/// ## Event wiring
///
/// * [`Spi::wire_eot_event`] — pulses on end-of-transfer;
/// * [`Spi::wire_udma_done_event`] — pulses when the µDMA buffer completes;
/// * [`Spi::wire_start_action`] — an incoming pulse starts a transfer of
///   the most recent `CMD` length (instant-action start).
pub struct Spi {
    id: ComponentId,
    device: Box<dyn SpiDevice>,
    clkdiv: u32,
    words_remaining: u32,
    cycle_in_word: u32,
    last_len: u32,
    last_word: u32,
    rx_fifo: Fifo<u32>,
    udma: UdmaChannel,
    udma_saddr: u32,
    eot_line: Option<u32>,
    udma_done_line: Option<u32>,
    start_line: Option<u32>,
    regs: RegAccessCounter,
    words_done: u64,
}

impl fmt::Debug for Spi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Spi")
            .field("name", &self.id.name())
            .field("busy", &self.is_busy())
            .field("words_remaining", &self.words_remaining)
            .field("clkdiv", &self.clkdiv)
            .finish_non_exhaustive()
    }
}

impl Spi {
    /// `STATUS` byte offset.
    pub const STATUS: u32 = 0x00;
    /// `CMD` byte offset.
    pub const CMD: u32 = 0x04;
    /// `DATA` byte offset.
    pub const DATA: u32 = 0x08;
    /// `CLKDIV` byte offset.
    pub const CLKDIV: u32 = 0x0C;
    /// `UDMA_SADDR` byte offset.
    pub const UDMA_SADDR: u32 = 0x10;
    /// `UDMA_SIZE` byte offset.
    pub const UDMA_SIZE: u32 = 0x14;
    /// `LAST` byte offset.
    pub const LAST: u32 = 0x18;
    /// `UDMA_CFG` byte offset (bit 0: continuous/ring mode).
    pub const UDMA_CFG: u32 = 0x1C;

    /// Creates an SPI master attached to `device`, 8 cycles/word, RX FIFO
    /// depth 8.
    pub fn new(name: impl AsRef<str>, device: Box<dyn SpiDevice>) -> Self {
        Spi {
            id: ComponentId::intern(name.as_ref()),
            device,
            clkdiv: 8,
            words_remaining: 0,
            cycle_in_word: 0,
            last_len: 1,
            last_word: 0,
            rx_fifo: Fifo::new(8),
            udma: UdmaChannel::new(),
            udma_saddr: 0,
            eot_line: None,
            udma_done_line: None,
            start_line: None,
            regs: RegAccessCounter::default(),
            words_done: 0,
        }
    }

    /// Pulses `line` at end-of-transfer.
    pub fn wire_eot_event(&mut self, line: u32) -> &mut Self {
        self.eot_line = Some(line);
        self
    }

    /// Pulses `line` when the armed µDMA buffer completes.
    pub fn wire_udma_done_event(&mut self, line: u32) -> &mut Self {
        self.udma_done_line = Some(line);
        self
    }

    /// Starts a transfer (of the last `CMD` length) when `line` pulses.
    pub fn wire_start_action(&mut self, line: u32) -> &mut Self {
        self.start_line = Some(line);
        self
    }

    /// Presets the word count used by action-line starts without
    /// triggering a transfer (configuration convenience; over the bus the
    /// same effect needs a `CMD` write, which also starts one transfer).
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    pub fn set_default_len(&mut self, words: u32) -> &mut Self {
        assert!(words > 0, "transfer length must be non-zero");
        self.last_len = words;
        self
    }

    /// Whether a transfer is in progress.
    pub fn is_busy(&self) -> bool {
        self.words_remaining > 0
    }

    /// Most recent received word.
    pub fn last_word(&self) -> u32 {
        self.last_word
    }

    /// Words shifted since construction.
    pub fn words_done(&self) -> u64 {
        self.words_done
    }

    /// RX FIFO occupancy.
    pub fn rx_level(&self) -> usize {
        self.rx_fifo.len()
    }

    fn start(&mut self, words: u32) {
        self.words_remaining = words;
        self.cycle_in_word = 0;
    }
}

impl ApbSlave for Spi {
    fn read(&mut self, offset: u32) -> Result<u32, BusError> {
        self.regs.read();
        match offset {
            Self::STATUS => {
                Ok(u32::from(self.is_busy()) | ((self.rx_fifo.len() as u32) << 8))
            }
            Self::DATA => Ok(self.rx_fifo.pop().unwrap_or(0)),
            Self::CLKDIV => Ok(self.clkdiv),
            Self::UDMA_SADDR => Ok(self.udma_saddr),
            Self::UDMA_CFG => Ok(u32::from(self.udma.is_continuous())),
            Self::LAST => Ok(self.last_word),
            _ => Err(BusError::Slave { addr: offset }),
        }
    }

    fn write(&mut self, offset: u32, value: u32) -> Result<(), BusError> {
        self.regs.write();
        match offset {
            Self::CMD => {
                if value == 0 {
                    return Err(BusError::Slave { addr: offset });
                }
                self.last_len = value;
                self.start(value);
            }
            Self::CLKDIV => {
                if value == 0 {
                    return Err(BusError::Slave { addr: offset });
                }
                self.clkdiv = value;
            }
            Self::UDMA_SADDR => self.udma_saddr = value,
            Self::UDMA_CFG => self.udma.set_continuous(value & 1 != 0),
            Self::UDMA_SIZE => self.udma.configure(self.udma_saddr, value),
            _ => return Err(BusError::Slave { addr: offset }),
        }
        Ok(())
    }
}

impl Peripheral for Spi {
    fn component(&self) -> ComponentId {
        self.id
    }

    fn tick(&mut self, ctx: &mut PeriphCtx<'_>) {
        if ctx.wired_high(self.start_line) && !self.is_busy() {
            self.start(self.last_len);
            ctx.trace
                .record(ctx.time, self.id, "start", u64::from(self.last_len));
            if ctx.trace.flows_enabled() {
                // Adopt the flow carried by the start wire (a timer
                // compare, a PELS action, …); if the wire carried none,
                // clear any stale context from a previous transfer.
                ctx.trace.flow_begin(ctx.time, self.id, 0, "start");
                if let Some(line) = self.start_line {
                    ctx.trace.flow_adopt_wire(ctx.time, self.id, line, "start");
                }
            }
        }
        if !self.is_busy() {
            return;
        }
        ctx.activity.record(self.id, ActivityKind::ActiveCycle, 1);
        self.cycle_in_word += 1;
        if self.cycle_in_word < self.clkdiv {
            return;
        }
        // One word completes this cycle.
        self.cycle_in_word = 0;
        let word = self.device.transfer(0, ctx.time);
        self.last_word = word;
        self.words_done += 1;
        if self.udma.is_active() {
            self.udma.push_word(word, ctx.l2);
            if self.udma.take_done() {
                if let Some(line) = self.udma_done_line {
                    ctx.raise(line, self.id, "udma_done");
                }
            }
        } else {
            let _ = self.rx_fifo.push(word);
        }
        self.words_remaining -= 1;
        if self.words_remaining == 0 {
            if let Some(line) = self.eot_line {
                ctx.raise(line, self.id, "eot");
                // End of this causal event: drop the context so the next
                // transfer's eot originates a fresh flow (continuous µDMA
                // mode restarts without a wire edge).
                ctx.trace.flow_begin(ctx.time, self.id, 0, "eot");
            }
        }
    }

    fn idle_hint(&self) -> IdleHint {
        // Transfers count ActiveCycle per cycle, so a shifting SPI stays
        // awake; an idle one waits for its start line or a CMD write.
        if self.is_busy() {
            IdleHint::Busy
        } else {
            IdleHint::Idle
        }
    }

    fn wake_mask(&self) -> EventVector {
        wake_mask_of(&[self.start_line])
    }

    fn drain_activity(&mut self, into: &mut pels_sim::ActivitySet) {
        self.regs.drain(self.id, into);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testctx::Harness;
    use pels_sim::EventVector;

    fn spi_with(words: Vec<u32>) -> Spi {
        let mut s = Spi::new("spi", Box::new(ReplayDevice::new(words)));
        s.wire_eot_event(3);
        s
    }

    #[test]
    fn transfer_takes_clkdiv_cycles_per_word() {
        let mut s = spi_with(vec![0xAB]);
        s.write(Spi::CMD, 1).unwrap();
        let mut h = Harness::new();
        let out = h.run(&mut s, 7);
        assert!(!out.is_set(3), "not done before 8 cycles");
        let out = h.run(&mut s, 1);
        assert!(out.is_set(3), "EOT on the 8th cycle");
        assert!(!s.is_busy());
        assert_eq!(s.last_word(), 0xAB);
    }

    #[test]
    fn words_land_in_rx_fifo_without_dma() {
        let mut s = spi_with(vec![1, 2, 3]);
        s.write(Spi::CMD, 3).unwrap();
        let mut h = Harness::new();
        h.run(&mut s, 24);
        assert_eq!(s.rx_level(), 3);
        assert_eq!(s.read(Spi::DATA).unwrap(), 1);
        assert_eq!(s.read(Spi::DATA).unwrap(), 2);
        assert_eq!(s.read(Spi::DATA).unwrap(), 3);
        assert_eq!(s.read(Spi::DATA).unwrap(), 0); // empty reads as 0
    }

    #[test]
    fn udma_streams_to_l2_and_pulses_done() {
        let mut s = spi_with(vec![0x11, 0x22]);
        s.wire_udma_done_event(4);
        s.write(Spi::UDMA_SADDR, 0x40).unwrap();
        s.write(Spi::UDMA_SIZE, 8).unwrap();
        s.write(Spi::CMD, 2).unwrap();
        let mut h = Harness::new();
        let out = h.run(&mut s, 16);
        assert!(out.is_set(3), "eot");
        assert!(out.is_set(4), "udma done");
        assert_eq!(h.l2.peek_word(0x40), 0x11);
        assert_eq!(h.l2.peek_word(0x44), 0x22);
        assert_eq!(s.rx_level(), 0, "dma path bypasses the fifo");
    }

    #[test]
    fn action_line_starts_transfer() {
        let mut s = spi_with(vec![9]);
        s.wire_start_action(7);
        s.write(Spi::CMD, 1).unwrap();
        let mut h = Harness::new();
        h.run(&mut s, 8); // finish the CMD transfer
        assert!(!s.is_busy());
        h.tick(&mut s, EventVector::mask_of(&[7]));
        assert!(s.is_busy());
        let out = h.run(&mut s, 8);
        assert!(out.is_set(3));
        assert_eq!(s.words_done(), 2);
    }

    #[test]
    fn status_reflects_busy_and_fifo_level() {
        let mut s = spi_with(vec![5]);
        s.write(Spi::CMD, 1).unwrap();
        assert_eq!(s.read(Spi::STATUS).unwrap() & 1, 1);
        let mut h = Harness::new();
        h.run(&mut s, 8);
        let st = s.read(Spi::STATUS).unwrap();
        assert_eq!(st & 1, 0);
        assert_eq!((st >> 8) & 0xFF, 1);
    }

    #[test]
    fn last_register_reads_without_popping() {
        let mut s = spi_with(vec![42]);
        s.write(Spi::CMD, 1).unwrap();
        let mut h = Harness::new();
        h.run(&mut s, 8);
        assert_eq!(s.read(Spi::LAST).unwrap(), 42);
        assert_eq!(s.read(Spi::LAST).unwrap(), 42);
        assert_eq!(s.rx_level(), 1);
    }

    #[test]
    fn zero_cmd_and_clkdiv_rejected() {
        let mut s = spi_with(vec![1]);
        assert!(s.write(Spi::CMD, 0).is_err());
        assert!(s.write(Spi::CLKDIV, 0).is_err());
    }

    #[test]
    fn faster_clkdiv_shortens_words() {
        let mut s = spi_with(vec![1, 2]);
        s.write(Spi::CLKDIV, 2).unwrap();
        s.write(Spi::CMD, 2).unwrap();
        let mut h = Harness::new();
        let out = h.run(&mut s, 4);
        assert!(out.is_set(3));
    }

    #[test]
    fn quantizer_as_spi_device() {
        use crate::sensor::{Constant, Quantizer};
        let q = Quantizer::new(Box::new(Constant(3.3)), 12, 0.0, 3.3);
        let mut s = Spi::new("spi", Box::new(q));
        s.wire_eot_event(3);
        s.write(Spi::CMD, 1).unwrap();
        let mut h = Harness::new();
        h.run(&mut s, 8);
        assert_eq!(s.last_word(), 4095);
    }
}
