//! Synthetic analog sources.
//!
//! The paper's motivating workload reads a thermistor/varistor-class sensor
//! and compares the sample against a threshold (Figure 3). We do not have
//! the physical sensor, so these sources synthesize the analog signal the
//! ADC/SPI front-ends digitize: deterministic shapes (constant, ramp,
//! sine) plus seeded Gaussian noise, composable by summation. The
//! substitution preserves the relevant behaviour — the digital side sees a
//! stream of samples that crosses thresholds at controllable times.

use pels_sim::rng::Rng;
use pels_sim::SimTime;
use std::fmt;

/// A time-dependent analog signal in arbitrary units (typically volts).
///
/// `sample` takes `&mut self` because noisy sources advance an internal
/// RNG; deterministic sources simply ignore the mutability.
///
/// `Send` is a supertrait so that a [`Quantizer`] — and every peripheral
/// and SoC holding one — can migrate across threads; the fleet engine in
/// `pels-fleet` runs whole scenarios on worker threads.
pub trait AnalogSource: Send {
    /// The instantaneous value at `time`.
    fn sample(&mut self, time: SimTime) -> f64;
}

/// A constant level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl AnalogSource for Constant {
    fn sample(&mut self, _time: SimTime) -> f64 {
        self.0
    }
}

/// A linear ramp: `start + slope_per_us * t_us`.
///
/// The workhorse for threshold experiments — crossing time is exactly
/// `(threshold - start) / slope_per_us` microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ramp {
    /// Value at time zero.
    pub start: f64,
    /// Increase per simulated microsecond.
    pub slope_per_us: f64,
}

impl AnalogSource for Ramp {
    fn sample(&mut self, time: SimTime) -> f64 {
        self.start + self.slope_per_us * time.as_us_f64()
    }
}

/// A sine wave: `offset + amplitude * sin(2π * freq_hz * t)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sine {
    /// Mid-level.
    pub offset: f64,
    /// Peak deviation from the offset.
    pub amplitude: f64,
    /// Frequency in hertz.
    pub freq_hz: f64,
}

impl AnalogSource for Sine {
    fn sample(&mut self, time: SimTime) -> f64 {
        let t = time.as_secs_f64();
        self.offset + self.amplitude * (2.0 * std::f64::consts::PI * self.freq_hz * t).sin()
    }
}

/// Zero-mean Gaussian noise with a seeded generator (reproducible runs).
pub struct GaussianNoise {
    sigma: f64,
    rng: Rng,
}

impl GaussianNoise {
    /// Creates a noise source with standard deviation `sigma`.
    pub fn new(sigma: f64, seed: u64) -> Self {
        GaussianNoise {
            sigma,
            rng: Rng::seed_from_u64(seed),
        }
    }
}

impl fmt::Debug for GaussianNoise {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GaussianNoise")
            .field("sigma", &self.sigma)
            .finish_non_exhaustive()
    }
}

impl AnalogSource for GaussianNoise {
    fn sample(&mut self, _time: SimTime) -> f64 {
        self.sigma * self.rng.gaussian()
    }
}

/// The sum of several sources, e.g. a ramp plus measurement noise.
pub struct Composite {
    parts: Vec<Box<dyn AnalogSource>>,
}

impl Composite {
    /// Creates a composite from parts.
    pub fn new(parts: Vec<Box<dyn AnalogSource>>) -> Self {
        Composite { parts }
    }
}

impl fmt::Debug for Composite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Composite")
            .field("parts", &self.parts.len())
            .finish()
    }
}

impl AnalogSource for Composite {
    fn sample(&mut self, time: SimTime) -> f64 {
        self.parts.iter_mut().map(|p| p.sample(time)).sum()
    }
}

/// Quantizes an analog source to an unsigned code, the way an ADC
/// front-end would.
///
/// ```
/// use pels_periph::{Constant, Quantizer};
/// use pels_sim::SimTime;
/// let mut q = Quantizer::new(Box::new(Constant(1.65)), 12, 0.0, 3.3);
/// let code = q.convert(SimTime::ZERO);
/// assert!((i64::from(code) - 2047).abs() <= 1); // mid-scale
/// ```
pub struct Quantizer {
    source: Box<dyn AnalogSource>,
    bits: u32,
    low: f64,
    high: f64,
}

impl Quantizer {
    /// Creates a quantizer with `bits` resolution over `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or > 32, or if `high <= low`.
    pub fn new(source: Box<dyn AnalogSource>, bits: u32, low: f64, high: f64) -> Self {
        assert!((1..=32).contains(&bits), "resolution must be 1..=32 bits");
        assert!(high > low, "full-scale range must be non-empty");
        Quantizer {
            source,
            bits,
            low,
            high,
        }
    }

    /// The maximum output code.
    pub fn max_code(&self) -> u32 {
        if self.bits == 32 {
            u32::MAX
        } else {
            (1u32 << self.bits) - 1
        }
    }

    /// Samples the source at `time` and converts; clamps at the rails.
    pub fn convert(&mut self, time: SimTime) -> u32 {
        let v = self.source.sample(time);
        let frac = ((v - self.low) / (self.high - self.low)).clamp(0.0, 1.0);
        (frac * f64::from(self.max_code())).round() as u32
    }
}

impl fmt::Debug for Quantizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Quantizer")
            .field("bits", &self.bits)
            .field("low", &self.low)
            .field("high", &self.high)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let mut c = Constant(2.5);
        assert_eq!(c.sample(SimTime::ZERO), 2.5);
        assert_eq!(c.sample(SimTime::from_ms(10)), 2.5);
    }

    #[test]
    fn ramp_crosses_threshold_at_expected_time() {
        let mut r = Ramp {
            start: 0.0,
            slope_per_us: 0.1,
        };
        assert!(r.sample(SimTime::from_us(9)) < 1.0);
        assert!(r.sample(SimTime::from_us(11)) > 1.0);
    }

    #[test]
    fn sine_oscillates_around_offset() {
        let mut s = Sine {
            offset: 1.0,
            amplitude: 0.5,
            freq_hz: 1000.0,
        };
        // Quarter period of 1 kHz = 250 us -> peak.
        let peak = s.sample(SimTime::from_us(250));
        assert!((peak - 1.5).abs() < 1e-9);
        let zero = s.sample(SimTime::ZERO);
        assert!((zero - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noise_is_reproducible_and_roughly_zero_mean() {
        let mut a = GaussianNoise::new(0.1, 42);
        let mut b = GaussianNoise::new(0.1, 42);
        let xs: Vec<f64> = (0..1000).map(|_| a.sample(SimTime::ZERO)).collect();
        let ys: Vec<f64> = (0..1000).map(|_| b.sample(SimTime::ZERO)).collect();
        assert_eq!(xs, ys);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean} too far from zero");
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((var.sqrt() - 0.1).abs() < 0.02);
    }

    #[test]
    fn composite_sums_parts() {
        let mut c = Composite::new(vec![
            Box::new(Constant(1.0)),
            Box::new(Ramp {
                start: 0.0,
                slope_per_us: 1.0,
            }),
        ]);
        assert!((c.sample(SimTime::from_us(2)) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn quantizer_clamps_at_rails() {
        let mut low = Quantizer::new(Box::new(Constant(-5.0)), 12, 0.0, 3.3);
        assert_eq!(low.convert(SimTime::ZERO), 0);
        let mut high = Quantizer::new(Box::new(Constant(9.0)), 12, 0.0, 3.3);
        assert_eq!(high.convert(SimTime::ZERO), 4095);
    }

    #[test]
    fn quantizer_32bit_max_code() {
        let q = Quantizer::new(Box::new(Constant(0.0)), 32, 0.0, 1.0);
        assert_eq!(q.max_code(), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "full-scale")]
    fn quantizer_rejects_empty_range() {
        let _ = Quantizer::new(Box::new(Constant(0.0)), 8, 1.0, 1.0);
    }
}
