//! General-purpose I/O.
//!
//! The actuation endpoint of the paper's linking scenario: the threshold
//! crossing either *sets a GPIO via a sequenced action* (a bus write to
//! [`Gpio::PADOUTSET`]) or *toggles it via an instant action* (a single-wire
//! line wired into the pad logic) — the two paths of Figure 3.

use crate::traits::{wake_mask_of, IdleHint, PeriphCtx, Peripheral, RegAccessCounter};
use pels_interconnect::{ApbSlave, BusError};
use pels_sim::{ActivityKind, ComponentId, EventVector};

/// A 32-pin GPIO controller with set/clear/toggle registers and
/// event-line-driven pad actions.
///
/// ## Register map (byte offsets)
///
/// | offset | name       | access | function                      |
/// |-------:|------------|--------|-------------------------------|
/// | 0x00   | `PADDIR`   | RW     | 1 = output                    |
/// | 0x04   | `PADIN`    | RO     | pad input values              |
/// | 0x08   | `PADOUT`   | RW     | output register               |
/// | 0x0C   | `PADOUTSET`| WO     | write-1-to-set                |
/// | 0x10   | `PADOUTCLR`| WO     | write-1-to-clear              |
/// | 0x14   | `PADOUTTGL`| WO     | write-1-to-toggle             |
///
/// ## Event wiring
///
/// Incoming action lines configured with [`Gpio::wire_set_action`] /
/// [`Gpio::wire_clear_action`] / [`Gpio::wire_toggle_action`] apply the
/// corresponding pad operation when pulsed — the peripheral-side support
/// for *instant actions*. A rising edge on a watched output pin
/// ([`Gpio::watch_pin`]) raises an outgoing event pulse.
#[derive(Debug)]
pub struct Gpio {
    id: ComponentId,
    dir: u32,
    out: u32,
    input: u32,
    /// Output value already reported in the trace/event logic.
    seen_out: u32,
    set_action: Option<(u32, u32)>,
    clear_action: Option<(u32, u32)>,
    toggle_action: Option<(u32, u32)>,
    watch: Option<(u32, u32)>,
    regs: RegAccessCounter,
    pad_toggles: u64,
}

impl Gpio {
    /// `PADDIR` byte offset.
    pub const PADDIR: u32 = 0x00;
    /// `PADIN` byte offset.
    pub const PADIN: u32 = 0x04;
    /// `PADOUT` byte offset.
    pub const PADOUT: u32 = 0x08;
    /// `PADOUTSET` byte offset.
    pub const PADOUTSET: u32 = 0x0C;
    /// `PADOUTCLR` byte offset.
    pub const PADOUTCLR: u32 = 0x10;
    /// `PADOUTTGL` byte offset.
    pub const PADOUTTGL: u32 = 0x14;

    /// Creates a GPIO instance named `name`.
    pub fn new(name: impl AsRef<str>) -> Self {
        Gpio {
            id: ComponentId::intern(name.as_ref()),
            dir: 0,
            out: 0,
            input: 0,
            seen_out: 0,
            set_action: None,
            clear_action: None,
            toggle_action: None,
            watch: None,
            regs: RegAccessCounter::default(),
            pad_toggles: 0,
        }
    }

    /// Wires incoming event line `line` to *set* the pins in `mask`.
    pub fn wire_set_action(&mut self, line: u32, mask: u32) -> &mut Self {
        self.set_action = Some((line, mask));
        self
    }

    /// Wires incoming event line `line` to *clear* the pins in `mask`.
    pub fn wire_clear_action(&mut self, line: u32, mask: u32) -> &mut Self {
        self.clear_action = Some((line, mask));
        self
    }

    /// Wires incoming event line `line` to *toggle* the pins in `mask`.
    pub fn wire_toggle_action(&mut self, line: u32, mask: u32) -> &mut Self {
        self.toggle_action = Some((line, mask));
        self
    }

    /// Raises outgoing event line `event_line` whenever output pin `pin`
    /// rises.
    ///
    /// # Panics
    ///
    /// Panics if `pin >= 32`.
    pub fn watch_pin(&mut self, pin: u32, event_line: u32) -> &mut Self {
        assert!(pin < 32, "pin {pin} out of range");
        self.watch = Some((pin, event_line));
        self
    }

    /// Current output register value.
    pub fn out(&self) -> u32 {
        self.out
    }

    /// Level of output `pin`.
    ///
    /// # Panics
    ///
    /// Panics if `pin >= 32`.
    pub fn pin(&self, pin: u32) -> bool {
        assert!(pin < 32, "pin {pin} out of range");
        self.out & (1 << pin) != 0
    }

    /// Drives external input pads (tests / board models).
    pub fn set_input(&mut self, value: u32) {
        self.input = value;
    }

    /// Total pad transitions since construction.
    pub fn pad_toggles(&self) -> u64 {
        self.pad_toggles
    }
}

impl ApbSlave for Gpio {
    fn read(&mut self, offset: u32) -> Result<u32, BusError> {
        self.regs.read();
        match offset {
            Self::PADDIR => Ok(self.dir),
            Self::PADIN => Ok(self.input),
            Self::PADOUT => Ok(self.out),
            _ => Err(BusError::Slave { addr: offset }),
        }
    }

    fn write(&mut self, offset: u32, value: u32) -> Result<(), BusError> {
        self.regs.write();
        match offset {
            Self::PADDIR => self.dir = value,
            Self::PADOUT => self.out = value,
            Self::PADOUTSET => self.out |= value,
            Self::PADOUTCLR => self.out &= !value,
            Self::PADOUTTGL => self.out ^= value,
            _ => return Err(BusError::Slave { addr: offset }),
        }
        Ok(())
    }
}

impl Peripheral for Gpio {
    fn component(&self) -> ComponentId {
        self.id
    }

    fn tick(&mut self, ctx: &mut PeriphCtx<'_>) {
        // Instant actions: registered event wires act on the pad logic.
        if let Some((line, mask)) = self.set_action {
            if ctx.events_in.is_set(line) {
                self.out |= mask;
            }
        }
        if let Some((line, mask)) = self.clear_action {
            if ctx.events_in.is_set(line) {
                self.out &= !mask;
            }
        }
        if let Some((line, mask)) = self.toggle_action {
            if ctx.events_in.is_set(line) {
                self.out ^= mask;
            }
        }

        // Observable pad changes: trace + activity + watched-pin events.
        if self.out != self.seen_out {
            let changed = self.out ^ self.seen_out;
            self.pad_toggles += u64::from(changed.count_ones());
            ctx.activity.record(self.id, ActivityKind::ActiveCycle, 1);
            ctx.trace
                .record(ctx.time, self.id, "padout", u64::from(self.out));
            if ctx.trace.flows_enabled() {
                // Attribute the pad change: a wired instant action carries
                // its flow on the event wire; a sequenced/IRQ register
                // write stages it as a fabric write commit. Neither means
                // the cause is untracked — clear the context so a later
                // `pin_rise` cannot inherit a stale flow.
                let wired = [self.set_action, self.clear_action, self.toggle_action]
                    .iter()
                    .flatten()
                    .map(|(l, _)| *l)
                    .any(|l| {
                        ctx.events_in.is_set(l)
                            && ctx.trace.flow_adopt_wire(ctx.time, self.id, l, "padout")
                    });
                if !wired && !ctx.trace.flow_take_reg_write(ctx.time, self.id, "padout") {
                    ctx.trace.flow_begin(ctx.time, self.id, 0, "padout");
                }
            }
            if let Some((pin, event_line)) = self.watch {
                let rose = changed & self.out & (1 << pin) != 0;
                if rose {
                    ctx.raise(event_line, self.id, "pin_rise");
                }
            }
            self.seen_out = self.out;
        }
    }

    fn idle_hint(&self) -> IdleHint {
        // After a tick the pad state is fully reported (`seen_out` ==
        // `out`); anything that could change it — an action-line pulse or
        // an APB write — is a wake condition.
        if self.out == self.seen_out {
            IdleHint::Idle
        } else {
            IdleHint::Busy
        }
    }

    fn wake_mask(&self) -> EventVector {
        wake_mask_of(&[
            self.set_action.map(|(l, _)| l),
            self.clear_action.map(|(l, _)| l),
            self.toggle_action.map(|(l, _)| l),
        ])
    }

    fn drain_activity(&mut self, into: &mut pels_sim::ActivitySet) {
        self.regs.drain(self.id, into);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testctx::Harness;
    use pels_sim::EventVector;

    #[test]
    fn register_set_clear_toggle() {
        let mut g = Gpio::new("gpio");
        g.write(Gpio::PADOUTSET, 0b1010).unwrap();
        assert_eq!(g.out(), 0b1010);
        g.write(Gpio::PADOUTCLR, 0b0010).unwrap();
        assert_eq!(g.out(), 0b1000);
        g.write(Gpio::PADOUTTGL, 0b1100).unwrap();
        assert_eq!(g.out(), 0b0100);
        assert_eq!(g.read(Gpio::PADOUT).unwrap(), 0b0100);
    }

    #[test]
    fn unknown_offset_errors() {
        let mut g = Gpio::new("gpio");
        assert!(g.read(0x40).is_err());
        assert!(g.write(Gpio::PADIN, 0).is_err()); // PADIN is read-only
    }

    #[test]
    fn input_pads_read_back() {
        let mut g = Gpio::new("gpio");
        g.set_input(0xF0);
        assert_eq!(g.read(Gpio::PADIN).unwrap(), 0xF0);
    }

    #[test]
    fn instant_set_action_applies_on_wired_line() {
        let mut g = Gpio::new("gpio");
        g.wire_set_action(12, 0b1);
        let mut h = Harness::new();
        h.tick(&mut g, EventVector::mask_of(&[12]));
        assert!(g.pin(0));
        // Unrelated line does nothing.
        g.write(Gpio::PADOUTCLR, 1).unwrap();
        h.tick(&mut g, EventVector::mask_of(&[13]));
        assert!(!g.pin(0));
    }

    #[test]
    fn instant_toggle_action_toggles_each_pulse() {
        let mut g = Gpio::new("gpio");
        g.wire_toggle_action(3, 0b10);
        let mut h = Harness::new();
        h.tick(&mut g, EventVector::mask_of(&[3]));
        assert!(g.pin(1));
        h.tick(&mut g, EventVector::mask_of(&[3]));
        assert!(!g.pin(1));
        assert_eq!(g.pad_toggles(), 2);
    }

    #[test]
    fn watched_pin_raises_event_on_rise_only() {
        let mut g = Gpio::new("gpio");
        g.watch_pin(4, 20);
        let mut h = Harness::new();
        g.write(Gpio::PADOUTSET, 1 << 4).unwrap();
        let out = h.tick(&mut g, EventVector::EMPTY);
        assert!(out.is_set(20));
        // Falling edge: no event.
        g.write(Gpio::PADOUTCLR, 1 << 4).unwrap();
        let out = h.tick(&mut g, EventVector::EMPTY);
        assert!(!out.is_set(20));
    }

    #[test]
    fn pad_change_is_traced_for_latency_measurement() {
        let mut g = Gpio::new("gpio");
        let mut h = Harness::new();
        g.write(Gpio::PADOUTSET, 1).unwrap();
        h.tick(&mut g, EventVector::EMPTY);
        assert!(h.trace.first("gpio", "padout").is_some());
    }

    #[test]
    fn drain_activity_reports_reg_accesses() {
        let mut g = Gpio::new("gpio");
        g.write(Gpio::PADOUT, 1).unwrap();
        let _ = g.read(Gpio::PADOUT).unwrap();
        let mut a = pels_sim::ActivitySet::new();
        g.drain_activity(&mut a);
        assert_eq!(a.count("gpio", ActivityKind::RegRead), 1);
        assert_eq!(a.count("gpio", ActivityKind::RegWrite), 1);
    }
}
