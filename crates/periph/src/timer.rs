//! System timer with compare/overflow events.
//!
//! The producer end of the paper's example linking chain ("a periodic
//! timer overflow triggering an ADC conversion", Section I): a prescaled
//! up-counter raising an event pulse on compare match, controllable both
//! over the bus and through single-wire start/stop action lines.

use crate::traits::{wake_mask_of, IdleHint, PeriphCtx, Peripheral, RegAccessCounter};
use pels_interconnect::{ApbSlave, BusError};
use pels_sim::{ActivityKind, ComponentId, EventVector};

/// A 32-bit up-counting timer with prescaler and compare event.
///
/// ## Register map (byte offsets)
///
/// | offset | name    | access | function                              |
/// |-------:|---------|--------|---------------------------------------|
/// | 0x00   | `CTRL`  | RW     | bit0 enable, bit1 one-shot            |
/// | 0x04   | `CMP`   | RW     | compare value (event + wrap on match) |
/// | 0x08   | `VALUE` | RW     | current count (write to preload)      |
/// | 0x0C   | `PRESC` | RW     | prescaler: count every `PRESC+1` cycles |
///
/// ## Event wiring
///
/// * compare match pulses the line set by [`Timer::wire_compare_event`];
/// * a pulse on the [`Timer::wire_start_action`] line enables and restarts
///   the timer; one on [`Timer::wire_stop_action`] disables it.
#[derive(Debug)]
pub struct Timer {
    id: ComponentId,
    enable: bool,
    one_shot: bool,
    cmp: u32,
    value: u32,
    presc: u32,
    presc_count: u32,
    cmp_event_line: Option<u32>,
    start_line: Option<u32>,
    stop_line: Option<u32>,
    regs: RegAccessCounter,
    fires: u64,
}

impl Timer {
    /// `CTRL` byte offset.
    pub const CTRL: u32 = 0x00;
    /// `CMP` byte offset.
    pub const CMP: u32 = 0x04;
    /// `VALUE` byte offset.
    pub const VALUE: u32 = 0x08;
    /// `PRESC` byte offset.
    pub const PRESC: u32 = 0x0C;

    /// `CTRL` enable bit.
    pub const CTRL_ENABLE: u32 = 1 << 0;
    /// `CTRL` one-shot bit.
    pub const CTRL_ONE_SHOT: u32 = 1 << 1;

    /// Creates a timer named `name`, disabled, compare at `u32::MAX`.
    pub fn new(name: impl AsRef<str>) -> Self {
        Timer {
            id: ComponentId::intern(name.as_ref()),
            enable: false,
            one_shot: false,
            cmp: u32::MAX,
            value: 0,
            presc: 0,
            presc_count: 0,
            cmp_event_line: None,
            start_line: None,
            stop_line: None,
            regs: RegAccessCounter::default(),
            fires: 0,
        }
    }

    /// Pulses `line` on compare match.
    pub fn wire_compare_event(&mut self, line: u32) -> &mut Self {
        self.cmp_event_line = Some(line);
        self
    }

    /// Enables + restarts the timer when `line` pulses (instant action).
    pub fn wire_start_action(&mut self, line: u32) -> &mut Self {
        self.start_line = Some(line);
        self
    }

    /// Disables the timer when `line` pulses (instant action).
    pub fn wire_stop_action(&mut self, line: u32) -> &mut Self {
        self.stop_line = Some(line);
        self
    }

    /// Current counter value.
    pub fn value(&self) -> u32 {
        self.value
    }

    /// Whether the timer is running.
    pub fn is_enabled(&self) -> bool {
        self.enable
    }

    /// Number of compare matches since construction.
    pub fn fires(&self) -> u64 {
        self.fires
    }

    fn ctrl_word(&self) -> u32 {
        u32::from(self.enable) | (u32::from(self.one_shot) << 1)
    }

    /// Ticks from now (exclusive) until the tick on which the compare
    /// event fires, given the current post-tick state. The j-th future
    /// tick sees `presc_count + j - 1` (mod `presc+1`) on entry; a count
    /// action happens when that equals `presc`, and the fire is the
    /// `cmp - value + 1`-th action.
    fn ticks_to_fire(&self) -> u64 {
        let period = u64::from(self.presc) + 1;
        let to_first_action = u64::from(self.presc - self.presc_count) + 1;
        let actions_before_fire = u64::from(self.cmp.wrapping_sub(self.value));
        let total = u128::from(to_first_action) + u128::from(actions_before_fire) * u128::from(period);
        u64::try_from(total).unwrap_or(u64::MAX)
    }
}

impl ApbSlave for Timer {
    fn read(&mut self, offset: u32) -> Result<u32, BusError> {
        self.regs.read();
        match offset {
            Self::CTRL => Ok(self.ctrl_word()),
            Self::CMP => Ok(self.cmp),
            Self::VALUE => Ok(self.value),
            Self::PRESC => Ok(self.presc),
            _ => Err(BusError::Slave { addr: offset }),
        }
    }

    fn write(&mut self, offset: u32, value: u32) -> Result<(), BusError> {
        self.regs.write();
        match offset {
            Self::CTRL => {
                self.enable = value & Self::CTRL_ENABLE != 0;
                self.one_shot = value & Self::CTRL_ONE_SHOT != 0;
            }
            Self::CMP => self.cmp = value,
            Self::VALUE => self.value = value,
            Self::PRESC => {
                self.presc = value;
                self.presc_count = 0;
            }
            _ => return Err(BusError::Slave { addr: offset }),
        }
        Ok(())
    }
}

impl Peripheral for Timer {
    fn component(&self) -> ComponentId {
        self.id
    }

    fn tick(&mut self, ctx: &mut PeriphCtx<'_>) {
        if ctx.wired_high(self.start_line) {
            self.enable = true;
            self.value = 0;
            self.presc_count = 0;
        }
        if ctx.wired_high(self.stop_line) {
            self.enable = false;
        }
        if !self.enable {
            return;
        }
        ctx.activity.record(self.id, ActivityKind::ActiveCycle, 1);
        if self.presc_count < self.presc {
            self.presc_count += 1;
            return;
        }
        self.presc_count = 0;
        if self.value == self.cmp {
            self.value = 0;
            self.fires += 1;
            if self.one_shot {
                self.enable = false;
            }
            if let Some(line) = self.cmp_event_line {
                ctx.raise(line, self.id, "compare");
            }
        } else {
            self.value = self.value.wrapping_add(1);
        }
    }

    fn idle_hint(&self) -> IdleHint {
        if !self.enable {
            return IdleHint::Idle;
        }
        // A running timer's only observable action is the compare fire;
        // everything before it (counting, prescaling, ActiveCycle
        // accounting) is reconstructed in closed form by `catch_up`.
        IdleHint::IdleFor(self.ticks_to_fire())
    }

    fn wake_mask(&self) -> EventVector {
        wake_mask_of(&[self.start_line, self.stop_line])
    }

    fn catch_up_is_noop(&self) -> bool {
        !self.enable
    }

    fn catch_up(&mut self, ctx: &mut PeriphCtx<'_>, elapsed: u64) {
        if !self.enable || elapsed == 0 {
            return;
        }
        // Replay `elapsed` eventless ticks in closed form. The scheduler
        // guarantees the skipped span ends before `ticks_to_fire`, so no
        // compare match can occur inside it.
        ctx.activity.record(self.id, ActivityKind::ActiveCycle, elapsed);
        let period = u64::from(self.presc) + 1;
        let total = u64::from(self.presc_count) + elapsed;
        let actions = total / period;
        self.presc_count = (total % period) as u32;
        debug_assert!(
            actions <= u64::from(self.cmp.wrapping_sub(self.value)),
            "timer catch-up skipped across a compare fire"
        );
        self.value = self.value.wrapping_add(actions as u32);
    }

    fn drain_activity(&mut self, into: &mut pels_sim::ActivitySet) {
        self.regs.drain(self.id, into);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testctx::Harness;
    use pels_sim::EventVector;

    fn enabled_timer(cmp: u32) -> Timer {
        let mut t = Timer::new("timer");
        t.write(Timer::CMP, cmp).unwrap();
        t.write(Timer::CTRL, Timer::CTRL_ENABLE).unwrap();
        t.wire_compare_event(9);
        t
    }

    #[test]
    fn counts_up_when_enabled() {
        let mut t = enabled_timer(100);
        let mut h = Harness::new();
        h.run(&mut t, 5);
        assert_eq!(t.value(), 5);
    }

    #[test]
    fn disabled_timer_holds() {
        let mut t = Timer::new("timer");
        let mut h = Harness::new();
        h.run(&mut t, 5);
        assert_eq!(t.value(), 0);
    }

    #[test]
    fn compare_match_pulses_and_wraps() {
        let mut t = enabled_timer(3);
        let mut h = Harness::new();
        // Reaches 3 after 3 ticks; the 4th tick fires and wraps.
        let out = h.run(&mut t, 4);
        assert!(out.is_set(9));
        assert_eq!(t.value(), 0);
        assert_eq!(t.fires(), 1);
        // Periodic: fires again after another 4 ticks.
        let out = h.run(&mut t, 4);
        assert!(out.is_set(9));
        assert_eq!(t.fires(), 2);
    }

    #[test]
    fn one_shot_fires_once() {
        let mut t = Timer::new("timer");
        t.write(Timer::CMP, 1).unwrap();
        t.write(Timer::CTRL, Timer::CTRL_ENABLE | Timer::CTRL_ONE_SHOT)
            .unwrap();
        t.wire_compare_event(9);
        let mut h = Harness::new();
        let out = h.run(&mut t, 10);
        assert!(out.is_set(9));
        assert_eq!(t.fires(), 1);
        assert!(!t.is_enabled());
    }

    #[test]
    fn prescaler_slows_counting() {
        let mut t = enabled_timer(100);
        t.write(Timer::PRESC, 3).unwrap(); // count every 4 cycles
        let mut h = Harness::new();
        h.run(&mut t, 8);
        assert_eq!(t.value(), 2);
    }

    #[test]
    fn start_stop_action_lines() {
        let mut t = Timer::new("timer");
        t.write(Timer::CMP, 100).unwrap();
        t.wire_start_action(4).wire_stop_action(5);
        let mut h = Harness::new();
        h.tick(&mut t, EventVector::mask_of(&[4]));
        assert!(t.is_enabled());
        h.run(&mut t, 3);
        assert_eq!(t.value(), 4); // start tick counts too
        h.tick(&mut t, EventVector::mask_of(&[5]));
        assert!(!t.is_enabled());
        // Restart resets the count.
        h.tick(&mut t, EventVector::mask_of(&[4]));
        assert_eq!(t.value(), 1);
    }

    #[test]
    fn register_readback() {
        let mut t = Timer::new("timer");
        t.write(Timer::CMP, 55).unwrap();
        t.write(Timer::VALUE, 7).unwrap();
        t.write(Timer::PRESC, 2).unwrap();
        assert_eq!(t.read(Timer::CMP).unwrap(), 55);
        assert_eq!(t.read(Timer::VALUE).unwrap(), 7);
        assert_eq!(t.read(Timer::PRESC).unwrap(), 2);
        assert!(t.read(0x20).is_err());
    }
}
