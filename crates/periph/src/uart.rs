//! UART transmitter.
//!
//! A secondary peripheral rounding out the SoC: the paper's SoC inventory
//! (PULPissimo) carries a UART among its I/O set, and the examples use it
//! as a *sequenced-action* target — PELS can emit an alert byte without
//! waking the core.

use crate::traits::{IdleHint, PeriphCtx, Peripheral, RegAccessCounter};
use crate::udma::UdmaTxChannel;
use pels_interconnect::{ApbSlave, BusError};
use pels_sim::{ActivityKind, ComponentId, EventVector, Fifo};

/// A TX-only UART with a small FIFO and a fixed per-byte cycle cost.
///
/// ## Register map (byte offsets)
///
/// | offset | name     | access | function                              |
/// |-------:|----------|--------|----------------------------------------|
/// | 0x00   | `TXDATA` | WO     | enqueue a byte for transmission        |
/// | 0x04   | `STATUS` | RO     | bit0 busy, bits\[15:8\] TX FIFO level  |
/// | 0x08   | `CLKDIV` | RW     | cycles per byte (≥1)                   |
/// | 0x0C   | `UDMA_SADDR` | RW | TX µDMA source address in L2           |
/// | 0x10   | `UDMA_SIZE`  | WO | arm TX µDMA with N bytes (starts send) |
///
/// [`Uart::wire_tx_done_event`] pulses when the transmitter fully drains.
/// The TX µDMA channel lets one register write launch a whole message
/// from an L2 buffer — which means a single PELS *sequenced action* can
/// emit a multi-byte alert with the core asleep.
#[derive(Debug)]
pub struct Uart {
    id: ComponentId,
    tx_fifo: Fifo<u8>,
    clkdiv: u32,
    cycle_in_byte: u32,
    sending: Option<u8>,
    sent: Vec<u8>,
    done_line: Option<u32>,
    regs: RegAccessCounter,
    udma: UdmaTxChannel,
    udma_saddr: u32,
    udma_bytes_left: u32,
    udma_word: u32,
    udma_word_bytes: u32,
}

impl Uart {
    /// `TXDATA` byte offset.
    pub const TXDATA: u32 = 0x00;
    /// `STATUS` byte offset.
    pub const STATUS: u32 = 0x04;
    /// `CLKDIV` byte offset.
    pub const CLKDIV: u32 = 0x08;
    /// `UDMA_SADDR` byte offset.
    pub const UDMA_SADDR: u32 = 0x0C;
    /// `UDMA_SIZE` byte offset.
    pub const UDMA_SIZE: u32 = 0x10;

    /// Creates a UART with FIFO depth 16 and 10 cycles per byte (8N1
    /// framing at clk/1).
    pub fn new(name: impl AsRef<str>) -> Self {
        Uart {
            id: ComponentId::intern(name.as_ref()),
            tx_fifo: Fifo::new(16),
            clkdiv: 10,
            cycle_in_byte: 0,
            sending: None,
            sent: Vec::new(),
            done_line: None,
            regs: RegAccessCounter::default(),
            udma: UdmaTxChannel::new(),
            udma_saddr: 0,
            udma_bytes_left: 0,
            udma_word: 0,
            udma_word_bytes: 0,
        }
    }

    /// Pulses `line` when the transmitter drains.
    pub fn wire_tx_done_event(&mut self, line: u32) -> &mut Self {
        self.done_line = Some(line);
        self
    }

    /// Whether a byte is on the wire or queued.
    pub fn is_busy(&self) -> bool {
        self.sending.is_some() || !self.tx_fifo.is_empty() || self.udma_bytes_left > 0
    }

    /// Everything transmitted so far (test observation point).
    pub fn sent(&self) -> &[u8] {
        &self.sent
    }
}

impl ApbSlave for Uart {
    fn read(&mut self, offset: u32) -> Result<u32, BusError> {
        self.regs.read();
        match offset {
            Self::STATUS => {
                Ok(u32::from(self.is_busy()) | ((self.tx_fifo.len() as u32) << 8))
            }
            Self::CLKDIV => Ok(self.clkdiv),
            Self::UDMA_SADDR => Ok(self.udma_saddr),
            _ => Err(BusError::Slave { addr: offset }),
        }
    }

    fn write(&mut self, offset: u32, value: u32) -> Result<(), BusError> {
        self.regs.write();
        match offset {
            Self::TXDATA => {
                self.tx_fifo
                    .push(value as u8)
                    .map_err(|_| BusError::Slave { addr: offset })
            }
            Self::CLKDIV => {
                if value == 0 {
                    return Err(BusError::Slave { addr: offset });
                }
                self.clkdiv = value;
                Ok(())
            }
            Self::UDMA_SADDR => {
                self.udma_saddr = value;
                Ok(())
            }
            Self::UDMA_SIZE => {
                self.udma.configure(self.udma_saddr, value);
                self.udma_bytes_left = value;
                self.udma_word_bytes = 0;
                Ok(())
            }
            _ => Err(BusError::Slave { addr: offset }),
        }
    }
}

impl Peripheral for Uart {
    fn component(&self) -> ComponentId {
        self.id
    }

    fn tick(&mut self, ctx: &mut PeriphCtx<'_>) {
        // Refill the TX FIFO from the armed µDMA buffer.
        while self.udma_bytes_left > 0 && !self.tx_fifo.is_full() {
            if self.udma_word_bytes == 0 {
                match self.udma.pull_word(ctx.l2) {
                    Some(w) => {
                        self.udma_word = w;
                        self.udma_word_bytes = 4;
                    }
                    None => {
                        self.udma_bytes_left = 0;
                        break;
                    }
                }
            }
            let byte = (self.udma_word & 0xFF) as u8;
            self.udma_word >>= 8;
            self.udma_word_bytes -= 1;
            self.udma_bytes_left -= 1;
            let _ = self.tx_fifo.push(byte);
        }
        if self.sending.is_none() {
            self.sending = self.tx_fifo.pop();
            self.cycle_in_byte = 0;
        }
        let Some(byte) = self.sending else {
            return;
        };
        ctx.activity.record(self.id, ActivityKind::ActiveCycle, 1);
        self.cycle_in_byte += 1;
        if self.cycle_in_byte >= self.clkdiv {
            self.sent.push(byte);
            ctx.trace.record(ctx.time, self.id, "tx", u64::from(byte));
            self.sending = None;
            if self.tx_fifo.is_empty() {
                if let Some(line) = self.done_line {
                    ctx.raise(line, self.id, "tx_done");
                }
            }
        }
    }

    fn idle_hint(&self) -> IdleHint {
        // A transmitting UART counts ActiveCycle per cycle; a drained one
        // has no wired inputs and only wakes on a register access.
        if self.is_busy() {
            IdleHint::Busy
        } else {
            IdleHint::Idle
        }
    }

    fn wake_mask(&self) -> EventVector {
        EventVector::EMPTY
    }

    fn drain_activity(&mut self, into: &mut pels_sim::ActivitySet) {
        self.regs.drain(self.id, into);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testctx::Harness;

    #[test]
    fn transmits_bytes_in_order() {
        let mut u = Uart::new("uart");
        u.write(Uart::TXDATA, b'h'.into()).unwrap();
        u.write(Uart::TXDATA, b'i'.into()).unwrap();
        let mut h = Harness::new();
        h.run(&mut u, 20);
        assert_eq!(u.sent(), b"hi");
        assert!(!u.is_busy());
    }

    #[test]
    fn done_event_pulses_when_drained() {
        let mut u = Uart::new("uart");
        u.wire_tx_done_event(8);
        u.write(Uart::TXDATA, 0x55).unwrap();
        let mut h = Harness::new();
        let out = h.run(&mut u, 10);
        assert!(out.is_set(8));
    }

    #[test]
    fn byte_takes_clkdiv_cycles() {
        let mut u = Uart::new("uart");
        u.write(Uart::CLKDIV, 4).unwrap();
        u.write(Uart::TXDATA, 1).unwrap();
        let mut h = Harness::new();
        h.run(&mut u, 3);
        assert!(u.is_busy());
        h.run(&mut u, 1);
        assert!(!u.is_busy());
    }

    #[test]
    fn full_fifo_rejects_write() {
        let mut u = Uart::new("uart");
        for i in 0..16 {
            u.write(Uart::TXDATA, i).unwrap();
        }
        assert!(u.write(Uart::TXDATA, 99).is_err());
    }

    #[test]
    fn udma_transmits_message_from_l2() {
        let mut u = Uart::new("uart");
        u.wire_tx_done_event(8);
        u.write(Uart::CLKDIV, 2).unwrap();
        let mut h = Harness::new();
        // "hello" packed little-endian into L2 at 0x20.
        h.l2.load(0x20, &[u32::from_le_bytes(*b"hell"), u32::from_le_bytes([b'o', 0, 0, 0])]);
        u.write(Uart::UDMA_SADDR, 0x20).unwrap();
        u.write(Uart::UDMA_SIZE, 5).unwrap(); // exact byte count
        let out = h.run(&mut u, 5 * 2 + 4);
        assert_eq!(u.sent(), b"hello");
        assert!(out.is_set(8), "done event after the message drains");
        assert!(!u.is_busy());
    }

    #[test]
    fn udma_message_interleaves_with_register_bytes() {
        let mut u = Uart::new("uart");
        u.write(Uart::CLKDIV, 1).unwrap();
        let mut h = Harness::new();
        h.l2.load(0, &[u32::from_le_bytes(*b"ab\0\0")]);
        u.write(Uart::UDMA_SADDR, 0).unwrap();
        u.write(Uart::UDMA_SIZE, 2).unwrap();
        h.run(&mut u, 4);
        u.write(Uart::TXDATA, b'c'.into()).unwrap();
        h.run(&mut u, 4);
        assert_eq!(u.sent(), b"abc");
    }

    #[test]
    fn status_reports_level() {
        let mut u = Uart::new("uart");
        u.write(Uart::TXDATA, 1).unwrap();
        u.write(Uart::TXDATA, 2).unwrap();
        let st = u.read(Uart::STATUS).unwrap();
        assert_eq!(st & 1, 1);
        assert_eq!((st >> 8) & 0xFF, 2);
    }
}
