//! I2C master.
//!
//! PULPissimo's µDMA peripheral set includes an I2C master; it rounds
//! out this SoC's serial I/O next to the SPI front-end and gives the
//! examples a second, slower sensor path (I2C transactions cost tens of
//! cycles — exactly the kind of peripheral interaction worth offloading
//! from the core).
//!
//! The model executes whole transactions (START + address + N data
//! bytes + STOP) against an attached [`I2cDevice`], with a per-bit
//! cycle cost, ACK/NACK handling and completion/error event pulses.

use crate::sensor::Quantizer;
use crate::traits::{wake_mask_of, IdleHint, PeriphCtx, Peripheral, RegAccessCounter};
use pels_interconnect::{ApbSlave, BusError};
use pels_sim::{ActivityKind, ComponentId, EventVector, Fifo, SimTime};
use std::fmt;

/// A device on the I2C bus.
///
/// `Send` is a supertrait: I2C masters (and the SoCs that own them) cross
/// thread boundaries in batch sweeps.
pub trait I2cDevice: Send {
    /// The device's 7-bit address.
    fn address(&self) -> u8;

    /// Handles a written byte (register pointer or data).
    fn write_byte(&mut self, byte: u8, time: SimTime);

    /// Produces the next read byte.
    fn read_byte(&mut self, time: SimTime) -> u8;
}

/// An I2C temperature-sensor-style device: writes select nothing, reads
/// return the quantized sample, high byte first (big-endian, like most
/// I2C sensors).
pub struct SensorDevice {
    address: u8,
    quantizer: Quantizer,
    pending: Option<u8>,
}

impl SensorDevice {
    /// Creates a sensor at `address` digitizing `quantizer`.
    ///
    /// # Panics
    ///
    /// Panics if `address` is not a valid 7-bit address.
    pub fn new(address: u8, quantizer: Quantizer) -> Self {
        assert!(address < 0x80, "i2c addresses are 7 bits");
        SensorDevice {
            address,
            quantizer,
            pending: None,
        }
    }
}

impl fmt::Debug for SensorDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SensorDevice")
            .field("address", &self.address)
            .finish_non_exhaustive()
    }
}

impl I2cDevice for SensorDevice {
    fn address(&self) -> u8 {
        self.address
    }

    fn write_byte(&mut self, _byte: u8, _time: SimTime) {}

    fn read_byte(&mut self, time: SimTime) -> u8 {
        match self.pending.take() {
            Some(low) => low,
            None => {
                let sample = self.quantizer.convert(time);
                self.pending = Some((sample & 0xFF) as u8);
                ((sample >> 8) & 0xFF) as u8
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Read,
    Write,
}

#[derive(Debug, Clone, Copy)]
struct Transaction {
    op: Op,
    bytes: u8,
}

/// The I2C master peripheral.
///
/// ## Register map (byte offsets)
///
/// | offset | name     | access | function                                   |
/// |-------:|----------|--------|--------------------------------------------|
/// | 0x00   | `STATUS` | RO     | bit0 busy, bit1 nack, bits\[15:8\] RX level |
/// | 0x04   | `CMD`    | WO     | bits\[6:0\] address, bit7 read, bits\[15:8\] byte count: starts a transaction |
/// | 0x08   | `TXDATA` | WO     | enqueue a byte for the next write           |
/// | 0x0C   | `RXDATA` | RO     | pop received byte (0 when empty)            |
/// | 0x10   | `CLKDIV` | RW     | bus-clock cycles per I2C bit (≥1)           |
/// | 0x14   | `LAST16` | RO     | last two received bytes, big-endian (no side effect) |
///
/// `LAST16` plays the role SPI's `LAST` does: a PELS `capture` can read
/// the most recent big-endian sample without disturbing the FIFO.
///
/// ## Event wiring
///
/// * [`I2c::wire_done_event`] — pulses when a transaction completes;
/// * [`I2c::wire_nack_event`] — pulses when the address is not
///   acknowledged;
/// * [`I2c::wire_start_action`] — an incoming pulse repeats the last
///   `CMD` transaction (instant-action start).
pub struct I2c {
    id: ComponentId,
    devices: Vec<Box<dyn I2cDevice>>,
    clkdiv: u32,
    current: Option<Transaction>,
    bits_left: u32,
    cycle_in_bit: u32,
    bytes_left: u8,
    target: Option<usize>,
    last_cmd: u32,
    tx_fifo: Fifo<u8>,
    rx_fifo: Fifo<u8>,
    last16: u16,
    nack: bool,
    done_line: Option<u32>,
    nack_line: Option<u32>,
    start_line: Option<u32>,
    regs: RegAccessCounter,
    transactions: u64,
}

impl fmt::Debug for I2c {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("I2c")
            .field("name", &self.id.name())
            .field("busy", &self.is_busy())
            .field("devices", &self.devices.len())
            .field("transactions", &self.transactions)
            .finish_non_exhaustive()
    }
}

/// Bits on the wire per byte: 8 data + ACK.
const BITS_PER_BYTE: u32 = 9;
/// Bit-times charged for START + address byte + ACK.
const ADDRESS_BITS: u32 = 1 + 9;
/// Bit-times charged for STOP.
const STOP_BITS: u32 = 1;

impl I2c {
    /// `STATUS` byte offset.
    pub const STATUS: u32 = 0x00;
    /// `CMD` byte offset.
    pub const CMD: u32 = 0x04;
    /// `TXDATA` byte offset.
    pub const TXDATA: u32 = 0x08;
    /// `RXDATA` byte offset.
    pub const RXDATA: u32 = 0x0C;
    /// `CLKDIV` byte offset.
    pub const CLKDIV: u32 = 0x10;
    /// `LAST16` byte offset.
    pub const LAST16: u32 = 0x14;

    /// `CMD` read flag (bit 7).
    pub const CMD_READ: u32 = 1 << 7;

    /// Creates a master with no devices, 4 cycles per bit.
    pub fn new(name: impl AsRef<str>) -> Self {
        I2c {
            id: ComponentId::intern(name.as_ref()),
            devices: Vec::new(),
            clkdiv: 4,
            current: None,
            bits_left: 0,
            cycle_in_bit: 0,
            bytes_left: 0,
            target: None,
            last_cmd: 0,
            tx_fifo: Fifo::new(8),
            rx_fifo: Fifo::new(8),
            last16: 0,
            nack: false,
            done_line: None,
            nack_line: None,
            start_line: None,
            regs: RegAccessCounter::default(),
            transactions: 0,
        }
    }

    /// Attaches a device to the bus.
    pub fn attach(&mut self, device: Box<dyn I2cDevice>) -> &mut Self {
        self.devices.push(device);
        self
    }

    /// Pulses `line` on transaction completion.
    pub fn wire_done_event(&mut self, line: u32) -> &mut Self {
        self.done_line = Some(line);
        self
    }

    /// Pulses `line` on an unacknowledged address.
    pub fn wire_nack_event(&mut self, line: u32) -> &mut Self {
        self.nack_line = Some(line);
        self
    }

    /// Repeats the last `CMD` transaction when `line` pulses.
    pub fn wire_start_action(&mut self, line: u32) -> &mut Self {
        self.start_line = Some(line);
        self
    }

    /// Whether a transaction is on the wire.
    pub fn is_busy(&self) -> bool {
        self.current.is_some()
    }

    /// Completed transactions.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// The last two received bytes, big-endian.
    pub fn last16(&self) -> u16 {
        self.last16
    }

    /// Presets the transaction repeated by the start action line without
    /// issuing it (bus-less configuration convenience, like
    /// [`crate::Spi::set_default_len`]).
    pub fn set_default_cmd(&mut self, cmd: u32) -> &mut Self {
        self.last_cmd = cmd;
        self
    }

    fn start(&mut self, cmd: u32) {
        if self.is_busy() {
            return;
        }
        let address = (cmd & 0x7F) as u8;
        let bytes = ((cmd >> 8) & 0xFF) as u8;
        if bytes == 0 {
            return;
        }
        let op = if cmd & Self::CMD_READ != 0 {
            Op::Read
        } else {
            Op::Write
        };
        self.last_cmd = cmd;
        self.target = self.devices.iter().position(|d| d.address() == address);
        self.nack = self.target.is_none();
        self.current = Some(Transaction { op, bytes });
        self.bytes_left = bytes;
        // The address phase runs even when nobody ACKs (that is how the
        // master discovers the NACK).
        self.bits_left = ADDRESS_BITS
            + if self.nack {
                STOP_BITS
            } else {
                u32::from(bytes) * BITS_PER_BYTE + STOP_BITS
            };
        self.cycle_in_bit = 0;
    }
}

impl ApbSlave for I2c {
    fn read(&mut self, offset: u32) -> Result<u32, BusError> {
        self.regs.read();
        match offset {
            Self::STATUS => Ok(u32::from(self.is_busy())
                | (u32::from(self.nack) << 1)
                | ((self.rx_fifo.len() as u32) << 8)),
            Self::RXDATA => Ok(u32::from(self.rx_fifo.pop().unwrap_or(0))),
            Self::CLKDIV => Ok(self.clkdiv),
            Self::LAST16 => Ok(u32::from(self.last16)),
            _ => Err(BusError::Slave { addr: offset }),
        }
    }

    fn write(&mut self, offset: u32, value: u32) -> Result<(), BusError> {
        self.regs.write();
        match offset {
            Self::CMD => {
                self.start(value);
                Ok(())
            }
            Self::TXDATA => self
                .tx_fifo
                .push(value as u8)
                .map_err(|_| BusError::Slave { addr: offset }),
            Self::CLKDIV => {
                if value == 0 {
                    return Err(BusError::Slave { addr: offset });
                }
                self.clkdiv = value;
                Ok(())
            }
            _ => Err(BusError::Slave { addr: offset }),
        }
    }
}

impl Peripheral for I2c {
    fn component(&self) -> ComponentId {
        self.id
    }

    fn tick(&mut self, ctx: &mut PeriphCtx<'_>) {
        if ctx.wired_high(self.start_line) && self.last_cmd != 0 {
            self.start(self.last_cmd);
        }
        let Some(txn) = self.current else {
            return;
        };
        ctx.activity.record(self.id, ActivityKind::ActiveCycle, 1);
        self.cycle_in_bit += 1;
        if self.cycle_in_bit < self.clkdiv {
            return;
        }
        self.cycle_in_bit = 0;
        self.bits_left -= 1;

        // A data byte completes every BITS_PER_BYTE bit-times after the
        // address phase (while bits for data remain).
        let data_bits_left = self.bits_left.saturating_sub(STOP_BITS);
        let in_data_phase = !self.nack
            && self.bits_left >= STOP_BITS
            && data_bits_left < u32::from(txn.bytes) * BITS_PER_BYTE;
        if in_data_phase && data_bits_left.is_multiple_of(BITS_PER_BYTE) && self.bytes_left > 0
        {
            let device = self
                .target
                .expect("data phase only entered with an acked target");
            match txn.op {
                Op::Read => {
                    let byte = self.devices[device].read_byte(ctx.time);
                    self.last16 = (self.last16 << 8) | u16::from(byte);
                    let _ = self.rx_fifo.push(byte);
                }
                Op::Write => {
                    let byte = self.tx_fifo.pop().unwrap_or(0);
                    self.devices[device].write_byte(byte, ctx.time);
                }
            }
            self.bytes_left -= 1;
        }

        if self.bits_left == 0 {
            self.current = None;
            self.transactions += 1;
            if self.nack {
                if let Some(line) = self.nack_line {
                    ctx.raise(line, self.id, "nack");
                }
            } else if let Some(line) = self.done_line {
                ctx.raise(line, self.id, "done");
            }
        }
    }

    fn idle_hint(&self) -> IdleHint {
        // Bit-banging a transaction counts ActiveCycle each cycle, so a
        // busy master stays awake; an idle one waits for its start line
        // or a CMD write.
        if self.is_busy() {
            IdleHint::Busy
        } else {
            IdleHint::Idle
        }
    }

    fn wake_mask(&self) -> EventVector {
        wake_mask_of(&[self.start_line])
    }

    fn drain_activity(&mut self, into: &mut pels_sim::ActivitySet) {
        self.regs.drain(self.id, into);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor::Constant;
    use crate::testctx::Harness;
    use pels_sim::EventVector;

    fn master_with_sensor() -> I2c {
        let q = Quantizer::new(Box::new(Constant(3.3)), 12, 0.0, 3.3);
        let mut m = I2c::new("i2c");
        m.attach(Box::new(SensorDevice::new(0x48, q)));
        m.wire_done_event(7).wire_nack_event(8);
        m.write(I2c::CLKDIV, 1).unwrap();
        m
    }

    fn read_cmd(addr: u8, bytes: u8) -> u32 {
        u32::from(addr) | I2c::CMD_READ | (u32::from(bytes) << 8)
    }

    #[test]
    fn read_transaction_delivers_big_endian_sample() {
        let mut m = master_with_sensor();
        m.write(I2c::CMD, read_cmd(0x48, 2)).unwrap();
        assert!(m.is_busy());
        let mut h = Harness::new();
        // 10 addr bits + 18 data bits + 1 stop = 29 bit-times at clkdiv 1.
        let out = h.run(&mut m, 29);
        assert!(out.is_set(7), "done event");
        assert!(!m.is_busy());
        assert_eq!(m.last16(), 4095, "full-scale 12-bit sample");
        assert_eq!(m.read(I2c::RXDATA).unwrap(), 0x0F); // high byte
        assert_eq!(m.read(I2c::RXDATA).unwrap(), 0xFF); // low byte
    }

    #[test]
    fn unknown_address_nacks() {
        let mut m = master_with_sensor();
        m.write(I2c::CMD, read_cmd(0x10, 2)).unwrap();
        let mut h = Harness::new();
        let out = h.run(&mut m, 11); // addr phase + stop
        assert!(out.is_set(8), "nack event");
        assert!(!out.is_set(7));
        assert_eq!(m.read(I2c::STATUS).unwrap() & 0b10, 0b10, "nack flag");
        assert_eq!(m.rx_fifo.len(), 0);
    }

    #[test]
    fn clkdiv_scales_transaction_time() {
        let mut m = master_with_sensor();
        m.write(I2c::CLKDIV, 4).unwrap();
        m.write(I2c::CMD, read_cmd(0x48, 1)).unwrap();
        let mut h = Harness::new();
        // (10 + 9 + 1) bit-times x 4 cycles = 80.
        h.run(&mut m, 79);
        assert!(m.is_busy());
        let out = h.run(&mut m, 1);
        assert!(out.is_set(7));
    }

    #[test]
    fn write_transaction_consumes_tx_fifo() {
        struct Sink {
            got: Vec<u8>,
        }
        impl I2cDevice for Sink {
            fn address(&self) -> u8 {
                0x22
            }
            fn write_byte(&mut self, byte: u8, _t: SimTime) {
                self.got.push(byte);
            }
            fn read_byte(&mut self, _t: SimTime) -> u8 {
                0
            }
        }
        let mut m = I2c::new("i2c");
        m.attach(Box::new(Sink { got: Vec::new() }));
        m.write(I2c::CLKDIV, 1).unwrap();
        m.write(I2c::TXDATA, 0xAA).unwrap();
        m.write(I2c::TXDATA, 0x55).unwrap();
        m.write(I2c::CMD, 0x22 | (2 << 8)).unwrap();
        let mut h = Harness::new();
        h.run(&mut m, 29);
        let sink = m.devices[0].as_ref() as *const dyn I2cDevice;
        // Safe downcast-free check via transactions counter + fifo state.
        let _ = sink;
        assert_eq!(m.transactions(), 1);
        assert_eq!(m.tx_fifo.len(), 0, "both bytes consumed");
    }

    #[test]
    fn action_line_repeats_last_command() {
        let mut m = master_with_sensor();
        m.wire_start_action(3);
        m.set_default_cmd(read_cmd(0x48, 1));
        let mut h = Harness::new();
        h.tick(&mut m, EventVector::mask_of(&[3]));
        assert!(m.is_busy());
        let out = h.run(&mut m, 25);
        assert!(out.is_set(7));
        assert_eq!(m.transactions(), 1);
    }

    #[test]
    fn zero_byte_command_ignored() {
        let mut m = master_with_sensor();
        m.write(I2c::CMD, 0x48).unwrap(); // 0 bytes
        assert!(!m.is_busy());
    }

    #[test]
    fn status_reflects_rx_level() {
        let mut m = master_with_sensor();
        m.write(I2c::CMD, read_cmd(0x48, 2)).unwrap();
        let mut h = Harness::new();
        h.run(&mut m, 29);
        let st = m.read(I2c::STATUS).unwrap();
        assert_eq!((st >> 8) & 0xFF, 2);
        assert_eq!(st & 1, 0);
    }
}
