//! The peripheral contract and per-cycle context.

use crate::l2::L2Memory;
use pels_interconnect::ApbSlave;
use pels_sim::{ActivitySet, ComponentId, EventVector, SimTime, Trace};

/// Everything a peripheral can see and touch during one clock cycle.
///
/// The SoC harness constructs one `PeriphCtx` per cycle and threads it
/// through every peripheral's [`Peripheral::tick`]:
///
/// * [`PeriphCtx::events_in`] carries the event wires sampled at the start
///   of the cycle — PELS action lines and peripheral pulses from the
///   previous cycle (event outputs are registered, as in the RTL);
/// * pulses raised via [`PeriphCtx::raise`] become visible to PELS in this
///   same cycle (PELS's trigger units sample after the peripherals run) and
///   to other peripherals in the next one;
/// * [`PeriphCtx::l2`] is the shared L2 scratchpad the µDMA channels land
///   sensor data in.
pub struct PeriphCtx<'a> {
    /// Bus-clock cycle index.
    pub cycle: u64,
    /// Absolute simulation time at this cycle's edge.
    pub time: SimTime,
    /// Sampled incoming event wires.
    pub events_in: EventVector,
    /// Pulses raised during this cycle (accumulated across peripherals).
    pub events_out: EventVector,
    /// The L2 memory µDMA channels transfer to/from.
    pub l2: &'a mut L2Memory,
    /// Switching-activity sink.
    pub activity: &'a mut ActivitySet,
    /// Event trace for latency measurements.
    pub trace: &'a mut Trace,
}

impl<'a> PeriphCtx<'a> {
    /// Raises an event pulse on global line `line` and records it both in
    /// the trace (as `source.label`) and as switching activity.
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64`.
    pub fn raise(&mut self, line: u32, source: ComponentId, label: &'static str) {
        self.events_out.set(line);
        self.trace.record(self.time, source, label, u64::from(line));
        // Causal flow: propagate the peripheral's adopted context, or mint
        // a fresh flow if it has none (this raise *is* the originating
        // stimulus). One branch when flows are off.
        self.trace.flow_raise(self.time, source, line, label);
        self.activity
            .record(source, pels_sim::ActivityKind::EventPulse, 1);
    }

    /// Whether incoming event wire `line` is active this cycle. `None`
    /// lines (unwired) read as inactive.
    pub fn wired_high(&self, line: Option<u32>) -> bool {
        line.map(|l| self.events_in.is_set(l)).unwrap_or(false)
    }
}

/// A peripheral's scheduling hint: whether skipping its next ticks would
/// change anything observable.
///
/// Returned by [`Peripheral::idle_hint`] after every tick. The contract a
/// hint certifies: *if no wake condition occurs* (no wire in
/// [`Peripheral::wake_mask`] pulses, no bus access targets the
/// peripheral), ticking it during the covered cycles would leave its
/// architectural state, its activity counters, its trace output and its
/// event pulses exactly as not ticking it — except for whatever the
/// peripheral itself reconstructs in [`Peripheral::catch_up`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleHint {
    /// Must be ticked every cycle.
    Busy,
    /// The next `n - 1` cycles may be skipped; the peripheral must be
    /// ticked on the `n`-th cycle after the one that produced this hint
    /// (its next self-driven observable action, e.g. a timer compare
    /// fire).
    IdleFor(u64),
    /// May be skipped indefinitely; only a wake condition makes it
    /// observable again.
    Idle,
}

/// A memory-mapped peripheral participating in the event system.
///
/// Implementors are APB slaves (the *sequenced action* interface) and are
/// ticked once per cycle (the *instant action* interface plus any internal
/// behaviour: counters, shift registers, µDMA engines, ...).
///
/// `Send` is a supertrait: SoCs hold peripherals as `Box<dyn Peripheral>`
/// and must migrate whole to fleet worker threads. All state a peripheral
/// owns (registers, FIFOs, µDMA engines, seeded RNGs) is plain data, so
/// the bound costs implementors nothing.
pub trait Peripheral: ApbSlave + Send {
    /// Stable instance name used in traces and activity reports.
    fn name(&self) -> &str {
        self.component().name()
    }

    /// Interned id of [`Peripheral::name`] — the key hot paths record
    /// activity and trace entries under.
    fn component(&self) -> ComponentId;

    /// Advances the peripheral by one clock cycle.
    fn tick(&mut self, ctx: &mut PeriphCtx<'_>);

    /// Scheduling hint for the cycles after the most recent tick (or
    /// register access). The default — [`IdleHint::Busy`] — is always
    /// safe: the harness simply ticks the peripheral every cycle.
    fn idle_hint(&self) -> IdleHint {
        IdleHint::Busy
    }

    /// Event wires that must wake this peripheral when pulsed (its wired
    /// instant-action inputs). Only consulted while the peripheral is
    /// skipped; the default wakes on any line, which is always safe.
    fn wake_mask(&self) -> EventVector {
        EventVector::ALL
    }

    /// Reconstructs the effect of `elapsed` skipped cycles, called
    /// immediately before the tick that ends a skip. Peripherals whose
    /// skipped ticks are pure no-ops (the common case) keep the default;
    /// peripherals that count while "idle" (timer, watchdog) advance
    /// their counters and activity in closed form here.
    fn catch_up(&mut self, ctx: &mut PeriphCtx<'_>, elapsed: u64) {
        let _ = (ctx, elapsed);
    }

    /// Whether [`Peripheral::catch_up`] would currently do nothing — no
    /// state, activity or trace change for any `elapsed`. The scheduler
    /// samples this when the peripheral goes idle (nothing can mutate a
    /// skipped peripheral, so the answer stays valid for the whole skip)
    /// and elides the per-sync `catch_up` call for such "lazy" sleepers.
    /// Must be `false` whenever `catch_up` is overridden with live state
    /// (e.g. an enabled free-running counter); the default matches the
    /// default no-op `catch_up`.
    fn catch_up_is_noop(&self) -> bool {
        true
    }

    /// Harvests internally counted activity (register-file accesses
    /// observed through the APB interface since the last drain).
    fn drain_activity(&mut self, into: &mut ActivitySet);

    /// Concrete-type access for harnesses holding peripherals as trait
    /// objects.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable concrete-type access.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Builds the wake mask for a set of optional wired input lines.
pub fn wake_mask_of(lines: &[Option<u32>]) -> EventVector {
    let mut v = EventVector::EMPTY;
    for l in lines.iter().flatten() {
        v.set(*l);
    }
    v
}

/// Small helper all peripherals use to count their APB register accesses;
/// drained into the global [`ActivitySet`] once per measurement window.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegAccessCounter {
    /// Register reads observed.
    pub reads: u64,
    /// Register writes observed.
    pub writes: u64,
}

impl RegAccessCounter {
    /// Counts a register read.
    pub fn read(&mut self) {
        self.reads += 1;
    }

    /// Counts a register write.
    pub fn write(&mut self) {
        self.writes += 1;
    }

    /// Drains the counts into `into` under `component`.
    pub fn drain(&mut self, component: ComponentId, into: &mut ActivitySet) {
        into.record(component, pels_sim::ActivityKind::RegRead, self.reads);
        into.record(component, pels_sim::ActivityKind::RegWrite, self.writes);
        self.reads = 0;
        self.writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_fixture<'a>(
        l2: &'a mut L2Memory,
        activity: &'a mut ActivitySet,
        trace: &'a mut Trace,
    ) -> PeriphCtx<'a> {
        PeriphCtx {
            cycle: 0,
            time: SimTime::ZERO,
            events_in: EventVector::mask_of(&[5]),
            events_out: EventVector::EMPTY,
            l2,
            activity,
            trace,
        }
    }

    #[test]
    fn raise_sets_line_and_traces() {
        let mut l2 = L2Memory::new(64);
        let mut act = ActivitySet::new();
        let mut trace = Trace::new();
        let mut ctx = ctx_fixture(&mut l2, &mut act, &mut trace);
        ctx.raise(7, ComponentId::intern("spi"), "eot");
        assert!(ctx.events_out.is_set(7));
        assert!(trace.first("spi", "eot").is_some());
        assert_eq!(act.count("spi", pels_sim::ActivityKind::EventPulse), 1);
    }

    #[test]
    fn wired_high_handles_unwired_lines() {
        let mut l2 = L2Memory::new(64);
        let mut act = ActivitySet::new();
        let mut trace = Trace::new();
        let ctx = ctx_fixture(&mut l2, &mut act, &mut trace);
        assert!(ctx.wired_high(Some(5)));
        assert!(!ctx.wired_high(Some(6)));
        assert!(!ctx.wired_high(None));
    }

    #[test]
    fn reg_counter_drains_and_resets() {
        let mut c = RegAccessCounter::default();
        c.read();
        c.read();
        c.write();
        let mut act = ActivitySet::new();
        c.drain(ComponentId::intern("gpio"), &mut act);
        assert_eq!(act.count("gpio", pels_sim::ActivityKind::RegRead), 2);
        assert_eq!(act.count("gpio", pels_sim::ActivityKind::RegWrite), 1);
        assert_eq!(c.reads, 0);
        assert_eq!(c.writes, 0);
    }

    #[test]
    fn wake_mask_of_skips_unwired() {
        let m = wake_mask_of(&[Some(3), None, Some(9)]);
        assert_eq!(m, EventVector::mask_of(&[3, 9]));
        assert_eq!(wake_mask_of(&[None, None]), EventVector::EMPTY);
    }
}
