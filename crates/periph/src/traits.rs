//! The peripheral contract and per-cycle context.

use crate::l2::L2Memory;
use pels_interconnect::ApbSlave;
use pels_sim::{ActivitySet, EventVector, SimTime, Trace};

/// Everything a peripheral can see and touch during one clock cycle.
///
/// The SoC harness constructs one `PeriphCtx` per cycle and threads it
/// through every peripheral's [`Peripheral::tick`]:
///
/// * [`PeriphCtx::events_in`] carries the event wires sampled at the start
///   of the cycle — PELS action lines and peripheral pulses from the
///   previous cycle (event outputs are registered, as in the RTL);
/// * pulses raised via [`PeriphCtx::raise`] become visible to PELS in this
///   same cycle (PELS's trigger units sample after the peripherals run) and
///   to other peripherals in the next one;
/// * [`PeriphCtx::l2`] is the shared L2 scratchpad the µDMA channels land
///   sensor data in.
pub struct PeriphCtx<'a> {
    /// Bus-clock cycle index.
    pub cycle: u64,
    /// Absolute simulation time at this cycle's edge.
    pub time: SimTime,
    /// Sampled incoming event wires.
    pub events_in: EventVector,
    /// Pulses raised during this cycle (accumulated across peripherals).
    pub events_out: EventVector,
    /// The L2 memory µDMA channels transfer to/from.
    pub l2: &'a mut L2Memory,
    /// Switching-activity sink.
    pub activity: &'a mut ActivitySet,
    /// Event trace for latency measurements.
    pub trace: &'a mut Trace,
}

impl<'a> PeriphCtx<'a> {
    /// Raises an event pulse on global line `line` and records it both in
    /// the trace (as `source.label`) and as switching activity.
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64`.
    pub fn raise(&mut self, line: u32, source: &str, label: &str) {
        self.events_out.set(line);
        self.trace.record(self.time, source, label, u64::from(line));
        self.activity
            .record(source, pels_sim::ActivityKind::EventPulse, 1);
    }

    /// Whether incoming event wire `line` is active this cycle. `None`
    /// lines (unwired) read as inactive.
    pub fn wired_high(&self, line: Option<u32>) -> bool {
        line.map(|l| self.events_in.is_set(l)).unwrap_or(false)
    }
}

/// A memory-mapped peripheral participating in the event system.
///
/// Implementors are APB slaves (the *sequenced action* interface) and are
/// ticked once per cycle (the *instant action* interface plus any internal
/// behaviour: counters, shift registers, µDMA engines, ...).
pub trait Peripheral: ApbSlave {
    /// Stable instance name used in traces and activity reports.
    fn name(&self) -> &str;

    /// Advances the peripheral by one clock cycle.
    fn tick(&mut self, ctx: &mut PeriphCtx<'_>);

    /// Harvests internally counted activity (register-file accesses
    /// observed through the APB interface since the last drain).
    fn drain_activity(&mut self, into: &mut ActivitySet);

    /// Concrete-type access for harnesses holding peripherals as trait
    /// objects.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable concrete-type access.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Small helper all peripherals use to count their APB register accesses;
/// drained into the global [`ActivitySet`] once per measurement window.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegAccessCounter {
    /// Register reads observed.
    pub reads: u64,
    /// Register writes observed.
    pub writes: u64,
}

impl RegAccessCounter {
    /// Counts a register read.
    pub fn read(&mut self) {
        self.reads += 1;
    }

    /// Counts a register write.
    pub fn write(&mut self) {
        self.writes += 1;
    }

    /// Drains the counts into `into` under `component`.
    pub fn drain(&mut self, component: &str, into: &mut ActivitySet) {
        into.record(component, pels_sim::ActivityKind::RegRead, self.reads);
        into.record(component, pels_sim::ActivityKind::RegWrite, self.writes);
        self.reads = 0;
        self.writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_fixture<'a>(
        l2: &'a mut L2Memory,
        activity: &'a mut ActivitySet,
        trace: &'a mut Trace,
    ) -> PeriphCtx<'a> {
        PeriphCtx {
            cycle: 0,
            time: SimTime::ZERO,
            events_in: EventVector::mask_of(&[5]),
            events_out: EventVector::EMPTY,
            l2,
            activity,
            trace,
        }
    }

    #[test]
    fn raise_sets_line_and_traces() {
        let mut l2 = L2Memory::new(64);
        let mut act = ActivitySet::new();
        let mut trace = Trace::new();
        let mut ctx = ctx_fixture(&mut l2, &mut act, &mut trace);
        ctx.raise(7, "spi", "eot");
        assert!(ctx.events_out.is_set(7));
        assert!(trace.first("spi", "eot").is_some());
        assert_eq!(act.count("spi", pels_sim::ActivityKind::EventPulse), 1);
    }

    #[test]
    fn wired_high_handles_unwired_lines() {
        let mut l2 = L2Memory::new(64);
        let mut act = ActivitySet::new();
        let mut trace = Trace::new();
        let ctx = ctx_fixture(&mut l2, &mut act, &mut trace);
        assert!(ctx.wired_high(Some(5)));
        assert!(!ctx.wired_high(Some(6)));
        assert!(!ctx.wired_high(None));
    }

    #[test]
    fn reg_counter_drains_and_resets() {
        let mut c = RegAccessCounter::default();
        c.read();
        c.read();
        c.write();
        let mut act = ActivitySet::new();
        c.drain("gpio", &mut act);
        assert_eq!(act.count("gpio", pels_sim::ActivityKind::RegRead), 2);
        assert_eq!(act.count("gpio", pels_sim::ActivityKind::RegWrite), 1);
        assert_eq!(c.reads, 0);
        assert_eq!(c.writes, 0);
    }
}
