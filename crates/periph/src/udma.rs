//! µDMA channel building block.
//!
//! PULPissimo's autonomous I/O is built on µDMA (paper reference \[11\]):
//! every stream-capable peripheral embeds RX/TX channels that move data
//! between the peripheral and L2 without waking the core. This module is
//! the per-peripheral channel engine reused by [`crate::Spi`] and
//! [`crate::Adc`]: configure a target L2 buffer, stream words in, get a
//! completion flag for the peripheral's event output.

use crate::l2::L2Memory;

/// One RX-direction µDMA channel (peripheral → L2).
///
/// For the opposite direction see [`UdmaTxChannel`].
///
/// ```
/// use pels_periph::{L2Memory, UdmaChannel};
/// let mut l2 = L2Memory::new(64);
/// let mut ch = UdmaChannel::new();
/// ch.configure(0x10, 8); // two words
/// assert!(ch.push_word(0xAAAA, &mut l2));
/// assert!(ch.push_word(0xBBBB, &mut l2));
/// assert!(ch.take_done());
/// assert_eq!(l2.peek_word(0x10), 0xAAAA);
/// assert_eq!(l2.peek_word(0x14), 0xBBBB);
/// ```
#[derive(Debug, Clone, Default)]
pub struct UdmaChannel {
    saddr: u32,
    remaining: u32,
    done_pending: bool,
    transferred_words: u64,
    continuous: bool,
    reload_addr: u32,
    reload_size: u32,
}

impl UdmaChannel {
    /// Creates an idle channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the channel: `size_bytes` of data will land at L2 byte address
    /// `saddr`. Sizes are rounded up to whole words.
    pub fn configure(&mut self, saddr: u32, size_bytes: u32) {
        self.saddr = saddr;
        self.remaining = size_bytes.div_ceil(4) * 4;
        self.reload_addr = saddr;
        self.reload_size = self.remaining;
        self.done_pending = false;
    }

    /// Selects continuous (ring-buffer) mode: on completion the channel
    /// immediately re-arms at its original address — PULPissimo µDMA's
    /// continuous transfer mode, used for sustained sensor streaming.
    pub fn set_continuous(&mut self, continuous: bool) {
        self.continuous = continuous;
    }

    /// Whether continuous mode is selected.
    pub fn is_continuous(&self) -> bool {
        self.continuous
    }

    /// Whether the channel still expects data.
    pub fn is_active(&self) -> bool {
        self.remaining > 0
    }

    /// Bytes still expected.
    pub fn remaining_bytes(&self) -> u32 {
        self.remaining
    }

    /// Next L2 address to be written.
    pub fn current_addr(&self) -> u32 {
        self.saddr
    }

    /// Total words moved since construction.
    pub fn transferred_words(&self) -> u64 {
        self.transferred_words
    }

    /// Streams one word into L2. Returns `false` (word refused) when the
    /// channel is idle. Sets the done flag when the configured size
    /// completes.
    pub fn push_word(&mut self, word: u32, l2: &mut L2Memory) -> bool {
        if !self.is_active() {
            return false;
        }
        l2.write_word(self.saddr, word);
        self.saddr += 4;
        self.remaining -= 4;
        self.transferred_words += 1;
        if self.remaining == 0 {
            self.done_pending = true;
            if self.continuous {
                self.saddr = self.reload_addr;
                self.remaining = self.reload_size;
            }
        }
        true
    }

    /// Takes the completion flag (a single pulse per completed transfer).
    pub fn take_done(&mut self) -> bool {
        std::mem::take(&mut self.done_pending)
    }
}

/// One TX-direction µDMA channel (L2 → peripheral).
///
/// Armed with an L2 buffer, it feeds the peripheral one word per
/// [`UdmaTxChannel::pull_word`] — the peripheral pulls at its own rate
/// (e.g. the UART per transmitted byte).
///
/// ```
/// use pels_periph::{L2Memory, UdmaTxChannel};
/// let mut l2 = L2Memory::new(64);
/// l2.poke_word(0x10, 0xAA);
/// l2.poke_word(0x14, 0xBB);
/// let mut tx = UdmaTxChannel::new();
/// tx.configure(0x10, 8);
/// assert_eq!(tx.pull_word(&mut l2), Some(0xAA));
/// assert_eq!(tx.pull_word(&mut l2), Some(0xBB));
/// assert!(tx.take_done());
/// assert_eq!(tx.pull_word(&mut l2), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct UdmaTxChannel {
    saddr: u32,
    remaining: u32,
    done_pending: bool,
    transferred_words: u64,
}

impl UdmaTxChannel {
    /// Creates an idle channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the channel to stream `size_bytes` (rounded up to words)
    /// from L2 byte address `saddr`.
    pub fn configure(&mut self, saddr: u32, size_bytes: u32) {
        self.saddr = saddr;
        self.remaining = size_bytes.div_ceil(4) * 4;
        self.done_pending = false;
    }

    /// Whether data remains to stream.
    pub fn is_active(&self) -> bool {
        self.remaining > 0
    }

    /// Bytes still queued.
    pub fn remaining_bytes(&self) -> u32 {
        self.remaining
    }

    /// Total words streamed since construction.
    pub fn transferred_words(&self) -> u64 {
        self.transferred_words
    }

    /// Pulls the next word from L2, or `None` when drained. Sets the
    /// done flag as the last word leaves.
    pub fn pull_word(&mut self, l2: &mut L2Memory) -> Option<u32> {
        if !self.is_active() {
            return None;
        }
        let word = l2.read_word(self.saddr);
        self.saddr += 4;
        self.remaining -= 4;
        self.transferred_words += 1;
        if self.remaining == 0 {
            self.done_pending = true;
        }
        Some(word)
    }

    /// Takes the completion flag (one pulse per completed buffer).
    pub fn take_done(&mut self) -> bool {
        std::mem::take(&mut self.done_pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_channel_refuses_words() {
        let mut l2 = L2Memory::new(16);
        let mut ch = UdmaChannel::new();
        assert!(!ch.push_word(1, &mut l2));
        assert_eq!(l2.writes(), 0);
        assert!(!ch.take_done());
    }

    #[test]
    fn done_pulses_once() {
        let mut l2 = L2Memory::new(16);
        let mut ch = UdmaChannel::new();
        ch.configure(0, 4);
        assert!(ch.push_word(7, &mut l2));
        assert!(ch.take_done());
        assert!(!ch.take_done());
    }

    #[test]
    fn size_rounds_up_to_words() {
        let mut ch = UdmaChannel::new();
        ch.configure(0, 5);
        assert_eq!(ch.remaining_bytes(), 8);
    }

    #[test]
    fn reconfigure_clears_pending_done() {
        let mut l2 = L2Memory::new(16);
        let mut ch = UdmaChannel::new();
        ch.configure(0, 4);
        ch.push_word(1, &mut l2);
        ch.configure(8, 4);
        assert!(!ch.take_done());
        assert!(ch.is_active());
        assert_eq!(ch.current_addr(), 8);
    }

    #[test]
    fn tx_channel_drains_buffer_and_pulses_done() {
        let mut l2 = L2Memory::new(32);
        l2.load(0, &[1, 2, 3]);
        let mut tx = UdmaTxChannel::new();
        tx.configure(0, 12);
        assert!(tx.is_active());
        assert_eq!(tx.pull_word(&mut l2), Some(1));
        assert!(!tx.take_done());
        assert_eq!(tx.pull_word(&mut l2), Some(2));
        assert_eq!(tx.pull_word(&mut l2), Some(3));
        assert!(tx.take_done());
        assert!(!tx.is_active());
        assert_eq!(tx.transferred_words(), 3);
    }

    #[test]
    fn tx_idle_channel_returns_none() {
        let mut l2 = L2Memory::new(16);
        let mut tx = UdmaTxChannel::new();
        assert_eq!(tx.pull_word(&mut l2), None);
        assert_eq!(l2.reads(), 0);
    }

    #[test]
    fn counts_lifetime_words() {
        let mut l2 = L2Memory::new(32);
        let mut ch = UdmaChannel::new();
        ch.configure(0, 8);
        ch.push_word(1, &mut l2);
        ch.push_word(2, &mut l2);
        ch.configure(16, 4);
        ch.push_word(3, &mut l2);
        assert_eq!(ch.transferred_words(), 3);
    }
}
