//! On-chip ADC with event-triggered conversions.
//!
//! The paper's introduction motivates event linking with "a periodic timer
//! overflow triggering an ADC conversion" — this peripheral is that
//! consumer: a conversion can be started by a register write *or* by an
//! incoming single-wire action line, and completion raises an event.

use crate::sensor::Quantizer;
use crate::traits::{wake_mask_of, IdleHint, PeriphCtx, Peripheral, RegAccessCounter};
use pels_interconnect::{ApbSlave, BusError};
use pels_sim::{ActivityKind, ComponentId, EventVector};
use std::fmt;

/// A successive-approximation-style ADC model with a fixed conversion
/// latency in bus cycles.
///
/// ## Register map (byte offsets)
///
/// | offset | name     | access | function                            |
/// |-------:|----------|--------|-------------------------------------|
/// | 0x00   | `CTRL`   | WO     | bit0: start conversion              |
/// | 0x04   | `STATUS` | RO     | bit0: sample ready, bit1: busy      |
/// | 0x08   | `DATA`   | RO     | last sample; reading clears `ready` |
///
/// ## Event wiring
///
/// * [`Adc::wire_start_action`] — conversion starts when the line pulses;
/// * [`Adc::wire_done_event`] — pulses when a conversion completes.
pub struct Adc {
    id: ComponentId,
    quantizer: Quantizer,
    conversion_cycles: u32,
    countdown: u32,
    data: u32,
    ready: bool,
    start_line: Option<u32>,
    done_line: Option<u32>,
    regs: RegAccessCounter,
    conversions: u64,
}

impl fmt::Debug for Adc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Adc")
            .field("name", &self.id.name())
            .field("busy", &self.is_busy())
            .field("ready", &self.ready)
            .field("conversions", &self.conversions)
            .finish_non_exhaustive()
    }
}

impl Adc {
    /// `CTRL` byte offset.
    pub const CTRL: u32 = 0x00;
    /// `STATUS` byte offset.
    pub const STATUS: u32 = 0x04;
    /// `DATA` byte offset.
    pub const DATA: u32 = 0x08;

    /// Creates an ADC digitizing `quantizer`, with the given conversion
    /// latency in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `conversion_cycles` is zero.
    pub fn new(name: impl AsRef<str>, quantizer: Quantizer, conversion_cycles: u32) -> Self {
        assert!(conversion_cycles > 0, "conversion latency must be non-zero");
        Adc {
            id: ComponentId::intern(name.as_ref()),
            quantizer,
            conversion_cycles,
            countdown: 0,
            data: 0,
            ready: false,
            start_line: None,
            done_line: None,
            regs: RegAccessCounter::default(),
            conversions: 0,
        }
    }

    /// Starts a conversion when `line` pulses (instant action).
    pub fn wire_start_action(&mut self, line: u32) -> &mut Self {
        self.start_line = Some(line);
        self
    }

    /// Pulses `line` when a conversion completes.
    pub fn wire_done_event(&mut self, line: u32) -> &mut Self {
        self.done_line = Some(line);
        self
    }

    /// Whether a conversion is in flight.
    pub fn is_busy(&self) -> bool {
        self.countdown > 0
    }

    /// Completed conversions since construction.
    pub fn conversions(&self) -> u64 {
        self.conversions
    }

    fn start(&mut self) {
        if !self.is_busy() {
            self.countdown = self.conversion_cycles;
        }
    }
}

impl ApbSlave for Adc {
    fn read(&mut self, offset: u32) -> Result<u32, BusError> {
        self.regs.read();
        match offset {
            Self::STATUS => Ok(u32::from(self.ready) | (u32::from(self.is_busy()) << 1)),
            Self::DATA => {
                self.ready = false;
                Ok(self.data)
            }
            _ => Err(BusError::Slave { addr: offset }),
        }
    }

    fn write(&mut self, offset: u32, value: u32) -> Result<(), BusError> {
        self.regs.write();
        match offset {
            Self::CTRL => {
                if value & 1 != 0 {
                    self.start();
                }
                Ok(())
            }
            _ => Err(BusError::Slave { addr: offset }),
        }
    }
}

impl Peripheral for Adc {
    fn component(&self) -> ComponentId {
        self.id
    }

    fn tick(&mut self, ctx: &mut PeriphCtx<'_>) {
        if ctx.wired_high(self.start_line) {
            self.start();
            if ctx.trace.flows_enabled() {
                // Conversion started by a wire edge: adopt its flow (or
                // clear a stale one if the wire carried none).
                ctx.trace.flow_begin(ctx.time, self.id, 0, "start");
                if let Some(line) = self.start_line {
                    ctx.trace.flow_adopt_wire(ctx.time, self.id, line, "start");
                }
            }
        }
        if !self.is_busy() {
            return;
        }
        ctx.activity.record(self.id, ActivityKind::ActiveCycle, 1);
        self.countdown -= 1;
        if self.countdown == 0 {
            self.data = self.quantizer.convert(ctx.time);
            self.ready = true;
            self.conversions += 1;
            if let Some(line) = self.done_line {
                ctx.raise(line, self.id, "done");
                // Conversion complete: next `done` originates fresh.
                ctx.trace.flow_begin(ctx.time, self.id, 0, "done");
            }
        }
    }

    fn idle_hint(&self) -> IdleHint {
        // A busy ADC publishes its exact completion deadline: the next
        // `countdown - 1` ticks only decrement the counter (plus the
        // ActiveCycle accounting, which `catch_up` reproduces in closed
        // form), and the completing tick — data latch, ready flag, done
        // pulse — lands exactly on the deadline, in a real tick. An idle
        // ADC only reacts to its start line or a register access.
        if self.is_busy() {
            IdleHint::IdleFor(u64::from(self.countdown))
        } else {
            IdleHint::Idle
        }
    }

    fn wake_mask(&self) -> EventVector {
        wake_mask_of(&[self.start_line])
    }

    fn catch_up(&mut self, ctx: &mut PeriphCtx<'_>, elapsed: u64) {
        // Replays a skipped mid-conversion span: each skipped cycle
        // recorded one ActiveCycle and decremented the countdown. The
        // sleep deadline is the completion tick itself, so a skipped
        // span always ends strictly before the countdown reaches zero.
        if !self.is_busy() || elapsed == 0 {
            return;
        }
        debug_assert!(
            elapsed < u64::from(self.countdown),
            "skipped span must end before the conversion completes"
        );
        ctx.activity
            .record(self.id, ActivityKind::ActiveCycle, elapsed);
        self.countdown -= elapsed as u32;
    }

    fn catch_up_is_noop(&self) -> bool {
        !self.is_busy()
    }

    fn drain_activity(&mut self, into: &mut pels_sim::ActivitySet) {
        self.regs.drain(self.id, into);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor::{Constant, Quantizer};
    use crate::testctx::Harness;
    use pels_sim::EventVector;

    fn adc_fixture() -> Adc {
        let q = Quantizer::new(Box::new(Constant(3.3)), 12, 0.0, 3.3);
        let mut a = Adc::new("adc", q, 4);
        a.wire_done_event(11);
        a.wire_start_action(2);
        a
    }

    #[test]
    fn conversion_completes_after_latency() {
        let mut a = adc_fixture();
        a.write(Adc::CTRL, 1).unwrap();
        let mut h = Harness::new();
        let out = h.run(&mut a, 3);
        assert!(!out.is_set(11));
        assert!(a.is_busy());
        let out = h.run(&mut a, 1);
        assert!(out.is_set(11));
        assert_eq!(a.read(Adc::DATA).unwrap(), 4095);
        assert_eq!(a.conversions(), 1);
    }

    #[test]
    fn ready_clears_on_data_read() {
        let mut a = adc_fixture();
        a.write(Adc::CTRL, 1).unwrap();
        let mut h = Harness::new();
        h.run(&mut a, 4);
        assert_eq!(a.read(Adc::STATUS).unwrap() & 1, 1);
        let _ = a.read(Adc::DATA).unwrap();
        assert_eq!(a.read(Adc::STATUS).unwrap() & 1, 0);
    }

    #[test]
    fn action_line_triggers_conversion() {
        let mut a = adc_fixture();
        let mut h = Harness::new();
        h.tick(&mut a, EventVector::mask_of(&[2]));
        assert!(a.is_busy());
        let out = h.run(&mut a, 3);
        assert!(out.is_set(11));
    }

    #[test]
    fn start_while_busy_is_ignored() {
        let mut a = adc_fixture();
        a.write(Adc::CTRL, 1).unwrap();
        let mut h = Harness::new();
        h.run(&mut a, 2);
        a.write(Adc::CTRL, 1).unwrap(); // ignored
        let out = h.run(&mut a, 2);
        assert!(out.is_set(11));
        assert_eq!(a.conversions(), 1);
    }

    #[test]
    fn ctrl_without_start_bit_does_nothing() {
        let mut a = adc_fixture();
        a.write(Adc::CTRL, 0).unwrap();
        assert!(!a.is_busy());
    }

    #[test]
    fn unknown_offsets_error() {
        let mut a = adc_fixture();
        assert!(a.read(0x20).is_err());
        assert!(a.write(Adc::DATA, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_latency_rejected() {
        let q = Quantizer::new(Box::new(Constant(0.0)), 8, 0.0, 1.0);
        let _ = Adc::new("adc", q, 0);
    }

    #[test]
    fn idle_hint_publishes_exact_completion_deadline() {
        let mut a = adc_fixture();
        assert!(matches!(a.idle_hint(), IdleHint::Idle));
        assert!(a.catch_up_is_noop());
        a.write(Adc::CTRL, 1).unwrap();
        // conversion_cycles = 4: after the start (before any tick) the
        // completing tick is 4 ticks away.
        assert!(matches!(a.idle_hint(), IdleHint::IdleFor(4)));
        assert!(!a.catch_up_is_noop());
        let mut h = Harness::new();
        h.run(&mut a, 1);
        assert!(matches!(a.idle_hint(), IdleHint::IdleFor(3)));
    }

    #[test]
    fn catch_up_matches_ticked_conversion() {
        // Reference: tick through the whole conversion.
        let mut ticked = adc_fixture();
        ticked.write(Adc::CTRL, 1).unwrap();
        let mut h = Harness::new();
        h.run(&mut ticked, 3);
        // Candidate: replay the same three mid-conversion cycles in
        // closed form.
        let mut skipped = adc_fixture();
        skipped.write(Adc::CTRL, 1).unwrap();
        let mut h2 = Harness::new();
        h2.catch_up(&mut skipped, 3);
        assert_eq!(skipped.countdown, ticked.countdown);
        assert!(skipped.is_busy());
        // Both complete — observably — on the very next tick.
        let out = h2.run(&mut skipped, 1);
        assert!(out.is_set(11));
        assert_eq!(skipped.read(Adc::DATA).unwrap(), 4095);
        assert_eq!(skipped.conversions(), 1);
    }
}
