use pels_soc::{Mediator, Scenario};

fn main() {
    for (label, pels_s, ibex_s) in [
        (
            "iso-latency",
            Scenario::iso_latency(Mediator::PelsSequenced),
            Scenario::iso_latency(Mediator::IbexIrq),
        ),
        (
            "iso-frequency",
            Scenario::iso_frequency(Mediator::PelsSequenced),
            Scenario::iso_frequency(Mediator::IbexIrq),
        ),
    ] {
        let pr = pels_s.run();
        let ir = ibex_s.run();
        let pm = pr.power_model();
        let im = ir.power_model();
        let pa = pr.active_power(&pm);
        let ia = ir.active_power(&im);
        let pi = pr.idle_power(&pm);
        let ii = ir.idle_power(&im);
        println!("== {label} ==");
        println!("  pels active {} idle {}", pa.total(), pi.total());
        println!("  ibex active {} idle {}", ia.total(), ii.total());
        println!("  active ratio ibex/pels = {:.2}", ia.total() / pa.total());
        println!("  idle   ratio ibex/pels = {:.2}", ii.total() / pi.total());
        println!("  mem    ratio ibex/pels = {:.2}", ia.memory_system().as_uw() / pa.memory_system().as_uw());
        println!("  pels mem active {} ibex mem active {}", pa.memory_system(), ia.memory_system());
        println!("  latencies: pels {:?} ibex {:?}", pr.stats, ir.stats);
    }
}
