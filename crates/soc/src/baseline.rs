//! The interrupt-driven baseline (paper Section IV-B).
//!
//! Builds the RV32 program the Ibex-class core runs when *it* mediates
//! the event linking: boot code that preloads peripheral base addresses,
//! configures vectored interrupts and parks the core in a `wfi` loop, plus
//! the handler the SPI end-of-transfer interrupt vectors into. Every
//! cycle of the paper's 16-cycle baseline latency is executed, not
//! assumed: WFI wake-up, the pipeline-flush interrupt entry, vector
//! dispatch, the cause read, the sample load over APB, the threshold
//! compare and the GPIO store.

use crate::event_map::{irq_bit_for_event, EV_SPI_EOT};
use crate::mem_map::{apb_reg, GPIO_OFFSET, L2_BASE, RESET_PC, SPI_OFFSET};
use pels_cpu::asm;
use pels_cpu::csr::addr as csr;
use pels_periph::{Gpio, Spi};

/// Registers the boot code dedicates (so the handler needs no
/// save/restore — the fast-interrupt register-bank style of small MCU
/// firmware).
mod reg {
    /// SPI base address.
    pub const SPI_BASE: u8 = 10;
    /// Threshold value.
    pub const THRESHOLD: u8 = 11;
    /// GPIO base address.
    pub const GPIO_BASE: u8 = 12;
    /// GPIO pin mask to toggle.
    pub const PIN_MASK: u8 = 13;
    /// µDMA buffer size in bytes (for the per-event re-arm).
    pub const DMA_SIZE: u8 = 14;
    /// Handler scratch.
    pub const SCRATCH0: u8 = 5;
    /// Handler scratch.
    pub const SCRATCH1: u8 = 6;
    /// Handler scratch.
    pub const SCRATCH2: u8 = 7;
}

/// Absolute address of the vector table.
pub const VECTOR_TABLE: u32 = L2_BASE + 0x200;
/// Absolute address of the SPI-EOT handler.
pub const HANDLER: u32 = L2_BASE + 0x300;

/// A loadable program image: `(absolute address, words)` segments.
#[derive(Debug, Clone)]
pub struct ProgramImage {
    /// The segments to load.
    pub segments: Vec<(u32, Vec<u32>)>,
}

impl ProgramImage {
    /// Total instruction words across segments.
    pub fn words(&self) -> usize {
        self.segments.iter().map(|(_, w)| w.len()).sum()
    }
}

/// Builds the complete baseline image for a threshold of `threshold`
/// (12-bit sensor code) toggling GPIO pin 0 on crossings, with a
/// `dma_size_bytes`-byte µDMA RX buffer re-armed by every handler run,
/// on the canonical memory map.
///
/// Boot: preload bases/constants, set `mtvec` (vectored), enable the
/// SPI-EOT fast interrupt, enable `mstatus.MIE`, then `wfi` in a loop.
pub fn threshold_irq_image(threshold: u32, dma_size_bytes: u32) -> ProgramImage {
    threshold_irq_image_at(threshold, dma_size_bytes, SPI_OFFSET, GPIO_OFFSET)
}

/// [`threshold_irq_image`] for a description-chosen memory map: the SPI
/// and GPIO instances sit on the given APB slot offsets.
pub fn threshold_irq_image_at(
    threshold: u32,
    dma_size_bytes: u32,
    spi_offset: u32,
    gpio_offset: u32,
) -> ProgramImage {
    let mut boot = Vec::new();
    boot.extend(asm::li32(reg::SPI_BASE, apb_reg(spi_offset, 0)));
    boot.extend(asm::li32(reg::THRESHOLD, threshold));
    boot.extend(asm::li32(reg::GPIO_BASE, apb_reg(gpio_offset, 0)));
    boot.extend(asm::li32(reg::PIN_MASK, 1));
    boot.extend(asm::li32(reg::DMA_SIZE, dma_size_bytes));
    // Vectored mtvec (bit 0 set, Ibex style).
    boot.extend(asm::li32(reg::SCRATCH0, VECTOR_TABLE | 1));
    boot.push(asm::csrrw(0, csr::MTVEC, reg::SCRATCH0));
    boot.extend(asm::li32(
        reg::SCRATCH0,
        1 << irq_bit_for_event(EV_SPI_EOT),
    ));
    boot.push(asm::csrrw(0, csr::MIE, reg::SCRATCH0));
    boot.push(asm::csrrsi(0, csr::MSTATUS, 8)); // MSTATUS.MIE
    // Sleep loop.
    boot.push(asm::wfi());
    boot.push(asm::jal(0, -4));

    // Vector table: each entry is one jump. Only the SPI-EOT line is
    // populated; everything else traps into an ebreak pit below the
    // table.
    let irq = irq_bit_for_event(EV_SPI_EOT);
    let entries = 32u32;
    let mut table = Vec::with_capacity(entries as usize);
    for i in 0..entries {
        if i == irq {
            let from = VECTOR_TABLE + 4 * i;
            let offset = HANDLER as i64 - from as i64;
            table.push(asm::jal(0, offset as i32));
        } else {
            table.push(asm::ebreak());
        }
    }

    // Handler. Cycle budget from the SPI-EOT event (measured in the
    // integration tests): wake (1) + wfi-stall (1) + irq entry (4) +
    // vector jal (2) + csrr (1) + andi (1) + lw over APB (4) + bltu not
    // taken (1) + sw over APB (commits 2 cycles in) + pad observable
    // next cycle = 16 cycles, the paper's number.
    let mut handler = vec![
        asm::csrrs(reg::SCRATCH1, csr::MCAUSE, 0), // claim/identify
        asm::andi(reg::SCRATCH1, reg::SCRATCH1, 0x1F), // cause id
        asm::lw(reg::SCRATCH0, reg::SPI_BASE, Spi::LAST as i32),
    ];
    // Below threshold -> skip the actuation (branch over the store).
    handler.push(asm::bltu(reg::SCRATCH0, reg::THRESHOLD, 8));
    handler.push(asm::sw(
        reg::GPIO_BASE,
        reg::PIN_MASK,
        Gpio::PADOUTTGL as i32,
    ));
    // Housekeeping after the actuation (the part PELS's ring-mode µDMA
    // makes unnecessary): verify the transfer really drained and re-arm
    // the RX buffer for the next readout.
    handler.push(asm::lw(
        reg::SCRATCH2,
        reg::SPI_BASE,
        Spi::STATUS as i32,
    ));
    handler.push(asm::sw(
        reg::SPI_BASE,
        reg::DMA_SIZE,
        Spi::UDMA_SIZE as i32,
    ));
    handler.push(asm::mret());

    ProgramImage {
        segments: vec![
            (RESET_PC, boot),
            (VECTOR_TABLE, table),
            (HANDLER, handler),
        ],
    }
}

/// A CPU-mediated polling variant used by the ablation benches: instead
/// of sleeping, the core spins reading the SPI status register — the
/// worst-case software approach (Figure 1a without even WFI).
pub fn threshold_polling_image(threshold: u32) -> ProgramImage {
    let mut boot = Vec::new();
    boot.extend(asm::li32(reg::SPI_BASE, apb_reg(SPI_OFFSET, 0)));
    boot.extend(asm::li32(reg::THRESHOLD, threshold));
    boot.extend(asm::li32(reg::GPIO_BASE, apb_reg(GPIO_OFFSET, 0)));
    boot.extend(asm::li32(reg::PIN_MASK, 1));
    // poll:
    //   lw   t0, STATUS(spi)        ; bit0 busy, bits[15:8] rx level
    //   srli t1, t0, 8
    //   beq  t1, x0, poll           ; no data yet
    //   lw   t0, DATA(spi)          ; pop the sample
    //   bltu t0, thresh, poll
    //   sw   mask, PADOUTTGL(gpio)
    //   jal  x0, poll
    let poll_pc = (boot.len() as i32) * 4;
    boot.push(asm::lw(reg::SCRATCH0, reg::SPI_BASE, Spi::STATUS as i32));
    boot.push(asm::srli(reg::SCRATCH1, reg::SCRATCH0, 8));
    boot.push(asm::beq(reg::SCRATCH1, 0, -8));
    boot.push(asm::lw(reg::SCRATCH0, reg::SPI_BASE, Spi::DATA as i32));
    boot.push(asm::bltu(reg::SCRATCH0, reg::THRESHOLD, -16));
    boot.push(asm::sw(reg::GPIO_BASE, reg::PIN_MASK, Gpio::PADOUTTGL as i32));
    let here = (boot.len() as i32) * 4;
    boot.push(asm::jal(0, poll_pc - here));

    ProgramImage {
        segments: vec![(RESET_PC, boot)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_segments_are_l2_resident_and_disjoint() {
        let img = threshold_irq_image(2000, 8);
        assert_eq!(img.segments.len(), 3);
        let mut ranges: Vec<(u32, u32)> = img
            .segments
            .iter()
            .map(|(a, w)| (*a, *a + 4 * w.len() as u32))
            .collect();
        ranges.sort();
        for pair in ranges.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "segments overlap: {pair:?}");
        }
        assert!(img.words() > 20);
    }

    #[test]
    fn vector_entry_reaches_handler() {
        let img = threshold_irq_image(2000, 8);
        let (addr, table) = &img.segments[1];
        assert_eq!(*addr, VECTOR_TABLE);
        let irq = irq_bit_for_event(EV_SPI_EOT) as usize;
        // The populated entry is a jal; others are ebreak.
        assert_ne!(table[irq], asm::ebreak());
        assert_eq!(table[irq - 1], asm::ebreak());
    }

    #[test]
    fn polling_image_is_single_segment() {
        let img = threshold_polling_image(100);
        assert_eq!(img.segments.len(), 1);
        assert_eq!(img.segments[0].0, RESET_PC);
    }
}
