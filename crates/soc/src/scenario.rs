//! The paper's evaluation workload (Section IV-B).
//!
//! "We design an event-linking application consisting of a
//! threshold-crossing check after I/O DMA-managed sensor readout through
//! the SPI interface [...] We compare PELS's mediation through sequenced
//! actions with an interrupt-based mechanism redirecting the linking event
//! to the Ibex core in two scenarios: (i) iso-latency [...] PELS and Ibex
//! match a 500 ns latency requirement at 27 MHz and 55 MHz respectively,
//! and (ii) iso-frequency" (both at 55 MHz).
//!
//! A [`Scenario`] describes one such run: who mediates the linking
//! ([`Mediator`]), at what frequency, with which microcode/handler
//! flavour. [`Scenario::run`] executes it cycle-accurately and returns a
//! [`ScenarioReport`] with per-event latencies and the switching activity
//! of both the measurement window and a matching idle window — the inputs
//! Figure 5 and the Section IV-B latency comparison are regenerated from.

use crate::baseline;
use crate::event_map::*;
use crate::mem_map::*;
use crate::power_setup;
use crate::soc::{ConfigError, SchedStats, SensorKind, Soc, SocBuilder};
use pels_core::{ActionMode, Command, Cond, PelsConfig, Program, TriggerCond};
use pels_desc::{DescError, ExecMode, ScenarioDesc};
use pels_interconnect::{ApbSlave, ArbiterKind, Topology};
use pels_periph::{Spi, Timer};
use pels_power::{
    Battery, EnergyLedger, LifetimeReport, PowerModel, PowerReport, PowerSample, PowerTimeline,
};
use pels_sim::{ActivitySet, EventVector, Frequency, SimTime, Trace};
use std::fmt;
use std::ops::Deref;

/// Why a [`Scenario`] could not be built — or, at run time, why it
/// produced no measurement.
///
/// Returned by [`ScenarioBuilder::build`] (construction-time validation)
/// and [`Scenario::try_run`] (runtime failure). A sweep engine maps each
/// variant to a per-job failure instead of a harness panic.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// `events == 0`: there is nothing to measure.
    ZeroEvents,
    /// `spi_words == 0`: the readout would transfer nothing, so the
    /// end-of-transfer event driving the whole chain never fires.
    ZeroSpiWords,
    /// `sample_period` was zero: the timer would need a period of zero
    /// cycles.
    ZeroSamplePeriod,
    /// The interrupt baseline (`Mediator::IbexIrq`) with `use_udma ==
    /// false`: the handler image re-arms the µDMA channel and reads the
    /// landed sample, so the combination cannot execute coherently.
    IrqNeedsUdma,
    /// The SoC configuration itself was invalid (zero links / SCM lines /
    /// clkdiv).
    Config(ConfigError),
    /// Any other [`ScenarioDesc::validate`] failure, with the JSON path
    /// of the offending value.
    Desc(DescError),
    /// The run completed no linking event inside its cycle budget — a
    /// mis-targeted threshold, a mis-wired link, or a budget too small.
    NoEvents {
        /// The mediator that failed to produce an event.
        mediator: Mediator,
        /// The cycle budget that elapsed without a completion.
        budget: u64,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::ZeroEvents => f.write_str("events must be at least 1"),
            ScenarioError::ZeroSpiWords => f.write_str("spi_words must be at least 1"),
            ScenarioError::ZeroSamplePeriod => {
                f.write_str("sample_period must be non-zero")
            }
            ScenarioError::IrqNeedsUdma => {
                f.write_str("the ibex-irq baseline requires use_udma (its handler reads the sample from L2)")
            }
            ScenarioError::Config(e) => write!(f, "invalid SoC configuration: {e}"),
            ScenarioError::Desc(e) => write!(f, "invalid description: {e}"),
            ScenarioError::NoEvents { mediator, budget } => write!(
                f,
                "no linking event completed for {mediator} within {budget} cycles"
            ),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Config(e) => Some(e),
            ScenarioError::Desc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for ScenarioError {
    fn from(e: ConfigError) -> Self {
        ScenarioError::Config(e)
    }
}

/// Who mediates the linking event (now owned by `pels-desc`, re-exported
/// for compatibility).
pub use pels_desc::Mediator;

/// Per-event latency statistics (in mediator-clock cycles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkingStats {
    /// Events measured.
    pub count: usize,
    /// Minimum latency.
    pub min: u64,
    /// Maximum latency.
    pub max: u64,
    /// Mean latency (rounded down).
    pub mean: u64,
    /// Median latency — the rank-`ceil(0.50·count)` sample, exact.
    pub p50: u64,
    /// 99th-percentile latency — the rank-`ceil(0.99·count)` sample,
    /// exact. With the paper's small event counts this usually equals
    /// `max`; it diverges exactly when the tail does.
    pub p99: u64,
}

impl LinkingStats {
    /// Computes stats from raw per-event cycle latencies; `None` on an
    /// empty sample (a run that completed no events has no statistics —
    /// the caller decides whether that is a per-job failure or a bug).
    ///
    /// Quantiles are exact (computed from the sorted sample), unlike the
    /// bounded-error [`pels_obs::Histogram`] the report carries next to
    /// these stats.
    pub fn from_cycles(latencies: &[u64]) -> Option<Self> {
        let (&min, &max) = (latencies.iter().min()?, latencies.iter().max()?);
        let mut sorted = latencies.to_vec();
        sorted.sort_unstable();
        let rank = |q: f64| {
            let r = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[r - 1]
        };
        Some(LinkingStats {
            count: latencies.len(),
            min,
            max,
            mean: latencies.iter().sum::<u64>() / latencies.len() as u64,
            p50: rank(0.50),
            p99: rank(0.99),
        })
    }

    /// Max − min: the jitter the paper argues instant actions eliminate.
    pub fn jitter(&self) -> u64 {
        self.max - self.min
    }
}

/// One evaluation run: a validated [`ScenarioDesc`] plus the machinery to
/// execute it.
///
/// The canonical ways to obtain one are [`Scenario::from_desc`] (from a
/// description, possibly loaded via [`ScenarioDesc::from_json`]) and
/// [`Scenario::builder`] (or the preset shorthands
/// [`Scenario::iso_latency`] / [`Scenario::iso_frequency`] /
/// [`Scenario::latency_probe`], which wrap it). Every path validates, so
/// a `Scenario` in hand is always runnable. The scenario [`Deref`]s to
/// its description for *reading* (`s.events`, `s.mediator`,
/// `s.system.topology`, …); mutation routes through
/// [`Scenario::to_builder`] so it cannot bypass validation.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    desc: ScenarioDesc,
}

impl Deref for Scenario {
    type Target = ScenarioDesc;

    fn deref(&self) -> &ScenarioDesc {
        &self.desc
    }
}

/// Chained, validating constructor for [`Scenario`] — the canonical
/// construction path.
///
/// Starts from the paper's common base workload (2.5 V sensor vs 1.6 V
/// threshold, 1 µs sample period, 2-word DMA readouts, 20 events) and
/// lets each knob be overridden; [`ScenarioBuilder::build`] rejects
/// configurations that could never measure anything.
///
/// ```
/// use pels_soc::{Mediator, Scenario};
/// let s = Scenario::builder()
///     .mediator(Mediator::PelsInstant)
///     .events(8)
///     .pels_links(2)
///     .build()
///     .expect("valid scenario");
/// assert_eq!(s.events, 8);
/// assert!(Scenario::builder().events(0).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScenarioBuilder {
    draft: ScenarioDesc,
}

impl ScenarioBuilder {
    /// Starts from the common base workload
    /// ([`ScenarioDesc::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets who mediates the linking event.
    pub fn mediator(mut self, mediator: Mediator) -> Self {
        self.draft.mediator = mediator;
        self
    }

    /// Sets the system clock.
    pub fn frequency(mut self, freq: Frequency) -> Self {
        self.draft.system.freq = freq;
        self
    }

    /// Sets the analog threshold level (V).
    pub fn threshold_level(mut self, level: f64) -> Self {
        self.draft.threshold_level = level;
        self
    }

    /// Selects the analog source.
    pub fn sensor(mut self, sensor: SensorKind) -> Self {
        self.draft.system.sensor = sensor;
        self
    }

    /// Sets the wall-clock interval between sensor readouts.
    pub fn sample_period(mut self, period: SimTime) -> Self {
        self.draft.sample_period = period;
        self
    }

    /// Sets the words per SPI readout.
    pub fn spi_words(mut self, words: u32) -> Self {
        self.draft.spi_words = words;
        self
    }

    /// Sets the SPI cycles-per-word divider.
    pub fn spi_clkdiv(mut self, clkdiv: u32) -> Self {
        self.draft.system.set_spi_clkdiv(clkdiv);
        self
    }

    /// Sets the number of linking events to measure.
    pub fn events(mut self, events: u32) -> Self {
        self.draft.events = events;
        self
    }

    /// Replaces the whole PELS configuration (the loopback window is
    /// assembly-owned and ignored).
    pub fn pels(mut self, pels: PelsConfig) -> Self {
        self.draft.system.pels = pels_desc::PelsDesc::from_config(&pels);
        self
    }

    /// Sets the number of PELS links.
    pub fn pels_links(mut self, links: usize) -> Self {
        self.draft.system.pels.links = links;
        self
    }

    /// Sets the SCM lines per link.
    pub fn scm_lines(mut self, lines: usize) -> Self {
        self.draft.system.pels.scm_lines = lines;
        self
    }

    /// Sets the per-link trigger-FIFO depth.
    pub fn fifo_depth(mut self, depth: usize) -> Self {
        self.draft.system.pels.fifo_depth = depth;
        self
    }

    /// `true` → minimal single-action program; `false` → full threshold
    /// check.
    pub fn rmw_only(mut self, rmw_only: bool) -> Self {
        self.draft.rmw_only = rmw_only;
        self
    }

    /// Whether readout data lands in L2 through the SPI µDMA channel.
    pub fn use_udma(mut self, use_udma: bool) -> Self {
        self.draft.use_udma = use_udma;
        self
    }

    /// Selects the fabric topology.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.draft.system.topology = topology;
        self
    }

    /// Selects the arbitration policy.
    pub fn arbiter(mut self, arbiter: ArbiterKind) -> Self {
        self.draft.system.arbiter = arbiter;
        self
    }

    /// Selects which simulation path the run executes on. All modes are
    /// observationally identical (the differential suites prove it);
    /// the slow ones exist for those suites and for before/after
    /// benchmarks.
    pub fn exec_mode(mut self, exec: ExecMode) -> Self {
        self.draft.exec = exec;
        self
    }

    /// Collects an observability metrics snapshot with the report (see
    /// [`ScenarioDesc::obs`]).
    pub fn obs(mut self, obs: bool) -> Self {
        self.draft.obs = obs;
        self
    }

    /// Samples a windowed activity timeline of the active run with the
    /// given nominal window width in cycles; `0` disables sampling (see
    /// [`ScenarioDesc::timeline_window`]).
    pub fn timeline_window(mut self, window_cycles: u64) -> Self {
        self.draft.timeline_window = window_cycles;
        self
    }

    /// Records causal event flows during the active run (see
    /// [`ScenarioDesc::flows`]). Pure observation, like [`Self::obs`]:
    /// `tests/flow_invariance.rs` proves the run is bit-identical with
    /// flows on and off.
    pub fn flows(mut self, flows: bool) -> Self {
        self.draft.flows = flows;
        self
    }

    /// Integrates the run's power into an [`pels_power::EnergyLedger`]
    /// and projects battery lifetime with the report (see
    /// [`ScenarioDesc::lifetime`]). Pure post-processing over activity
    /// the run records anyway: `tests/lifetime_invariance.rs` proves the
    /// run is bit-identical with the ledger on and off.
    pub fn lifetime(mut self, lifetime: bool) -> Self {
        self.draft.lifetime = lifetime;
        self
    }

    /// Validates and produces the scenario
    /// (= [`Scenario::from_desc`] on the accumulated draft).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::ZeroEvents`] / [`ScenarioError::ZeroSpiWords`] /
    /// [`ScenarioError::ZeroSamplePeriod`] for unmeasurable workloads,
    /// [`ScenarioError::IrqNeedsUdma`] for the interrupt baseline without
    /// µDMA, [`ScenarioError::Config`] for an invalid PELS/SoC geometry,
    /// and [`ScenarioError::Desc`] for anything else
    /// [`ScenarioDesc::validate`] rejects.
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        Scenario::from_desc(self.draft)
    }
}

impl Scenario {
    /// Starts a [`ScenarioBuilder`] from the common base workload — the
    /// setter-style way to construct a scenario.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::new()
    }

    /// The canonical entry point: validates `desc` and wraps it as a
    /// runnable scenario. [`ScenarioBuilder`] is a thin setter layer over
    /// this.
    ///
    /// # Errors
    ///
    /// The legacy unmeasurable-workload checks keep their legacy variants
    /// (zero events / SPI words / sample period, the interrupt baseline
    /// without µDMA, zero links / SCM lines / clkdiv); everything else
    /// [`ScenarioDesc::validate`] catches is reported as
    /// [`ScenarioError::Desc`] with the JSON path of the offending value.
    pub fn from_desc(desc: ScenarioDesc) -> Result<Self, ScenarioError> {
        if desc.events == 0 {
            return Err(ScenarioError::ZeroEvents);
        }
        if desc.spi_words == 0 {
            return Err(ScenarioError::ZeroSpiWords);
        }
        if desc.sample_period.as_ps() == 0 {
            return Err(ScenarioError::ZeroSamplePeriod);
        }
        if desc.mediator == Mediator::IbexIrq && !desc.use_udma {
            return Err(ScenarioError::IrqNeedsUdma);
        }
        if desc.system.pels.links == 0 {
            return Err(ConfigError::ZeroLinks.into());
        }
        if desc.system.pels.scm_lines == 0 {
            return Err(ConfigError::ZeroScmLines.into());
        }
        if desc.spi_clkdiv() == 0 {
            return Err(ConfigError::ZeroClkdiv.into());
        }
        desc.validate().map_err(ScenarioError::Desc)?;
        Ok(Scenario { desc })
    }

    /// The scenario's description — e.g. for serialization via
    /// [`ScenarioDesc::to_json`].
    pub fn desc(&self) -> &ScenarioDesc {
        &self.desc
    }

    /// Iso-latency operating point (paper: 500 ns budget — PELS at
    /// 27 MHz, Ibex at 55 MHz).
    pub fn iso_latency(mediator: Mediator) -> Self {
        let freq = match mediator {
            Mediator::IbexIrq => Frequency::from_mhz(55.0),
            _ => Frequency::from_mhz(27.0),
        };
        Self::builder()
            .mediator(mediator)
            .frequency(freq)
            .build()
            .expect("preset scenarios are valid by construction")
    }

    /// Iso-frequency operating point (both at 55 MHz).
    pub fn iso_frequency(mediator: Mediator) -> Self {
        Self::builder()
            .mediator(mediator)
            .build()
            .expect("preset scenarios are valid by construction")
    }

    /// A long-horizon duty-cycled sensor node: every `sample_period` the
    /// node *sleeps* (timer counting, everything else quiescent),
    /// *senses* (autonomous SPI readout of the default two words) and
    /// *bursts* (mediation + actuation), repeated until `horizon` of
    /// simulated time is covered. Lifetime projection is switched on and
    /// the activity timeline samples one window per duty period, so the
    /// sleep stretch collapses into a single quiescence-stretched sample
    /// — hours of device time integrate in seconds of host time.
    ///
    /// # Panics
    ///
    /// Panics if `sample_period` is zero or does not fit the timer's
    /// 32-bit compare register at the default 55 MHz clock (periods up
    /// to ~78 s).
    pub fn duty_cycled(mediator: Mediator, sample_period: SimTime, horizon: SimTime) -> Self {
        assert!(sample_period.as_ps() > 0, "sample_period must be non-zero");
        let events = (horizon.as_ps() / sample_period.as_ps()).max(1);
        assert!(events <= u64::from(u32::MAX), "horizon holds too many events");
        let builder = Self::builder()
            .mediator(mediator)
            .sample_period(sample_period)
            .events(events as u32)
            .lifetime(true);
        let period_cycles =
            sample_period.as_ps() / builder.draft.system.freq.period_ps();
        assert!(
            period_cycles <= u64::from(u32::MAX),
            "sample_period exceeds the timer's 32-bit compare range"
        );
        builder
            .timeline_window(period_cycles.max(1))
            .build()
            .expect("preset scenarios are valid by construction")
    }

    /// The latency-table variant: minimal mediation program.
    pub fn latency_probe(mediator: Mediator) -> Self {
        Self::builder()
            .mediator(mediator)
            .rmw_only(true)
            .events(10)
            .build()
            .expect("preset scenarios are valid by construction")
    }

    /// A [`ScenarioBuilder`] seeded with this scenario — derive a variant
    /// without mutating fields in place.
    pub fn to_builder(&self) -> ScenarioBuilder {
        ScenarioBuilder {
            draft: self.desc.clone(),
        }
    }

    /// The PELS microcode for this scenario, targeting the described
    /// system's memory map.
    ///
    /// # Panics
    ///
    /// Panics if called for the Ibex mediator.
    pub fn link_program(&self) -> Program {
        let toggle = Command::Toggle {
            offset: pels_word_offset(self.system.gpio_offset(), pels_periph::Gpio::PADOUT),
            mask: 1,
        };
        let pulse = Command::Action {
            mode: ActionMode::Pulse,
            group: 0,
            mask: 1 << AL_GPIO_TOGGLE,
        };
        let actuate = match self.mediator {
            Mediator::PelsSequenced => toggle,
            Mediator::PelsInstant => pulse,
            Mediator::IbexIrq => panic!("the ibex baseline runs no PELS microcode"),
        };
        let cmds = if self.rmw_only {
            vec![actuate, Command::Halt]
        } else {
            // Figure 3: capture the sample, bail below threshold,
            // actuate on the fall-through path (no taken-branch bubble
            // on the measured path).
            vec![
                Command::Capture {
                    offset: pels_word_offset(self.system.spi_offset(), Spi::LAST),
                    mask: 0xFFF,
                },
                Command::JumpIf {
                    cond: Cond::LtU,
                    target: 3,
                    operand: self.threshold_code(),
                },
                actuate,
                Command::Halt,
            ]
        };
        Program::new(cmds).expect("scenario programs are valid by construction")
    }

    /// Assembles the described SoC, loads the mediation program (PELS
    /// microcode or the interrupt-baseline image), arms the readout chain
    /// and applies the execution mode. [`Scenario::try_run`] drives this;
    /// it is public so harnesses (examples, differential tests) can step
    /// the system manually.
    pub fn build_soc(&self) -> Soc {
        let mut soc = SocBuilder::from_desc(self.system.clone()).build();
        if self.flows {
            soc.enable_flows();
        }

        match self.mediator {
            Mediator::PelsSequenced | Mediator::PelsInstant => {
                let program = self.link_program();
                {
                    let link = soc.pels_mut().link_mut(0);
                    link.set_mask(EventVector::mask_of(&[EV_SPI_EOT]))
                        .set_condition(TriggerCond::Any)
                        .set_base(APB_BASE);
                    link.load_program(&program)
                        .expect("scenario program fits the configured scm");
                }
                // The core only boots and sleeps; linking never wakes it.
                soc.load_program(RESET_PC, &[pels_cpu::asm::wfi(), pels_cpu::asm::jal(0, -4)]);
            }
            Mediator::IbexIrq => {
                soc.pels_mut().set_enabled(false);
                let image = baseline::threshold_irq_image_at(
                    self.threshold_code(),
                    self.spi_words * 4,
                    self.system.spi_offset(),
                    self.system.gpio_offset(),
                );
                for (addr, words) in &image.segments {
                    soc.load_program(*addr, words);
                }
            }
        }

        // Autonomous readout chain: timer compare starts the SPI; µDMA
        // lands the words in L2.
        soc.spi_mut().set_default_len(self.spi_words);
        if self.use_udma {
            soc.spi_mut().write(Spi::UDMA_SADDR, 0x4000).unwrap();
            // Autonomous (PELS) configurations stream into a ring buffer;
            // the interrupt baseline re-arms the channel from its handler
            // instead (Figure 1a vs 1c).
            if self.mediator != Mediator::IbexIrq {
                soc.spi_mut().write(Spi::UDMA_CFG, 1).unwrap();
            }
            soc.spi_mut()
                .write(Spi::UDMA_SIZE, self.spi_words * 4)
                .unwrap();
        }
        match self.exec {
            ExecMode::Fast => {}
            ExecMode::SingleStep => {
                // Superblocks off only: the CPU retires one instruction
                // per scheduler visit, every other accelerator stays on.
                soc.cpu_mut().set_superblocks_enabled(false);
            }
            ExecMode::Naive => {
                // The reference path disables every accelerator.
                soc.cpu_mut().set_superblocks_enabled(false);
                soc.set_naive_scheduling(true);
                soc.cpu_mut().set_decode_cache_enabled(false);
            }
        }
        soc
    }

    fn arm_timer(soc: &mut Soc, period: u32) {
        soc.timer_mut().write(Timer::CMP, period).unwrap();
        soc.timer_mut()
            .write(Timer::CTRL, Timer::CTRL_ENABLE)
            .unwrap();
    }

    /// The trace point that marks a completed linking action.
    fn completion_marker(&self) -> (&'static str, &'static str) {
        match self.mediator {
            Mediator::PelsInstant => ("pels.link0", "action"),
            _ => ("gpio", "padout"),
        }
    }

    /// Executes the scenario: an *active* window with periodic linking
    /// events, plus an equal-length *idle* window (same configuration, no
    /// events) for the idle bars of Figure 5.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::NoEvents`] if no linking event completes within
    /// the cycle budget — a below-threshold sensor, a mis-wired link, or
    /// a budget too small. A sweep engine reports this as that one job's
    /// failure instead of aborting the batch.
    pub fn try_run(&self) -> Result<ScenarioReport, ScenarioError> {
        // Active window.
        let mut soc = self.build_soc();
        // Start sampling before the timer is armed so the first window
        // covers the arming writes too: the window deltas then sum to
        // exactly the drained activity image of the whole active run.
        if self.timeline_window > 0 {
            soc.start_timeline(self.timeline_window);
        }
        Self::arm_timer(&mut soc, self.timer_period_cycles());
        let per_event = u64::from(self.timer_period_cycles())
            + u64::from(self.spi_words * self.spi_clkdiv())
            + 64;
        let budget = u64::from(self.events) * per_event + 2_000;
        let marker = self.completion_marker();
        let wanted = self.events as usize;
        {
            let _span = pels_obs::profile::span("scenario.active");
            soc.run_for_trace_count(budget, marker.0, marker.1, wanted);
        }

        let window = soc.window_time();
        let cycles = soc.window_cycles();
        let sched_stats = soc.sched_stats();
        let (decode_cache_hits, decode_cache_misses) = soc.decode_cache_stats();
        // Snapshot before the drain: `drain_activity` resets the windowed
        // counters (retired, fetches, fabric transfers) to zero.
        let metrics = self.obs.then(|| {
            let mut reg = pels_obs::MetricsRegistry::new();
            soc.publish_metrics(&mut reg);
            reg.snapshot()
        });
        // Collect the timeline before the drain: the sampler's deltas
        // are relative to the cumulative image the drain resets.
        let timeline = soc.take_timeline();
        let activity = soc.drain_activity();
        // Re-arm the µDMA channel is unnecessary for measurement; events
        // beyond the first reuse the FIFO path, which is equivalent for
        // the linking check (the `LAST` register always holds the newest
        // sample).
        let latencies: Vec<u64> = soc
            .trace()
            .latencies_all(("spi", "eot"), marker)
            .into_iter()
            .map(|t| t.as_ps() / self.freq().period_ps())
            .collect();
        let stats = LinkingStats::from_cycles(&latencies).ok_or(ScenarioError::NoEvents {
            mediator: self.mediator,
            budget,
        })?;
        let mut latency_hist = pels_obs::Histogram::new();
        for &l in &latencies {
            latency_hist.record(l);
        }
        let events_completed = soc.trace().all(marker.0, marker.1).len() as u32;
        // Detach the flow record before cloning the trace into the
        // report: flows are an analysis artifact, not part of the
        // architectural trace the differential suites compare.
        let flows = soc.trace_mut().take_flow_trace();

        // Idle window: identical configuration, timer disarmed, same
        // number of cycles.
        let mut idle_soc = self.build_soc();
        {
            let _span = pels_obs::profile::span("scenario.idle");
            idle_soc.run(cycles);
        }
        let idle_window = idle_soc.window_time();
        let idle_activity = idle_soc.drain_activity();

        // Energy ledger + lifetime projection: pure post-processing over
        // activity the run recorded anyway, computed after both windows
        // completed so it cannot perturb architectural results
        // (`tests/lifetime_invariance.rs`). With a sampled timeline the
        // ledger integrates per window; without one it integrates the
        // whole active window as a single sample.
        let (energy, lifetime) = if self.lifetime {
            let model = power_setup::power_model_for(self.pels());
            let pt = match &timeline {
                Some(t) => PowerTimeline::from_activity(&model, t, self.freq()),
                None => {
                    let report = model.report(&activity, window);
                    let components = report
                        .components()
                        .iter()
                        .map(|c| (c.name.clone(), c.total().as_uw()))
                        .collect();
                    PowerTimeline {
                        samples: vec![PowerSample {
                            start: SimTime::ZERO,
                            end: window,
                            total_uw: report.total().as_uw(),
                            components,
                        }],
                    }
                }
            };
            let ledger = EnergyLedger::from_timeline(&pt);
            let projection = Battery::coin_cell().project(&ledger);
            (Some(ledger), Some(projection))
        } else {
            (None, None)
        };

        Ok(ScenarioReport {
            mediator: self.mediator,
            freq: self.freq(),
            latencies,
            stats,
            latency_hist,
            timeline,
            events_completed,
            active_activity: activity,
            active_window: window,
            idle_activity,
            idle_window,
            pels: self.pels(),
            trace: soc.trace().clone(),
            sched_stats,
            decode_cache_hits,
            decode_cache_misses,
            metrics,
            flows,
            energy,
            lifetime,
        })
    }

    /// [`Scenario::try_run`], panicking on failure — the convenient form
    /// for presets and tests, where no events completing is a harness bug
    /// rather than a measurable outcome.
    ///
    /// # Panics
    ///
    /// Panics if the run produced no measurement.
    pub fn run(&self) -> ScenarioReport {
        self.try_run()
            .unwrap_or_else(|e| panic!("scenario failed: {e}"))
    }
}

/// The measured outcome of a [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Who mediated.
    pub mediator: Mediator,
    /// Clock of the mediating system.
    pub freq: Frequency,
    /// Raw per-event latencies in cycles.
    pub latencies: Vec<u64>,
    /// Latency statistics.
    pub stats: LinkingStats,
    /// The same per-event latencies as a mergeable distribution — the
    /// fleet merges these across jobs deterministically (bucket counts
    /// add, order-invariant).
    pub latency_hist: pels_obs::Histogram,
    /// Windowed activity timeline of the active run — `Some` only when
    /// the scenario was built with [`ScenarioBuilder::timeline_window`].
    pub timeline: Option<pels_sim::ActivityTimeline>,
    /// Linking events completed.
    pub events_completed: u32,
    /// Switching activity of the active window.
    pub active_activity: ActivitySet,
    /// Duration of the active window.
    pub active_window: SimTime,
    /// Switching activity of the matching idle window.
    pub idle_activity: ActivitySet,
    /// Duration of the idle window.
    pub idle_window: SimTime,
    /// The PELS configuration used.
    pub pels: PelsConfig,
    /// The full event trace of the active run (per-stage analysis).
    pub trace: Trace,
    /// Scheduler statistics of the active run (fast/stirred/naive cycle
    /// split, skip spans, rebuilds).
    pub sched_stats: SchedStats,
    /// Decoded-instruction cache hits during the active run.
    pub decode_cache_hits: u64,
    /// Decoded-instruction cache misses during the active run.
    pub decode_cache_misses: u64,
    /// Full metrics snapshot of the active run — `Some` only when the
    /// scenario was built with [`ScenarioBuilder::obs`].
    pub metrics: Option<pels_obs::MetricsSnapshot>,
    /// Causal event-flow record of the active run — `Some` only when the
    /// scenario was built with [`ScenarioBuilder::flows`]. Analyze it
    /// with [`ScenarioReport::flow_report`].
    pub flows: Option<pels_sim::FlowTrace>,
    /// Integrated per-component energy of the active run — `Some` only
    /// when the scenario was built with [`ScenarioBuilder::lifetime`].
    pub energy: Option<EnergyLedger>,
    /// Battery-lifetime projection over [`Self::energy`] (the default
    /// coin cell) — `Some` exactly when `energy` is.
    pub lifetime: Option<LifetimeReport>,
}

impl ScenarioReport {
    /// The calibrated power model for this configuration.
    pub fn power_model(&self) -> PowerModel {
        power_setup::power_model_for(self.pels)
    }

    /// Power report for the active window.
    pub fn active_power(&self, model: &PowerModel) -> PowerReport {
        model.report(&self.active_activity, self.active_window)
    }

    /// Power report for the idle window.
    pub fn idle_power(&self, model: &PowerModel) -> PowerReport {
        model.report(&self.idle_activity, self.idle_window)
    }

    /// Per-window power over the active run — `Some` only when the
    /// scenario sampled a timeline
    /// ([`ScenarioBuilder::timeline_window`]).
    pub fn power_timeline(&self, model: &PowerModel) -> Option<pels_power::PowerTimeline> {
        self.timeline
            .as_ref()
            .map(|t| pels_power::PowerTimeline::from_activity(model, t, self.freq))
    }

    /// Mean latency as wall-clock time (for the 500 ns iso-latency
    /// check).
    pub fn mean_latency_time(&self) -> SimTime {
        SimTime::from_ps(self.stats.mean * self.freq.period_ps())
    }

    /// Per-stage latency attribution over the recorded flows — `Some`
    /// only when the scenario ran with [`ScenarioBuilder::flows`].
    ///
    /// The report decomposes the same eot→actuation segment
    /// [`LinkingStats`] measures, so its per-stage cycle sums telescope
    /// to exactly the end-to-end latencies
    /// (`tests/flow_properties.rs`).
    pub fn flow_report(&self) -> Option<pels_obs::FlowReport> {
        let flows = self.flows.as_ref()?;
        let terminal = match self.mediator {
            Mediator::PelsInstant => "action",
            _ => "padout",
        };
        Some(pels_obs::FlowReport::from_flows(
            flows,
            self.freq.period_ps(),
            "eot",
            terminal,
        ))
    }

    /// Serializes the report to a machine-readable JSON object.
    ///
    /// Covers the headline measurements (latency statistics, window
    /// durations, events completed) plus the fast-path counters; when
    /// the scenario ran with [`ScenarioBuilder::obs`] the full metrics
    /// snapshot is inlined under `"metrics"`, otherwise that field is
    /// `null`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("{\n");
        let _ = writeln!(
            s,
            "  \"mediator\": \"{}\",",
            pels_obs::json::escape(&self.mediator.to_string())
        );
        let _ = writeln!(s, "  \"freq_mhz\": {},", self.freq.as_mhz());
        let _ = writeln!(s, "  \"events_completed\": {},", self.events_completed);
        let _ = writeln!(
            s,
            "  \"latency_cycles\": {{\"count\": {}, \"min\": {}, \"max\": {}, \
             \"mean\": {}, \"p50\": {}, \"p99\": {}, \"jitter\": {}}},",
            self.stats.count,
            self.stats.min,
            self.stats.max,
            self.stats.mean,
            self.stats.p50,
            self.stats.p99,
            self.stats.jitter()
        );
        let _ = writeln!(s, "  \"active_window_ns\": {},", self.active_window.as_ns());
        let _ = writeln!(s, "  \"idle_window_ns\": {},", self.idle_window.as_ns());
        let sc = &self.sched_stats;
        let _ = writeln!(
            s,
            "  \"sched\": {{\"fast_cycles\": {}, \"stirred_cycles\": {}, \
             \"naive_cycles\": {}, \"skip_spans\": {}, \"skipped_cycles\": {}, \
             \"rebuilds\": {}, \"wakes\": {}, \"sleeps\": {}}},",
            sc.fast_cycles,
            sc.stirred_cycles,
            sc.naive_cycles,
            sc.skip_spans,
            sc.skipped_cycles,
            sc.rebuilds,
            sc.wakes,
            sc.sleeps
        );
        let _ = writeln!(
            s,
            "  \"decode_cache\": {{\"hits\": {}, \"misses\": {}}},",
            self.decode_cache_hits, self.decode_cache_misses
        );
        let _ = writeln!(s, "  \"trace_events\": {},", self.trace.len());
        match &self.energy {
            Some(ledger) => {
                let _ = writeln!(s, "  \"energy\": {},", ledger.to_json());
            }
            None => s.push_str("  \"energy\": null,\n"),
        }
        match &self.lifetime {
            Some(projection) => {
                let _ = writeln!(s, "  \"lifetime\": {},", projection.to_json());
            }
            None => s.push_str("  \"lifetime\": null,\n"),
        }
        match &self.metrics {
            Some(snap) => {
                s.push_str("  \"metrics\": {");
                for (i, (name, v)) in snap.iter().enumerate() {
                    let sep = if i + 1 < snap.len() { "," } else { "" };
                    let _ = write!(
                        s,
                        "\n    \"{}\": {v}{sep}",
                        pels_obs::json::escape(name)
                    );
                }
                s.push_str("\n  }\n");
            }
            None => s.push_str("  \"metrics\": null\n"),
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequenced_rmw_latency_is_seven_cycles() {
        let report = Scenario::latency_probe(Mediator::PelsSequenced).run();
        assert_eq!(report.stats.min, 7, "paper: 7-cycle sequenced action");
        assert_eq!(report.stats.max, 7, "no jitter on an idle bus");
    }

    #[test]
    fn instant_action_latency_is_two_cycles() {
        let report = Scenario::latency_probe(Mediator::PelsInstant).run();
        assert_eq!(report.stats.min, 2, "paper: 2-cycle instant action");
        assert_eq!(report.stats.jitter(), 0, "instant actions are fixed-latency");
    }

    #[test]
    fn ibex_interrupt_latency_is_sixteen_cycles() {
        let report = Scenario::latency_probe(Mediator::IbexIrq).run();
        assert_eq!(
            report.stats.min, 16,
            "paper: 16 cycles through the interrupt path"
        );
    }

    #[test]
    fn threshold_program_actuates_every_readout() {
        let s = Scenario::iso_frequency(Mediator::PelsSequenced);
        let report = s.run();
        assert!(report.events_completed >= s.events);
        assert!(report.stats.min >= 11, "capture+jump+rmw path");
    }

    #[test]
    fn below_threshold_never_actuates() {
        let s = Scenario::builder()
            .sensor(SensorKind::Constant(1.0)) // below the 1.6 V threshold
            .events(3)
            .build()
            .unwrap();
        let mut soc = s.build_soc();
        Scenario::arm_timer(&mut soc, s.timer_period_cycles());
        soc.run(3_000);
        assert!(soc.trace().all("spi", "eot").len() >= 3, "readouts happen");
        assert!(
            soc.trace().first("gpio", "padout").is_none(),
            "no actuation below threshold"
        );
    }

    #[test]
    fn iso_latency_meets_500ns_budget() {
        for mediator in [Mediator::PelsSequenced, Mediator::IbexIrq] {
            let report = Scenario::iso_latency(mediator).run();
            assert!(
                report.mean_latency_time() <= SimTime::from_ns(500),
                "{mediator}: {} exceeds 500 ns",
                report.mean_latency_time()
            );
        }
    }

    #[test]
    fn obs_snapshot_is_opt_in_and_does_not_perturb_results() {
        let base = Scenario::iso_frequency(Mediator::IbexIrq);
        let plain = base.run();
        let observed = base.to_builder().obs(true).build().unwrap().run();

        // Opt-in: the snapshot only exists when requested.
        assert!(plain.metrics.is_none());
        let snap = observed.metrics.as_ref().expect("obs(true) snapshot");
        assert!(snap.get("cpu.decode_cache.hits").unwrap_or(0) > 0);
        assert_eq!(
            snap.get("soc.sched.sleeps"),
            Some(observed.sched_stats.sleeps)
        );

        // Zero perturbation: identical architectural results either way.
        assert_eq!(plain.latencies, observed.latencies);
        assert_eq!(plain.trace.entries(), observed.trace.entries());
        assert_eq!(plain.sched_stats, observed.sched_stats);
        assert_eq!(plain.decode_cache_hits, observed.decode_cache_hits);

        // The JSON export carries the fast-path counters.
        let json = observed.to_json();
        assert!(json.contains("\"sched\""));
        assert!(json.contains("\"decode_cache\""));
        assert!(json.contains("\"cpu.decode_cache.hits\""));
        assert!(plain.to_json().contains("\"metrics\": null"));
    }

    #[test]
    fn lifetime_projection_is_opt_in_and_populated() {
        let plain = Scenario::iso_frequency(Mediator::PelsSequenced).run();
        assert!(plain.energy.is_none() && plain.lifetime.is_none());
        assert!(plain.to_json().contains("\"energy\": null"));

        let s = Scenario::duty_cycled(
            Mediator::PelsSequenced,
            SimTime::from_us(50),
            SimTime::from_ms(1),
        );
        assert_eq!(s.events, 20);
        assert!(s.lifetime);
        let report = s.run();
        let ledger = report.energy.as_ref().expect("ledger with lifetime(true)");
        assert!(ledger.total_uj() > 0.0);
        assert!(ledger.windows() > 1, "one window per duty period");
        let projection = report.lifetime.as_ref().expect("projection");
        assert!(projection.days() > 0.0 && projection.days().is_finite());
        let json = report.to_json();
        assert!(json.contains("\"energy\": {"));
        assert!(json.contains("\"days\":"));
    }

    #[test]
    fn lifetime_without_timeline_integrates_one_window() {
        let s = Scenario::builder()
            .mediator(Mediator::IbexIrq)
            .events(5)
            .lifetime(true)
            .build()
            .unwrap();
        let report = s.run();
        let ledger = report.energy.as_ref().unwrap();
        assert_eq!(ledger.windows(), 1);
        assert_eq!(ledger.span(), report.active_window);
        assert!(ledger.mean_power().as_uw() > 0.0);
    }

    #[test]
    fn udma_lands_sensor_words_in_l2() {
        let s = Scenario::iso_frequency(Mediator::PelsSequenced);
        let mut soc = s.build_soc();
        Scenario::arm_timer(&mut soc, s.timer_period_cycles());
        soc.run(u64::from(s.timer_period_cycles()) + 64);
        // 2.5 V on a 3.3 V 12-bit scale ≈ code 3102.
        let code = soc.l2().peek_word(0x4000);
        assert!(code > 3000 && code < 3200, "sample {code} landed in L2");
    }

    #[test]
    fn builder_rejects_unmeasurable_workloads() {
        assert_eq!(
            Scenario::builder().events(0).build().unwrap_err(),
            ScenarioError::ZeroEvents
        );
        assert_eq!(
            Scenario::builder().spi_words(0).build().unwrap_err(),
            ScenarioError::ZeroSpiWords
        );
        assert_eq!(
            Scenario::builder()
                .sample_period(SimTime::ZERO)
                .build()
                .unwrap_err(),
            ScenarioError::ZeroSamplePeriod
        );
        assert_eq!(
            Scenario::builder()
                .mediator(Mediator::IbexIrq)
                .use_udma(false)
                .build()
                .unwrap_err(),
            ScenarioError::IrqNeedsUdma
        );
    }

    #[test]
    fn builder_surfaces_config_errors() {
        assert_eq!(
            Scenario::builder().pels_links(0).build().unwrap_err(),
            ScenarioError::Config(ConfigError::ZeroLinks)
        );
        assert_eq!(
            Scenario::builder().scm_lines(0).build().unwrap_err(),
            ScenarioError::Config(ConfigError::ZeroScmLines)
        );
        assert_eq!(
            Scenario::builder().spi_clkdiv(0).build().unwrap_err(),
            ScenarioError::Config(ConfigError::ZeroClkdiv)
        );
    }

    #[test]
    fn try_run_reports_no_events_instead_of_panicking() {
        // Sensor below threshold: readouts happen but the linking action
        // never fires, so the run completes no events.
        let s = Scenario::builder()
            .sensor(SensorKind::Constant(1.0))
            .events(3)
            .build()
            .unwrap();
        match s.try_run() {
            Err(ScenarioError::NoEvents { mediator, .. }) => {
                assert_eq!(mediator, Mediator::PelsSequenced);
            }
            other => panic!("expected NoEvents, got {other:?}"),
        }
    }

    #[test]
    fn to_builder_round_trips_and_derives_variants() {
        let base = Scenario::iso_latency(Mediator::PelsInstant);
        let variant = base.to_builder().events(7).build().unwrap();
        assert_eq!(variant.mediator, Mediator::PelsInstant);
        assert_eq!(variant.freq(), base.freq());
        assert_eq!(variant.events, 7);
    }

    #[test]
    fn error_display_and_source_are_useful() {
        let e = ScenarioError::Config(ConfigError::ZeroLinks);
        assert!(e.to_string().contains("invalid SoC configuration"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&ScenarioError::ZeroEvents).is_none());
    }
}
