//! Global single-wire event/action line assignments.
//!
//! One 64-line space is shared by peripheral event outputs (low lines)
//! and PELS action outputs (lines ≥ 16), so the merged wire image a
//! peripheral samples is collision-free by construction.

/// SPI end-of-transfer pulse.
pub const EV_SPI_EOT: u32 = 0;
/// SPI µDMA buffer-complete pulse.
pub const EV_SPI_UDMA_DONE: u32 = 1;
/// Timer compare-match pulse.
pub const EV_TIMER_CMP: u32 = 2;
/// ADC conversion-done pulse.
pub const EV_ADC_DONE: u32 = 3;
/// GPIO watched-pin rising-edge pulse.
pub const EV_GPIO_RISE: u32 = 4;
/// UART transmit-complete pulse.
pub const EV_UART_TX_DONE: u32 = 5;
/// Watchdog bite pulse.
pub const EV_WDT_BITE: u32 = 6;
/// I2C transaction-done pulse.
pub const EV_I2C_DONE: u32 = 7;
/// I2C address-NACK pulse.
pub const EV_I2C_NACK: u32 = 8;

/// PELS action line wired to the GPIO *set* pad action.
pub const AL_GPIO_SET: u32 = 19;
/// PELS action line wired to the GPIO *toggle* pad action.
pub const AL_GPIO_TOGGLE: u32 = 20;
/// PELS action line wired to the GPIO *clear* pad action.
pub const AL_GPIO_CLEAR: u32 = 21;
/// PELS action line wired to the timer start.
pub const AL_TIMER_START: u32 = 22;
/// PELS action line wired to the timer stop.
pub const AL_TIMER_STOP: u32 = 23;
/// PELS action line wired to the ADC conversion start.
pub const AL_ADC_START: u32 = 24;
/// PELS action line wired to the watchdog kick.
pub const AL_WDT_KICK: u32 = 25;
/// PELS action line wired to the I2C transaction start.
pub const AL_I2C_START: u32 = 26;

/// First line of the PELS inter-link loopback window (Figure 2 ⑨).
pub const AL_LOOPBACK_FIRST: u32 = 40;
/// Last line of the loopback window.
pub const AL_LOOPBACK_LAST: u32 = 47;

/// Interrupt line (in `mie`/`mip`) an event line is latched onto for the
/// Ibex baseline: Ibex fast interrupts occupy bits 16..=30.
pub const fn irq_bit_for_event(event_line: u32) -> u32 {
    16 + event_line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn namespaces_are_disjoint() {
        let events = [
            EV_SPI_EOT,
            EV_SPI_UDMA_DONE,
            EV_TIMER_CMP,
            EV_ADC_DONE,
            EV_GPIO_RISE,
            EV_UART_TX_DONE,
            EV_WDT_BITE,
            EV_I2C_DONE,
            EV_I2C_NACK,
        ];
        let actions = [
            AL_GPIO_SET,
            AL_GPIO_TOGGLE,
            AL_GPIO_CLEAR,
            AL_TIMER_START,
            AL_TIMER_STOP,
            AL_ADC_START,
            AL_WDT_KICK,
            AL_I2C_START,
        ];
        for e in events {
            assert!(e < 16, "peripheral events live below line 16");
            for a in actions {
                assert_ne!(e, a);
            }
        }
        for a in actions {
            assert!((16..40).contains(&a), "actions live in 16..40");
        }
        assert!(AL_LOOPBACK_FIRST >= 40 && AL_LOOPBACK_LAST < 64);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn irq_bits_are_fast_interrupts() {
        assert_eq!(irq_bit_for_event(EV_SPI_EOT), 16);
        assert!(irq_bit_for_event(EV_WDT_BITE) <= 30);
    }
}
