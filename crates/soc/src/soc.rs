//! The SoC top level and its builder.

use crate::event_map::*;
use crate::mem_map::*;
use pels_core::pels::PelsBus;
use pels_core::{Pels, PelsBuilder};
use pels_cpu::{Cpu, CpuBus, CpuState, DataReq, DataResult};
use pels_desc::{DescError, PeriphKind, SystemDesc};
use pels_interconnect::{
    AddrRange, ApbFabric, ApbRequest, ApbSlave, ArbiterKind, MasterId, SlaveId, Topology,
};
use pels_periph::{
    Adc, Gpio, I2c, IdleHint, L2Memory, PeriphCtx, Peripheral, SensorDevice, Spi, Timer, Uart,
    Watchdog,
};
use pels_sim::{
    ActivityKind, ActivitySet, ActivityTimeline, ActivityWindow, ComponentId, EventVector,
    Frequency, SimTime, Trace,
};
use std::fmt;

/// The synthetic analog source (now owned by `pels-desc`, re-exported
/// for compatibility).
pub use pels_desc::SensorKind;

/// A structurally invalid SoC configuration, caught by
/// [`SocBuilder::try_build`] before any hardware is assembled.
///
/// Distinct from `pels_core::ConfigError` (a runtime register-access
/// fault): this is a *construction-time* validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `PelsConfig::links` was zero — a PELS with no links can never
    /// mediate an event.
    ZeroLinks,
    /// `PelsConfig::scm_lines` was zero — a link with no microcode store
    /// cannot hold even `halt`.
    ZeroScmLines,
    /// The SPI clock divider was zero — the serial clock would be
    /// division-by-zero fast.
    ZeroClkdiv,
    /// Any other [`SystemDesc::validate`] failure, with the JSON path of
    /// the offending value.
    Desc(DescError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroLinks => f.write_str("PELS needs at least 1 link"),
            ConfigError::ZeroScmLines => {
                f.write_str("each PELS link needs at least 1 SCM line")
            }
            ConfigError::ZeroClkdiv => f.write_str("SPI clkdiv must be at least 1"),
            ConfigError::Desc(e) => write!(f, "invalid system description: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Desc(e) => Some(e),
            _ => None,
        }
    }
}

/// Builder for [`Soc`], backed by a [`SystemDesc`].
///
/// [`SocBuilder::from_desc`] is the canonical entry point: every setter
/// below is a thin wrapper mutating the underlying description, so the
/// two construction styles cannot drift apart.
/// [`SocBuilder::try_build`] validates the description and assembles it;
/// [`SocBuilder::build`] is a panicking convenience wrapper over it.
///
/// ```
/// use pels_soc::{SocBuilder, SensorKind};
/// use pels_sim::Frequency;
/// let soc = SocBuilder::new()
///     .frequency(Frequency::from_mhz(55.0))
///     .pels_links(4)
///     .scm_lines(6)
///     .sensor(SensorKind::Constant(2.0))
///     .try_build()
///     .expect("valid configuration");
/// assert_eq!(soc.pels().link_count(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SocBuilder {
    desc: SystemDesc,
}

impl SocBuilder {
    /// Starts from [`SystemDesc::default`] (55 MHz, minimal PELS,
    /// constant 2.5 V sensor, canonical peripherals).
    pub fn new() -> Self {
        Self::default()
    }

    /// The canonical entry point: a builder assembling exactly `desc`.
    pub fn from_desc(desc: SystemDesc) -> Self {
        SocBuilder { desc }
    }

    /// The description this builder assembles.
    pub fn desc(&self) -> &SystemDesc {
        &self.desc
    }

    /// Sets the system clock frequency.
    pub fn frequency(mut self, freq: Frequency) -> Self {
        self.desc.freq = freq;
        self
    }

    /// Sets the number of PELS links.
    pub fn pels_links(mut self, links: usize) -> Self {
        self.desc.pels.links = links;
        self
    }

    /// Sets the SCM lines per link.
    pub fn scm_lines(mut self, lines: usize) -> Self {
        self.desc.pels.scm_lines = lines;
        self
    }

    /// Sets the per-link trigger-FIFO depth (0 = unbuffered ablation).
    pub fn fifo_depth(mut self, depth: usize) -> Self {
        self.desc.pels.fifo_depth = depth;
        self
    }

    /// Selects the analog source.
    pub fn sensor(mut self, sensor: SensorKind) -> Self {
        self.desc.sensor = sensor;
        self
    }

    /// Sets the SPI cycles-per-word divider.
    pub fn spi_clkdiv(mut self, clkdiv: u32) -> Self {
        self.desc.set_spi_clkdiv(clkdiv);
        self
    }

    /// Selects the fabric topology (shared APB vs per-slave crossbar).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.desc.topology = topology;
        self
    }

    /// Selects the arbitration policy (round-robin vs fixed-priority).
    pub fn arbiter(mut self, arbiter: ArbiterKind) -> Self {
        self.desc.arbiter = arbiter;
        self
    }

    /// Whether the timer compare event starts an SPI transfer (the
    /// autonomous-readout wiring of the paper's workload). Default true.
    pub fn timer_starts_spi(mut self, wired: bool) -> Self {
        self.desc.timer_starts_spi = wired;
        self
    }

    /// Assembles the SoC, validating the description first.
    ///
    /// # Errors
    ///
    /// The legacy impossibilities keep their legacy variants (zero links,
    /// zero SCM lines, zero clkdiv); everything else
    /// [`SystemDesc::validate`] catches — bad slots, missing or
    /// duplicated peripherals, out-of-range geometry — is reported as
    /// [`ConfigError::Desc`] with the JSON path of the offending value.
    pub fn try_build(self) -> Result<Soc, ConfigError> {
        if self.desc.pels.links == 0 {
            return Err(ConfigError::ZeroLinks);
        }
        if self.desc.pels.scm_lines == 0 {
            return Err(ConfigError::ZeroScmLines);
        }
        if self.desc.spi_clkdiv() == 0 {
            return Err(ConfigError::ZeroClkdiv);
        }
        self.desc.validate().map_err(ConfigError::Desc)?;
        Ok(self.assemble())
    }

    /// Assembles the SoC.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; [`SocBuilder::try_build`] is
    /// the non-panicking canonical path.
    pub fn build(self) -> Soc {
        self.try_build()
            .unwrap_or_else(|e| panic!("invalid SoC configuration: {e}"))
    }

    fn assemble(self) -> Soc {
        // PELS loopback window: lines 40..=47 feed back for inter-link
        // triggering.
        let loopback: EventVector =
            (AL_LOOPBACK_FIRST..=AL_LOOPBACK_LAST).collect();
        let mut pels_cfg = self.desc.pels.to_config();
        pels_cfg.loopback = loopback;
        let pels = PelsBuilder::new()
            .links(pels_cfg.links)
            .scm_lines(pels_cfg.scm_lines)
            .fifo_depth(pels_cfg.fifo_depth)
            .loopback(loopback)
            .build();

        let mut fabric: ApbFabric<Box<dyn Peripheral>> =
            ApbFabric::with_config(self.desc.topology, self.desc.arbiter);
        let cpu_master = fabric.add_master("ibex");
        let pels_masters: Vec<MasterId> = (0..pels_cfg.links)
            .map(|i| fabric.add_master(format!("pels.link{i}")))
            .collect();

        // Instantiate and wire each described peripheral, placing it on
        // its described APB slot in description order.
        let slot = |off: u32| AddrRange::new(APB_BASE + off, APB_STRIDE);
        let (mut gpio_id, mut timer_id, mut spi_id, mut adc_id) = (None, None, None, None);
        let (mut uart_id, mut wdt_id, mut i2c_id) = (None, None, None);
        let mut periph_names = Vec::with_capacity(self.desc.peripherals.len());
        for inst in &self.desc.peripherals {
            periph_names.push(inst.kind.name());
            let boxed: Box<dyn Peripheral> = match inst.kind {
                PeriphKind::Gpio => {
                    let mut gpio = Gpio::new("gpio");
                    gpio.wire_set_action(AL_GPIO_SET, 1)
                        .wire_clear_action(AL_GPIO_CLEAR, 1)
                        .wire_toggle_action(AL_GPIO_TOGGLE, 1)
                        .watch_pin(0, EV_GPIO_RISE);
                    Box::new(gpio)
                }
                PeriphKind::Timer => {
                    let mut timer = Timer::new("timer");
                    timer
                        .wire_compare_event(EV_TIMER_CMP)
                        .wire_start_action(AL_TIMER_START)
                        .wire_stop_action(AL_TIMER_STOP);
                    Box::new(timer)
                }
                PeriphKind::Spi { clkdiv } => {
                    let mut spi = Spi::new("spi", Box::new(self.desc.sensor.quantizer()));
                    spi.wire_eot_event(EV_SPI_EOT)
                        .wire_udma_done_event(EV_SPI_UDMA_DONE);
                    if self.desc.timer_starts_spi {
                        spi.wire_start_action(EV_TIMER_CMP);
                    }
                    spi.write(Spi::CLKDIV, clkdiv)
                        .expect("clkdiv is validated by the builder");
                    Box::new(spi)
                }
                PeriphKind::Adc { conversion_cycles } => {
                    let mut adc =
                        Adc::new("adc", self.desc.sensor.quantizer(), conversion_cycles);
                    adc.wire_done_event(EV_ADC_DONE)
                        .wire_start_action(AL_ADC_START);
                    Box::new(adc)
                }
                PeriphKind::Uart => {
                    let mut uart = Uart::new("uart");
                    uart.wire_tx_done_event(EV_UART_TX_DONE);
                    Box::new(uart)
                }
                PeriphKind::Wdt => {
                    let mut wdt = Watchdog::new("wdt");
                    wdt.wire_bite_event(EV_WDT_BITE)
                        .wire_kick_action(AL_WDT_KICK);
                    Box::new(wdt)
                }
                PeriphKind::I2c => {
                    let mut i2c = I2c::new("i2c");
                    i2c.attach(Box::new(SensorDevice::new(
                        0x48,
                        self.desc.sensor.quantizer(),
                    )))
                    .wire_done_event(EV_I2C_DONE)
                    .wire_nack_event(EV_I2C_NACK)
                    .wire_start_action(AL_I2C_START);
                    Box::new(i2c)
                }
            };
            let id = fabric.add_slave(slot(inst.offset), boxed);
            match inst.kind {
                PeriphKind::Gpio => gpio_id = Some(id),
                PeriphKind::Timer => timer_id = Some(id),
                PeriphKind::Spi { .. } => spi_id = Some(id),
                PeriphKind::Adc { .. } => adc_id = Some(id),
                PeriphKind::Uart => uart_id = Some(id),
                PeriphKind::Wdt => wdt_id = Some(id),
                PeriphKind::I2c => i2c_id = Some(id),
            }
        }
        let expect = |id: Option<SlaveId>, name: &str| {
            id.unwrap_or_else(|| panic!("description must instantiate one `{name}`"))
        };
        let gpio_id = expect(gpio_id, "gpio");
        let timer_id = expect(timer_id, "timer");
        let spi_id = expect(spi_id, "spi");
        let adc_id = expect(adc_id, "adc");
        let uart_id = expect(uart_id, "uart");
        let wdt_id = expect(wdt_id, "wdt");
        let i2c_id = expect(i2c_id, "i2c");
        let slave_count = fabric.slave_count();

        let clock_ids = ClockIds {
            ibex: ComponentId::intern("ibex"),
            fabric: ComponentId::intern("fabric"),
            soc_ctrl: ComponentId::intern("soc_ctrl"),
            periph_misc: ComponentId::intern("periph_misc"),
            periphs: periph_names
                .iter()
                .map(|n| ComponentId::intern(n))
                .collect(),
            pels: ComponentId::intern("pels"),
            links: (0..pels_cfg.links)
                .map(|i| ComponentId::intern(&format!("pels.link{i}")))
                .collect(),
        };

        Soc {
            freq: self.desc.freq,
            cycle: 0,
            l2: L2Memory::new(L2_SIZE),
            fabric,
            pels,
            pels_masters,
            cpu: Cpu::new(RESET_PC),
            cpu_master,
            activity: ActivitySet::new(),
            trace: Trace::new(),
            prev_wires: EventVector::EMPTY,
            injected: EventVector::EMPTY,
            irq_pending: 0,
            irq_map: vec![
                (EV_SPI_EOT, irq_bit_for_event(EV_SPI_EOT)),
                (EV_TIMER_CMP, irq_bit_for_event(EV_TIMER_CMP)),
                (EV_ADC_DONE, irq_bit_for_event(EV_ADC_DONE)),
                (EV_WDT_BITE, irq_bit_for_event(EV_WDT_BITE)),
            ],
            irq_flow: [0; 32],
            gpio_id,
            timer_id,
            spi_id,
            adc_id,
            uart_id,
            wdt_id,
            i2c_id,
            cpu_awake_cycles: 0,
            window_cycles: 0,
            sleep: vec![SlaveSleep::Awake; slave_count],
            sched: SlaveSched {
                active: (0..slave_count).collect(),
                asleep: 0,
                lazy: 0,
                wake_union: EventVector::EMPTY,
                next_deadline: u64::MAX,
                stats: SchedStats::default(),
            },
            naive_ticking: false,
            clock_ids,
            sampler: None,
            sprint_token: false,
            sprint: SprintStats::default(),
        }
    }
}

/// Cumulative sprint-dispatch counters (see [`Soc::sprint_stats`]).
///
/// These describe the *host-side* sprint accelerator, not the modelled
/// hardware — like `SuperblockStats`, they legitimately differ between
/// execution modes, so they live outside [`SchedStats`] (which
/// differential tests compare bit-for-bit across modes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SprintStats {
    /// Successful sprints (spans that advanced at least one cycle).
    pub spans: u64,
    /// Full precondition proofs that established a fresh token.
    pub proofs: u64,
    /// Sprint entries served by a live token (re-proof skipped).
    pub token_hits: u64,
    /// Events that dropped a live token.
    pub invalidations: u64,
}

/// State of the passive windowed activity sampler (see
/// [`Soc::start_timeline`]).
///
/// The sampler never changes how the SoC advances: it only *reads* the
/// cumulative activity image at observation points the run loops already
/// pass through, so obs-off and timeline-on runs are bit-identical in
/// every architectural result (`tests/obs_invariance.rs`).
struct TimelineSampler {
    /// Nominal window width in cycles.
    window_cycles: u64,
    /// Cycle at which the current window opened.
    window_start: u64,
    /// First cycle at or past which the current window closes. Checked
    /// (never enforced) at run-loop observation points, so a quiescence
    /// skip crossing the boundary stretches the window instead of being
    /// split — `try_skip` and `SchedStats` stay untouched.
    next_boundary: u64,
    /// Cumulative activity image at window start (components flushed).
    baseline: ActivitySet,
    /// `cpu_awake_cycles` at window start (for the gated-clock share).
    baseline_awake: u64,
    /// Windows captured so far.
    timeline: ActivityTimeline,
}

/// Pre-interned component ids used on the per-drain clock-accounting
/// path, so draining never re-interns (or re-formats) names.
struct ClockIds {
    ibex: ComponentId,
    fabric: ComponentId,
    soc_ctrl: ComponentId,
    periph_misc: ComponentId,
    periphs: Vec<ComponentId>,
    pels: ComponentId,
    links: Vec<ComponentId>,
}

/// Quiescence-scheduling state of one APB slave.
#[derive(Debug, Clone, Copy)]
enum SlaveSleep {
    /// Ticked every cycle.
    Awake,
    /// Skipped since cycle `since` (the first un-ticked cycle); must be
    /// ticked again no later than cycle `deadline`. `mask` is the
    /// wake-event mask cached when the slave went to sleep (wiring is
    /// construction-time static, and any register access wakes the slave
    /// before it could change). `lazy` caches
    /// [`Peripheral::catch_up_is_noop`] from the same moment — nothing
    /// can mutate a sleeping slave, so it stays valid for the whole skip
    /// and lets `sync_slaves` bypass slaves with nothing to reconstruct.
    Asleep {
        since: u64,
        deadline: u64,
        mask: EventVector,
        lazy: bool,
    },
}

/// Cumulative scheduler statistics: which of the three stepping regimes
/// each cycle took, how much whole-SoC idle time was jumped, and how
/// often slaves changed sleep state. Pure observation — nothing in the
/// scheduler reads these back, so recording them cannot perturb
/// behaviour (`tests/obs_invariance.rs` proves runs are bit-identical
/// with observability on or off).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Cycles stepped on the fast active-list path (no sleeper could
    /// wake, only active slaves ticked).
    pub fast_cycles: u64,
    /// Cycles where the aggregate stir check forced a full slave walk.
    pub stirred_cycles: u64,
    /// Cycles stepped under naive (reference) scheduling.
    pub naive_cycles: u64,
    /// Whole-SoC idle spans jumped by the O(1) skip.
    pub skip_spans: u64,
    /// Total cycles covered by those spans.
    pub skipped_cycles: u64,
    /// Scheduler aggregate rebuilds (one per sleep-state transition
    /// batch).
    pub rebuilds: u64,
    /// Individual slave wake transitions.
    pub wakes: u64,
    /// Individual slave sleep transitions.
    pub sleeps: u64,
}

impl SchedStats {
    /// Cycles actually stepped (excludes skipped spans).
    pub fn stepped_cycles(&self) -> u64 {
        self.fast_cycles + self.stirred_cycles + self.naive_cycles
    }
}

/// Aggregates over the per-slave [`SlaveSleep`] vector, rebuilt whenever
/// any slave changes sleep state. They turn the per-cycle scheduling
/// questions ("does any sleeper need waking?", "who must tick?") into a
/// few word-sized compares instead of a walk over every `Box<dyn
/// Peripheral>` — the active-slave scheduling half of the fast active
/// path (see `DESIGN.md` §7).
#[derive(Debug, Clone, Default)]
struct SlaveSched {
    /// Indices of awake slaves, ascending — iterating it visits slaves
    /// in exactly the order the naive full walk does.
    active: Vec<usize>,
    /// Bit-per-index mask of sleeping slaves.
    asleep: u64,
    /// Bit-per-index mask of sleepers whose `catch_up` is a no-op.
    lazy: u64,
    /// Union of all sleepers' wake masks.
    wake_union: EventVector,
    /// Earliest sleeper deadline (`u64::MAX` when none sleeps).
    next_deadline: u64,
    /// Observation-only counters (never read by scheduling decisions).
    stats: SchedStats,
}

impl SlaveSched {
    fn rebuild(&mut self, sleep: &[SlaveSleep]) {
        self.stats.rebuilds += 1;
        self.active.clear();
        self.asleep = 0;
        self.lazy = 0;
        self.wake_union = EventVector::EMPTY;
        self.next_deadline = u64::MAX;
        for (i, s) in sleep.iter().enumerate() {
            match *s {
                SlaveSleep::Awake => self.active.push(i),
                SlaveSleep::Asleep {
                    deadline,
                    mask,
                    lazy,
                    ..
                } => {
                    self.asleep |= 1 << i;
                    if lazy {
                        self.lazy |= 1 << i;
                    }
                    self.wake_union |= mask;
                    self.next_deadline = self.next_deadline.min(deadline);
                }
            }
        }
    }
}

/// The assembled PULPissimo-like SoC.
pub struct Soc {
    freq: Frequency,
    cycle: u64,
    l2: L2Memory,
    fabric: ApbFabric<Box<dyn Peripheral>>,
    pels: Pels,
    pels_masters: Vec<MasterId>,
    cpu: Cpu,
    cpu_master: MasterId,
    activity: ActivitySet,
    trace: Trace,
    /// Wire image peripherals sample next cycle: pulses + action lines.
    prev_wires: EventVector,
    /// Externally injected pulses for the next cycle (pad-level wake-up
    /// sources outside the modelled peripherals, e.g. an always-on
    /// 32 kHz domain).
    injected: EventVector,
    /// Edge-latched interrupt pending bits (cleared on CPU claim).
    irq_pending: u32,
    irq_map: Vec<(u32, u32)>,
    /// Causal flow latched alongside each `irq_pending` bit (flow layer
    /// only; all zeros when flows are off).
    irq_flow: [u64; 32],
    gpio_id: SlaveId,
    timer_id: SlaveId,
    spi_id: SlaveId,
    adc_id: SlaveId,
    uart_id: SlaveId,
    wdt_id: SlaveId,
    i2c_id: SlaveId,
    cpu_awake_cycles: u64,
    window_cycles: u64,
    /// Per-slave quiescence state, indexed by slave index.
    sleep: Vec<SlaveSleep>,
    /// Aggregates over `sleep`, kept in lockstep with it.
    sched: SlaveSched,
    /// When set, every slave ticks every cycle (the reference scheduler
    /// the differential property test compares against).
    naive_ticking: bool,
    clock_ids: ClockIds,
    /// Windowed activity sampler; `None` (the default) keeps every run
    /// loop's sampling cost at a single predictable branch.
    sampler: Option<Box<TimelineSampler>>,
    /// Cached sprint eligibility: when set, the token-cacheable
    /// preconditions of [`Soc::try_cpu_sprint`] were proven and no event
    /// that could change them has happened since, so consecutive sprints
    /// skip the re-proof. Dropped by [`Soc::invalidate_sprint_token`].
    sprint_token: bool,
    /// Sprint-dispatch counters (host-side; never part of `SchedStats`).
    sprint: SprintStats,
}

impl std::fmt::Debug for Soc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Soc")
            .field("freq", &self.freq)
            .field("cycle", &self.cycle)
            .field("pels_links", &self.pels.link_count())
            .finish_non_exhaustive()
    }
}

/// PELS master ports over the fabric.
struct PelsPort<'a> {
    fabric: &'a mut ApbFabric<Box<dyn Peripheral>>,
    masters: &'a [MasterId],
}

impl PelsBus for PelsPort<'_> {
    fn can_issue(&self, link: usize) -> bool {
        self.fabric.can_issue(self.masters[link])
    }
    fn issue_read(&mut self, link: usize, addr: u32) -> bool {
        self.fabric
            .issue(self.masters[link], ApbRequest::read(addr))
            .is_ok()
    }
    fn issue_write(&mut self, link: usize, addr: u32, value: u32) -> bool {
        self.fabric
            .issue(self.masters[link], ApbRequest::write(addr, value))
            .is_ok()
    }
    fn take_response(&mut self, link: usize) -> Option<Result<u32, ()>> {
        self.fabric
            .take_response(self.masters[link])
            .map(|r| r.result.map_err(|_| ()))
    }
}

/// The CPU's view of the platform: L2 (fast path), PELS config (fixed
/// short latency) and the APB peripherals (through the fabric, with
/// arbitration stalls).
struct CpuPort<'a> {
    l2: &'a mut L2Memory,
    fabric: &'a mut ApbFabric<Box<dyn Peripheral>>,
    master: MasterId,
    pels: &'a mut Pels,
    pels_id: ComponentId,
    activity: &'a mut ActivitySet,
    trace: &'a mut Trace,
    /// Time of the cycle this port was built for (handler load/store flow
    /// hops; exact — `run_block` never issues data accesses).
    time: SimTime,
    cpu_id: ComponentId,
}

impl CpuBus for CpuPort<'_> {
    fn fetch(&mut self, addr: u32) -> u32 {
        debug_assert!(
            (L2_BASE..L2_BASE + L2_SIZE).contains(&addr),
            "instruction fetch outside L2: {addr:#x}"
        );
        self.l2.read_word(addr - L2_BASE)
    }

    fn peek_fetch(&self, addr: u32) -> u32 {
        debug_assert!(
            (L2_BASE..L2_BASE + L2_SIZE).contains(&addr),
            "instruction fetch outside L2: {addr:#x}"
        );
        self.l2.peek_word(addr - L2_BASE)
    }

    fn charge_fetches(&mut self, n: u32) {
        self.l2.charge_reads(u64::from(n));
    }

    fn data(&mut self, req: DataReq) -> DataResult {
        let addr = req.addr;
        if (L2_BASE..L2_BASE + L2_SIZE).contains(&addr) {
            let off = addr - L2_BASE;
            if req.write {
                if req.strobe == 0b1111 {
                    self.l2.write_word(off, req.wdata);
                } else {
                    let mut w = self.l2.peek_word(off);
                    for lane in 0..4 {
                        if req.strobe & (1 << lane) != 0 {
                            let mask = 0xFFu32 << (lane * 8);
                            w = (w & !mask) | (req.wdata & mask);
                        }
                    }
                    self.l2.write_word(off, w);
                }
                DataResult::Done {
                    value: 0,
                    extra_cycles: 0,
                }
            } else {
                DataResult::Done {
                    value: self.l2.read_word(off),
                    extra_cycles: 0,
                }
            }
        } else if (PELS_BASE..PELS_BASE + PELS_SIZE).contains(&addr) {
            let off = addr - PELS_BASE;
            // The config port is a simple APB endpoint: model its
            // setup+access as two extra stall cycles.
            if req.write {
                self.activity.record(self.pels_id, ActivityKind::RegWrite, 1);
                match self.pels.config_write(off, req.wdata) {
                    Ok(()) => DataResult::Done {
                        value: 0,
                        extra_cycles: 2,
                    },
                    Err(_) => DataResult::Fault,
                }
            } else {
                self.activity.record(self.pels_id, ActivityKind::RegRead, 1);
                match self.pels.config_read(off) {
                    Ok(v) => DataResult::Done {
                        value: v,
                        extra_cycles: 2,
                    },
                    Err(_) => DataResult::Fault,
                }
            }
        } else if (APB_BASE..APB_BASE + APB_SIZE).contains(&addr) {
            let request = if req.write {
                ApbRequest::write(addr, req.wdata)
            } else {
                ApbRequest::read(addr)
            };
            match self.fabric.issue(self.master, request) {
                Ok(()) => {
                    // One APB data access per handler load/store: issued
                    // exactly once per transaction (later cycles poll).
                    self.trace.flow_hop(
                        self.time,
                        self.cpu_id,
                        if req.write { "handler_store" } else { "handler_load" },
                    );
                    DataResult::Pending
                }
                Err(_) => DataResult::Fault,
            }
        } else {
            DataResult::Fault
        }
    }

    fn poll(&mut self) -> Option<Result<u32, ()>> {
        self.fabric
            .take_response(self.master)
            .map(|r| r.result.map_err(|_| ()))
    }
}

impl Soc {
    /// The system clock frequency.
    pub fn frequency(&self) -> Frequency {
        self.freq
    }

    /// Elapsed cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current simulation time.
    pub fn time(&self) -> SimTime {
        SimTime::from_ps(self.freq.period_ps() * self.cycle)
    }

    /// The event trace (latency measurements read this).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable trace access (e.g. to disable recording in benches).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// The PELS instance.
    pub fn pels(&self) -> &Pels {
        &self.pels
    }

    /// Mutable PELS access (programming).
    pub fn pels_mut(&mut self) -> &mut Pels {
        // Reprogramming can unsettle the steady output the sprint token
        // relies on.
        self.invalidate_sprint_token();
        &mut self.pels
    }

    /// The CPU.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Mutable CPU access.
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    /// The L2 memory.
    pub fn l2(&self) -> &L2Memory {
        &self.l2
    }

    /// Mutable L2 access (program loading).
    pub fn l2_mut(&mut self) -> &mut L2Memory {
        &mut self.l2
    }

    /// Loads a program image at absolute address `addr` (must be in L2).
    ///
    /// # Panics
    ///
    /// Panics if the image falls outside L2.
    pub fn load_program(&mut self, addr: u32, words: &[u32]) {
        assert!(addr >= L2_BASE, "program must live in L2");
        self.l2.load(addr - L2_BASE, words);
    }

    fn periph<P: 'static>(&self, id: SlaveId) -> &P {
        self.fabric
            .slave(id)
            .as_any()
            .downcast_ref()
            .expect("slave id maps to its concrete type")
    }

    fn periph_mut<P: 'static>(&mut self, id: SlaveId) -> &mut P {
        // A direct mutable poke bypasses the bus, so none of the wake
        // conditions would notice it: sync the skipped span and force
        // the slave awake so its next tick sees the poked state.
        self.invalidate_sprint_token();
        self.sync_slaves();
        self.sleep[id.index()] = SlaveSleep::Awake;
        self.sched.rebuild(&self.sleep);
        self.fabric
            .slave_mut(id)
            .as_any_mut()
            .downcast_mut()
            .expect("slave id maps to its concrete type")
    }

    /// The GPIO controller.
    pub fn gpio(&self) -> &Gpio {
        self.periph(self.gpio_id)
    }

    /// Mutable GPIO access.
    pub fn gpio_mut(&mut self) -> &mut Gpio {
        let id = self.gpio_id;
        self.periph_mut(id)
    }

    /// The timer.
    pub fn timer(&self) -> &Timer {
        self.periph(self.timer_id)
    }

    /// Mutable timer access.
    pub fn timer_mut(&mut self) -> &mut Timer {
        let id = self.timer_id;
        self.periph_mut(id)
    }

    /// The SPI master.
    pub fn spi(&self) -> &Spi {
        self.periph(self.spi_id)
    }

    /// Mutable SPI access.
    pub fn spi_mut(&mut self) -> &mut Spi {
        let id = self.spi_id;
        self.periph_mut(id)
    }

    /// The ADC.
    pub fn adc(&self) -> &Adc {
        self.periph(self.adc_id)
    }

    /// Mutable ADC access.
    pub fn adc_mut(&mut self) -> &mut Adc {
        let id = self.adc_id;
        self.periph_mut(id)
    }

    /// The UART.
    pub fn uart(&self) -> &Uart {
        self.periph(self.uart_id)
    }

    /// Mutable UART access.
    pub fn uart_mut(&mut self) -> &mut Uart {
        let id = self.uart_id;
        self.periph_mut(id)
    }

    /// The watchdog.
    pub fn wdt(&self) -> &Watchdog {
        self.periph(self.wdt_id)
    }

    /// Mutable watchdog access.
    pub fn wdt_mut(&mut self) -> &mut Watchdog {
        let id = self.wdt_id;
        self.periph_mut(id)
    }

    /// The I2C master.
    pub fn i2c(&self) -> &I2c {
        self.periph(self.i2c_id)
    }

    /// Mutable I2C access.
    pub fn i2c_mut(&mut self) -> &mut I2c {
        let id = self.i2c_id;
        self.periph_mut(id)
    }

    /// Fabric statistics (transfers, stalls).
    pub fn fabric_stats(&self) -> pels_interconnect::FabricStats {
        self.fabric.stats()
    }

    /// Per-master fabric arbitration statistics (grants and stall cycles
    /// per bus master), cumulative since construction.
    pub fn master_stats(&self) -> Vec<pels_interconnect::MasterStats> {
        self.fabric.master_stats()
    }

    /// Scheduler statistics: fast/stirred/naive cycle split, skip spans,
    /// rebuild and wake/sleep transition counts. Cumulative since
    /// construction.
    pub fn sched_stats(&self) -> SchedStats {
        self.sched.stats
    }

    /// Decoded-instruction cache `(hits, misses)` (see
    /// [`pels_cpu::Cpu::decode_cache_stats`]).
    pub fn decode_cache_stats(&self) -> (u64, u64) {
        self.cpu.decode_cache_stats()
    }

    /// CPU superblock counters (see [`pels_cpu::Cpu::superblock_stats`]).
    pub fn superblock_stats(&self) -> pels_cpu::SuperblockStats {
        self.cpu.superblock_stats()
    }

    /// Sprint-dispatch counters: spans run, full precondition proofs,
    /// token hits and invalidations. Cumulative since construction.
    pub fn sprint_stats(&self) -> SprintStats {
        self.sprint
    }

    /// Publishes CPU, scheduler and fabric counters into an
    /// observability registry (gauge semantics — idempotent at a given
    /// point in the run). Keys: `cpu.*`, `soc.sched.*`, `fabric.*`, and
    /// `fabric.master.<name>.*` per bus master.
    pub fn publish_metrics(&self, reg: &mut pels_obs::MetricsRegistry) {
        self.cpu.publish_metrics(reg);
        let s = self.sched.stats;
        reg.set_named("soc.sched.fast_cycles", s.fast_cycles);
        reg.set_named("soc.sched.stirred_cycles", s.stirred_cycles);
        reg.set_named("soc.sched.naive_cycles", s.naive_cycles);
        reg.set_named("soc.sched.skip_spans", s.skip_spans);
        reg.set_named("soc.sched.skipped_cycles", s.skipped_cycles);
        reg.set_named("soc.sched.rebuilds", s.rebuilds);
        reg.set_named("soc.sched.wakes", s.wakes);
        reg.set_named("soc.sched.sleeps", s.sleeps);
        reg.set_named("soc.sprint.spans", self.sprint.spans);
        reg.set_named("soc.sprint.proofs", self.sprint.proofs);
        reg.set_named("soc.sprint.token_hits", self.sprint.token_hits);
        reg.set_named("soc.sprint.invalidations", self.sprint.invalidations);
        let f = self.fabric.stats();
        reg.set_named("fabric.transfers", f.transfers);
        reg.set_named("fabric.stall_cycles", f.stall_cycles);
        reg.set_named("fabric.busy_cycles", f.busy_cycles);
        for m in self.fabric.master_stats() {
            reg.set_named(&format!("fabric.master.{}.grants", m.name), m.grants);
            reg.set_named(&format!("fabric.master.{}.stalls", m.name), m.stall_cycles);
        }
    }

    /// Injects an external event pulse on global line `line` for the
    /// next cycle — the pad-level wake-up path of ULP SoCs (paper
    /// Section I: "the processing domain only wakes up when a specific
    /// condition is detected by the surrounding sensors"). Used by the
    /// dual-clock example to couple an always-on 32 kHz domain into the
    /// SoC domain.
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64`.
    pub fn inject_event(&mut self, line: u32) {
        // Injection is also re-checked per sprint entry; dropping the
        // token keeps the invalidation rule uniform (the consuming step
        // can wake sleepers and change the wire image).
        self.invalidate_sprint_token();
        self.injected.set(line);
        // An injected pulse is an originating stimulus: mint its flow and
        // stage it on the wire the consuming step will sample.
        self.trace
            .flow_raise(self.time(), self.clock_ids.soc_ctrl, line, "inject");
    }

    /// Turns on causal event-flow tracing (see `pels_sim::flow`). Off by
    /// default; enabling is a pure-observation switch — the differential
    /// `flow_invariance` suite proves runs are bit-identical either way.
    pub fn enable_flows(&mut self) {
        self.trace.enable_flows();
    }

    /// Selects the reference scheduler: every peripheral ticks every
    /// cycle, with no quiescence skipping. The default (`false`) skips
    /// idle peripherals and reconstructs their skipped cycles in closed
    /// form; both paths are observationally identical (same traces,
    /// activity and architectural state — the differential property test
    /// in `tests/` proves it).
    pub fn set_naive_scheduling(&mut self, naive: bool) {
        self.invalidate_sprint_token();
        self.sync_slaves();
        if naive {
            // Naive ticking never re-evaluates sleep state, so any slave
            // left asleep here would be skipped forever (and then
            // double-counted by a later catch-up). Wake everyone; the
            // sync above already replayed their skipped spans.
            self.sleep.fill(SlaveSleep::Awake);
            self.sched.rebuild(&self.sleep);
        }
        self.naive_ticking = naive;
    }

    /// Brings every sleeping slave's architectural state up to date
    /// (closed-form catch-up over the skipped span) without waking it.
    /// Called at every observation point — public step/run boundaries,
    /// `run_until` predicates, activity drains — so user code never sees
    /// lagging state.
    fn sync_slaves(&mut self) {
        // Only sleepers with a live catch-up (an enabled timer/watchdog
        // mid-count) have state to reconstruct; lazy sleepers' `catch_up`
        // is a no-op by contract, so skipping them — `since` and all — is
        // observationally identical.
        let mut pending = self.sched.asleep & !self.sched.lazy;
        if pending == 0 {
            return;
        }
        let cycle = self.cycle;
        let time = self.time();
        let sleep = &mut self.sleep;
        let mut ctx = PeriphCtx {
            cycle,
            time,
            events_in: EventVector::EMPTY,
            events_out: EventVector::EMPTY,
            l2: &mut self.l2,
            activity: &mut self.activity,
            trace: &mut self.trace,
        };
        while pending != 0 {
            let i = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            if let SlaveSleep::Asleep { since, .. } = &mut sleep[i] {
                let elapsed = cycle - *since;
                if elapsed > 0 {
                    self.fabric.slave_mut_at(i).catch_up(&mut ctx, elapsed);
                    *since = cycle;
                }
            }
        }
    }

    /// Executes one bus-clock cycle (see the crate docs for the phase
    /// ordering).
    pub fn step(&mut self) {
        self.step_inner();
        self.sync_slaves();
        self.timeline_tick();
    }

    fn step_inner(&mut self) {
        // A full step can change everything the sprint token caches
        // (slave sleep state, wires, fabric and PELS activity).
        self.invalidate_sprint_token();
        let time = self.time();
        let cycle = self.cycle;

        // 1. Peripherals (externally injected pulses appear alongside
        //    the peripheral-driven wires). A sleeping slave is skipped
        //    unless something can observe or perturb it this cycle: a
        //    wire it watches is high, a bus request is pending or in
        //    flight for it, its registers were accessed during the
        //    previous cycle's fabric phases, or its self-declared
        //    deadline arrived. Waking replays the skipped span in closed
        //    form *before* the normal tick, while the state is still
        //    exactly what the naive path would hold.
        let injected = std::mem::take(&mut self.injected);
        let wires = self.prev_wires | injected;
        let naive = self.naive_ticking;
        // Aggregate stir check: can *any* sleeper need waking this cycle?
        // The aggregates are conservative unions/minima of the per-slave
        // conditions, so `false` here proves the full walk would wake
        // nobody — the active list alone is then exactly the set of
        // slaves the naive walk would tick.
        let stirred = self.sched.asleep != 0
            && (cycle >= self.sched.next_deadline
                || wires.intersects(self.sched.wake_union)
                || (self.fabric.targeted_slaves() | self.fabric.touched_slaves())
                    & self.sched.asleep
                    != 0);
        let mut any_woke = false;
        let mut woke_count = 0u64;
        let pulses = if naive || stirred {
            if naive {
                self.sched.stats.naive_cycles += 1;
            } else {
                self.sched.stats.stirred_cycles += 1;
            }
            let targeted = self.fabric.targeted_slaves();
            let touched = self.fabric.touched_slaves();
            let sleep = &mut self.sleep;
            let mut ctx = PeriphCtx {
                cycle,
                time,
                events_in: wires,
                events_out: EventVector::EMPTY,
                l2: &mut self.l2,
                activity: &mut self.activity,
                trace: &mut self.trace,
            };
            for (sid, p) in self.fabric.slaves_mut() {
                let i = sid.index();
                if !naive {
                    if let SlaveSleep::Asleep {
                        since,
                        deadline,
                        mask,
                        ..
                    } = sleep[i]
                    {
                        let bit = 1u64 << i;
                        let wake = cycle >= deadline
                            || wires.intersects(mask)
                            || targeted & bit != 0
                            || touched & bit != 0;
                        if !wake {
                            continue;
                        }
                        p.catch_up(&mut ctx, cycle - since);
                        sleep[i] = SlaveSleep::Awake;
                        any_woke = true;
                        woke_count += 1;
                    }
                }
                p.tick(&mut ctx);
            }
            ctx.events_out | injected
        } else {
            // Fast path: no sleeper can wake, so only the active list
            // ticks — the per-cycle cost is proportional to activity, not
            // to the slave count.
            self.sched.stats.fast_cycles += 1;
            let mut ctx = PeriphCtx {
                cycle,
                time,
                events_in: wires,
                events_out: EventVector::EMPTY,
                l2: &mut self.l2,
                activity: &mut self.activity,
                trace: &mut self.trace,
            };
            for &i in &self.sched.active {
                self.fabric.slave_mut_at(i).tick(&mut ctx);
            }
            ctx.events_out | injected
        };
        self.sched.stats.wakes += woke_count;
        if any_woke {
            self.sched.rebuild(&self.sleep);
        }

        // 2. PELS.
        let actions = {
            let mut bus = PelsPort {
                fabric: &mut self.fabric,
                masters: &self.pels_masters,
            };
            self.pels.tick(pulses, time, &mut bus, &mut self.trace)
        };

        // 3. CPU with edge-latched interrupt lines.
        for &(line, bit) in &self.irq_map {
            if pulses.is_set(line) {
                let newly = self.irq_pending & (1 << bit) == 0;
                self.irq_pending |= 1 << bit;
                if newly && self.trace.flows_enabled() {
                    // Latch the wire's flow alongside the pending bit so
                    // the eventual handler entry inherits it.
                    let flow = self.trace.flow_on_lines(1u64 << line);
                    self.irq_flow[bit as usize] = flow;
                    self.trace
                        .flow_hop_with(time, self.clock_ids.ibex, flow, "irq_pend");
                }
            }
        }
        {
            let mut bus = CpuPort {
                l2: &mut self.l2,
                fabric: &mut self.fabric,
                master: self.cpu_master,
                pels: &mut self.pels,
                pels_id: self.clock_ids.pels,
                activity: &mut self.activity,
                trace: &mut self.trace,
                time,
                cpu_id: self.clock_ids.ibex,
            };
            self.cpu.tick(&mut bus, self.irq_pending);
        }
        if let Some(line) = self.cpu.take_irq_ack() {
            self.irq_pending &= !(1u32 << line);
            if self.trace.flows_enabled() {
                let flow = std::mem::take(&mut self.irq_flow[line as usize]);
                self.trace
                    .flow_begin(time, self.clock_ids.ibex, flow, "irq_enter");
            }
        }

        // 4. Fabric APB phases.
        self.fabric.tick();
        if self.trace.flows_enabled() {
            self.stage_write_commit_flows();
            // Handler exit: `mret` retires inside the CPU; convert its
            // core cycle (locked to the SoC cycle) to absolute time and
            // close out the CPU's flow context.
            if let Some(c) = self.cpu.take_mret() {
                let t = SimTime::from_ps(self.freq.period_ps() * c);
                self.trace.flow_hop(t, self.clock_ids.ibex, "mret");
                self.trace.flow_begin(t, self.clock_ids.ibex, 0, "mret");
            }
        }

        // 4b. Sleep decisions, on post-bus state: a slave whose idle
        //     hint says the next n-1 ticks are unobservable sleeps with
        //     an absolute deadline; an indefinitely idle one sleeps
        //     until an external wake condition. Hints are queried after
        //     the fabric phases so a register write landing this cycle
        //     is reflected.
        if !naive {
            // Only awake slaves can fall asleep, so consulting just the
            // active list is exhaustive. (Sleepers re-decide when they
            // wake, never in place.)
            let mut slept_count = 0u64;
            for &i in &self.sched.active {
                let p = self.fabric.slave_mut_at(i);
                match p.idle_hint() {
                    IdleHint::Busy => {}
                    IdleHint::IdleFor(n) => {
                        if n >= 2 {
                            self.sleep[i] = SlaveSleep::Asleep {
                                since: cycle + 1,
                                deadline: cycle.saturating_add(n),
                                mask: p.wake_mask(),
                                lazy: p.catch_up_is_noop(),
                            };
                            slept_count += 1;
                        }
                    }
                    IdleHint::Idle => {
                        self.sleep[i] = SlaveSleep::Asleep {
                            since: cycle + 1,
                            deadline: u64::MAX,
                            mask: p.wake_mask(),
                            lazy: p.catch_up_is_noop(),
                        };
                        slept_count += 1;
                    }
                }
            }
            self.sched.stats.sleeps += slept_count;
            if slept_count > 0 {
                self.sched.rebuild(&self.sleep);
            }
        }

        // 5. Bookkeeping.
        if matches!(self.cpu.state(), CpuState::Running | CpuState::MemWait) {
            self.cpu_awake_cycles += 1;
        }
        self.prev_wires = pulses | actions;
        self.trace.flow_cycle_end();
        self.cycle += 1;
        self.window_cycles += 1;
    }

    /// Translates this cycle's fabric write commits into staged causal
    /// flows keyed by the slave they hit: the CPU master carries the CPU's
    /// adopted context (IRQ handler stores), each PELS master its link's
    /// (sequenced RMW commands). Consumed by the slave's next tick — e.g.
    /// GPIO pad-out attribution. Only called when flows are enabled.
    fn stage_write_commit_flows(&mut self) {
        for i in 0..self.fabric.write_commits().len() {
            let (slave, master) = self.fabric.write_commits()[i];
            let flow = if master == self.cpu_master.index() {
                self.trace.flow_component(self.clock_ids.ibex)
            } else {
                self.pels_masters
                    .iter()
                    .position(|m| m.index() == master)
                    .and_then(|link| self.clock_ids.links.get(link))
                    .map(|&id| self.trace.flow_component(id))
                    .unwrap_or(0)
            };
            if flow != 0 {
                let id = self.fabric.slave_at(slave).component();
                self.trace.flow_stage_reg_write(id, flow);
            }
        }
    }

    /// Attempts to advance up to `budget` cycles in one jump, possible
    /// only when the whole SoC is provably inert: the CPU asleep (or
    /// halted) with no wakeable interrupt, every peripheral asleep and
    /// none of their wake wires high, the fabric empty, PELS steady, and
    /// the wire image self-reproducing. Returns the cycles skipped (0 if
    /// any component might act). Skipped peripherals are replayed by
    /// `catch_up` at the next wake or sync, so the jump is
    /// observationally identical to stepping — the differential test in
    /// `tests/quiescence.rs` exercises exactly this path via random
    /// `run` segment lengths.
    fn try_skip(&mut self, budget: u64) -> u64 {
        if self.naive_ticking || budget == 0 || !self.injected.is_empty() {
            return 0;
        }
        // A running (or bus-stalled) CPU always vetoes the skip — that is
        // the last check below (`skip_idle_cycles`), but on the busy path
        // it is the common exit, so take it first and skip the slave-state
        // proof entirely.
        if matches!(self.cpu.state(), CpuState::Running | CpuState::MemWait) {
            return 0;
        }
        let wires = self.prev_wires;
        // Every slave must be asleep, unwakeable by the current wires,
        // and strictly before its deadline; the span is bounded by the
        // nearest deadline. The `sched` aggregates answer all three in
        // O(1): an empty active list is "all asleep", the wake-mask
        // union covers every sleeper's mask, and the minimum deadline
        // bounds them all.
        if !self.sched.active.is_empty() {
            return 0;
        }
        if wires.intersects(self.sched.wake_union) {
            return 0;
        }
        let remain = self.sched.next_deadline.saturating_sub(self.cycle);
        if remain == 0 {
            return 0;
        }
        let span = budget.min(remain);
        if !self.fabric.is_quiescent() {
            return 0;
        }
        // Peripheral pulses are empty while all slaves sleep, so PELS
        // sees no external events; its output must already be latched
        // and must be exactly the standing wire image (pulses would decay
        // next cycle, so a mismatch means the image is still settling).
        match self.pels.steady_output(EventVector::EMPTY) {
            Some(visible) if visible == wires => {}
            _ => return 0,
        }
        // The CPU commits the skip (or vetoes it if running/stalled or
        // about to take an interrupt).
        if !self.cpu.skip_idle_cycles(span, self.irq_pending) {
            return 0;
        }
        self.pels.skip_cycles(span);
        self.fabric.skip_cycles(span);
        self.cycle += span;
        self.window_cycles += span;
        self.sched.stats.skip_spans += 1;
        self.sched.stats.skipped_cycles += span;
        span
    }

    /// Attempts to grant the *running* CPU a bounded multi-cycle budget
    /// and retire whole superblocks in one visit ([`Cpu::run_block`]) —
    /// the busy-CPU dual of [`Soc::try_skip`]. Returns the cycles
    /// advanced (0 if the SoC is not provably inert around the CPU).
    ///
    /// The span is only entered when every cycle in it would have taken
    /// the fast scheduler path with nothing but the CPU acting: every
    /// peripheral asleep, strictly before its deadline, unwakeable by the
    /// standing wires or by fabric traffic, the fabric empty, PELS steady
    /// with a self-reproducing wire image, and no deliverable interrupt.
    /// Block instructions are register-only (no bus, CSR or trap
    /// activity), so none of those conditions can change inside the span;
    /// the budget is additionally capped at the nearest peripheral
    /// deadline and the open timeline-window boundary, keeping
    /// `SchedStats` (sprinted cycles are exactly the fast-path cycles
    /// single-stepping would count), skip spans, windowed timelines and
    /// interrupt delivery bit-identical to single-stepped execution. The
    /// differential suite in `tests/active_path.rs` proves it.
    fn try_cpu_sprint(&mut self, budget: u64) -> u64 {
        // Cycle- and caller-dependent conditions are re-checked on every
        // entry: they legitimately change between consecutive sprints
        // (injection, CPU state, the advancing cycle) and are O(1).
        if self.naive_ticking || budget == 0 || !self.injected.is_empty() {
            return 0;
        }
        if self.cpu.state() != CpuState::Running {
            return 0;
        }
        // Everything else — the expensive part of the proof — is cached
        // in the sprint token: a successful sprint changes nothing the
        // guards depend on (block instructions are register-only, PELS
        // and fabric idle-advance, no slave state moves), so the proof
        // holds until an invalidating event drops the token.
        if self.sprint_token {
            self.sprint.token_hits += 1;
            debug_assert!(
                self.sprint_guards_hold(),
                "live sprint token must imply the guard preconditions"
            );
        } else {
            if !self.sprint_guards_hold() {
                return 0;
            }
            self.sprint_token = true;
            self.sprint.proofs += 1;
        }
        let remain = self.sched.next_deadline.saturating_sub(self.cycle);
        if remain == 0 {
            return 0;
        }
        // Never sprint across a timeline-window boundary: single-stepping
        // closes the window exactly at the boundary cycle.
        let mut span = budget.min(remain);
        if let Some(s) = &self.sampler {
            span = span.min(s.next_boundary.saturating_sub(self.cycle));
        }
        if span == 0 {
            return 0;
        }
        let used = {
            let time = self.time();
            let mut bus = CpuPort {
                l2: &mut self.l2,
                fabric: &mut self.fabric,
                master: self.cpu_master,
                pels: &mut self.pels,
                pels_id: self.clock_ids.pels,
                activity: &mut self.activity,
                trace: &mut self.trace,
                time,
                cpu_id: self.clock_ids.ibex,
            };
            self.cpu.run_block(&mut bus, self.irq_pending, span)
        };
        if used == 0 {
            return 0;
        }
        // Whole-span bookkeeping, exactly as `used` fast-path cycles of
        // `step_inner` would have accounted: PELS and fabric idle-advance,
        // the wire image reproduces itself, and every cycle was a
        // fast-path cycle with the CPU awake.
        self.pels.skip_cycles(used);
        self.fabric.skip_cycles(used);
        self.cycle += used;
        self.window_cycles += used;
        self.cpu_awake_cycles += used;
        self.sched.stats.fast_cycles += used;
        self.sprint.spans += 1;
        used
    }

    /// The token-cacheable preconditions of [`Soc::try_cpu_sprint`]:
    /// every slave asleep, unwakeable by the standing wires, not about
    /// to be stirred by fabric traffic, the fabric empty, and PELS
    /// latched steady on exactly the wire image. Cycle-dependent
    /// conditions (deadlines, window boundaries, injection, CPU state)
    /// are *not* covered — those are re-checked on every entry.
    fn sprint_guards_hold(&self) -> bool {
        if !self.sched.active.is_empty() {
            return false;
        }
        let wires = self.prev_wires;
        if wires.intersects(self.sched.wake_union) {
            return false;
        }
        // A sleeper whose registers last cycle's fabric phases touched
        // (or that a pending request targets) would be stirred awake this
        // cycle — the sprint must not paper over that wake.
        if (self.fabric.targeted_slaves() | self.fabric.touched_slaves()) & self.sched.asleep != 0
        {
            return false;
        }
        if !self.fabric.is_quiescent() {
            return false;
        }
        // All slaves sleep, so the peripheral pulse image is empty and
        // PELS must already be latched steady on exactly the standing
        // wires (same argument as `try_skip`); block instructions cannot
        // reach PELS config, so it stays steady for the whole span.
        matches!(
            self.pels.steady_output(EventVector::EMPTY),
            Some(visible) if visible == wires
        )
    }

    /// Drops the cached sprint-eligibility token. Called on every event
    /// that can change the token-cached preconditions: a full SoC step
    /// (wakes, sleeps, wire/pulse changes, fabric activity), direct
    /// peripheral or PELS pokes, event injection, and scheduler-mode
    /// flips.
    fn invalidate_sprint_token(&mut self) {
        if self.sprint_token {
            self.sprint_token = false;
            self.sprint.invalidations += 1;
        }
    }

    /// Runs `n` cycles, jumping over whole-SoC idle spans and sprinting
    /// through cached CPU superblocks when possible.
    pub fn run(&mut self, n: u64) {
        let mut done = 0;
        while done < n {
            let mut advanced = self.try_skip(n - done);
            if advanced == 0 {
                advanced = self.try_cpu_sprint(n - done);
            }
            if advanced == 0 {
                self.step_inner();
                done += 1;
            } else {
                done += advanced;
            }
            self.timeline_tick();
        }
        self.sync_slaves();
    }

    /// Runs until `pred(self)` holds or `max_cycles` elapse; returns
    /// `true` if the predicate was met.
    ///
    /// Never jumps over idle spans (the predicate could observe any
    /// peripheral state). The one granted shortcut is the CPU superblock
    /// sprint: while the rest of the SoC is provably inert and only the
    /// CPU acts, the predicate is evaluated at superblock boundaries
    /// rather than every cycle. Nothing outside the CPU changes inside
    /// such a span, so predicates over peripheral, PELS, fabric or trace
    /// state remain cycle-exact; a predicate that watches CPU
    /// architectural state (registers, pc) at sub-block granularity
    /// should disable superblocks first
    /// ([`pels_cpu::Cpu::set_superblocks_enabled`], or running the
    /// scenario with `ExecMode::SingleStep`). Use [`Soc::run_for_trace_count`]
    /// when the condition is a trace-entry count — that one can also
    /// skip idle spans.
    pub fn run_until(&mut self, max_cycles: u64, mut pred: impl FnMut(&Soc) -> bool) -> bool {
        let end = self.cycle.saturating_add(max_cycles);
        while self.cycle < end {
            self.sync_slaves();
            if pred(self) {
                return true;
            }
            if self.try_cpu_sprint(end - self.cycle) == 0 {
                self.step_inner();
            }
            self.timeline_tick();
        }
        self.sync_slaves();
        pred(self)
    }

    /// Runs until the trace holds at least `count` entries matching
    /// `(source, label)`, or `max_cycles` elapse; returns `true` if the
    /// count was reached. Pre-existing matching entries count.
    ///
    /// The scenario engine's completion condition. Unlike a
    /// [`Soc::run_until`] closure re-scanning the trace, this scans each
    /// entry exactly once (the trace is append-only) and jumps over
    /// provably inert spans — no component may act during such a span,
    /// so no trace entry can appear inside it and the stop cycle is
    /// identical to single-stepping.
    pub fn run_for_trace_count(
        &mut self,
        max_cycles: u64,
        source: &str,
        label: &str,
        count: usize,
    ) -> bool {
        let id = ComponentId::intern(source);
        let end = self.cycle.saturating_add(max_cycles);
        let mut seen = 0usize;
        let mut scanned = 0usize;
        loop {
            let entries = self.trace.entries();
            while scanned < entries.len() {
                let e = &entries[scanned];
                if e.source == id && e.label == label {
                    seen += 1;
                }
                scanned += 1;
            }
            let done = seen >= count;
            if done || self.cycle >= end {
                self.sync_slaves();
                return done;
            }
            if self.try_skip(end - self.cycle) == 0
                && self.try_cpu_sprint(end - self.cycle) == 0
            {
                self.step_inner();
            }
            self.timeline_tick();
        }
    }

    /// Drains all accumulated activity — peripheral register traffic, CPU
    /// fetch/retire counts, PELS SCM accesses, fabric transfers, SRAM
    /// accesses — plus per-component clock-cycle counts for the window
    /// since the previous drain. Resets the window.
    pub fn drain_activity(&mut self) -> ActivitySet {
        self.sync_slaves();
        self.flush_component_activity();
        let mut set = std::mem::take(&mut self.activity);

        // Clock accounting: the core clock is gated during WFI sleep; the
        // rest of the SoC clocks every cycle of the window.
        let cycles = self.window_cycles;
        Self::record_clock_activity(&mut set, &self.clock_ids, cycles, self.cpu_awake_cycles);
        self.cpu_awake_cycles = 0;
        self.window_cycles = 0;
        set
    }

    /// Flushes every component's internal activity counters into the
    /// SoC's cumulative [`ActivitySet`]. Counters add, so flushing at any
    /// intermediate point leaves the eventual [`Soc::drain_activity`]
    /// result bit-identical — this is what lets the timeline sampler read
    /// a current image mid-run without perturbing the final drain. Clock
    /// accounting (`window_cycles` / `cpu_awake_cycles`) is deliberately
    /// untouched: it is derived, not accumulated, and the per-drain
    /// integer division (`cycles / 10`) must see the whole window.
    fn flush_component_activity(&mut self) {
        let mut set = std::mem::take(&mut self.activity);
        self.cpu.drain_activity(&mut set);
        self.pels.drain_activity(&mut set);
        self.fabric.drain_activity(&mut set);
        self.l2.drain_activity(&mut set);
        for (_, p) in self.fabric.slaves_mut() {
            p.drain_activity(&mut set);
        }
        self.activity = set;
    }

    /// Adds the per-window clock-cycle accounting to an activity set:
    /// the core clock is gated during WFI sleep (`awake` cycles), the
    /// fabric/PELS/links clock every cycle, and idle-gated peripherals
    /// keep a ~10 % residual for gating logic and sampling flops. Busy
    /// peripheral cycles are charged separately via their `ActiveCycle`
    /// records.
    fn record_clock_activity(set: &mut ActivitySet, ids: &ClockIds, cycles: u64, awake: u64) {
        set.record(ids.ibex, ActivityKind::ClockCycle, awake);
        set.record(ids.fabric, ActivityKind::ClockCycle, cycles);
        set.record(ids.soc_ctrl, ActivityKind::ClockCycle, cycles);
        set.record(ids.periph_misc, ActivityKind::ClockCycle, cycles / 10);
        for &id in &ids.periphs {
            set.record(id, ActivityKind::ClockCycle, cycles / 10);
        }
        set.record(ids.pels, ActivityKind::ClockCycle, cycles);
        for &link in &ids.links {
            set.record(link, ActivityKind::ClockCycle, cycles);
        }
    }

    /// Starts windowed activity sampling with a nominal window width of
    /// `window_cycles` bus cycles. Subsequent `run_*` calls close a
    /// window at the first observation point at or past each boundary;
    /// a quiescence skip crossing a boundary stretches the window
    /// rather than splitting the skip, so the fast path stays O(1) and
    /// scheduler statistics are bit-identical to an unsampled run.
    ///
    /// The first window additionally absorbs any activity accumulated
    /// since the last [`Soc::drain_activity`] (e.g. configuration
    /// writes during construction), so the window deltas always sum to
    /// exactly the image the next drain returns — the timeline is a
    /// partition of the drain, not a second bookkeeping domain.
    /// Restarting discards any timeline not yet collected with
    /// [`Soc::take_timeline`].
    ///
    /// # Panics
    ///
    /// Panics if `window_cycles` is zero.
    pub fn start_timeline(&mut self, window_cycles: u64) {
        assert!(window_cycles > 0, "window_cycles must be non-zero");
        self.sampler = Some(Box::new(TimelineSampler {
            window_cycles,
            window_start: self.cycle,
            next_boundary: self.cycle + window_cycles,
            baseline: ActivitySet::new(),
            baseline_awake: 0,
            timeline: ActivityTimeline::new(window_cycles),
        }));
    }

    /// Stops sampling and returns the captured timeline (closing the
    /// final partial window if it spans at least one cycle), or `None`
    /// if [`Soc::start_timeline`] was never called.
    pub fn take_timeline(&mut self) -> Option<ActivityTimeline> {
        let open = self
            .sampler
            .as_ref()
            .map(|s| self.cycle > s.window_start)?;
        if open {
            self.close_timeline_window();
        }
        self.sampler.take().map(|s| s.timeline)
    }

    /// Sampling hook on the run-loop observation points: one predictable
    /// branch when sampling is off.
    #[inline]
    fn timeline_tick(&mut self) {
        if let Some(s) = &self.sampler {
            if self.cycle >= s.next_boundary {
                self.close_timeline_window();
            }
        }
    }

    /// Closes the current sampling window at the present cycle: brings
    /// sleeping slaves up to date (closed-form catch-up — segmentation
    /// invariant, so extra syncs cannot change results), flushes
    /// component counters, and records the delta since the window's
    /// baseline plus the window's share of the clock accounting. The
    /// clock share is added to the *delta copy only*; the cumulative set
    /// and the drain counters stay untouched.
    fn close_timeline_window(&mut self) {
        self.sync_slaves();
        self.flush_component_activity();
        let Some(mut s) = self.sampler.take() else {
            return;
        };
        let mut delta = self.activity.delta_from(&s.baseline);
        let cycles = self.cycle - s.window_start;
        let awake = self.cpu_awake_cycles.saturating_sub(s.baseline_awake);
        Self::record_clock_activity(&mut delta, &self.clock_ids, cycles, awake);
        s.timeline.windows.push(ActivityWindow {
            start_cycle: s.window_start,
            end_cycle: self.cycle,
            activity: delta,
        });
        s.window_start = self.cycle;
        s.next_boundary = self.cycle + s.window_cycles;
        s.baseline = self.activity.clone();
        s.baseline_awake = self.cpu_awake_cycles;
        self.sampler = Some(s);
    }

    /// Cycles elapsed since the last [`Soc::drain_activity`].
    pub fn window_cycles(&self) -> u64 {
        self.window_cycles
    }

    /// Wall-clock duration of the current window.
    pub fn window_time(&self) -> SimTime {
        SimTime::from_ps(self.freq.period_ps() * self.window_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pels_cpu::asm;

    #[test]
    fn builder_produces_wired_soc() {
        let soc = SocBuilder::new().pels_links(2).build();
        assert_eq!(soc.pels().link_count(), 2);
        assert_eq!(soc.gpio().out(), 0);
        assert!(!soc.spi().is_busy());
        assert_eq!(soc.frequency(), Frequency::from_mhz(55.0));
    }

    #[test]
    fn cpu_runs_program_from_l2() {
        let mut soc = SocBuilder::new().build();
        let mut p = vec![];
        p.extend(asm::li32(1, 123));
        p.push(asm::wfi());
        soc.load_program(RESET_PC, &p);
        soc.run(10);
        assert_eq!(soc.cpu().reg(1), 123);
        assert!(soc.cpu().is_sleeping());
    }

    #[test]
    fn cpu_reaches_peripherals_over_fabric() {
        let mut soc = SocBuilder::new().build();
        let mut p = vec![];
        p.extend(asm::li32(1, apb_reg(GPIO_OFFSET, Gpio::PADOUTSET)));
        p.extend(asm::li32(2, 0xA5));
        p.push(asm::sw(1, 2, 0));
        p.push(asm::wfi());
        soc.load_program(RESET_PC, &p);
        soc.run(20);
        assert_eq!(soc.gpio().out(), 0xA5);
    }

    #[test]
    fn cpu_configures_pels_over_config_port() {
        use pels_core::regs;
        let mut soc = SocBuilder::new().build();
        let mut p = vec![];
        // Write link0 mask-lo = 0x4 (listen to line 2).
        p.extend(asm::li32(
            1,
            PELS_BASE + regs::LINK0 + regs::LINK_MASK_LO,
        ));
        p.extend(asm::li32(2, 0x4));
        p.push(asm::sw(1, 2, 0));
        // Read back into x3.
        p.push(asm::lw(3, 1, 0));
        p.push(asm::wfi());
        soc.load_program(RESET_PC, &p);
        soc.run(30);
        assert_eq!(soc.cpu().reg(3), 0x4);
        assert_eq!(
            soc.pels().link(0).trigger().mask(),
            EventVector::mask_of(&[2])
        );
    }

    #[test]
    fn timer_event_starts_spi_autonomously() {
        let mut soc = SocBuilder::new().build();
        // Program the timer via the bus-less test path.
        soc.timer_mut().write(Timer::CMP, 10).unwrap();
        soc.timer_mut().write(Timer::CTRL, Timer::CTRL_ENABLE).unwrap();
        soc.spi_mut().write(Spi::CMD, 1).unwrap(); // sets last_len = 1
        soc.run(11 + 2); // timer fires at ~11, spi starts a cycle later
        assert!(soc.spi().is_busy(), "spi started by the timer event");
        soc.run(10);
        assert!(soc.trace().first("spi", "eot").is_some());
    }

    #[test]
    fn wfi_gates_cpu_clock_in_activity() {
        let mut soc = SocBuilder::new().build();
        soc.load_program(RESET_PC, &[asm::wfi()]);
        soc.run(100);
        let a = soc.drain_activity();
        let ibex_clk = a.count("ibex", ActivityKind::ClockCycle);
        let fabric_clk = a.count("fabric", ActivityKind::ClockCycle);
        assert_eq!(fabric_clk, 100);
        assert!(ibex_clk < 5, "core clock gated after wfi ({ibex_clk})");
    }

    #[test]
    fn drain_resets_window() {
        let mut soc = SocBuilder::new().build();
        soc.run(10);
        let _ = soc.drain_activity();
        assert_eq!(soc.window_cycles(), 0);
        soc.run(5);
        assert_eq!(soc.window_cycles(), 5);
        assert_eq!(soc.window_time(), Frequency::from_mhz(55.0).cycles(5));
    }

    #[test]
    fn injected_events_reach_pels_and_irq_paths() {
        let mut soc = SocBuilder::new().timer_starts_spi(false).build();
        soc.pels_mut().link_mut(0).set_mask(EventVector::mask_of(&[9]));
        soc.pels_mut()
            .link_mut(0)
            .load_program(
                &pels_core::Program::new(vec![
                    pels_core::Command::Action {
                        mode: pels_core::ActionMode::Pulse,
                        group: 0,
                        mask: 1 << 20,
                    },
                    pels_core::Command::Halt,
                ])
                .expect("valid"),
            )
            .expect("fits");
        soc.load_program(RESET_PC, &[asm::wfi(), asm::jal(0, -4)]);
        soc.inject_event(9);
        soc.run(6);
        assert!(
            soc.trace().first("pels.link0", "action").is_some(),
            "injected pulse triggered the link"
        );
        // One-shot: no further triggers without further injections.
        let count = soc.trace().all("pels.link0", "action").len();
        soc.run(20);
        assert_eq!(soc.trace().all("pels.link0", "action").len(), count);
    }

    #[test]
    fn sched_stats_and_metrics_reflect_a_busy_run() {
        let mut soc = SocBuilder::new().build();
        let mut p = vec![];
        p.extend(asm::li32(1, apb_reg(GPIO_OFFSET, Gpio::PADOUTSET)));
        p.extend(asm::li32(2, 0xA5));
        p.push(asm::sw(1, 2, 0));
        // Busy loop: re-executed instructions are decode-cache hits.
        p.extend(asm::li32(3, 40));
        p.push(asm::addi(3, 3, -1));
        p.push(asm::bne(3, 0, -4));
        p.push(asm::wfi());
        soc.load_program(RESET_PC, &p);
        soc.run(2_000);
        let s = soc.sched_stats();
        assert!(s.stepped_cycles() > 0, "some cycles were stepped");
        assert!(s.sleeps > 0, "idle peripherals went to sleep");
        assert!(s.rebuilds > 0, "sleep transitions rebuilt the aggregates");
        assert!(
            s.skipped_cycles > 0,
            "post-wfi idle tail was skipped: {s:?}"
        );
        assert_eq!(
            s.stepped_cycles() + s.skipped_cycles,
            soc.cycle(),
            "every cycle is either stepped or skipped"
        );
        let (hits, _misses) = soc.decode_cache_stats();
        assert!(hits > 0, "li32 expansion re-executes cached lines");

        let mut reg = pels_obs::MetricsRegistry::new();
        soc.publish_metrics(&mut reg);
        let snap = reg.snapshot();
        assert_eq!(snap.get("cpu.decode_cache.hits"), Some(hits));
        assert_eq!(snap.get("soc.sched.sleeps"), Some(s.sleeps));
        assert!(
            snap.get("fabric.master.ibex.grants").unwrap_or(0) > 0,
            "the store to GPIO was granted: {snap}"
        );
    }

    #[test]
    fn builder_is_a_thin_wrapper_over_the_desc() {
        // The setter API and from_desc must describe the same machine.
        let via_setters = SocBuilder::new()
            .pels_links(3)
            .scm_lines(8)
            .spi_clkdiv(2)
            .sensor(SensorKind::Constant(1.0))
            .topology(Topology::PerSlaveCrossbar)
            .arbiter(ArbiterKind::FixedPriority);
        let mut desc = SystemDesc::default();
        desc.pels.links = 3;
        desc.pels.scm_lines = 8;
        desc.set_spi_clkdiv(2);
        desc.sensor = SensorKind::Constant(1.0);
        desc.topology = Topology::PerSlaveCrossbar;
        desc.arbiter = ArbiterKind::FixedPriority;
        assert_eq!(via_setters.desc(), &desc);
        let soc = SocBuilder::from_desc(desc).try_build().expect("valid desc");
        assert_eq!(soc.pels().link_count(), 3);
    }

    #[test]
    fn builder_reports_desc_errors_with_paths() {
        let mut desc = SystemDesc::default();
        desc.peripherals[1].offset = 12;
        let err = SocBuilder::from_desc(desc).try_build().unwrap_err();
        match err {
            ConfigError::Desc(e) => assert_eq!(e.path, "/peripherals/1/offset"),
            other => panic!("expected a Desc error, got {other:?}"),
        }
    }

    /// A SoC spinning in a register-only loop with every peripheral
    /// asleep — the sprint-eligible steady state. Each guard test starts
    /// from a machine where `try_cpu_sprint` provably works, then
    /// arranges exactly one precondition violation.
    fn sprinting_soc() -> Soc {
        let mut soc = SocBuilder::new().build();
        let mut p = vec![];
        p.extend(asm::li32(1, 0));
        p.push(asm::addi(1, 1, 1));
        p.push(asm::jal(0, -4));
        soc.load_program(RESET_PC, &p);
        soc.run(400);
        assert_eq!(soc.cpu().state(), CpuState::Running);
        // Align to a superblock boundary: a 3-cycle budget is exactly one
        // loop iteration, so a successful sprint lands back in the same
        // aligned state and every later sprint attempt can retire work
        // (a partial budget would otherwise leave the pc mid-block).
        let mut aligned = false;
        for _ in 0..8 {
            if soc.try_cpu_sprint(3) > 0 {
                aligned = true;
                break;
            }
            soc.step();
        }
        assert!(aligned, "fixture must sprint before a guard is violated");
        soc
    }

    #[test]
    fn sprint_bails_on_injected_events() {
        let mut soc = sprinting_soc();
        soc.inject_event(42);
        assert_eq!(soc.try_cpu_sprint(64), 0, "pending injection vetoes the sprint");
    }

    #[test]
    fn sprint_bails_on_an_active_slave() {
        let mut soc = sprinting_soc();
        // A direct poke forces the slave awake (and drops the token).
        let _ = soc.timer_mut();
        assert!(!soc.sched.active.is_empty());
        assert_eq!(soc.try_cpu_sprint(64), 0, "an awake slave vetoes the sprint");
    }

    #[test]
    fn sprint_bails_on_wake_wire_overlap() {
        let mut soc = sprinting_soc();
        soc.sprint_token = false; // poking below bypasses the invalidation hooks
        let line = EventVector::mask_of(&[60]);
        soc.sched.wake_union |= line;
        soc.prev_wires |= line;
        assert_eq!(
            soc.try_cpu_sprint(64),
            0,
            "a standing wire that can wake a sleeper vetoes the sprint"
        );
    }

    #[test]
    fn sprint_bails_on_a_due_deadline() {
        let mut soc = sprinting_soc();
        soc.sched.next_deadline = soc.cycle();
        assert_eq!(soc.try_cpu_sprint(64), 0, "a due sleeper deadline leaves no span");
    }

    #[test]
    fn sprint_bails_on_a_stirred_sleeper() {
        let mut soc = sprinting_soc();
        soc.sprint_token = false;
        // A pending request targeting a sleeping slave would stir it
        // awake on the next fabric tick.
        let addr = apb_reg(GPIO_OFFSET, Gpio::PADOUTSET);
        soc.fabric
            .issue(soc.cpu_master, ApbRequest::read(addr))
            .unwrap();
        assert_ne!(
            (soc.fabric.targeted_slaves() | soc.fabric.touched_slaves()) & soc.sched.asleep,
            0,
            "the request must target a sleeper"
        );
        assert_eq!(soc.try_cpu_sprint(64), 0, "a stirred sleeper vetoes the sprint");
    }

    #[test]
    fn sprint_bails_on_a_busy_fabric() {
        let mut soc = sprinting_soc();
        soc.sprint_token = false;
        // An address outside every slave's range keeps `targeted_slaves`
        // empty (nothing decodes), isolating the quiescence guard from
        // the stirred-sleeper guard: the pending request alone makes the
        // fabric busy.
        soc.fabric
            .issue(soc.cpu_master, ApbRequest::read(0xDEAD_0000))
            .unwrap();
        assert_eq!(soc.fabric.targeted_slaves() & soc.sched.asleep, 0);
        assert!(!soc.fabric.is_quiescent());
        assert_eq!(soc.try_cpu_sprint(64), 0, "a busy fabric vetoes the sprint");
    }

    #[test]
    fn sprint_bails_on_unsettled_pels() {
        let mut soc = sprinting_soc();
        soc.sprint_token = false;
        // A standing wire PELS does not reproduce (line 60 is driven by
        // nothing) means the image is still settling — but it must not
        // be able to wake a sleeper, or the earlier guard fires instead.
        let line = EventVector::mask_of(&[60]);
        assert!(!line.intersects(soc.sched.wake_union));
        soc.prev_wires |= line;
        assert_eq!(
            soc.try_cpu_sprint(64),
            0,
            "a wire image PELS does not hold steady vetoes the sprint"
        );
    }

    #[test]
    fn sprint_bails_at_a_window_boundary() {
        let mut soc = sprinting_soc();
        soc.start_timeline(1_000);
        soc.sampler.as_mut().expect("sampling started").next_boundary = soc.cycle();
        assert_eq!(
            soc.try_cpu_sprint(64),
            0,
            "an open window boundary at the current cycle leaves no span"
        );
    }

    #[test]
    fn sprint_token_caches_the_proof_across_consecutive_sprints() {
        let mut soc = sprinting_soc();
        // A benign poke drops any token the fixture left live without
        // moving the CPU off its superblock boundary (a full `step`
        // would leave the pc mid-block and the next `run_block` would
        // retire nothing). One-iteration budgets keep it aligned.
        let _ = soc.pels_mut();
        let s0 = soc.sprint_stats();
        assert!(soc.try_cpu_sprint(3) > 0);
        assert!(soc.try_cpu_sprint(3) > 0);
        let s1 = soc.sprint_stats();
        assert_eq!(s1.proofs, s0.proofs + 1, "one full proof covers both sprints");
        assert_eq!(s1.token_hits, s0.token_hits + 1, "second sprint hit the token");
        let _ = soc.pels_mut();
        let s2 = soc.sprint_stats();
        assert_eq!(s2.invalidations, s1.invalidations + 1, "a poke drops the token");
        assert!(soc.try_cpu_sprint(3) > 0);
        assert_eq!(soc.sprint_stats().proofs, s1.proofs + 1, "the next sprint re-proves");
    }

    /// Runs the sprint fixture program on two SoCs — superblock sprints
    /// enabled vs fully single-stepped — applying the same mid-run
    /// stimulus to both, and asserts the end states are bit-identical.
    fn assert_sprint_identical(stimulus: impl Fn(&mut Soc)) {
        let mut p = vec![];
        p.extend(asm::li32(1, 0));
        p.push(asm::addi(1, 1, 1));
        p.push(asm::jal(0, -4));
        let mut fast = SocBuilder::new().build();
        let mut slow = SocBuilder::new().build();
        slow.cpu_mut().set_superblocks_enabled(false);
        for soc in [&mut fast, &mut slow] {
            soc.load_program(RESET_PC, &p);
            soc.run(150);
            stimulus(soc);
            soc.run(500);
        }
        assert!(fast.sprint_stats().spans > 0, "fast run must actually sprint");
        assert_eq!(slow.sprint_stats().spans, 0, "reference run must not sprint");
        assert_eq!(fast.cycle(), slow.cycle());
        assert_eq!(fast.cpu().pc(), slow.cpu().pc());
        assert_eq!(fast.cpu().retired(), slow.cpu().retired());
        for r in 0..32 {
            assert_eq!(fast.cpu().reg(r), slow.cpu().reg(r), "x{r}");
        }
        assert_eq!(fast.sched_stats(), slow.sched_stats());
        assert_eq!(fast.trace().entries().len(), slow.trace().entries().len());
        let ft = fast.take_timeline();
        let st = slow.take_timeline();
        assert_eq!(
            ft.as_ref().map(|t| t.windows.iter().map(|w| (w.start_cycle, w.end_cycle)).collect::<Vec<_>>()),
            st.as_ref().map(|t| t.windows.iter().map(|w| (w.start_cycle, w.end_cycle)).collect::<Vec<_>>()),
            "window boundaries must match"
        );
        let fa = fast.drain_activity();
        let sa = slow.drain_activity();
        for kind in [
            ActivityKind::ClockCycle,
            ActivityKind::InstrFetch,
            ActivityKind::InstrRetired,
            ActivityKind::RegRead,
            ActivityKind::RegWrite,
        ] {
            assert_eq!(fa.count("ibex", kind), sa.count("ibex", kind), "{kind:?}");
        }
    }

    #[test]
    fn sprinting_is_identical_to_single_step_across_injection() {
        assert_sprint_identical(|soc| soc.inject_event(42));
    }

    #[test]
    fn sprinting_is_identical_to_single_step_across_a_timer_wake() {
        assert_sprint_identical(|soc| {
            soc.timer_mut().write(Timer::CMP, 37).unwrap();
            soc.timer_mut()
                .write(Timer::CTRL, Timer::CTRL_ENABLE)
                .unwrap();
        });
    }

    #[test]
    fn sprinting_is_identical_to_single_step_across_window_boundaries() {
        assert_sprint_identical(|soc| soc.start_timeline(64));
    }
}
