//! Component inventory for the power model.
//!
//! Mirrors the area breakdown of `pels-power::area` so leakage and
//! clock-tree energy are charged consistently with Figure 6b's block
//! sizes.

use pels_core::PelsConfig;
use pels_power::area::{PELS_GLOBAL_KGE, PELS_LINK_KGE, PELS_SCM_LINE_KGE};
use pels_power::{Calibration, PowerModel};

/// Logic areas (kGE) of the SoC components, matching the Figure 6b
/// inventory: processing domain 45, peripherals 115 total, interconnect
/// 55, SoC control 18.
pub fn component_areas(pels: PelsConfig) -> Vec<(String, f64)> {
    let mut areas: Vec<(String, f64)> = vec![
        ("ibex".into(), 45.0),
        ("gpio".into(), 10.0),
        ("timer".into(), 8.0),
        ("spi".into(), 35.0),
        ("adc".into(), 15.0),
        ("uart".into(), 12.0),
        ("wdt".into(), 5.0),
        ("i2c".into(), 12.0),
        ("periph_misc".into(), 18.0),
        ("fabric".into(), 55.0),
        ("soc_ctrl".into(), 18.0),
        // The SRAM macro's leakage is special-cased by name in the model;
        // its access energy is charged per access, not per kGE.
        ("sram".into(), 0.0),
        ("pels".into(), PELS_GLOBAL_KGE),
    ];
    for i in 0..pels.links {
        areas.push((
            format!("pels.link{i}"),
            PELS_LINK_KGE + pels.scm_lines as f64 * PELS_SCM_LINE_KGE,
        ));
    }
    areas
}

/// Builds the calibrated power model for a SoC with the given PELS
/// configuration.
pub fn power_model_for(pels: PelsConfig) -> PowerModel {
    let mut model = PowerModel::new(Calibration::tsmc65());
    for (name, kge) in component_areas(pels) {
        model.add_component(name, kge);
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use pels_power::area::pels_area_kge;

    #[test]
    fn inventory_matches_figure_6b_totals() {
        let cfg = PelsConfig {
            links: 4,
            scm_lines: 6,
            ..PelsConfig::default()
        };
        let areas = component_areas(cfg);
        let logic: f64 = areas.iter().map(|(_, a)| a).sum();
        // 45 + 115 + 55 + 18 = 233 logic kGE plus the PELS instance.
        let expected = 233.0 + pels_area_kge(4, 6);
        assert!((logic - expected).abs() < 1e-9, "{logic} vs {expected}");
    }

    #[test]
    fn peripheral_block_sums_to_115() {
        let areas = component_areas(PelsConfig::default());
        let periph: f64 = areas
            .iter()
            .filter(|(n, _)| {
                ["gpio", "timer", "spi", "adc", "uart", "wdt", "i2c", "periph_misc"]
                    .contains(&n.as_str())
            })
            .map(|(_, a)| a)
            .sum();
        assert!((periph - 115.0).abs() < 1e-9);
    }

    #[test]
    fn model_builds_for_all_link_counts() {
        for links in 1..=8 {
            let cfg = PelsConfig {
                links,
                ..PelsConfig::default()
            };
            let m = power_model_for(cfg);
            let _ = m.calibration();
        }
    }
}
