//! # pels-soc — the PULPissimo-like SoC integration
//!
//! Assembles the full evaluation platform of the paper's Section IV
//! (Figure 4): an Ibex-class RV32 core ([`pels_cpu`]), the PELS unit
//! ([`pels_core`]), an APB fabric with round-robin arbitration
//! ([`pels_interconnect`]), the 192 KiB L2 SRAM and the peripheral set —
//! SPI with µDMA, GPIO, Timer, ADC, UART, watchdog ([`pels_periph`]) —
//! into one deterministic, cycle-stepped system.
//!
//! The crate also hosts the paper's **evaluation workload**
//! ([`scenario`]): the threshold-crossing check after µDMA-managed SPI
//! sensor readout, mediated either by PELS (sequenced or instant actions)
//! or by the Ibex interrupt baseline, with latency measured from the
//! event trace and power derived from the recorded switching activity
//! ([`pels_power`]).
//!
//! ## Cycle ordering
//!
//! Each [`Soc::step`] executes one bus-clock cycle:
//!
//! 1. **Peripherals** tick, consuming last cycle's event/action wires and
//!    producing this cycle's pulses;
//! 2. **PELS** ticks: execution units first (buffered triggers), then the
//!    trigger units sample this cycle's pulses;
//! 3. **CPU** ticks, seeing this cycle's pulses as (edge-latched)
//!    interrupt lines;
//! 4. the **fabric** advances its APB phases;
//! 5. clock accounting (WFI gates the core clock).
//!
//! This ordering realizes the timing the paper reports: a 2-cycle instant
//! action, a 7-cycle sequenced read-modify-write, and a 16-cycle
//! interrupt-mediated baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod event_map;
pub mod power_setup;
pub mod scenario;
pub mod soc;

/// The SoC address map (now owned by `pels-desc`, re-exported for
/// compatibility).
pub use pels_desc::mem_map;

pub use pels_desc::{DescError, ExecMode, ScenarioDesc, SystemDesc};
pub use scenario::{
    LinkingStats, Mediator, Scenario, ScenarioBuilder, ScenarioError, ScenarioReport,
};
pub use soc::{ConfigError, SchedStats, SensorKind, Soc, SocBuilder, SprintStats};
