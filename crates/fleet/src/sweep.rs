//! Declarative sweep specifications.
//!
//! A [`SweepSpec`] names the axes to sweep; [`SweepSpec::jobs`] expands
//! the cartesian product into labelled, builder-validated
//! [`Scenario`] jobs ready for
//! [`FleetEngine::run_scenarios`](crate::FleetEngine::run_scenarios).

use pels_interconnect::{ArbiterKind, Topology};
use pels_sim::Frequency;
use pels_soc::{Mediator, Scenario, ScenarioError};

/// A cartesian product of sweep axes over the base evaluation workload.
///
/// Every axis defaults to a single paper operating point, so the empty
/// spec expands to exactly one job; each setter widens one axis.
///
/// ```
/// use pels_fleet::SweepSpec;
/// use pels_soc::Mediator;
/// let spec = SweepSpec::new()
///     .mediators(&[Mediator::PelsSequenced, Mediator::IbexIrq])
///     .freqs_mhz(&[27.0, 55.0])
///     .links(&[1, 4]);
/// assert_eq!(spec.jobs().unwrap().len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct SweepSpec {
    mediators: Vec<Mediator>,
    freqs_mhz: Vec<f64>,
    links: Vec<usize>,
    topologies: Vec<Topology>,
    arbiters: Vec<ArbiterKind>,
    events: u32,
    rmw_only: bool,
    obs: bool,
    timeline_window: u64,
    force_single_step: bool,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            mediators: vec![Mediator::PelsSequenced],
            freqs_mhz: vec![55.0],
            links: vec![1],
            topologies: vec![Topology::Shared],
            arbiters: vec![ArbiterKind::RoundRobin],
            events: 20,
            rmw_only: false,
            obs: false,
            timeline_window: 0,
            force_single_step: false,
        }
    }
}

impl SweepSpec {
    /// A single-point spec at the paper's iso-frequency operating point.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sweeps the mediation path.
    pub fn mediators(mut self, mediators: &[Mediator]) -> Self {
        self.mediators = mediators.to_vec();
        self
    }

    /// Sweeps the system clock (MHz).
    pub fn freqs_mhz(mut self, freqs: &[f64]) -> Self {
        self.freqs_mhz = freqs.to_vec();
        self
    }

    /// Sweeps the instantiated PELS link count.
    pub fn links(mut self, links: &[usize]) -> Self {
        self.links = links.to_vec();
        self
    }

    /// Sweeps the fabric topology.
    pub fn topologies(mut self, topologies: &[Topology]) -> Self {
        self.topologies = topologies.to_vec();
        self
    }

    /// Sweeps the arbitration policy.
    pub fn arbiters(mut self, arbiters: &[ArbiterKind]) -> Self {
        self.arbiters = arbiters.to_vec();
        self
    }

    /// Linking events each job measures.
    pub fn events(mut self, events: u32) -> Self {
        self.events = events;
        self
    }

    /// `true` → every job runs the minimal single-action program.
    pub fn rmw_only(mut self, rmw_only: bool) -> Self {
        self.rmw_only = rmw_only;
        self
    }

    /// `true` → every job collects an observability metrics snapshot
    /// ([`pels_soc::ScenarioReport::metrics`]). Applied uniformly — it is
    /// a reporting switch, not a sweep axis.
    pub fn obs(mut self, obs: bool) -> Self {
        self.obs = obs;
        self
    }

    /// Nominal activity-sampling window (cycles) every job applies to
    /// its active run; `0` (the default) disables timeline sampling.
    /// Applied uniformly, like [`SweepSpec::obs`] — a reporting switch,
    /// not a sweep axis. Sampling never perturbs results, so the fleet
    /// digest is invariant under this setting
    /// (`tests/obs_invariance.rs`).
    pub fn timeline_window(mut self, window_cycles: u64) -> Self {
        self.timeline_window = window_cycles;
        self
    }

    /// `true` → every job disables CPU superblock execution
    /// ([`pels_soc::Scenario::force_single_step`]). Applied uniformly —
    /// a host-speed switch, not a sweep axis. Superblocks never perturb
    /// results, so the fleet digest is invariant under this setting
    /// (`tests/obs_invariance.rs`).
    pub fn force_single_step(mut self, force_single_step: bool) -> Self {
        self.force_single_step = force_single_step;
        self
    }

    /// Expands the cartesian product into labelled scenarios, in a fixed
    /// deterministic order (mediator-major, arbiter-minor). Labels encode
    /// every axis value, so they are unique within the sweep.
    ///
    /// # Errors
    ///
    /// The first [`ScenarioError`] if an axis value fails builder
    /// validation (e.g. `links` containing 0); no partial job list is
    /// returned.
    pub fn jobs(&self) -> Result<Vec<(String, Scenario)>, ScenarioError> {
        let mut jobs = Vec::new();
        for &mediator in &self.mediators {
            for &mhz in &self.freqs_mhz {
                for &links in &self.links {
                    for &topology in &self.topologies {
                        for &arbiter in &self.arbiters {
                            let scenario = Scenario::builder()
                                .mediator(mediator)
                                .frequency(Frequency::from_mhz(mhz))
                                .pels_links(links)
                                .topology(topology)
                                .arbiter(arbiter)
                                .events(self.events)
                                .rmw_only(self.rmw_only)
                                .obs(self.obs)
                                .timeline_window(self.timeline_window)
                                .force_single_step(self.force_single_step)
                                .build()?;
                            let label = format!(
                                "{mediator}@{mhz:.0}MHz links{links} {topology} {arbiter}"
                            );
                            jobs.push((label, scenario));
                        }
                    }
                }
            }
        }
        Ok(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_one_job() {
        let jobs = SweepSpec::new().jobs().unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].1.mediator, Mediator::PelsSequenced);
        assert!(!jobs[0].1.obs, "obs is opt-in");
        let observed = SweepSpec::new().obs(true).jobs().unwrap();
        assert!(observed[0].1.obs);
    }

    #[test]
    fn product_order_is_deterministic_and_labels_unique() {
        let spec = SweepSpec::new()
            .mediators(&[Mediator::PelsSequenced, Mediator::PelsInstant])
            .links(&[1, 2, 4]);
        let a = spec.jobs().unwrap();
        let b = spec.jobs().unwrap();
        assert_eq!(a.len(), 6);
        let labels_a: Vec<&str> = a.iter().map(|(l, _)| l.as_str()).collect();
        let labels_b: Vec<&str> = b.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels_a, labels_b);
        let mut dedup = labels_a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels_a.len(), "labels are unique");
    }

    #[test]
    fn invalid_axis_value_rejects_the_whole_spec() {
        let spec = SweepSpec::new().links(&[1, 0]);
        assert!(spec.jobs().is_err());
    }
}
