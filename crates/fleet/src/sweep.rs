//! Declarative sweep specifications.
//!
//! A [`SweepSpec`] names the axes to sweep; [`SweepSpec::jobs`] expands
//! the cartesian product into labelled, builder-validated
//! [`Scenario`] jobs ready for
//! [`FleetEngine::run_scenarios`](crate::FleetEngine::run_scenarios).

use pels_interconnect::{ArbiterKind, Topology};
use pels_sim::{Frequency, SimTime};
use pels_soc::{DescError, ExecMode, Mediator, Scenario, ScenarioDesc, ScenarioError};
use std::path::Path;

/// A cartesian product of sweep axes over one or more base descriptions.
///
/// Every axis defaults to a single paper operating point, so the empty
/// spec expands to exactly one job; each setter widens one axis. The
/// product is expanded over every *base* [`ScenarioDesc`]: by default the
/// paper's base workload ([`ScenarioDesc::default`]), replaced by any
/// descriptions added with [`SweepSpec::add_desc`] /
/// [`SweepSpec::add_desc_file`] — the axes override the base's mediator,
/// clock, link count, fabric shape and uniform switches, while the base
/// supplies everything else (stimulus, readout shape, memory map, …).
///
/// ```
/// use pels_fleet::SweepSpec;
/// use pels_soc::Mediator;
/// let spec = SweepSpec::new()
///     .mediators(&[Mediator::PelsSequenced, Mediator::IbexIrq])
///     .freqs_mhz(&[27.0, 55.0])
///     .links(&[1, 4]);
/// assert_eq!(spec.jobs().unwrap().len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct SweepSpec {
    bases: Vec<(String, ScenarioDesc)>,
    mediators: Vec<Mediator>,
    freqs_mhz: Vec<f64>,
    links: Vec<usize>,
    topologies: Vec<Topology>,
    arbiters: Vec<ArbiterKind>,
    events: u32,
    rmw_only: bool,
    obs: bool,
    timeline_window: u64,
    exec: ExecMode,
    flows: bool,
    lifetime: bool,
    sample_periods_us: Option<Vec<u64>>,
    spi_word_counts: Option<Vec<u32>>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            bases: Vec::new(),
            mediators: vec![Mediator::PelsSequenced],
            freqs_mhz: vec![55.0],
            links: vec![1],
            topologies: vec![Topology::Shared],
            arbiters: vec![ArbiterKind::RoundRobin],
            events: 20,
            rmw_only: false,
            obs: false,
            timeline_window: 0,
            exec: ExecMode::Fast,
            flows: false,
            lifetime: false,
            sample_periods_us: None,
            spi_word_counts: None,
        }
    }
}

impl SweepSpec {
    /// A single-point spec at the paper's iso-frequency operating point.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sweeps the mediation path.
    pub fn mediators(mut self, mediators: &[Mediator]) -> Self {
        self.mediators = mediators.to_vec();
        self
    }

    /// Sweeps the system clock (MHz).
    pub fn freqs_mhz(mut self, freqs: &[f64]) -> Self {
        self.freqs_mhz = freqs.to_vec();
        self
    }

    /// Sweeps the instantiated PELS link count.
    pub fn links(mut self, links: &[usize]) -> Self {
        self.links = links.to_vec();
        self
    }

    /// Sweeps the fabric topology.
    pub fn topologies(mut self, topologies: &[Topology]) -> Self {
        self.topologies = topologies.to_vec();
        self
    }

    /// Sweeps the arbitration policy.
    pub fn arbiters(mut self, arbiters: &[ArbiterKind]) -> Self {
        self.arbiters = arbiters.to_vec();
        self
    }

    /// Linking events each job measures.
    pub fn events(mut self, events: u32) -> Self {
        self.events = events;
        self
    }

    /// `true` → every job runs the minimal single-action program.
    pub fn rmw_only(mut self, rmw_only: bool) -> Self {
        self.rmw_only = rmw_only;
        self
    }

    /// `true` → every job collects an observability metrics snapshot
    /// ([`pels_soc::ScenarioReport::metrics`]). Applied uniformly — it is
    /// a reporting switch, not a sweep axis.
    pub fn obs(mut self, obs: bool) -> Self {
        self.obs = obs;
        self
    }

    /// Nominal activity-sampling window (cycles) every job applies to
    /// its active run; `0` (the default) disables timeline sampling.
    /// Applied uniformly, like [`SweepSpec::obs`] — a reporting switch,
    /// not a sweep axis. Sampling never perturbs results, so the fleet
    /// digest is invariant under this setting
    /// (`tests/obs_invariance.rs`).
    pub fn timeline_window(mut self, window_cycles: u64) -> Self {
        self.timeline_window = window_cycles;
        self
    }

    /// `true` → every job records causal event flows
    /// ([`pels_soc::ScenarioReport::flows`]), and the fleet report
    /// carries their merged per-stage attribution
    /// ([`crate::FleetReport::flow_report`]). Applied uniformly, like
    /// [`SweepSpec::obs`] — a reporting switch, not a sweep axis. Flow
    /// recording never perturbs results, so the fleet digest is
    /// invariant under this setting (`tests/flow_invariance.rs`).
    pub fn flows(mut self, flows: bool) -> Self {
        self.flows = flows;
        self
    }

    /// Host-side execution strategy every job runs under
    /// ([`pels_soc::ExecMode`]). Applied uniformly — a host-speed switch,
    /// not a sweep axis. The strategy never perturbs results, so the
    /// fleet digest is invariant under this setting
    /// (`tests/obs_invariance.rs`).
    pub fn exec_mode(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// `true` → every job integrates its power into an energy ledger and
    /// projects battery lifetime
    /// ([`pels_soc::ScenarioReport::energy`] /
    /// [`pels_soc::ScenarioReport::lifetime`]), and the fleet report can
    /// fold the ledgers ([`crate::FleetReport::merged_energy_ledger`]).
    /// Applied uniformly, like [`SweepSpec::obs`] — a reporting switch,
    /// not a sweep axis. The ledger is pure post-processing, so the
    /// fleet digest is invariant under this setting
    /// (`tests/lifetime_invariance.rs`).
    pub fn lifetime(mut self, lifetime: bool) -> Self {
        self.lifetime = lifetime;
        self
    }

    /// Sweeps the sensor sample period (µs) — the *sensor rate* axis of
    /// a duty-cycle lifetime study. Unset (the default), every job keeps
    /// its base description's period and labels stay in the legacy
    /// format (digest stability); set, each value appends a ` T{p}us`
    /// label component.
    pub fn sample_periods_us(mut self, periods: &[u64]) -> Self {
        self.sample_periods_us = Some(periods.to_vec());
        self
    }

    /// Sweeps the words per SPI readout — the *duty cycle* axis of a
    /// lifetime study (a longer readout burst keeps the chain active for
    /// a larger slice of each period). Unset (the default), every job
    /// keeps its base description's readout shape and labels stay in the
    /// legacy format; set, each value appends a ` W{n}` label component.
    pub fn spi_word_counts(mut self, words: &[u32]) -> Self {
        self.spi_word_counts = Some(words.to_vec());
        self
    }

    /// Appends a named base description the axes are expanded over.
    /// Adding any base replaces the implicit paper-default base.
    pub fn add_desc(mut self, name: impl Into<String>, desc: ScenarioDesc) -> Self {
        self.bases.push((name.into(), desc));
        self
    }

    /// Appends a base description loaded from a JSON file (see
    /// [`ScenarioDesc::from_json`]); the base is named after the file
    /// stem.
    ///
    /// # Errors
    ///
    /// A [`DescError`] whose path is prefixed with the file path, for
    /// unreadable files, malformed JSON or failed validation.
    pub fn add_desc_file(self, path: impl AsRef<Path>) -> Result<Self, DescError> {
        let path = path.as_ref();
        let shown = path.display().to_string();
        let text = std::fs::read_to_string(path)
            .map_err(|e| DescError::new(shown.clone(), format!("cannot read file: {e}")))?;
        let desc = ScenarioDesc::from_json(&text).map_err(|e| e.prefixed(&shown))?;
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| shown.clone());
        Ok(self.add_desc(name, desc))
    }

    /// Expands the cartesian product into labelled scenarios, in a fixed
    /// deterministic order (base-major, mediator, …, arbiter, then the
    /// duty-cycle axes innermost). Labels encode the base name (when
    /// set) and every axis value, so they are unique within the sweep.
    ///
    /// # Errors
    ///
    /// The first [`ScenarioError`] if an axis value fails description
    /// validation (e.g. `links` containing 0); no partial job list is
    /// returned.
    pub fn jobs(&self) -> Result<Vec<(String, Scenario)>, ScenarioError> {
        let default_base = [(String::new(), ScenarioDesc::default())];
        let bases: &[(String, ScenarioDesc)] = if self.bases.is_empty() {
            &default_base
        } else {
            &self.bases
        };
        // Unset duty-cycle axes expand to a single "inherit from the
        // base" point, keeping legacy labels byte-identical.
        let periods: Vec<Option<u64>> = match &self.sample_periods_us {
            Some(v) => v.iter().map(|&p| Some(p)).collect(),
            None => vec![None],
        };
        let word_counts: Vec<Option<u32>> = match &self.spi_word_counts {
            Some(v) => v.iter().map(|&w| Some(w)).collect(),
            None => vec![None],
        };
        let mut jobs = Vec::new();
        for (name, base) in bases {
            for &mediator in &self.mediators {
                for &mhz in &self.freqs_mhz {
                    for &links in &self.links {
                        for &topology in &self.topologies {
                            for &arbiter in &self.arbiters {
                                for &period_us in &periods {
                                    for &words in &word_counts {
                                        let mut desc = base.clone();
                                        desc.mediator = mediator;
                                        desc.system.freq = Frequency::from_mhz(mhz);
                                        desc.system.pels.links = links;
                                        desc.system.topology = topology;
                                        desc.system.arbiter = arbiter;
                                        desc.events = self.events;
                                        desc.rmw_only = self.rmw_only;
                                        desc.obs = self.obs;
                                        desc.timeline_window = self.timeline_window;
                                        desc.exec = self.exec;
                                        desc.flows = self.flows;
                                        desc.lifetime = self.lifetime;
                                        let mut suffix = String::new();
                                        if let Some(p) = period_us {
                                            desc.sample_period = SimTime::from_us(p);
                                            suffix.push_str(&format!(" T{p}us"));
                                        }
                                        if let Some(w) = words {
                                            desc.spi_words = w;
                                            suffix.push_str(&format!(" W{w}"));
                                        }
                                        let scenario = Scenario::from_desc(desc)?;
                                        let prefix = if name.is_empty() {
                                            String::new()
                                        } else {
                                            format!("{name} ")
                                        };
                                        let label = format!(
                                            "{prefix}{mediator}@{mhz:.0}MHz links{links} {topology} {arbiter}{suffix}"
                                        );
                                        jobs.push((label, scenario));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_one_job() {
        let jobs = SweepSpec::new().jobs().unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].1.mediator, Mediator::PelsSequenced);
        assert!(!jobs[0].1.obs, "obs is opt-in");
        let observed = SweepSpec::new().obs(true).jobs().unwrap();
        assert!(observed[0].1.obs);
    }

    #[test]
    fn product_order_is_deterministic_and_labels_unique() {
        let spec = SweepSpec::new()
            .mediators(&[Mediator::PelsSequenced, Mediator::PelsInstant])
            .links(&[1, 2, 4]);
        let a = spec.jobs().unwrap();
        let b = spec.jobs().unwrap();
        assert_eq!(a.len(), 6);
        let labels_a: Vec<&str> = a.iter().map(|(l, _)| l.as_str()).collect();
        let labels_b: Vec<&str> = b.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels_a, labels_b);
        let mut dedup = labels_a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels_a.len(), "labels are unique");
    }

    #[test]
    fn invalid_axis_value_rejects_the_whole_spec() {
        let spec = SweepSpec::new().links(&[1, 0]);
        assert!(spec.jobs().is_err());
    }

    #[test]
    fn desc_bases_replace_the_default_and_prefix_labels() {
        let alt = ScenarioDesc {
            spi_words: 1,
            ..ScenarioDesc::default()
        };
        let spec = SweepSpec::new()
            .add_desc("alt", alt)
            .add_desc("base", ScenarioDesc::default());
        let jobs = spec.jobs().unwrap();
        assert_eq!(jobs.len(), 2);
        assert!(jobs[0].0.starts_with("alt "), "label: {}", jobs[0].0);
        assert!(jobs[1].0.starts_with("base "), "label: {}", jobs[1].0);
        assert_eq!(jobs[0].1.spi_words, 1, "base supplies readout shape");
        assert_eq!(jobs[1].1.spi_words, 2);
        // Unnamed default base keeps legacy labels (digest stability).
        let legacy = SweepSpec::new().jobs().unwrap();
        assert!(legacy[0].0.starts_with("pels-sequenced@55MHz"));
    }

    #[test]
    fn duty_cycle_axes_expand_and_label() {
        let spec = SweepSpec::new()
            .mediators(&[Mediator::PelsSequenced, Mediator::IbexIrq])
            .sample_periods_us(&[100, 1000])
            .spi_word_counts(&[2, 8])
            .lifetime(true);
        let jobs = spec.jobs().unwrap();
        assert_eq!(jobs.len(), 8);
        for (label, scenario) in &jobs {
            assert!(scenario.lifetime, "{label}");
            assert!(label.contains("us W"), "label carries both axes: {label}");
        }
        assert!(jobs[0].0.ends_with("T100us W2"), "{}", jobs[0].0);
        assert_eq!(jobs[1].1.spi_words, 8);
        assert_eq!(jobs[2].1.sample_period, SimTime::from_us(1000));
        // Unset axes keep legacy labels byte-identical.
        let legacy = SweepSpec::new().jobs().unwrap();
        assert_eq!(legacy[0].0, "pels-sequenced@55MHz links1 shared round-robin");
        assert!(!legacy[0].1.lifetime, "lifetime is opt-in");
    }

    #[test]
    fn exec_mode_is_uniform_across_jobs() {
        let jobs = SweepSpec::new()
            .exec_mode(ExecMode::SingleStep)
            .links(&[1, 2])
            .jobs()
            .unwrap();
        assert!(jobs.len() > 1);
        for (label, desc) in &jobs {
            assert_eq!(desc.exec, ExecMode::SingleStep, "{label}");
        }
    }
}
