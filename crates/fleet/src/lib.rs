//! # pels-fleet — parallel scenario fleet execution
//!
//! The evaluation workload of one [`pels_soc::Scenario`] is a single
//! deterministic, single-threaded simulation. Regenerating the paper's
//! figures — and the ablation grids around them — means running *many*
//! independent scenarios: cartesian products over mediator × frequency ×
//! PELS configuration × fabric topology. This crate schedules those runs
//! across a fixed pool of worker threads and reduces the results into a
//! deterministic, input-order-stable [`FleetReport`].
//!
//! ## Architecture
//!
//! * [`FleetEngine`] owns the worker count and implements the scheduling
//!   policy: jobs are sorted **longest-first** by a caller-supplied weight
//!   estimate, dealt round-robin into per-worker deques, and each worker
//!   pops its own deque from the front and **steals from the back** of its
//!   siblings when it runs dry — the classic work-stealing shape, built
//!   from `std::thread` + `Mutex<VecDeque>` only (no external crates).
//! * [`SweepSpec`] is the declarative layer: a cartesian product over
//!   sweep axes that expands into labelled, builder-validated
//!   [`pels_soc::Scenario`] jobs.
//! * [`FleetReport`] is the reduction: per-job outcomes **in input
//!   order** (scheduling order never leaks into the report), per-job wall
//!   time, and a [`FleetReport::digest`] over every simulation-derived
//!   field — the hook the determinism suite uses to prove that 1-worker
//!   and N-worker runs are bit-identical.
//!
//! ## Determinism
//!
//! Each job runs a freshly built SoC, so jobs share no mutable state; the
//! component-name interner is global and lock-protected, and all
//! reporting paths key by *name* (sorted), never by interning order —
//! which is the one thing that does race across worker threads. Power
//! totals come from `BTreeMap`-backed models, so even f64 summation order
//! is fixed. The digest therefore depends only on the job list, not on
//! the worker count or thread scheduling.
//!
//! ## Failure isolation
//!
//! A job that fails — [`pels_soc::ScenarioError`] from
//! [`pels_soc::Scenario::try_run`], or a panic, which the engine catches
//! — produces a [`JobError`] in its own slot of the report. Sibling jobs
//! are unaffected; a misconfigured sweep point costs exactly one job.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod report;
pub mod sweep;

pub use engine::{FleetEngine, JobResult};
pub use report::{FleetJob, FleetReport, JobError, JobOutcome, WorkerStats};
pub use sweep::SweepSpec;

// The engine migrates whole simulations to worker threads; these bindings
// fail to compile if any simulator layer regresses on `Send`.
fn _assert_send<T: Send>() {}
fn _send_audit() {
    _assert_send::<pels_soc::Soc>();
    _assert_send::<pels_soc::Scenario>();
    _assert_send::<pels_soc::ScenarioReport>();
    _assert_send::<pels_power::PowerModel>();
}
