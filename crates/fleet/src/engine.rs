//! The work-stealing worker pool.

use crate::report::{FleetJob, FleetReport, JobError, JobOutcome};
use crate::sweep::SweepSpec;
use pels_soc::Scenario;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Instant;

/// One job's result from [`FleetEngine::map`]: how long it ran, where it
/// ran, and what it produced.
#[derive(Debug, Clone)]
pub struct JobResult<R> {
    /// Wall-clock time the job spent on its worker.
    pub elapsed: std::time::Duration,
    /// Index of the worker thread that executed the job.
    pub worker: usize,
    /// `true` when the job was stolen from another worker's deque rather
    /// than popped from the executing worker's own share.
    pub stolen: bool,
    /// The job's output, or its own failure.
    pub result: Result<R, JobError>,
}

/// A fixed pool of workers executing independent jobs, longest-first,
/// with work stealing.
///
/// The engine is stateless between batches: construct once, reuse for
/// any number of [`FleetEngine::map`] / [`FleetEngine::run_scenarios`]
/// calls. Scheduling never affects results — outputs always come back in
/// input order.
#[derive(Debug, Clone, Copy)]
pub struct FleetEngine {
    workers: usize,
}

impl FleetEngine {
    /// A pool of exactly `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        FleetEngine {
            workers: workers.max(1),
        }
    }

    /// A pool sized to the host's available parallelism.
    pub fn auto() -> Self {
        Self::new(host_parallelism())
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `job` over every item on the worker pool and returns the
    /// results **in input order**.
    ///
    /// `weight` is a relative cost estimate (any monotone unit — e.g.
    /// simulated cycles): jobs are scheduled longest-first so a heavy
    /// tail job starts early instead of serializing the end of the batch.
    /// A panicking job is caught at the worker boundary and reported as
    /// [`JobError::Panicked`] in its own slot; sibling jobs and the batch
    /// are unaffected.
    pub fn map<T, R>(
        &self,
        items: &[T],
        weight: impl Fn(&T) -> u64,
        job: impl Fn(&T) -> Result<R, JobError> + Sync,
    ) -> Vec<JobResult<R>>
    where
        T: Sync,
        R: Send,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(n);

        // Longest-first: sort indices by descending weight, then deal
        // them round-robin so every worker starts with a balanced share.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(weight(&items[i])));
        let deques: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (k, &i) in order.iter().enumerate() {
            deques[k % workers]
                .lock()
                .expect("deque poisoned")
                .push_back(i);
        }

        type Report<R> = (usize, usize, bool, std::time::Duration, Result<R, JobError>);
        let (tx, rx) = mpsc::channel::<Report<R>>();
        std::thread::scope(|scope| {
            for me in 0..workers {
                let tx = tx.clone();
                let deques = &deques;
                let job = &job;
                scope.spawn(move || {
                    while let Some((idx, stolen)) = next_job(me, deques) {
                        let _span = pels_obs::profile::span("fleet.job");
                        let start = Instant::now();
                        let result = catch_unwind(AssertUnwindSafe(|| job(&items[idx])))
                            .unwrap_or_else(|p| Err(JobError::Panicked(panic_message(&*p))));
                        // The receiver outlives the scope; a send only
                        // fails if the batch was abandoned wholesale.
                        let _ = tx.send((idx, me, stolen, start.elapsed(), result));
                    }
                });
            }
        });
        drop(tx);

        let mut slots: Vec<Option<JobResult<R>>> = (0..n).map(|_| None).collect();
        for (idx, worker, stolen, elapsed, result) in rx {
            slots[idx] = Some(JobResult {
                elapsed,
                worker,
                stolen,
                result,
            });
        }
        slots
            .into_iter()
            .map(|s| s.expect("every job reports exactly once"))
            .collect()
    }

    /// Runs labelled scenarios as a fleet: each job executes
    /// [`JobOutcome::measure`] (simulate + power summary) on a worker,
    /// weighted by the scenario's estimated simulated-cycle cost.
    pub fn run_scenarios(&self, jobs: &[(String, Scenario)]) -> FleetReport {
        let _span = pels_obs::profile::span("fleet.batch");
        let start = Instant::now();
        let results = self.map(
            jobs,
            |(_, s)| scenario_weight(s),
            |(_, s)| JobOutcome::measure(s).map_err(JobError::from),
        );
        FleetReport {
            workers: self.workers,
            jobs: jobs
                .iter()
                .zip(results)
                .map(|((label, _), r)| FleetJob {
                    label: label.clone(),
                    elapsed: r.elapsed,
                    worker: r.worker,
                    stolen: r.stolen,
                    result: r.result,
                })
                .collect(),
            wall: start.elapsed(),
        }
    }

    /// Expands a [`SweepSpec`] and runs the resulting fleet.
    ///
    /// # Errors
    ///
    /// Returns the first [`pels_soc::ScenarioError`] if a sweep point
    /// fails builder validation — the spec is rejected before any
    /// simulation starts.
    pub fn run_sweep(&self, spec: &SweepSpec) -> Result<FleetReport, pels_soc::ScenarioError> {
        Ok(self.run_scenarios(&spec.jobs()?))
    }
}

/// The host's available parallelism (1 when unknown).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Estimated simulated cycles for one scenario run — the longest-first
/// scheduling key. Mirrors the cycle budget of `Scenario::try_run`
/// (active window) doubled for the matching idle window.
fn scenario_weight(s: &Scenario) -> u64 {
    let per_event = u64::from(s.timer_period_cycles())
        + u64::from(s.spi_words * s.spi_clkdiv())
        + 64;
    2 * (u64::from(s.events) * per_event + 2_000)
}

/// Pops the next job index for worker `me`, with a flag marking whether
/// it came from a sibling's deque (a steal) rather than `me`'s own share.
fn next_job(me: usize, deques: &[Mutex<VecDeque<usize>>]) -> Option<(usize, bool)> {
    // Own queue from the front...
    if let Some(i) = deques[me].lock().expect("deque poisoned").pop_front() {
        return Some((i, false));
    }
    // ...then steal from the back of the busiest-looking sibling.
    for k in 1..deques.len() {
        let other = (me + k) % deques.len();
        if let Some(i) = deques[other].lock().expect("deque poisoned").pop_back() {
            return Some((i, true));
        }
    }
    None
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_returns_results_in_input_order() {
        let engine = FleetEngine::new(4);
        let items: Vec<u64> = (0..32).collect();
        // Weight inversely to index so the schedule order differs from
        // the input order.
        let results = engine.map(&items, |&i| 1_000 - i, |&i| Ok::<u64, JobError>(i * i));
        assert_eq!(results.len(), 32);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r.result.as_ref().unwrap(), (i as u64).pow(2));
        }
    }

    #[test]
    fn failing_job_does_not_poison_siblings() {
        let engine = FleetEngine::new(2);
        let items: Vec<u32> = (0..8).collect();
        let results = engine.map(
            &items,
            |_| 1,
            |&i| {
                if i == 3 {
                    Err(JobError::Panicked("synthetic".into()))
                } else {
                    Ok(i)
                }
            },
        );
        assert!(results[3].result.is_err());
        assert_eq!(
            results.iter().filter(|r| r.result.is_ok()).count(),
            7,
            "exactly one slot fails"
        );
    }

    #[test]
    fn panicking_job_is_caught_at_the_worker_boundary() {
        // Quiet the default panic hook for the intentional panic.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let engine = FleetEngine::new(2);
        let items = [0u32, 1, 2];
        let results = engine.map(
            &items,
            |_| 1,
            |&i| {
                if i == 1 {
                    panic!("boom {i}");
                }
                Ok(i)
            },
        );
        std::panic::set_hook(prev);
        match &results[1].result {
            Err(JobError::Panicked(msg)) => assert!(msg.contains("boom"), "{msg}"),
            other => panic!("expected a caught panic, got {other:?}"),
        }
        assert!(results[0].result.is_ok() && results[2].result.is_ok());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let engine = FleetEngine::new(3);
        let results = engine.map(&[] as &[u32], |_| 1, |&i| Ok::<u32, JobError>(i));
        assert!(results.is_empty());
    }

    #[test]
    fn worker_count_is_clamped_to_one() {
        assert_eq!(FleetEngine::new(0).workers(), 1);
        assert!(FleetEngine::auto().workers() >= 1);
    }
}
