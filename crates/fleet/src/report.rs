//! Fleet results: per-job outcomes, input-order-stable reports, and the
//! digest that proves scheduling never leaks into the data.

use pels_soc::{Mediator, Scenario, ScenarioError, ScenarioReport};
use std::fmt;
use std::time::Duration;

/// Why one job of a fleet produced no outcome. Failures are *per job*:
/// one bad sweep point never poisons its siblings.
#[derive(Debug, Clone)]
pub enum JobError {
    /// The scenario ran but produced no measurement (or could not be
    /// configured).
    Scenario(ScenarioError),
    /// The job panicked; the engine caught it at the worker boundary.
    Panicked(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Scenario(e) => write!(f, "{e}"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Scenario(e) => Some(e),
            JobError::Panicked(_) => None,
        }
    }
}

impl From<ScenarioError> for JobError {
    fn from(e: ScenarioError) -> Self {
        JobError::Scenario(e)
    }
}

/// The measured outcome of one scenario job, with its power summary
/// derived *inside the job* (on the worker) so the report is complete
/// without re-running any model on the reducer side.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// The full measurement (latencies, activity, trace).
    pub report: ScenarioReport,
    /// Total SoC power over the active window (µW).
    pub active_uw: f64,
    /// Total SoC power over the matching idle window (µW).
    pub idle_uw: f64,
    /// Memory-system share of the active window (µW).
    pub active_memory_uw: f64,
    /// Memory-system share of the idle window (µW).
    pub idle_memory_uw: f64,
}

impl JobOutcome {
    /// Runs `scenario` and derives the power summary — the standard job
    /// body for scenario fleets.
    pub fn measure(scenario: &Scenario) -> Result<JobOutcome, ScenarioError> {
        let report = scenario.try_run()?;
        let model = report.power_model();
        let active = report.active_power(&model);
        let idle = report.idle_power(&model);
        Ok(JobOutcome {
            scenario: scenario.clone(),
            active_uw: active.total().as_uw(),
            idle_uw: idle.total().as_uw(),
            active_memory_uw: active.memory_system().as_uw(),
            idle_memory_uw: idle.memory_system().as_uw(),
            report,
        })
    }
}

/// One slot of a [`FleetReport`]: the job's label, how long it ran on its
/// worker, and what came out.
#[derive(Debug, Clone)]
pub struct FleetJob {
    /// Caller-supplied label (stable across runs; used in rendering and
    /// the digest).
    pub label: String,
    /// Wall-clock time the job spent on its worker.
    pub elapsed: Duration,
    /// Index of the worker thread that executed the job.
    pub worker: usize,
    /// `true` when the job was stolen from a sibling worker's deque.
    pub stolen: bool,
    /// The outcome, or this job's own failure.
    pub result: Result<JobOutcome, JobError>,
}

/// Aggregated execution statistics for one worker of a fleet batch,
/// derived from the jobs' worker attribution
/// ([`FleetReport::worker_stats`]). Host-timing observability only —
/// none of these fields enter [`FleetReport::digest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index (0-based).
    pub worker: usize,
    /// Jobs this worker executed.
    pub jobs: u64,
    /// How many of those jobs it stole from a sibling's deque.
    pub steals: u64,
    /// Total wall-clock time this worker spent executing jobs.
    pub busy: Duration,
}

/// The reduction of one fleet run: jobs **in input order** (never in
/// completion order), plus batch-level timing.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Worker threads the batch ran on.
    pub workers: usize,
    /// Per-job results, input-order-stable.
    pub jobs: Vec<FleetJob>,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
}

impl FleetReport {
    /// Jobs that produced an outcome.
    pub fn succeeded(&self) -> impl Iterator<Item = (&str, &JobOutcome)> {
        self.jobs
            .iter()
            .filter_map(|j| j.result.as_ref().ok().map(|o| (j.label.as_str(), o)))
    }

    /// Jobs that failed, with their errors.
    pub fn failed(&self) -> impl Iterator<Item = (&str, &JobError)> {
        self.jobs
            .iter()
            .filter_map(|j| j.result.as_ref().err().map(|e| (j.label.as_str(), e)))
    }

    /// The outcome for `label`, if that job succeeded.
    pub fn outcome(&self, label: &str) -> Option<&JobOutcome> {
        self.succeeded().find(|(l, _)| *l == label).map(|(_, o)| o)
    }

    /// Sum of per-job worker time — the serial cost of the batch. The
    /// ratio against [`FleetReport::wall`] is the realized parallel
    /// speedup.
    pub fn busy(&self) -> Duration {
        self.jobs.iter().map(|j| j.elapsed).sum()
    }

    /// Per-worker execution statistics (jobs, steals, busy time),
    /// aggregated from the job slots. Every configured worker gets an
    /// entry, including workers that executed nothing.
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        let mut stats: Vec<WorkerStats> = (0..self.workers)
            .map(|worker| WorkerStats {
                worker,
                jobs: 0,
                steals: 0,
                busy: Duration::ZERO,
            })
            .collect();
        for job in &self.jobs {
            if let Some(w) = stats.get_mut(job.worker) {
                w.jobs += 1;
                w.steals += u64::from(job.stolen);
                w.busy += job.elapsed;
            }
        }
        stats
    }

    /// Publishes batch-level and per-worker counters into `reg`
    /// (`fleet.jobs`, `fleet.steals`, `fleet.worker<N>.jobs`, …). Pure
    /// observation of an already-reduced report — cannot perturb results.
    pub fn publish_metrics(&self, reg: &mut pels_obs::MetricsRegistry) {
        reg.set_named("fleet.jobs", self.jobs.len() as u64);
        reg.set_named("fleet.failed", self.failed().count() as u64);
        reg.set_named("fleet.workers", self.workers as u64);
        reg.set_named("fleet.wall_us", self.wall.as_micros() as u64);
        reg.set_named("fleet.busy_us", self.busy().as_micros() as u64);
        let mut steals = 0;
        for w in self.worker_stats() {
            steals += w.steals;
            reg.set_named(&format!("fleet.worker{}.jobs", w.worker), w.jobs);
            reg.set_named(&format!("fleet.worker{}.steals", w.worker), w.steals);
            reg.set_named(
                &format!("fleet.worker{}.busy_us", w.worker),
                w.busy.as_micros() as u64,
            );
        }
        reg.set_named("fleet.steals", steals);
    }

    /// Merges every succeeded job's latency histogram into one
    /// distribution for the whole batch.
    ///
    /// Deterministic whatever the worker count or completion order:
    /// jobs are folded in input order, and
    /// [`pels_obs::Histogram::merge`] is itself order-invariant (bucket
    /// counts add), so either property alone would already pin the
    /// result. Host-side reduction only — the digest does not cover the
    /// merged histogram (it already covers every raw latency the
    /// histogram is built from).
    pub fn merged_latency_histogram(&self) -> pels_obs::Histogram {
        let mut merged = pels_obs::Histogram::new();
        for (_, o) in self.succeeded() {
            merged.merge(&o.report.latency_hist);
        }
        merged
    }

    /// Merges every succeeded job's per-stage flow attribution into one
    /// blame table for the whole batch — empty when no job ran with
    /// [`crate::SweepSpec::flows`].
    ///
    /// Deterministic whatever the worker count or completion order, like
    /// [`FleetReport::merged_latency_histogram`]: jobs fold in input
    /// order and [`pels_obs::FlowReport::merge`] is order-invariant
    /// (`tests/flow_properties.rs`). Host-side reduction only — the
    /// digest does not cover flows (they are pure observation).
    pub fn flow_report(&self) -> pels_obs::FlowReport {
        let mut merged = pels_obs::FlowReport::default();
        for (_, o) in self.succeeded() {
            if let Some(r) = o.report.flow_report() {
                merged.merge(&r);
            }
        }
        merged
    }

    /// Folds every succeeded job's energy ledger into one batch ledger —
    /// empty when no job ran with [`crate::SweepSpec::lifetime`].
    ///
    /// Deterministic whatever the worker count or completion order, like
    /// [`FleetReport::merged_latency_histogram`]: jobs fold in input
    /// order, so the `f64` sums see the same addends in the same
    /// sequence on any schedule (`tests/lifetime_invariance.rs` pins
    /// this across 1/2/8 workers). Host-side reduction only — the digest
    /// does not cover ledgers (they are pure post-processing).
    pub fn merged_energy_ledger(&self) -> pels_power::EnergyLedger {
        let mut merged = pels_power::EnergyLedger::new();
        for (_, o) in self.succeeded() {
            if let Some(ledger) = &o.report.energy {
                merged.merge(ledger);
            }
        }
        merged
    }

    /// Realized speedup: total worker-busy time over batch wall time.
    /// ~1.0 on a single worker (or a single-core host); approaches the
    /// worker count when the longest-first schedule packs well.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall == 0.0 {
            return 1.0;
        }
        self.busy().as_secs_f64() / wall
    }

    /// FNV-1a digest over every *simulation-derived* field of every job,
    /// in input order: labels, scenario axes, latencies, event counts and
    /// power totals (as exact `f64` bit patterns). Timing fields are
    /// excluded — they are host noise. Two runs of the same job list are
    /// bit-identical exactly when their digests match, whatever the
    /// worker count.
    pub fn digest(&self) -> u64 {
        let mut d = Fnv::new();
        d.bytes(&(self.jobs.len() as u64).to_le_bytes());
        for job in &self.jobs {
            d.bytes(job.label.as_bytes());
            match &job.result {
                Ok(o) => {
                    d.u64(1);
                    d.u64(mediator_tag(o.scenario.mediator));
                    d.u64(o.scenario.freq().period_ps());
                    d.u64(u64::from(o.scenario.events));
                    d.u64(u64::from(o.report.events_completed));
                    d.u64(o.report.latencies.len() as u64);
                    for &l in &o.report.latencies {
                        d.u64(l);
                    }
                    d.u64(o.report.stats.min);
                    d.u64(o.report.stats.max);
                    d.u64(o.report.stats.mean);
                    d.u64(o.report.active_window.as_ps());
                    d.u64(o.report.idle_window.as_ps());
                    d.u64(o.active_uw.to_bits());
                    d.u64(o.idle_uw.to_bits());
                    d.u64(o.active_memory_uw.to_bits());
                    d.u64(o.idle_memory_uw.to_bits());
                }
                Err(e) => {
                    d.u64(0);
                    d.bytes(e.to_string().as_bytes());
                }
            }
        }
        d.finish()
    }

    /// Renders the batch as a text table (label, status, latency, power,
    /// per-job time).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet: {} jobs on {} worker(s), wall {:.1} ms, busy {:.1} ms, speedup {:.2}x",
            self.jobs.len(),
            self.workers,
            self.wall.as_secs_f64() * 1e3,
            self.busy().as_secs_f64() * 1e3,
            self.speedup(),
        );
        let _ = writeln!(
            out,
            "  {:<38} {:>9} {:>11} {:>11} {:>9} {:>5}",
            "job", "lat [cyc]", "active [uW]", "idle [uW]", "t [ms]", "on"
        );
        for job in &self.jobs {
            let on = format!("w{}{}", job.worker, if job.stolen { "*" } else { "" });
            match &job.result {
                Ok(o) => {
                    let _ = writeln!(
                        out,
                        "  {:<38} {:>9} {:>11.1} {:>11.1} {:>9.2} {:>5}",
                        job.label,
                        o.report.stats.mean,
                        o.active_uw,
                        o.idle_uw,
                        job.elapsed.as_secs_f64() * 1e3,
                        on,
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "  {:<38} FAILED: {e}", job.label);
                }
            }
        }
        for w in self.worker_stats() {
            let _ = writeln!(
                out,
                "  worker {}: {} job(s), {} stolen, busy {:.1} ms",
                w.worker,
                w.jobs,
                w.steals,
                w.busy.as_secs_f64() * 1e3,
            );
        }
        out
    }
}

/// Stable tag for the digest (enum discriminants are not guaranteed
/// stable across refactors; this mapping is part of the digest contract).
fn mediator_tag(m: Mediator) -> u64 {
    match m {
        Mediator::PelsSequenced => 1,
        Mediator::PelsInstant => 2,
        Mediator::IbexIrq => 3,
    }
}

/// Minimal FNV-1a 64-bit accumulator (no external hashing deps in the
/// offline graph).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Serializes the batch as the `BENCH_fleet_throughput.json` artifact
/// (flat object, no serde in the offline graph).
pub fn to_json(report: &FleetReport, host_parallelism: usize) -> String {
    let failed = report.failed().count();
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"jobs\": {},\n", report.jobs.len()));
    s.push_str(&format!("  \"failed\": {failed},\n"));
    s.push_str(&format!("  \"workers\": {},\n", report.workers));
    s.push_str(&format!("  \"host_parallelism\": {host_parallelism},\n"));
    s.push_str(&format!(
        "  \"wall_ms\": {:.3},\n",
        report.wall.as_secs_f64() * 1e3
    ));
    s.push_str(&format!(
        "  \"busy_ms\": {:.3},\n",
        report.busy().as_secs_f64() * 1e3
    ));
    s.push_str(&format!("  \"speedup\": {:.3},\n", report.speedup()));
    s.push_str(&format!(
        "  \"jobs_per_sec\": {:.3},\n",
        report.jobs.len() as f64 / report.wall.as_secs_f64().max(1e-9)
    ));
    s.push_str("  \"worker_stats\": [");
    for (i, w) in report.worker_stats().iter().enumerate() {
        let sep = if i + 1 < report.workers { "," } else { "" };
        s.push_str(&format!(
            "\n    {{\"worker\": {}, \"jobs\": {}, \"steals\": {}, \"busy_ms\": {:.3}}}{sep}",
            w.worker,
            w.jobs,
            w.steals,
            w.busy.as_secs_f64() * 1e3
        ));
    }
    s.push_str("\n  ],\n");
    s.push_str(&format!("  \"digest\": \"{:016x}\"\n", report.digest()));
    s.push('}');
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use pels_soc::Scenario;

    fn tiny_report() -> FleetReport {
        let s = Scenario::builder().events(2).build().unwrap();
        let outcome = JobOutcome::measure(&s).unwrap();
        FleetReport {
            workers: 1,
            jobs: vec![
                FleetJob {
                    label: "ok".into(),
                    elapsed: Duration::from_millis(3),
                    worker: 0,
                    stolen: false,
                    result: Ok(outcome),
                },
                FleetJob {
                    label: "bad".into(),
                    elapsed: Duration::from_millis(1),
                    worker: 0,
                    stolen: true,
                    result: Err(JobError::Scenario(ScenarioError::ZeroEvents)),
                },
            ],
            wall: Duration::from_millis(4),
        }
    }

    #[test]
    fn digest_ignores_timing_but_not_data() {
        let a = tiny_report();
        let mut b = a.clone();
        b.wall = Duration::from_secs(7);
        b.jobs[0].elapsed = Duration::from_secs(1);
        b.jobs[0].worker = 5;
        b.jobs[0].stolen = true;
        b.workers = 16;
        assert_eq!(
            a.digest(),
            b.digest(),
            "timing and worker attribution are noise"
        );

        let mut c = a.clone();
        if let Ok(o) = &mut c.jobs[0].result {
            o.active_uw += 1e-9;
        }
        assert_ne!(a.digest(), c.digest(), "any data change must show");
    }

    #[test]
    fn accessors_partition_jobs() {
        let r = tiny_report();
        assert_eq!(r.succeeded().count(), 1);
        assert_eq!(r.failed().count(), 1);
        assert!(r.outcome("ok").is_some());
        assert!(r.outcome("bad").is_none());
        assert_eq!(r.busy(), Duration::from_millis(4));
    }

    #[test]
    fn json_is_well_formed() {
        let j = to_json(&tiny_report(), 4);
        assert!(j.starts_with('{') && j.ends_with("}\n"));
        assert!(j.contains("\"jobs\": 2"));
        assert!(j.contains("\"failed\": 1"));
        assert!(j.contains("\"host_parallelism\": 4"));
        assert!(j.contains("\"worker_stats\": ["));
        assert!(j.contains("\"digest\": \""));
        assert!(!j.contains(",\n}"));
        pels_obs::json::parse(&j).expect("fleet JSON parses");
    }

    #[test]
    fn worker_stats_aggregate_attribution_and_publish() {
        let r = tiny_report();
        let stats = r.worker_stats();
        assert_eq!(stats.len(), 1, "one entry per configured worker");
        assert_eq!(stats[0].jobs, 2);
        assert_eq!(stats[0].steals, 1, "the 'bad' job was marked stolen");
        assert_eq!(stats[0].busy, Duration::from_millis(4));

        let mut reg = pels_obs::MetricsRegistry::new();
        r.publish_metrics(&mut reg);
        let snap = reg.snapshot();
        assert_eq!(snap.get("fleet.jobs"), Some(2));
        assert_eq!(snap.get("fleet.failed"), Some(1));
        assert_eq!(snap.get("fleet.worker0.jobs"), Some(2));
        assert_eq!(snap.get("fleet.worker0.steals"), Some(1));
        assert_eq!(snap.get("fleet.steals"), Some(1));
    }

    #[test]
    fn merged_latency_histogram_spans_all_succeeded_jobs() {
        let r = tiny_report();
        let h = r.merged_latency_histogram();
        let expected: u64 = r
            .succeeded()
            .map(|(_, o)| o.report.latencies.len() as u64)
            .sum();
        assert!(expected > 0);
        assert_eq!(h.count(), expected);
        // Merging per-job histograms matches recording every job's raw
        // latencies into one — no samples lost or double-counted.
        let mut direct = pels_obs::Histogram::new();
        for (_, o) in r.succeeded() {
            for &l in &o.report.latencies {
                direct.record(l);
            }
        }
        assert_eq!(h, direct);
        assert_eq!(h.p50(), Some(r.outcome("ok").unwrap().report.stats.p50));
    }

    #[test]
    fn merged_energy_ledger_folds_succeeded_jobs() {
        // No lifetime switch → empty ledger.
        assert_eq!(tiny_report().merged_energy_ledger().windows(), 0);

        let s = Scenario::builder().events(2).lifetime(true).build().unwrap();
        let outcome = JobOutcome::measure(&s).unwrap();
        let ledger = outcome.report.energy.clone().expect("lifetime ledger");
        let r = FleetReport {
            workers: 1,
            jobs: vec![
                FleetJob {
                    label: "a".into(),
                    elapsed: Duration::ZERO,
                    worker: 0,
                    stolen: false,
                    result: Ok(outcome.clone()),
                },
                FleetJob {
                    label: "b".into(),
                    elapsed: Duration::ZERO,
                    worker: 0,
                    stolen: false,
                    result: Ok(outcome),
                },
            ],
            wall: Duration::ZERO,
        };
        let merged = r.merged_energy_ledger();
        assert_eq!(merged.windows(), 2 * ledger.windows());
        assert!((merged.total_uj() - 2.0 * ledger.total_uj()).abs() <= 1e-12);
        // Identical fold on every evaluation: input order pins the sum.
        assert_eq!(merged, r.merged_energy_ledger());
    }

    #[test]
    fn render_reports_failures_inline() {
        let r = tiny_report();
        let text = r.render();
        assert!(text.contains("FAILED"));
        assert!(text.contains("ok"));
    }
}
