//! Integration coverage for the string-keyed [`Trace`] query helpers and
//! [`ActivitySet`] aggregation/export — the two read paths every report,
//! power model and observability exporter in the workspace leans on.
//!
//! Component names are prefixed `ta-` so the global interning registry is
//! never shared with other tests.

use pels_sim::vcd::trace_to_vcd;
use pels_sim::{ActivityKind, ActivitySet, ComponentId, SimTime, Trace};

fn sample_trace() -> Trace {
    let spi = ComponentId::intern("ta-spi");
    let gpio = ComponentId::intern("ta-gpio");
    let mut t = Trace::new();
    t.record(SimTime::from_ns(10), spi, "eot", 0);
    t.record(SimTime::from_ns(10), gpio, "set", 1); // same instant as the start
    t.record(SimTime::from_ns(100), spi, "eot", 1);
    t.record(SimTime::from_ns(170), gpio, "set", 0);
    t.record(SimTime::from_ns(300), spi, "eot", 2); // start with no matching end
    t
}

#[test]
fn string_queries_distinguish_unknown_source_from_unknown_label() {
    let t = sample_trace();
    // A name that was never interned anywhere must read as absent...
    assert!(t.first("ta-never-interned", "eot").is_none());
    assert!(t.all("ta-never-interned", "eot").is_empty());
    // ...and so must a known source with a label it never recorded.
    assert!(t.first("ta-spi", "ta-no-such-label").is_none());
    assert!(t.last("ta-spi", "ta-no-such-label").is_none());
    assert_eq!(t.all("ta-spi", "eot").len(), 3);
}

#[test]
fn latency_between_counts_same_instant_consumers() {
    let t = sample_trace();
    // `to` at the exact `from` timestamp qualifies (>=, not >).
    let l = t.latency_between(("ta-spi", "eot"), ("ta-gpio", "set")).unwrap();
    assert_eq!(l.as_ns(), 0);
    // No consumer event at-or-after the producer → no measurement.
    assert!(t
        .latency_between(("ta-gpio", "set"), ("ta-never-interned", "x"))
        .is_none());
}

#[test]
fn latencies_all_drops_unmatched_trailing_starts() {
    let t = sample_trace();
    let ls = t.latencies_all(("ta-spi", "eot"), ("ta-gpio", "set"));
    // Three eot starts, two set ends: the 300 ns start has no end left.
    assert_eq!(
        ls.iter().map(|l| l.as_ns()).collect::<Vec<_>>(),
        vec![0, 70]
    );
}

#[test]
fn clear_empties_but_keeps_recording_enabled() {
    let mut t = sample_trace();
    t.clear();
    assert!(t.is_empty());
    assert!(t.is_enabled());
    t.record_named(SimTime::ZERO, "ta-spi", "eot", 9);
    assert_eq!(t.len(), 1);
}

#[test]
fn activity_merge_then_delta_roundtrips() {
    let cpu = ComponentId::intern("ta-cpu");
    let bus = ComponentId::intern("ta-bus");
    let mut base = ActivitySet::new();
    base.record(cpu, ActivityKind::InstrRetired, 100);
    base.record(bus, ActivityKind::BusTransfer, 40);

    let mut window = ActivitySet::new();
    window.record(cpu, ActivityKind::InstrRetired, 7);
    window.record(bus, ActivityKind::BusStall, 3);

    let mut merged = base.clone();
    merged.merge(&window);
    assert_eq!(merged.count("ta-cpu", ActivityKind::InstrRetired), 107);
    assert_eq!(merged.kind_total(ActivityKind::BusTransfer), 40);

    // Subtracting the baseline recovers exactly the window.
    assert_eq!(merged.delta_from(&base), window);
    // And merging an empty set is the identity.
    merged.merge(&ActivitySet::new());
    assert_eq!(merged.count("ta-bus", ActivityKind::BusStall), 3);
}

#[test]
fn activity_export_order_is_stable_across_recording_order() {
    let a = ComponentId::intern("ta-export-a");
    let b = ComponentId::intern("ta-export-b");
    let mut fwd = ActivitySet::new();
    fwd.record(a, ActivityKind::RegRead, 1);
    fwd.record(b, ActivityKind::RegWrite, 2);
    let mut rev = ActivitySet::new();
    rev.record(b, ActivityKind::RegWrite, 2);
    rev.record(a, ActivityKind::RegRead, 1);
    // iter() sorts by name then kind, so export order is independent of
    // the order events were recorded in (the determinism the fleet's
    // digest relies on).
    assert_eq!(fwd.iter().collect::<Vec<_>>(), rev.iter().collect::<Vec<_>>());
    assert_eq!(fwd.to_string(), rev.to_string());
    let rendered = fwd.to_string();
    assert!(rendered.contains("ta-export-a"));
    assert!(rendered.contains("reg_write"));
}

#[test]
fn vcd_bridge_declares_one_signal_per_track() {
    let t = sample_trace();
    let doc = trace_to_vcd(&t, None, "ta");
    assert_eq!(doc.matches("$var wire 1").count(), 2, "spi.eot + gpio.set");
    assert!(doc.contains("ta-spi.eot"));
    assert!(doc.contains("ta-gpio.set"));
    // Every event pulses: 3 eot + 2 set = 5 rising edges.
    assert_eq!(doc.matches("\n1!").count() + doc.matches("\n1\"").count(), 5);
}
