//! Small deterministic PRNG for noise models and randomized tests.
//!
//! The workspace builds without network access, so it cannot pull in the
//! `rand` crate; this module provides the two things the models and the
//! property tests actually need — a fast, well-distributed 64-bit
//! generator and a gaussian sampler — with fully reproducible streams.
//!
//! The generator is SplitMix64 (Steele, Lea & Flood, *Fast Splittable
//! Pseudorandom Number Generators*, OOPSLA 2014): a single 64-bit state
//! advanced by a Weyl sequence and finalized with an avalanching mix. It
//! passes BigCrush when used as here and is the standard seeder for the
//! xoshiro family; its statistical quality is far beyond what a noise
//! model or a randomized test needs.

/// A deterministic 64-bit PRNG (SplitMix64).
///
/// ```
/// use pels_sim::rng::Rng;
/// let mut a = Rng::seed_from_u64(7);
/// let mut b = Rng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Equal seeds produce equal
    /// streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Lemire's multiply-shift rejection method: unbiased and cheap.
        let mut m = u128::from(self.next_u64()) * u128::from(bound);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound; // 2^64 mod bound
            while lo < threshold {
                m = u128::from(self.next_u64()) * u128::from(bound);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(span + 1)
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Boolean that is `true` with probability `num / denom`.
    ///
    /// # Panics
    ///
    /// Panics if `denom` is zero.
    pub fn ratio(&mut self, num: u64, denom: u64) -> bool {
        self.next_below(denom) < num
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard-normal sample via the Box-Muller transform.
    pub fn gaussian(&mut self) -> f64 {
        // Avoid ln(0): map [0,1) to (0,1].
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
        }
        assert_eq!(r.next_below(1), 0);
    }

    #[test]
    fn range_is_inclusive() {
        let mut r = Rng::seed_from_u64(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range_u64(5, 8);
            assert!((5..=8).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 8;
        }
        assert!(seen_lo && seen_hi, "range endpoints should both occur");
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = Rng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gaussian_is_roughly_standard() {
        let mut r = Rng::seed_from_u64(6);
        let n = 10_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn bool_and_ratio_hit_both_sides() {
        let mut r = Rng::seed_from_u64(7);
        let trues = (0..1000).filter(|_| r.bool()).count();
        assert!((400..600).contains(&trues));
        let hits = (0..1000).filter(|_| r.ratio(1, 10)).count();
        assert!((50..200).contains(&hits));
    }
}
