//! Causal event-flow tracing.
//!
//! The plain [`Trace`](crate::trace::Trace) records isolated
//! `(time, source, label)` points; nothing connects the SPI `eot` pulse to
//! the particular `gpio.padout` it caused. A [`FlowTrace`] adds that causal
//! thread: a [`FlowId`] is minted at every *originating* stimulus (timer
//! compare, sensor threshold crossing, GPIO edge, injected event) and
//! propagated hop by hop through the event wires, the PELS trigger FIFOs,
//! the execution pipelines and the IRQ path, so every completion can be
//! decomposed into per-stage cycle deltas.
//!
//! The layer is **pure observation**: it is off by default, every
//! observation point is a single branch on an `Option`, and the
//! `flow_invariance` suite proves runs are bit-identical with flows on and
//! off. Flow hops are recorded *only* here — never as extra `Trace`
//! entries — so trace comparisons are unaffected by construction.
//!
//! ## Propagation model
//!
//! Event wires carry flows for exactly as long as they carry pulses: stages
//! into `wire_now` are visible to same-cycle consumers (PELS trigger
//! sampling, the IRQ pending latch), rotate into `wire_prev` at the cycle
//! boundary for next-cycle consumers (peripheral event inputs), then decay.
//! Components that *adopt* a flow (an SPI transfer started by a wired
//! action, a link that popped a trigger token, the CPU entering a handler)
//! keep it as their current context; a raise with no adopted context mints
//! a fresh flow — that is the "originating stimulus" rule.

use crate::intern::ComponentId;
use crate::time::SimTime;
use std::collections::HashMap;

/// Every stage name a [`FlowHop`] may carry. `obs_check` gates
/// `OBS_flows.json` against this list, so new observation points must be
/// registered here.
pub const FLOW_STAGES: &[&str] = &[
    // Originating stimuli.
    "inject", "compare", "bite", "pin_rise",
    // Peripheral progress and completion events.
    "start", "done", "nack", "tx_done", "udma_done", "eot",
    // PELS channel pipeline.
    "trigger", "capture", "write", "action", "halt", "bus_error",
    // Fabric-visible task retirement.
    "padout",
    // Ibex IRQ-baseline path.
    "irq_pend", "irq_enter", "handler_load", "handler_store", "mret",
];

/// Identity of one causal flow. Ids are minted sequentially from 1; `0` is
/// reserved as "no flow" on the wire-latch fast paths and never appears in
/// a recorded hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// One hop of a flow: at `time`, `source` advanced the flow through
/// `stage`. Consecutive hop deltas of a flow are the per-stage latency
/// attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowHop {
    /// The flow this hop belongs to.
    pub flow: FlowId,
    /// When the hop occurred.
    pub time: SimTime,
    /// Which component advanced the flow.
    pub source: ComponentId,
    /// Typed stage name; always a member of [`FLOW_STAGES`].
    pub stage: &'static str,
}

impl FlowHop {
    /// The source's interned name.
    pub fn source_name(&self) -> &'static str {
        self.source.name()
    }
}

/// Recorded flows plus the live propagation state (wire latches, per-
/// component adopted contexts, staged register-write flows).
///
/// Embedded in [`Trace`](crate::trace::Trace) as an `Option<Box<..>>` so
/// every observation point in the models is one branch when flows are off.
#[derive(Debug, Clone)]
pub struct FlowTrace {
    hops: Vec<FlowHop>,
    minted: u64,
    /// Flow carried by each of the 64 event lines this cycle.
    wire_now: [u64; 64],
    /// Flow carried by each event line last cycle (matches the registered
    /// `prev_wires` image peripherals see as `events_in`).
    wire_prev: [u64; 64],
    now_dirty: bool,
    prev_dirty: bool,
    /// Flow each component currently carries (adopted context).
    ctx: HashMap<ComponentId, u64>,
    /// Flow staged by a fabric write commit, keyed by the slave it hit;
    /// consumed by the slave's next tick (e.g. GPIO pad-out attribution).
    reg_writes: HashMap<ComponentId, u64>,
}

impl Default for FlowTrace {
    fn default() -> Self {
        FlowTrace {
            hops: Vec::new(),
            minted: 0,
            wire_now: [0; 64],
            wire_prev: [0; 64],
            now_dirty: false,
            prev_dirty: false,
            ctx: HashMap::new(),
            reg_writes: HashMap::new(),
        }
    }
}

impl FlowTrace {
    fn push(&mut self, flow: u64, time: SimTime, source: ComponentId, stage: &'static str) {
        self.hops.push(FlowHop {
            flow: FlowId(flow),
            time,
            source,
            stage,
        });
    }

    fn mint(&mut self) -> u64 {
        self.minted += 1;
        self.minted
    }

    /// A component raised event `line`: propagate its adopted context, or
    /// mint a fresh flow if it has none (originating stimulus). The flow is
    /// staged onto the wire for same-cycle and next-cycle consumers.
    pub fn raise(&mut self, time: SimTime, source: ComponentId, line: u32, stage: &'static str) {
        let mut flow = self.ctx.get(&source).copied().unwrap_or(0);
        if flow == 0 {
            flow = self.mint();
        }
        self.push(flow, time, source, stage);
        if let Some(slot) = self.wire_now.get_mut(line as usize) {
            *slot = flow;
            self.now_dirty = true;
        }
    }

    /// A component observed last cycle's pulse on `line` and adopts its
    /// flow as context (e.g. SPI seeing its wired start line). Records a
    /// hop and returns `true` if the line carried a flow.
    pub fn adopt_wire(
        &mut self,
        time: SimTime,
        source: ComponentId,
        line: u32,
        stage: &'static str,
    ) -> bool {
        let flow = self
            .wire_prev
            .get(line as usize)
            .copied()
            .unwrap_or_default();
        if flow == 0 {
            return false;
        }
        self.ctx.insert(source, flow);
        self.push(flow, time, source, stage);
        true
    }

    /// The flow carried by the lowest set line in `bits`, checking this
    /// cycle's stages first, then last cycle's (loopback actions). `0` if
    /// none.
    pub fn flow_on_lines(&self, bits: u64) -> u64 {
        if !self.now_dirty && !self.prev_dirty {
            return 0;
        }
        let mut rest = bits;
        while rest != 0 {
            let line = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let f = self.wire_now[line];
            if f != 0 {
                return f;
            }
            let f = self.wire_prev[line];
            if f != 0 {
                return f;
            }
        }
        0
    }

    /// A component takes ownership of `flow` as its current context
    /// (replacing any previous one) and records a hop. `flow == 0` clears
    /// the context without recording — a popped trigger token that carried
    /// no flow must not inherit a stale one.
    pub fn begin(&mut self, time: SimTime, source: ComponentId, flow: u64, stage: &'static str) {
        if flow == 0 {
            self.ctx.remove(&source);
            return;
        }
        self.ctx.insert(source, flow);
        self.push(flow, time, source, stage);
    }

    /// Records a hop with the component's adopted context, if it has one.
    pub fn hop(&mut self, time: SimTime, source: ComponentId, stage: &'static str) {
        let flow = self.ctx.get(&source).copied().unwrap_or(0);
        if flow != 0 {
            self.push(flow, time, source, stage);
        }
    }

    /// Records a hop with an explicit flow id (used where the flow is
    /// tracked outside the context map, e.g. per-IRQ-bit latches).
    pub fn hop_with(&mut self, time: SimTime, source: ComponentId, flow: u64, stage: &'static str) {
        if flow != 0 {
            self.push(flow, time, source, stage);
        }
    }

    /// Stages the component's adopted context onto every line in `bits`
    /// (a wired PELS action driving event lines).
    pub fn stage_lines(&mut self, source: ComponentId, bits: u64) {
        let flow = self.ctx.get(&source).copied().unwrap_or(0);
        if flow == 0 {
            return;
        }
        let mut rest = bits;
        while rest != 0 {
            let line = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            if line < 64 {
                self.wire_now[line] = flow;
                self.now_dirty = true;
            }
        }
    }

    /// Stages `flow` as the cause of the latest register write into
    /// `slave`; the slave's next tick may claim it via
    /// [`FlowTrace::take_reg_write`].
    pub fn stage_reg_write(&mut self, slave: ComponentId, flow: u64) {
        if flow != 0 {
            self.reg_writes.insert(slave, flow);
        }
    }

    /// Claims a staged register-write flow for `slave`, adopting it as
    /// context and recording a hop. Returns `false` if none was staged.
    pub fn take_reg_write(
        &mut self,
        time: SimTime,
        slave: ComponentId,
        stage: &'static str,
    ) -> bool {
        let Some(flow) = self.reg_writes.remove(&slave) else {
            return false;
        };
        self.ctx.insert(slave, flow);
        self.push(flow, time, slave, stage);
        true
    }

    /// The component's currently adopted flow context (`0` if none).
    pub fn component(&self, source: ComponentId) -> u64 {
        self.ctx.get(&source).copied().unwrap_or(0)
    }

    /// Clock-edge rotation: this cycle's wire stages become last cycle's,
    /// and decay after one more rotation — exactly the lifetime of the
    /// pulses they annotate.
    pub fn cycle_end(&mut self) {
        if self.now_dirty || self.prev_dirty {
            self.wire_prev = self.wire_now;
            self.prev_dirty = self.now_dirty;
            self.wire_now = [0; 64];
            self.now_dirty = false;
        }
    }

    /// All recorded hops in order.
    pub fn hops(&self) -> &[FlowHop] {
        &self.hops
    }

    /// Number of recorded hops.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Whether no hop has been recorded.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Total flows minted.
    pub fn minted(&self) -> u64 {
        self.minted
    }

    /// Distinct flow ids in order of first appearance.
    pub fn flow_ids(&self) -> Vec<FlowId> {
        let mut seen = Vec::new();
        for h in &self.hops {
            if !seen.contains(&h.flow) {
                seen.push(h.flow);
            }
        }
        seen
    }

    /// All hops of one flow, in record order.
    pub fn hops_of(&self, flow: FlowId) -> impl Iterator<Item = &FlowHop> {
        self.hops.iter().filter(move |h| h.flow == flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(name: &str) -> ComponentId {
        ComponentId::intern(name)
    }

    #[test]
    fn raise_without_context_mints_fresh_flows() {
        let mut f = FlowTrace::default();
        let timer = cid("flow-test-timer");
        f.raise(SimTime::from_ns(10), timer, 3, "compare");
        f.cycle_end();
        f.raise(SimTime::from_ns(20), timer, 3, "compare");
        assert_eq!(f.minted(), 2);
        let ids = f.flow_ids();
        assert_eq!(ids, vec![FlowId(1), FlowId(2)]);
    }

    #[test]
    fn raise_with_adopted_context_propagates() {
        let mut f = FlowTrace::default();
        let gpio = cid("flow-test-gpio");
        let spi = cid("flow-test-spi");
        // GPIO mints on line 0; after one rotation SPI adopts it from the
        // wire and its own raise reuses the same flow.
        f.raise(SimTime::from_ns(0), gpio, 0, "pin_rise");
        f.cycle_end();
        assert!(f.adopt_wire(SimTime::from_ns(1), spi, 0, "start"));
        f.raise(SimTime::from_ns(5), spi, 7, "eot");
        assert_eq!(f.minted(), 1);
        assert_eq!(f.hops_of(FlowId(1)).count(), 3);
        let stages: Vec<_> = f.hops_of(FlowId(1)).map(|h| h.stage).collect();
        assert_eq!(stages, vec!["pin_rise", "start", "eot"]);
    }

    #[test]
    fn wire_flows_decay_after_two_rotations() {
        let mut f = FlowTrace::default();
        let timer = cid("flow-test-timer2");
        f.raise(SimTime::ZERO, timer, 5, "compare");
        assert_eq!(f.flow_on_lines(1 << 5), 1); // same cycle: wire_now
        f.cycle_end();
        assert_eq!(f.flow_on_lines(1 << 5), 1); // next cycle: wire_prev
        f.cycle_end();
        assert_eq!(f.flow_on_lines(1 << 5), 0); // decayed with the pulse
    }

    #[test]
    fn begin_zero_clears_context() {
        let mut f = FlowTrace::default();
        let link = cid("flow-test-link");
        f.begin(SimTime::ZERO, link, 9, "trigger");
        assert_eq!(f.component(link), 9);
        f.begin(SimTime::from_ns(1), link, 0, "trigger");
        assert_eq!(f.component(link), 0);
        // Only the first begin recorded a hop.
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn reg_write_staging_is_consumed_once() {
        let mut f = FlowTrace::default();
        let gpio = cid("flow-test-gpio2");
        f.stage_reg_write(gpio, 4);
        assert!(f.take_reg_write(SimTime::ZERO, gpio, "padout"));
        assert!(!f.take_reg_write(SimTime::ZERO, gpio, "padout"));
        assert_eq!(f.component(gpio), 4);
    }

    #[test]
    fn every_recorded_stage_is_allowlisted() {
        for stage in ["compare", "padout", "irq_enter", "mret"] {
            assert!(FLOW_STAGES.contains(&stage));
        }
    }
}
