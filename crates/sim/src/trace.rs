//! Timestamped event tracing.
//!
//! A [`Trace`] records interesting simulation events (`spi.eot`,
//! `pels.link0.trigger`, `ibex.irq_enter`, …) with their timestamp, and is
//! the raw material for latency measurements: the paper's 2/7/16-cycle
//! numbers are produced by subtracting trace timestamps.
//!
//! The record path is allocation-free: sources are interned
//! [`ComponentId`]s and labels are `&'static str` (every label in the
//! workspace is a literal), so recording an event is a plain `Vec` push of
//! a small `Copy` struct. The string-keyed query helpers resolve names
//! through the interning registry.

use crate::flow::FlowTrace;
use crate::intern::ComponentId;
use crate::time::SimTime;
use std::fmt;

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Time the event occurred.
    pub time: SimTime,
    /// Interned hierarchical source name, e.g. `pels.link0`.
    pub source: ComponentId,
    /// Event label, e.g. `trigger`.
    pub label: &'static str,
    /// Optional payload (register value, line index, …).
    pub value: u64,
}

impl TraceEntry {
    /// The source's name.
    pub fn source_name(&self) -> &'static str {
        self.source.name()
    }
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] {}.{} = {:#x}",
            self.time.to_string(),
            self.source.name(),
            self.label,
            self.value
        )
    }
}

/// An append-only event trace with query helpers.
///
/// ```
/// use pels_sim::{ComponentId, SimTime, Trace};
/// let spi = ComponentId::intern("spi");
/// let gpio = ComponentId::intern("gpio");
/// let mut t = Trace::new();
/// t.record(SimTime::from_ns(10), spi, "eot", 0);
/// t.record(SimTime::from_ns(80), gpio, "set", 1);
/// let lat = t.latency_between(("spi", "eot"), ("gpio", "set")).unwrap();
/// assert_eq!(lat.as_ns(), 70);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    enabled: bool,
    /// Causal flow layer; `None` (the default) keeps every flow
    /// observation point in the models down to a single branch.
    flows: Option<Box<FlowTrace>>,
}

impl Trace {
    /// Creates an enabled, empty trace.
    pub fn new() -> Self {
        Trace {
            entries: Vec::new(),
            enabled: true,
            flows: None,
        }
    }

    /// Creates a disabled trace: `record` becomes a no-op. Useful for the
    /// benches, where tracing overhead would pollute throughput numbers.
    pub fn disabled() -> Self {
        Trace {
            entries: Vec::new(),
            enabled: false,
            flows: None,
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Records an event (no-op when disabled). Allocation-free apart from
    /// amortized growth of the entry vector.
    #[inline]
    pub fn record(&mut self, time: SimTime, source: ComponentId, label: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        self.entries.push(TraceEntry {
            time,
            source,
            label,
            value,
        });
    }

    /// Records an event under a source name, interning it if needed.
    /// Convenience layer for tests and cold paths.
    pub fn record_named(&mut self, time: SimTime, source: &str, label: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        self.record(time, ComponentId::intern(source), label, value);
    }

    /// All recorded entries in order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// First entry matching `(source, label)`.
    pub fn first(&self, source: &str, label: &str) -> Option<&TraceEntry> {
        let id = ComponentId::lookup(source)?;
        self.entries
            .iter()
            .find(|e| e.source == id && e.label == label)
    }

    /// Last entry matching `(source, label)`.
    pub fn last(&self, source: &str, label: &str) -> Option<&TraceEntry> {
        let id = ComponentId::lookup(source)?;
        self.entries
            .iter()
            .rev()
            .find(|e| e.source == id && e.label == label)
    }

    /// All entries matching `(source, label)`.
    pub fn all(&self, source: &str, label: &str) -> Vec<&TraceEntry> {
        let Some(id) = ComponentId::lookup(source) else {
            return Vec::new();
        };
        self.entries
            .iter()
            .filter(|e| e.source == id && e.label == label)
            .collect()
    }

    /// First entry matching `to` at-or-after the first occurrence of
    /// `from`, minus the `from` timestamp.
    ///
    /// This is the latency-measurement primitive: time from a producer
    /// event to a consumer action.
    pub fn latency_between(&self, from: (&str, &str), to: (&str, &str)) -> Option<SimTime> {
        let start = self.first(from.0, from.1)?;
        let to_id = ComponentId::lookup(to.0)?;
        let end = self
            .entries
            .iter()
            .find(|e| e.source == to_id && e.label == to.1 && e.time >= start.time)?;
        Some(end.time - start.time)
    }

    /// Latencies for every `(from → next to)` pair, for jitter statistics.
    pub fn latencies_all(&self, from: (&str, &str), to: (&str, &str)) -> Vec<SimTime> {
        let mut out = Vec::new();
        let ends: Vec<&TraceEntry> = self.all(to.0, to.1);
        let mut ei = 0usize;
        for s in self.all(from.0, from.1) {
            while ei < ends.len() && ends[ei].time < s.time {
                ei += 1;
            }
            if ei < ends.len() {
                out.push(ends[ei].time - s.time);
                ei += 1;
            }
        }
        out
    }

    /// Clears all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    // ------------------------------------------------------------------
    // Causal flow layer (crate::flow). Every wrapper is a single branch
    // on the `Option` when flows are off — the pure-observation contract.
    // ------------------------------------------------------------------

    /// Turns on causal flow tracing (off by default).
    pub fn enable_flows(&mut self) {
        if self.flows.is_none() {
            self.flows = Some(Box::default());
        }
    }

    /// Whether causal flow tracing is active.
    #[inline]
    pub fn flows_enabled(&self) -> bool {
        self.flows.is_some()
    }

    /// The recorded flow layer, if enabled.
    pub fn flow_trace(&self) -> Option<&FlowTrace> {
        self.flows.as_deref()
    }

    /// Removes and returns the flow layer (disabling further flow
    /// recording).
    pub fn take_flow_trace(&mut self) -> Option<FlowTrace> {
        self.flows.take().map(|b| *b)
    }

    /// See [`FlowTrace::raise`].
    #[inline]
    pub fn flow_raise(
        &mut self,
        time: SimTime,
        source: ComponentId,
        line: u32,
        stage: &'static str,
    ) {
        if let Some(f) = &mut self.flows {
            f.raise(time, source, line, stage);
        }
    }

    /// See [`FlowTrace::adopt_wire`].
    #[inline]
    pub fn flow_adopt_wire(
        &mut self,
        time: SimTime,
        source: ComponentId,
        line: u32,
        stage: &'static str,
    ) -> bool {
        match &mut self.flows {
            Some(f) => f.adopt_wire(time, source, line, stage),
            None => false,
        }
    }

    /// See [`FlowTrace::flow_on_lines`].
    #[inline]
    pub fn flow_on_lines(&self, bits: u64) -> u64 {
        match &self.flows {
            Some(f) => f.flow_on_lines(bits),
            None => 0,
        }
    }

    /// See [`FlowTrace::begin`].
    #[inline]
    pub fn flow_begin(
        &mut self,
        time: SimTime,
        source: ComponentId,
        flow: u64,
        stage: &'static str,
    ) {
        if let Some(f) = &mut self.flows {
            f.begin(time, source, flow, stage);
        }
    }

    /// See [`FlowTrace::hop`].
    #[inline]
    pub fn flow_hop(&mut self, time: SimTime, source: ComponentId, stage: &'static str) {
        if let Some(f) = &mut self.flows {
            f.hop(time, source, stage);
        }
    }

    /// See [`FlowTrace::hop_with`].
    #[inline]
    pub fn flow_hop_with(
        &mut self,
        time: SimTime,
        source: ComponentId,
        flow: u64,
        stage: &'static str,
    ) {
        if let Some(f) = &mut self.flows {
            f.hop_with(time, source, flow, stage);
        }
    }

    /// See [`FlowTrace::stage_lines`].
    #[inline]
    pub fn flow_stage_lines(&mut self, source: ComponentId, bits: u64) {
        if let Some(f) = &mut self.flows {
            f.stage_lines(source, bits);
        }
    }

    /// See [`FlowTrace::stage_reg_write`].
    #[inline]
    pub fn flow_stage_reg_write(&mut self, slave: ComponentId, flow: u64) {
        if let Some(f) = &mut self.flows {
            f.stage_reg_write(slave, flow);
        }
    }

    /// See [`FlowTrace::take_reg_write`].
    #[inline]
    pub fn flow_take_reg_write(
        &mut self,
        time: SimTime,
        slave: ComponentId,
        stage: &'static str,
    ) -> bool {
        match &mut self.flows {
            Some(f) => f.take_reg_write(time, slave, stage),
            None => false,
        }
    }

    /// See [`FlowTrace::component`].
    #[inline]
    pub fn flow_component(&self, source: ComponentId) -> u64 {
        match &self.flows {
            Some(f) => f.component(source),
            None => 0,
        }
    }

    /// See [`FlowTrace::cycle_end`].
    #[inline]
    pub fn flow_cycle_end(&mut self) {
        if let Some(f) = &mut self.flows {
            f.cycle_end();
        }
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.record_named(SimTime::from_ns(0), "timer", "ovf", 0);
        t.record_named(SimTime::from_ns(10), "spi", "eot", 0);
        t.record_named(SimTime::from_ns(50), "gpio", "set", 1);
        t.record_named(SimTime::from_ns(100), "spi", "eot", 1);
        t.record_named(SimTime::from_ns(170), "gpio", "set", 0);
        t
    }

    #[test]
    fn first_last_all() {
        let t = sample();
        assert_eq!(t.first("spi", "eot").unwrap().time, SimTime::from_ns(10));
        assert_eq!(t.last("spi", "eot").unwrap().time, SimTime::from_ns(100));
        assert_eq!(t.all("spi", "eot").len(), 2);
        assert!(t.first("trace-test-unknown-source", "x").is_none());
    }

    #[test]
    fn latency_between_pairs() {
        let t = sample();
        let l = t.latency_between(("spi", "eot"), ("gpio", "set")).unwrap();
        assert_eq!(l.as_ns(), 40);
        assert!(t.latency_between(("gpio", "set"), ("timer", "ovf")).is_none());
    }

    #[test]
    fn latencies_all_pairs_in_order() {
        let t = sample();
        let ls = t.latencies_all(("spi", "eot"), ("gpio", "set"));
        assert_eq!(
            ls.iter().map(|l| l.as_ns()).collect::<Vec<_>>(),
            vec![40, 70]
        );
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let a = ComponentId::intern("trace-test-a");
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, a, "b", 0);
        assert!(t.is_empty());
        t.set_enabled(true);
        t.record(SimTime::ZERO, a, "b", 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn display_contains_entries() {
        let t = sample();
        let s = t.to_string();
        assert!(s.contains("spi.eot"));
        assert!(s.contains("gpio.set"));
    }
}
