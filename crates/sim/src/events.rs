//! Single-wire event lines.
//!
//! PELS routes *events*: single-cycle pulses on dedicated wires (paper
//! Section III). An [`EventVector`] models up to 64 such wires sampled in
//! one clock cycle. Peripherals OR their pulses into the vector during the
//! comb phase; consumers (PELS trigger units, the interrupt controller)
//! sample it before the next edge.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign, Not};

/// Width of an [`EventVector`] in wires.
pub const EVENT_LINES: u32 = 64;

/// A sampled set of up to 64 single-wire event lines.
///
/// ```
/// use pels_sim::EventVector;
/// let mut ev = EventVector::EMPTY;
/// ev.set(3); // e.g. SPI end-of-transfer
/// ev.set(7); // e.g. timer overflow
/// assert!(ev.is_set(3));
/// assert_eq!(ev.count(), 2);
/// assert_eq!(ev & EventVector::mask_of(&[3]), EventVector::mask_of(&[3]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EventVector(u64);

impl EventVector {
    /// No event lines active.
    pub const EMPTY: EventVector = EventVector(0);

    /// All 64 event lines active.
    pub const ALL: EventVector = EventVector(u64::MAX);

    /// Whether any line in `mask` is also active in `self`.
    pub fn intersects(self, mask: EventVector) -> bool {
        self.0 & mask.0 != 0
    }

    /// Creates a vector from its raw 64-bit image.
    pub const fn from_bits(bits: u64) -> Self {
        EventVector(bits)
    }

    /// The raw 64-bit image.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// A vector with exactly the given lines set.
    ///
    /// # Panics
    ///
    /// Panics if any line index is `>= 64`.
    pub fn mask_of(lines: &[u32]) -> Self {
        let mut v = EventVector::EMPTY;
        for &l in lines {
            v.set(l);
        }
        v
    }

    /// Sets line `line`.
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64`.
    pub fn set(&mut self, line: u32) {
        assert!(line < EVENT_LINES, "event line {line} out of range");
        self.0 |= 1 << line;
    }

    /// Clears line `line`.
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64`.
    pub fn clear(&mut self, line: u32) {
        assert!(line < EVENT_LINES, "event line {line} out of range");
        self.0 &= !(1 << line);
    }

    /// Whether line `line` is active.
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64`.
    pub fn is_set(self, line: u32) -> bool {
        assert!(line < EVENT_LINES, "event line {line} out of range");
        self.0 & (1 << line) != 0
    }

    /// Whether no line is active.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of active lines.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterator over the indices of active lines, ascending.
    pub fn iter(self) -> impl Iterator<Item = u32> {
        (0..EVENT_LINES).filter(move |&l| self.0 & (1 << l) != 0)
    }
}

impl BitOr for EventVector {
    type Output = EventVector;
    fn bitor(self, rhs: EventVector) -> EventVector {
        EventVector(self.0 | rhs.0)
    }
}

impl BitOrAssign for EventVector {
    fn bitor_assign(&mut self, rhs: EventVector) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for EventVector {
    type Output = EventVector;
    fn bitand(self, rhs: EventVector) -> EventVector {
        EventVector(self.0 & rhs.0)
    }
}

impl Not for EventVector {
    type Output = EventVector;
    fn not(self) -> EventVector {
        EventVector(!self.0)
    }
}

impl fmt::Display for EventVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "events[")?;
        let mut first = true;
        for l in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
            first = false;
        }
        write!(f, "]")
    }
}

impl fmt::Binary for EventVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for EventVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl FromIterator<u32> for EventVector {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut v = EventVector::EMPTY;
        for l in iter {
            v.set(l);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_roundtrip() {
        let mut v = EventVector::EMPTY;
        v.set(0);
        v.set(63);
        assert!(v.is_set(0) && v.is_set(63));
        v.clear(0);
        assert!(!v.is_set(0) && v.is_set(63));
        assert_eq!(v.count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_rejects_out_of_range() {
        let mut v = EventVector::EMPTY;
        v.set(64);
    }

    #[test]
    fn bit_ops() {
        let a = EventVector::mask_of(&[1, 2]);
        let b = EventVector::mask_of(&[2, 3]);
        assert_eq!(a | b, EventVector::mask_of(&[1, 2, 3]));
        assert_eq!(a & b, EventVector::mask_of(&[2]));
        assert!((!a).is_set(0));
        assert!(!(!a).is_set(1));
    }

    #[test]
    fn iter_ascending() {
        let v = EventVector::mask_of(&[9, 1, 40]);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![1, 9, 40]);
        let back: EventVector = v.iter().collect();
        assert_eq!(back, v);
    }

    #[test]
    fn display_lists_lines() {
        assert_eq!(EventVector::mask_of(&[2, 5]).to_string(), "events[2,5]");
        assert_eq!(EventVector::EMPTY.to_string(), "events[]");
    }

    #[test]
    fn numeric_formats() {
        let v = EventVector::mask_of(&[0, 4]);
        assert_eq!(format!("{v:b}"), "10001");
        assert_eq!(format!("{v:x}"), "11");
    }
}
