//! Minimal VCD (Value Change Dump) writer.
//!
//! Lets any model dump waveforms inspectable with GTKWave & co. — the
//! debugging workflow an RTL engineer would expect from the original
//! SystemVerilog PELS. Only the subset of IEEE 1364 VCD needed for scalar
//! and vector signals is implemented; no external dependency required.

use crate::error::SimError;
use crate::time::SimTime;
use std::fmt::Write as _;

/// Handle to a registered signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalId(usize);

#[derive(Debug, Clone)]
struct Signal {
    name: String,
    width: u32,
    ident: String,
    last: Option<u64>,
}

/// An in-memory VCD document builder.
///
/// Register signals up front, then report value changes as simulation time
/// advances; [`VcdWriter::finish`] renders the document.
///
/// ```
/// use pels_sim::vcd::VcdWriter;
/// use pels_sim::SimTime;
/// let mut vcd = VcdWriter::new("pels");
/// let trig = vcd.add_signal("link0_trigger", 1);
/// let pc = vcd.add_signal("link0_pc", 4);
/// vcd.change(SimTime::ZERO, trig, 1);
/// vcd.change(SimTime::from_ns(10), pc, 3);
/// let doc = vcd.finish();
/// assert!(doc.contains("$var wire 1"));
/// assert!(doc.contains("$enddefinitions"));
/// ```
#[derive(Debug, Clone)]
pub struct VcdWriter {
    module: String,
    signals: Vec<Signal>,
    body: String,
    time_open: Option<SimTime>,
}

/// Generates the short VCD identifier for signal `n` (printable ASCII
/// `!`..`~`, base-94 little-endian).
fn ident_for(mut n: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

impl VcdWriter {
    /// Creates a writer for a single module scope.
    pub fn new(module: impl Into<String>) -> Self {
        VcdWriter {
            module: module.into(),
            signals: Vec::new(),
            body: String::new(),
            time_open: None,
        }
    }

    /// Registers a signal of `width` bits and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn add_signal(&mut self, name: impl Into<String>, width: u32) -> SignalId {
        assert!((1..=64).contains(&width), "signal width must be 1..=64");
        let id = self.signals.len();
        self.signals.push(Signal {
            name: name.into(),
            width,
            ident: ident_for(id),
            last: None,
        });
        SignalId(id)
    }

    /// Reports a value for `signal` at `time`. Unchanged values are elided
    /// like real VCD dumps.
    ///
    /// Values wider than the signal are truncated to its width.
    pub fn change(&mut self, time: SimTime, signal: SignalId, value: u64) {
        let sig = &self.signals[signal.0];
        let mask = if sig.width == 64 {
            u64::MAX
        } else {
            (1u64 << sig.width) - 1
        };
        let value = value & mask;
        if sig.last == Some(value) {
            return;
        }
        if self.time_open != Some(time) {
            let _ = writeln!(self.body, "#{}", time.as_ps());
            self.time_open = Some(time);
        }
        let sig = &mut self.signals[signal.0];
        sig.last = Some(value);
        if sig.width == 1 {
            let _ = writeln!(self.body, "{}{}", value & 1, sig.ident);
        } else {
            let _ = writeln!(self.body, "b{value:b} {}", sig.ident);
        }
    }

    /// Looks up a signal handle by name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] when the name was never
    /// registered.
    pub fn signal(&self, name: &str) -> Result<SignalId, SimError> {
        self.signals
            .iter()
            .position(|s| s.name == name)
            .map(SignalId)
            .ok_or_else(|| SimError::UnknownSignal(name.to_owned()))
    }

    /// Renders the complete VCD document.
    pub fn finish(self) -> String {
        let mut out = String::new();
        out.push_str("$timescale 1ps $end\n");
        let _ = writeln!(out, "$scope module {} $end", self.module);
        for s in &self.signals {
            let _ = writeln!(out, "$var wire {} {} {} $end", s.width, s.ident, s.name);
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        out.push_str(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_generation_is_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..500 {
            let id = ident_for(n);
            assert!(id.bytes().all(|b| (b'!'..=b'~').contains(&b)));
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn header_lists_signals() {
        let mut w = VcdWriter::new("top");
        w.add_signal("clk", 1);
        w.add_signal("bus", 32);
        let doc = w.finish();
        assert!(doc.contains("$scope module top $end"));
        assert!(doc.contains("$var wire 1 ! clk $end"));
        assert!(doc.contains("$var wire 32 \" bus $end"));
    }

    #[test]
    fn unchanged_values_are_elided() {
        let mut w = VcdWriter::new("m");
        let s = w.add_signal("x", 1);
        w.change(SimTime::from_ps(0), s, 1);
        w.change(SimTime::from_ps(5), s, 1); // no change
        w.change(SimTime::from_ps(9), s, 0);
        let doc = w.finish();
        assert!(doc.contains("#0\n1!"));
        assert!(!doc.contains("#5"));
        assert!(doc.contains("#9\n0!"));
    }

    #[test]
    fn vector_values_use_binary_format() {
        let mut w = VcdWriter::new("m");
        let s = w.add_signal("v", 8);
        w.change(SimTime::from_ps(2), s, 0x1ff); // truncated to 8 bits
        let doc = w.finish();
        assert!(doc.contains("b11111111 !"));
    }

    #[test]
    fn lookup_by_name() {
        let mut w = VcdWriter::new("m");
        let s = w.add_signal("sig", 1);
        assert_eq!(w.signal("sig").unwrap(), s);
        assert!(matches!(
            w.signal("none"),
            Err(SimError::UnknownSignal(_))
        ));
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        VcdWriter::new("m").add_signal("bad", 0);
    }
}
