//! Minimal VCD (Value Change Dump) writer.
//!
//! Lets any model dump waveforms inspectable with GTKWave & co. — the
//! debugging workflow an RTL engineer would expect from the original
//! SystemVerilog PELS. Only the subset of IEEE 1364 VCD needed for scalar
//! and vector signals is implemented; no external dependency required.

use crate::error::SimError;
use crate::flow::FlowTrace;
use crate::intern::ComponentId;
use crate::time::SimTime;
use crate::trace::Trace;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Handle to a registered signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalId(usize);

#[derive(Debug, Clone)]
struct Signal {
    name: String,
    width: u32,
    ident: String,
    last: Option<u64>,
}

/// An in-memory VCD document builder.
///
/// Register signals up front, then report value changes as simulation time
/// advances; [`VcdWriter::finish`] renders the document.
///
/// ```
/// use pels_sim::vcd::VcdWriter;
/// use pels_sim::SimTime;
/// let mut vcd = VcdWriter::new("pels");
/// let trig = vcd.add_signal("link0_trigger", 1);
/// let pc = vcd.add_signal("link0_pc", 4);
/// vcd.change(SimTime::ZERO, trig, 1);
/// vcd.change(SimTime::from_ns(10), pc, 3);
/// let doc = vcd.finish();
/// assert!(doc.contains("$var wire 1"));
/// assert!(doc.contains("$enddefinitions"));
/// ```
#[derive(Debug, Clone)]
pub struct VcdWriter {
    module: String,
    signals: Vec<Signal>,
    body: String,
    time_open: Option<SimTime>,
}

/// Generates the short VCD identifier for signal `n` (printable ASCII
/// `!`..`~`, base-94 little-endian).
fn ident_for(mut n: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

impl VcdWriter {
    /// Creates a writer for a single module scope.
    pub fn new(module: impl Into<String>) -> Self {
        VcdWriter {
            module: module.into(),
            signals: Vec::new(),
            body: String::new(),
            time_open: None,
        }
    }

    /// Registers a signal of `width` bits and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn add_signal(&mut self, name: impl Into<String>, width: u32) -> SignalId {
        assert!((1..=64).contains(&width), "signal width must be 1..=64");
        let id = self.signals.len();
        self.signals.push(Signal {
            name: name.into(),
            width,
            ident: ident_for(id),
            last: None,
        });
        SignalId(id)
    }

    /// Reports a value for `signal` at `time`. Unchanged values are elided
    /// like real VCD dumps.
    ///
    /// Values wider than the signal are truncated to its width.
    pub fn change(&mut self, time: SimTime, signal: SignalId, value: u64) {
        let sig = &self.signals[signal.0];
        let mask = if sig.width == 64 {
            u64::MAX
        } else {
            (1u64 << sig.width) - 1
        };
        let value = value & mask;
        if sig.last == Some(value) {
            return;
        }
        if self.time_open != Some(time) {
            let _ = writeln!(self.body, "#{}", time.as_ps());
            self.time_open = Some(time);
        }
        let sig = &mut self.signals[signal.0];
        sig.last = Some(value);
        if sig.width == 1 {
            let _ = writeln!(self.body, "{}{}", value & 1, sig.ident);
        } else {
            let _ = writeln!(self.body, "b{value:b} {}", sig.ident);
        }
    }

    /// Looks up a signal handle by name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] when the name was never
    /// registered.
    pub fn signal(&self, name: &str) -> Result<SignalId, SimError> {
        self.signals
            .iter()
            .position(|s| s.name == name)
            .map(SignalId)
            .ok_or_else(|| SimError::UnknownSignal(name.to_owned()))
    }

    /// Renders the complete VCD document.
    pub fn finish(self) -> String {
        let mut out = String::new();
        out.push_str("$timescale 1ps $end\n");
        let _ = writeln!(out, "$scope module {} $end", self.module);
        for s in &self.signals {
            let _ = writeln!(out, "$var wire {} {} {} $end", s.width, s.ident, s.name);
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        out.push_str(&self.body);
        out
    }
}

/// Width of the flow-id vector signals emitted by [`trace_to_vcd`].
const FLOW_ID_BITS: u32 = 16;

/// Renders `trace` (and optionally the causal `flows` recorded alongside
/// it) as a VCD document:
///
/// * one 1-bit pulse signal per distinct `source.label` track, driven to
///   1 at each event's timestamp and back to 0 one picosecond later, so
///   every event shows as a narrow pulse in GTKWave & co.;
/// * with `flows`, one 16-bit `<channel>.flow` signal per PELS channel
///   (hop sources named `pels.*`) and one 16-bit `flow.<stage>` signal
///   per typed flow stage, each pulsing the [`crate::FlowId`] at every
///   hop — reading a stage track left to right shows which flow crossed
///   it when, and a channel track shows which flow the channel carried.
///
/// Signals are declared in order of first occurrence (trace tracks
/// first, then flow tracks), and simultaneous edges keep their record
/// order (stable sort), so the document is byte-identical across runs
/// for a deterministic trace.
///
/// ```
/// use pels_sim::vcd::trace_to_vcd;
/// use pels_sim::{ComponentId, FlowTrace, SimTime, Trace};
/// let mut t = Trace::new();
/// t.record_named(SimTime::from_ns(10), "spi", "eot", 0);
/// t.record_named(SimTime::from_ns(80), "gpio", "set", 1);
/// let doc = trace_to_vcd(&t, None, "pels");
/// assert!(doc.contains("$var wire 1 ! spi.eot $end"));
/// assert!(doc.contains("#10000\n1!")); // pulse up at the event time...
/// assert!(doc.contains("#10001\n0!")); // ...and back down 1 ps later
///
/// let mut flows = FlowTrace::default();
/// flows.raise(SimTime::from_ns(10), ComponentId::intern("pels.link0"), 1, "trigger");
/// let doc = trace_to_vcd(&t, Some(&flows), "pels");
/// assert!(doc.contains("$var wire 16 # pels.link0.flow $end"));
/// assert!(doc.contains("$var wire 16 $ flow.trigger $end"));
/// assert!(doc.contains("b1 #")); // the hop pulses the flow id
/// ```
pub fn trace_to_vcd(trace: &Trace, flows: Option<&FlowTrace>, module: &str) -> String {
    let mut vcd = VcdWriter::new(module);
    let mut ids: HashMap<(ComponentId, &'static str), SignalId> = HashMap::new();
    let hop_count = flows.map_or(0, FlowTrace::len);
    let mut changes: Vec<(SimTime, SignalId, u64)> =
        Vec::with_capacity((trace.len() + 2 * hop_count) * 2);
    for e in trace.entries() {
        let sig = *ids
            .entry((e.source, e.label))
            .or_insert_with(|| vcd.add_signal(format!("{}.{}", e.source.name(), e.label), 1));
        changes.push((e.time, sig, 1));
        changes.push((SimTime::from_ps(e.time.as_ps() + 1), sig, 0));
    }
    if let Some(flows) = flows {
        let mut channels: HashMap<ComponentId, SignalId> = HashMap::new();
        let mut stages: HashMap<&'static str, SignalId> = HashMap::new();
        for h in flows.hops() {
            let mut pulse = |sig: SignalId| {
                changes.push((h.time, sig, h.flow.0));
                changes.push((SimTime::from_ps(h.time.as_ps() + 1), sig, 0));
            };
            if h.source_name().starts_with("pels.") {
                pulse(*channels.entry(h.source).or_insert_with(|| {
                    vcd.add_signal(format!("{}.flow", h.source_name()), FLOW_ID_BITS)
                }));
            }
            pulse(*stages.entry(h.stage).or_insert_with(|| {
                vcd.add_signal(format!("flow.{}", h.stage), FLOW_ID_BITS)
            }));
        }
    }
    // Falling edges interleave with later events; VCD timestamps must be
    // monotone. The sort is stable, so same-time edges keep record order.
    changes.sort_by_key(|&(t, _, _)| t);
    for (t, sig, v) in changes {
        vcd.change(t, sig, v);
    }
    vcd.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_generation_is_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..500 {
            let id = ident_for(n);
            assert!(id.bytes().all(|b| (b'!'..=b'~').contains(&b)));
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn header_lists_signals() {
        let mut w = VcdWriter::new("top");
        w.add_signal("clk", 1);
        w.add_signal("bus", 32);
        let doc = w.finish();
        assert!(doc.contains("$scope module top $end"));
        assert!(doc.contains("$var wire 1 ! clk $end"));
        assert!(doc.contains("$var wire 32 \" bus $end"));
    }

    #[test]
    fn unchanged_values_are_elided() {
        let mut w = VcdWriter::new("m");
        let s = w.add_signal("x", 1);
        w.change(SimTime::from_ps(0), s, 1);
        w.change(SimTime::from_ps(5), s, 1); // no change
        w.change(SimTime::from_ps(9), s, 0);
        let doc = w.finish();
        assert!(doc.contains("#0\n1!"));
        assert!(!doc.contains("#5"));
        assert!(doc.contains("#9\n0!"));
    }

    #[test]
    fn vector_values_use_binary_format() {
        let mut w = VcdWriter::new("m");
        let s = w.add_signal("v", 8);
        w.change(SimTime::from_ps(2), s, 0x1ff); // truncated to 8 bits
        let doc = w.finish();
        assert!(doc.contains("b11111111 !"));
    }

    #[test]
    fn lookup_by_name() {
        let mut w = VcdWriter::new("m");
        let s = w.add_signal("sig", 1);
        assert_eq!(w.signal("sig").unwrap(), s);
        assert!(matches!(
            w.signal("none"),
            Err(SimError::UnknownSignal(_))
        ));
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        VcdWriter::new("m").add_signal("bad", 0);
    }

    #[test]
    fn trace_bridge_pulses_every_event_in_time_order() {
        let mut t = Trace::new();
        t.record_named(SimTime::from_ps(5), "vcd-test-a", "hit", 0);
        t.record_named(SimTime::from_ps(5), "vcd-test-b", "hit", 0);
        t.record_named(SimTime::from_ps(40), "vcd-test-a", "hit", 1);
        let doc = trace_to_vcd(&t, None, "bridge");
        assert!(doc.contains("$var wire 1 ! vcd-test-a.hit $end"));
        assert!(doc.contains("$var wire 1 \" vcd-test-b.hit $end"));
        // Both tracks pulse inside the same #5 block, trace order kept.
        assert!(doc.contains("#5\n1!\n1\"\n#6\n0!\n0\"\n"));
        assert!(doc.contains("#40\n1!\n#41\n0!\n"));
        // Timestamps are monotone (VCD requirement).
        let mut last = -1i64;
        for line in doc.lines().filter(|l| l.starts_with('#')) {
            let ts: i64 = line[1..].parse().unwrap();
            assert!(ts > last, "non-monotone timestamp {ts} after {last}");
            last = ts;
        }
    }

    #[test]
    fn trace_bridge_emits_channel_and_stage_flow_tracks() {
        let link = ComponentId::intern("pels.vcd-test-link");
        let gpio = ComponentId::intern("vcd-test-gpio");
        let mut t = Trace::new();
        t.record(SimTime::from_ps(10), link, "trigger", 0);
        let mut flows = FlowTrace::default();
        flows.raise(SimTime::from_ps(10), link, 1, "trigger");
        flows.cycle_end();
        assert!(flows.adopt_wire(SimTime::from_ps(20), gpio, 1, "padout"));
        flows.raise(SimTime::from_ps(30), link, 2, "trigger");
        let doc = trace_to_vcd(&t, Some(&flows), "m");
        // One channel track for the PELS source (but none for the GPIO),
        // one stage track per distinct typed stage.
        assert_eq!(doc.matches("$var wire 16").count(), 3);
        assert!(doc.contains("pels.vcd-test-link.flow"));
        assert!(doc.contains("flow.trigger"));
        assert!(doc.contains("flow.padout"));
        assert!(!doc.contains("vcd-test-gpio.flow"));
        // Each hop pulses the flow id on its tracks: id 1 then id 2 on
        // the channel + trigger-stage pair, id 1 on the padout stage.
        assert_eq!(doc.matches("b1 ").count(), 3);
        assert_eq!(doc.matches("b10 ").count(), 2);
        // Flow-off rendering is unchanged.
        assert!(!trace_to_vcd(&t, None, "m").contains("$var wire 16"));
    }

    #[test]
    fn trace_bridge_on_an_empty_trace_is_just_a_header() {
        let doc = trace_to_vcd(&Trace::new(), None, "empty");
        assert!(doc.contains("$enddefinitions"));
        assert!(!doc.contains('#'));
    }
}
