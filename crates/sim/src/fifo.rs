//! Hardware FIFO model.
//!
//! PELS buffers trigger pulses in a per-link FIFO so that events arriving
//! while the execution unit is busy are not lost (paper Section III-1b).
//! This model has RTL-FIFO semantics: fixed capacity, full/empty flags and
//! occupancy watermarks, plus drop accounting for the `ablate_fifo`
//! experiment.

use crate::error::SimError;
use std::collections::VecDeque;

/// A fixed-capacity hardware FIFO.
///
/// ```
/// use pels_sim::Fifo;
/// let mut f: Fifo<u8> = Fifo::new(2);
/// f.push(1)?;
/// f.push(2)?;
/// assert!(f.is_full());
/// assert!(f.push(3).is_err());
/// assert_eq!(f.pop(), Some(1));
/// # Ok::<(), pels_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    pushes: u64,
    drops: u64,
    max_occupancy: usize,
}

impl<T> Fifo<T> {
    /// Creates a FIFO with the given capacity.
    ///
    /// A capacity of zero is allowed and models an *unbuffered* design:
    /// every push is dropped. The FIFO-depth ablation uses this.
    pub fn new(capacity: usize) -> Self {
        Fifo {
            items: VecDeque::with_capacity(capacity),
            capacity,
            pushes: 0,
            drops: 0,
            max_occupancy: 0,
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of buffered items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the FIFO holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the FIFO is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Pushes an item.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::FifoFull`] (and counts a drop) when full.
    pub fn push(&mut self, item: T) -> Result<(), SimError> {
        self.pushes += 1;
        if self.is_full() {
            self.drops += 1;
            return Err(SimError::FifoFull {
                capacity: self.capacity,
            });
        }
        self.items.push_back(item);
        self.max_occupancy = self.max_occupancy.max(self.items.len());
        Ok(())
    }

    /// Pushes an item, silently dropping it when full.
    ///
    /// Matches the behaviour of a hardware FIFO whose producer does not
    /// observe back-pressure — exactly the loss mode the FIFO ablation
    /// quantifies. Returns `true` if the item was accepted.
    pub fn push_lossy(&mut self, item: T) -> bool {
        self.push(item).is_ok()
    }

    /// Pops the oldest item, if any.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest item without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Empties the FIFO (reset). Statistics are preserved.
    pub fn flush(&mut self) {
        self.items.clear();
    }

    /// Total push attempts since construction.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Push attempts rejected because the FIFO was full.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// High-water mark of occupancy.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }
}

impl<T> Extend<T> for Fifo<T> {
    /// Pushes items until the FIFO fills; the remainder is dropped (and
    /// counted), matching [`Fifo::push_lossy`].
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            let _ = self.push(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_orders_items() {
        let mut f = Fifo::new(4);
        for i in 0..4 {
            f.push(i).unwrap();
        }
        assert_eq!(f.max_occupancy(), 4);
        for i in 0..4 {
            assert_eq!(f.pop(), Some(i));
        }
        assert!(f.pop().is_none());
    }

    #[test]
    fn full_fifo_rejects_and_counts_drops() {
        let mut f = Fifo::new(1);
        f.push('a').unwrap();
        assert!(matches!(
            f.push('b'),
            Err(SimError::FifoFull { capacity: 1 })
        ));
        assert!(!f.push_lossy('c'));
        assert_eq!(f.drops(), 2);
        assert_eq!(f.pushes(), 3);
        assert_eq!(f.front(), Some(&'a'));
    }

    #[test]
    fn zero_capacity_models_unbuffered_link() {
        let mut f = Fifo::new(0);
        assert!(f.is_full());
        assert!(!f.push_lossy(1u32));
        assert_eq!(f.drops(), 1);
        assert!(f.is_empty());
    }

    #[test]
    fn flush_preserves_statistics() {
        let mut f = Fifo::new(2);
        f.push(1).unwrap();
        f.flush();
        assert!(f.is_empty());
        assert_eq!(f.pushes(), 1);
        assert_eq!(f.max_occupancy(), 1);
    }

    #[test]
    fn extend_is_lossy_at_capacity() {
        let mut f = Fifo::new(2);
        f.extend(0..5);
        assert_eq!(f.len(), 2);
        assert_eq!(f.drops(), 3);
    }
}
