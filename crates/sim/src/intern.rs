//! Component-name interning.
//!
//! Every model in the workspace identifies itself with a stable
//! hierarchical name (`"ibex"`, `"pels.link0"`, `"sram"`). The hot paths
//! — [`crate::ActivitySet::record`] and [`crate::Trace::record`] — run
//! once or more per simulated cycle, and keying them by `String` costs an
//! allocation per call. Interning maps each distinct name to a small
//! dense [`ComponentId`] exactly once, so the per-cycle paths work with
//! plain integer indices and `&'static str` lookups.
//!
//! The registry is global and append-only: names are never removed, and
//! the backing storage is leaked (`Box::leak`), which is bounded by the
//! number of *distinct* component names a process ever creates — a few
//! dozen in practice.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// A dense handle to an interned component name.
///
/// Identical strings intern to identical ids process-wide, so a
/// `ComponentId` can be compared, hashed, and used as an array index
/// without touching the string it names.
///
/// ```
/// use pels_sim::ComponentId;
/// let a = ComponentId::intern("gpio");
/// let b = ComponentId::intern("gpio");
/// assert_eq!(a, b);
/// assert_eq!(a.name(), "gpio");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(u16);

struct Registry {
    by_name: HashMap<&'static str, u16>,
    names: Vec<&'static str>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

impl ComponentId {
    /// Interns `name`, returning its stable id. The first call for a
    /// given name allocates (and leaks) one copy of the string; every
    /// subsequent call is a hash lookup.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX` distinct names are interned — far
    /// beyond any realistic component inventory.
    pub fn intern(name: &str) -> ComponentId {
        let mut reg = registry().lock().expect("intern registry poisoned");
        if let Some(&id) = reg.by_name.get(name) {
            return ComponentId(id);
        }
        let id = u16::try_from(reg.names.len()).expect("component registry overflow");
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        reg.names.push(leaked);
        reg.by_name.insert(leaked, id);
        ComponentId(id)
    }

    /// Looks up an already-interned name without interning it. Returns
    /// `None` when the name was never registered — useful for queries,
    /// where an unknown component simply has no recorded activity.
    pub fn lookup(name: &str) -> Option<ComponentId> {
        let reg = registry().lock().expect("intern registry poisoned");
        reg.by_name.get(name).map(|&id| ComponentId(id))
    }

    /// The interned name.
    pub fn name(self) -> &'static str {
        let reg = registry().lock().expect("intern registry poisoned");
        reg.names[usize::from(self.0)]
    }

    /// The dense index backing this id (for direct counter indexing).
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Rebuilds an id from a dense index already known to be registered
    /// (counter rows only exist for recorded — hence interned — ids).
    pub(crate) fn from_index(i: usize) -> ComponentId {
        ComponentId(u16::try_from(i).expect("component index out of range"))
    }
}

impl std::fmt::Display for ComponentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = ComponentId::intern("intern-test-a");
        let b = ComponentId::intern("intern-test-a");
        assert_eq!(a, b);
        assert_eq!(a.name(), "intern-test-a");
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let a = ComponentId::intern("intern-test-x");
        let b = ComponentId::intern("intern-test-y");
        assert_ne!(a, b);
        assert_ne!(a.index(), b.index());
    }

    #[test]
    fn lookup_finds_only_interned_names() {
        let a = ComponentId::intern("intern-test-lookup");
        assert_eq!(ComponentId::lookup("intern-test-lookup"), Some(a));
        assert_eq!(ComponentId::lookup("intern-test-never-registered"), None);
    }

    #[test]
    fn display_renders_the_name() {
        let a = ComponentId::intern("intern-test-display");
        assert_eq!(a.to_string(), "intern-test-display");
    }
}
