//! Simulation time and frequency types.
//!
//! Time is kept in integer **picoseconds** so that the clock periods used in
//! the paper's evaluation (27 MHz, 55 MHz, 250 MHz) can be represented
//! without rounding drift over the simulated windows (micro- to
//! milliseconds).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, in picoseconds since simulation start.
///
/// `SimTime` is a transparent newtype over `u64` ([C-NEWTYPE]); arithmetic
/// that would overflow panics in debug builds like ordinary integer
/// arithmetic.
///
/// ```
/// use pels_sim::SimTime;
/// let t = SimTime::from_ns(500); // the paper's 500 ns latency budget
/// assert_eq!(t.as_ps(), 500_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero — the simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Returns the time in picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the time in nanoseconds (truncating).
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the time in fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the time in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction: `self - other`, clamped at zero.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, other: SimTime) -> Option<SimTime> {
        self.0.checked_add(other.0).map(SimTime)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self` (like integer underflow).
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3} us", self.as_us_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3} ns", self.0 as f64 / 1e3)
        } else {
            write!(f, "{} ps", self.0)
        }
    }
}

/// A clock frequency.
///
/// Stored as the exact period in picoseconds, because simulation arithmetic
/// is period-based. Construct from MHz (the unit used throughout the paper)
/// or directly from a period.
///
/// ```
/// use pels_sim::Frequency;
/// let f = Frequency::from_mhz(250.0); // synthesis target of Fig. 6
/// assert_eq!(f.period_ps(), 4_000);
/// assert!((f.as_mhz() - 250.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frequency {
    period_ps: u64,
}

impl Frequency {
    /// Creates a frequency from a value in megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not finite and positive.
    pub fn from_mhz(mhz: f64) -> Self {
        assert!(
            mhz.is_finite() && mhz > 0.0,
            "frequency must be finite and positive, got {mhz} MHz"
        );
        let period = (1e6 / mhz).round() as u64;
        assert!(period > 0, "frequency {mhz} MHz is too high to represent");
        Frequency { period_ps: period }
    }

    /// Creates a frequency from its exact clock period in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `period_ps` is zero.
    pub fn from_period_ps(period_ps: u64) -> Self {
        assert!(period_ps > 0, "clock period must be non-zero");
        Frequency { period_ps }
    }

    /// The exact clock period in picoseconds.
    pub const fn period_ps(&self) -> u64 {
        self.period_ps
    }

    /// The clock period as a [`SimTime`] duration.
    pub const fn period(&self) -> SimTime {
        SimTime::from_ps(self.period_ps)
    }

    /// The frequency in megahertz.
    pub fn as_mhz(&self) -> f64 {
        1e6 / self.period_ps as f64
    }

    /// The frequency in hertz.
    pub fn as_hz(&self) -> f64 {
        1e12 / self.period_ps as f64
    }

    /// Number of whole cycles of this clock that fit in `window`.
    pub fn cycles_in(&self, window: SimTime) -> u64 {
        window.as_ps() / self.period_ps
    }

    /// Duration of `cycles` cycles of this clock.
    pub fn cycles(&self, cycles: u64) -> SimTime {
        SimTime::from_ps(self.period_ps * cycles)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} MHz", self.as_mhz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_constructors_agree() {
        assert_eq!(SimTime::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimTime::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimTime::ZERO.as_ps(), 0);
    }

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(4);
        assert_eq!((a + b).as_ns(), 14);
        assert_eq!((a - b).as_ns(), 6);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c.as_ns(), 14);
    }

    #[test]
    fn simtime_checked_add_detects_overflow() {
        let max = SimTime::from_ps(u64::MAX);
        assert_eq!(max.checked_add(SimTime::from_ps(1)), None);
        assert_eq!(
            SimTime::from_ps(1).checked_add(SimTime::from_ps(2)),
            Some(SimTime::from_ps(3))
        );
    }

    #[test]
    fn simtime_display_scales_units() {
        assert_eq!(format!("{}", SimTime::from_ps(12)), "12 ps");
        assert_eq!(format!("{}", SimTime::from_ns(5)), "5.000 ns");
        assert_eq!(format!("{}", SimTime::from_us(3)), "3.000 us");
    }

    #[test]
    fn frequency_paper_operating_points() {
        // The three frequencies used in the paper's evaluation.
        assert_eq!(Frequency::from_mhz(250.0).period_ps(), 4_000);
        assert_eq!(Frequency::from_mhz(55.0).period_ps(), 18_182);
        assert_eq!(Frequency::from_mhz(27.0).period_ps(), 37_037);
    }

    #[test]
    fn frequency_cycles_roundtrip() {
        let f = Frequency::from_mhz(100.0);
        assert_eq!(f.cycles_in(SimTime::from_us(1)), 100);
        assert_eq!(f.cycles(7), SimTime::from_ps(70_000));
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn frequency_rejects_zero() {
        let _ = Frequency::from_mhz(0.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn frequency_rejects_zero_period() {
        let _ = Frequency::from_period_ps(0);
    }
}
