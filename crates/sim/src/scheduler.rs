//! Multi-clock edge scheduler.
//!
//! The scheduler merges the rising edges of every registered [`Clock`] into
//! one deterministic stream. Ties (edges at the same picosecond) are broken
//! by registration order, so a simulation is reproducible bit-for-bit.

use crate::clock::{Clock, ClockId};
use crate::error::SimError;
use crate::time::SimTime;

/// One rising edge delivered by [`Scheduler::advance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Which clock produced this edge.
    pub clock: ClockId,
    /// Absolute time of the edge.
    pub time: SimTime,
    /// 0-based index of this edge on its clock.
    pub cycle: u64,
}

/// Deterministic multi-clock scheduler.
///
/// ```
/// use pels_sim::{Clock, Frequency, Scheduler};
/// let mut s = Scheduler::new();
/// let fast = s.add_clock(Clock::new("fast", Frequency::from_mhz(100.0)));
/// let slow = s.add_clock(Clock::new("slow", Frequency::from_mhz(50.0)));
/// let e0 = s.advance().unwrap(); // both edge at t=0; fast registered first
/// let e1 = s.advance().unwrap();
/// assert_eq!((e0.clock, e1.clock), (fast, slow));
/// assert_eq!(e0.time, e1.time);
/// ```
#[derive(Debug, Default)]
pub struct Scheduler {
    clocks: Vec<Clock>,
    /// Next edge index per clock.
    next_edge: Vec<u64>,
    now: SimTime,
}

impl Scheduler {
    /// Creates an empty scheduler at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a clock and returns its id.
    pub fn add_clock(&mut self, clock: Clock) -> ClockId {
        self.clocks.push(clock);
        self.next_edge.push(0);
        ClockId(self.clocks.len() - 1)
    }

    /// The clock registered under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this scheduler.
    pub fn clock(&self, id: ClockId) -> &Clock {
        &self.clocks[id.0]
    }

    /// Number of registered clocks.
    pub fn clock_count(&self) -> usize {
        self.clocks.len()
    }

    /// Current simulation time: the time of the most recently delivered
    /// edge, or zero before the first call to [`Scheduler::advance`].
    pub fn time(&self) -> SimTime {
        self.now
    }

    /// Number of edges already delivered for `id`.
    pub fn cycles(&self, id: ClockId) -> u64 {
        self.next_edge[id.0]
    }

    /// Time of the next pending edge without consuming it.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoClocks`] if no clock is registered.
    pub fn peek(&self) -> Result<Edge, SimError> {
        let mut best: Option<Edge> = None;
        for (i, clock) in self.clocks.iter().enumerate() {
            let n = self.next_edge[i];
            let t = clock.edge_time(n);
            let cand = Edge {
                clock: ClockId(i),
                time: t,
                cycle: n,
            };
            // Strict `<` keeps registration order on ties.
            if best.is_none_or(|b| cand.time < b.time) {
                best = Some(cand);
            }
        }
        best.ok_or(SimError::NoClocks)
    }

    /// Delivers the next rising edge, advancing simulation time.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoClocks`] if no clock is registered.
    pub fn advance(&mut self) -> Result<Edge, SimError> {
        let edge = self.peek()?;
        self.next_edge[edge.clock.0] += 1;
        self.now = edge.time;
        Ok(edge)
    }

    /// Runs `f` on every edge until (and excluding) `until`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoClocks`] if no clock is registered.
    pub fn run_until(
        &mut self,
        until: SimTime,
        mut f: impl FnMut(Edge),
    ) -> Result<(), SimError> {
        loop {
            let next = self.peek()?;
            if next.time >= until {
                self.now = until;
                return Ok(());
            }
            let edge = self.advance()?;
            f(edge);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Frequency;

    fn sched_2_clocks() -> (Scheduler, ClockId, ClockId) {
        let mut s = Scheduler::new();
        let a = s.add_clock(Clock::new("a", Frequency::from_mhz(100.0))); // 10 ns
        let b = s.add_clock(Clock::new("b", Frequency::from_mhz(40.0))); // 25 ns
        (s, a, b)
    }

    #[test]
    fn edges_are_time_ordered() {
        let (mut s, _, _) = sched_2_clocks();
        let mut last = SimTime::ZERO;
        for _ in 0..50 {
            let e = s.advance().unwrap();
            assert!(e.time >= last);
            last = e.time;
        }
    }

    #[test]
    fn tie_break_is_registration_order() {
        let (mut s, a, b) = sched_2_clocks();
        // t=0: both clocks edge; a first.
        assert_eq!(s.advance().unwrap().clock, a);
        assert_eq!(s.advance().unwrap().clock, b);
    }

    #[test]
    fn cycle_counts_match_frequency_ratio() {
        let (mut s, a, b) = sched_2_clocks();
        s.run_until(SimTime::from_us(1), |_| {}).unwrap();
        assert_eq!(s.cycles(a), 100);
        assert_eq!(s.cycles(b), 40);
        assert_eq!(s.time(), SimTime::from_us(1));
    }

    #[test]
    fn empty_scheduler_errors() {
        let mut s = Scheduler::new();
        assert!(matches!(s.advance(), Err(SimError::NoClocks)));
        assert!(matches!(s.peek(), Err(SimError::NoClocks)));
    }

    #[test]
    fn run_until_excludes_boundary_edge() {
        let (mut s, a, _) = sched_2_clocks();
        let mut edges = 0;
        s.run_until(SimTime::from_ns(10), |_| edges += 1).unwrap();
        // Only the two t=0 edges; the t=10ns edge of `a` is not delivered.
        assert_eq!(edges, 2);
        assert_eq!(s.cycles(a), 1);
    }

    #[test]
    fn peek_does_not_advance() {
        let (mut s, _, _) = sched_2_clocks();
        let p = s.peek().unwrap();
        let e = s.advance().unwrap();
        assert_eq!(p, e);
    }
}
