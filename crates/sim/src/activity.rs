//! Switching-activity accounting.
//!
//! The paper estimates power with Synopsys PrimeTime: switching activity
//! from RTL simulation weighted by extracted capacitances. Our substitute
//! keeps the first half exact — every model records its per-cycle activity
//! here — and the `pels-power` crate supplies literature-calibrated
//! per-event energies for the second half.

use std::collections::BTreeMap;
use std::fmt;

/// A class of energy-consuming activity.
///
/// Each variant maps to a per-event energy in the power model's calibration
/// table; the split follows the breakdown PrimeTime reports (clock tree,
/// registers, memories, bus, logic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum ActivityKind {
    /// A cycle in which the component's clock toggled (clock-tree load).
    ClockCycle,
    /// A cycle in which the component did useful work (datapath active).
    ActiveCycle,
    /// Architectural register file read port access.
    RegRead,
    /// Architectural register file write port access.
    RegWrite,
    /// SRAM macro read access (paper: the power-hungry path, Section I).
    SramRead,
    /// SRAM macro write access.
    SramWrite,
    /// Standard-cell-memory read (PELS private microcode fetch).
    ScmRead,
    /// Standard-cell-memory write (microcode load).
    ScmWrite,
    /// A transfer completing on the system interconnect.
    BusTransfer,
    /// A cycle spent arbitrating / stalled on the interconnect.
    BusStall,
    /// One instruction retired (CPU) or one command executed (PELS).
    InstrRetired,
    /// One instruction fetch issued to memory.
    InstrFetch,
    /// A single-wire event pulse driven or consumed.
    EventPulse,
    /// Interrupt entry/exit sequencing work.
    IrqOverhead,
}

impl ActivityKind {
    /// All kinds, for iteration in reports.
    pub const ALL: [ActivityKind; 14] = [
        ActivityKind::ClockCycle,
        ActivityKind::ActiveCycle,
        ActivityKind::RegRead,
        ActivityKind::RegWrite,
        ActivityKind::SramRead,
        ActivityKind::SramWrite,
        ActivityKind::ScmRead,
        ActivityKind::ScmWrite,
        ActivityKind::BusTransfer,
        ActivityKind::BusStall,
        ActivityKind::InstrRetired,
        ActivityKind::InstrFetch,
        ActivityKind::EventPulse,
        ActivityKind::IrqOverhead,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ActivityKind::ClockCycle => "clock_cycle",
            ActivityKind::ActiveCycle => "active_cycle",
            ActivityKind::RegRead => "reg_read",
            ActivityKind::RegWrite => "reg_write",
            ActivityKind::SramRead => "sram_read",
            ActivityKind::SramWrite => "sram_write",
            ActivityKind::ScmRead => "scm_read",
            ActivityKind::ScmWrite => "scm_write",
            ActivityKind::BusTransfer => "bus_transfer",
            ActivityKind::BusStall => "bus_stall",
            ActivityKind::InstrRetired => "instr_retired",
            ActivityKind::InstrFetch => "instr_fetch",
            ActivityKind::EventPulse => "event_pulse",
            ActivityKind::IrqOverhead => "irq_overhead",
        }
    }
}

impl fmt::Display for ActivityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-component, per-kind activity counters.
///
/// Keys are `(component, kind)`; components are identified by stable string
/// names (e.g. `"ibex"`, `"pels.link0"`, `"sram"`). A `BTreeMap` keeps
/// iteration deterministic.
///
/// ```
/// use pels_sim::{ActivityKind, ActivitySet};
/// let mut a = ActivitySet::new();
/// a.record("sram", ActivityKind::SramRead, 3);
/// a.record("sram", ActivityKind::SramRead, 1);
/// assert_eq!(a.count("sram", ActivityKind::SramRead), 4);
/// assert_eq!(a.component_total("sram"), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ActivitySet {
    counts: BTreeMap<(String, ActivityKind), u64>,
}

impl ActivitySet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` occurrences of `kind` for `component`.
    pub fn record(&mut self, component: &str, kind: ActivityKind, n: u64) {
        if n == 0 {
            return;
        }
        *self
            .counts
            .entry((component.to_owned(), kind))
            .or_insert(0) += n;
    }

    /// Count of `kind` recorded for `component`.
    pub fn count(&self, component: &str, kind: ActivityKind) -> u64 {
        self.counts
            .get(&(component.to_owned(), kind))
            .copied()
            .unwrap_or(0)
    }

    /// Sum over all kinds for `component`.
    pub fn component_total(&self, component: &str) -> u64 {
        self.counts
            .iter()
            .filter(|((c, _), _)| c == component)
            .map(|(_, &n)| n)
            .sum()
    }

    /// Sum of `kind` across all components.
    pub fn kind_total(&self, kind: ActivityKind) -> u64 {
        self.counts
            .iter()
            .filter(|((_, k), _)| *k == kind)
            .map(|(_, &n)| n)
            .sum()
    }

    /// Sorted list of component names present in the set.
    pub fn components(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.counts.keys().map(|(c, _)| c.as_str()).collect();
        names.dedup();
        names
    }

    /// Iterates over `((component, kind), count)` in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, ActivityKind, u64)> {
        self.counts.iter().map(|((c, k), &n)| (c.as_str(), *k, n))
    }

    /// Merges another set into this one (counts add).
    pub fn merge(&mut self, other: &ActivitySet) {
        for ((c, k), &n) in &other.counts {
            *self.counts.entry((c.clone(), *k)).or_insert(0) += n;
        }
    }

    /// Returns the difference `self - baseline` (saturating at zero), used
    /// to isolate the activity of one measurement window.
    pub fn delta_from(&self, baseline: &ActivitySet) -> ActivitySet {
        let mut out = ActivitySet::new();
        for ((c, k), &n) in &self.counts {
            let base = baseline.counts.get(&(c.clone(), *k)).copied().unwrap_or(0);
            let d = n.saturating_sub(base);
            if d > 0 {
                out.counts.insert((c.clone(), *k), d);
            }
        }
        out
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

impl fmt::Display for ActivitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "activity:")?;
        for (c, k, n) in self.iter() {
            writeln!(f, "  {c:<16} {k:<14} {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut a = ActivitySet::new();
        a.record("ibex", ActivityKind::InstrRetired, 10);
        a.record("ibex", ActivityKind::SramRead, 12);
        a.record("pels", ActivityKind::ScmRead, 4);
        assert_eq!(a.count("ibex", ActivityKind::InstrRetired), 10);
        assert_eq!(a.count("ibex", ActivityKind::ScmRead), 0);
        assert_eq!(a.component_total("ibex"), 22);
        assert_eq!(a.kind_total(ActivityKind::ScmRead), 4);
        assert_eq!(a.components(), vec!["ibex", "pels"]);
    }

    #[test]
    fn zero_records_are_ignored() {
        let mut a = ActivitySet::new();
        a.record("x", ActivityKind::RegRead, 0);
        assert!(a.is_empty());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ActivitySet::new();
        a.record("x", ActivityKind::RegRead, 1);
        let mut b = ActivitySet::new();
        b.record("x", ActivityKind::RegRead, 2);
        b.record("y", ActivityKind::RegWrite, 3);
        a.merge(&b);
        assert_eq!(a.count("x", ActivityKind::RegRead), 3);
        assert_eq!(a.count("y", ActivityKind::RegWrite), 3);
    }

    #[test]
    fn delta_isolates_window() {
        let mut base = ActivitySet::new();
        base.record("x", ActivityKind::BusTransfer, 5);
        let mut later = base.clone();
        later.record("x", ActivityKind::BusTransfer, 2);
        later.record("y", ActivityKind::EventPulse, 1);
        let d = later.delta_from(&base);
        assert_eq!(d.count("x", ActivityKind::BusTransfer), 2);
        assert_eq!(d.count("y", ActivityKind::EventPulse), 1);
    }

    #[test]
    fn display_lists_all_entries() {
        let mut a = ActivitySet::new();
        a.record("x", ActivityKind::ClockCycle, 7);
        let s = a.to_string();
        assert!(s.contains("clock_cycle"));
        assert!(s.contains('7'));
    }

    #[test]
    fn all_kinds_have_distinct_labels() {
        let mut labels: Vec<_> = ActivityKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ActivityKind::ALL.len());
    }
}
