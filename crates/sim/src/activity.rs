//! Switching-activity accounting.
//!
//! The paper estimates power with Synopsys PrimeTime: switching activity
//! from RTL simulation weighted by extracted capacitances. Our substitute
//! keeps the first half exact — every model records its per-cycle activity
//! here — and the `pels-power` crate supplies literature-calibrated
//! per-event energies for the second half.
//!
//! Counters are stored densely: one `[u64; ActivityKind::COUNT]` row per
//! interned [`ComponentId`], so the per-cycle [`ActivitySet::record`] is a
//! bounds-checked array add with no allocation and no string hashing. The
//! string-keyed query API survives as a thin lookup layer over the
//! interning registry.

use crate::intern::ComponentId;
use std::fmt;

/// A class of energy-consuming activity.
///
/// Each variant maps to a per-event energy in the power model's calibration
/// table; the split follows the breakdown PrimeTime reports (clock tree,
/// registers, memories, bus, logic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum ActivityKind {
    /// A cycle in which the component's clock toggled (clock-tree load).
    ClockCycle,
    /// A cycle in which the component did useful work (datapath active).
    ActiveCycle,
    /// Architectural register file read port access.
    RegRead,
    /// Architectural register file write port access.
    RegWrite,
    /// SRAM macro read access (paper: the power-hungry path, Section I).
    SramRead,
    /// SRAM macro write access.
    SramWrite,
    /// Standard-cell-memory read (PELS private microcode fetch).
    ScmRead,
    /// Standard-cell-memory write (microcode load).
    ScmWrite,
    /// A transfer completing on the system interconnect.
    BusTransfer,
    /// A cycle spent arbitrating / stalled on the interconnect.
    BusStall,
    /// One instruction retired (CPU) or one command executed (PELS).
    InstrRetired,
    /// One instruction fetch issued to memory.
    InstrFetch,
    /// A single-wire event pulse driven or consumed.
    EventPulse,
    /// Interrupt entry/exit sequencing work.
    IrqOverhead,
}

impl ActivityKind {
    /// Number of kinds (the width of a dense counter row).
    pub const COUNT: usize = 14;

    /// All kinds, for iteration in reports.
    pub const ALL: [ActivityKind; ActivityKind::COUNT] = [
        ActivityKind::ClockCycle,
        ActivityKind::ActiveCycle,
        ActivityKind::RegRead,
        ActivityKind::RegWrite,
        ActivityKind::SramRead,
        ActivityKind::SramWrite,
        ActivityKind::ScmRead,
        ActivityKind::ScmWrite,
        ActivityKind::BusTransfer,
        ActivityKind::BusStall,
        ActivityKind::InstrRetired,
        ActivityKind::InstrFetch,
        ActivityKind::EventPulse,
        ActivityKind::IrqOverhead,
    ];

    /// Dense index of this kind (declaration order, matching [`Self::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ActivityKind::ClockCycle => "clock_cycle",
            ActivityKind::ActiveCycle => "active_cycle",
            ActivityKind::RegRead => "reg_read",
            ActivityKind::RegWrite => "reg_write",
            ActivityKind::SramRead => "sram_read",
            ActivityKind::SramWrite => "sram_write",
            ActivityKind::ScmRead => "scm_read",
            ActivityKind::ScmWrite => "scm_write",
            ActivityKind::BusTransfer => "bus_transfer",
            ActivityKind::BusStall => "bus_stall",
            ActivityKind::InstrRetired => "instr_retired",
            ActivityKind::InstrFetch => "instr_fetch",
            ActivityKind::EventPulse => "event_pulse",
            ActivityKind::IrqOverhead => "irq_overhead",
        }
    }
}

impl fmt::Display for ActivityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

type Row = [u64; ActivityKind::COUNT];

const ZERO_ROW: Row = [0; ActivityKind::COUNT];

/// Per-component, per-kind activity counters.
///
/// Components are identified by interned [`ComponentId`]s; rows are stored
/// densely indexed by id, so [`ActivitySet::record`] is an array add with
/// zero heap allocation on the steady state (the row vector grows only the
/// first time a new component records). String-keyed queries resolve the
/// name through the interning registry without allocating.
///
/// ```
/// use pels_sim::{ActivityKind, ActivitySet, ComponentId};
/// let sram = ComponentId::intern("sram");
/// let mut a = ActivitySet::new();
/// a.record(sram, ActivityKind::SramRead, 3);
/// a.record(sram, ActivityKind::SramRead, 1);
/// assert_eq!(a.count("sram", ActivityKind::SramRead), 4);
/// assert_eq!(a.component_total("sram"), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ActivitySet {
    /// `counts[id][kind]`, indexed by `ComponentId::index()`.
    counts: Vec<Row>,
}

impl ActivitySet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` occurrences of `kind` for `component`.
    ///
    /// This is the simulation hot path: after the first record for a
    /// given component it performs no allocation and no hashing.
    #[inline]
    pub fn record(&mut self, component: ComponentId, kind: ActivityKind, n: u64) {
        if n == 0 {
            return;
        }
        let idx = component.index();
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, ZERO_ROW);
        }
        self.counts[idx][kind.index()] += n;
    }

    /// Adds `n` occurrences of `kind` for the component named `component`,
    /// interning the name if needed. Convenience layer for cold paths and
    /// tests; hot paths should hold a [`ComponentId`].
    pub fn record_named(&mut self, component: &str, kind: ActivityKind, n: u64) {
        self.record(ComponentId::intern(component), kind, n);
    }

    fn row(&self, component: ComponentId) -> &Row {
        self.counts.get(component.index()).unwrap_or(&ZERO_ROW)
    }

    /// Count of `kind` recorded for the component with id `component`.
    pub fn count_id(&self, component: ComponentId, kind: ActivityKind) -> u64 {
        self.row(component)[kind.index()]
    }

    /// Count of `kind` recorded for `component` (no allocation: resolves
    /// the name through the interning registry).
    pub fn count(&self, component: &str, kind: ActivityKind) -> u64 {
        ComponentId::lookup(component)
            .map(|id| self.count_id(id, kind))
            .unwrap_or(0)
    }

    /// Sum over all kinds for `component` (one row scan, no allocation).
    pub fn component_total(&self, component: &str) -> u64 {
        ComponentId::lookup(component)
            .map(|id| self.row(id).iter().sum())
            .unwrap_or(0)
    }

    /// Sum of `kind` across all components (one column scan).
    pub fn kind_total(&self, kind: ActivityKind) -> u64 {
        let k = kind.index();
        self.counts.iter().map(|row| row[k]).sum()
    }

    /// Ids of components with at least one non-zero counter, sorted by
    /// name for deterministic reporting.
    fn present(&self) -> Vec<ComponentId> {
        let mut ids: Vec<ComponentId> = (0..self.counts.len())
            .filter(|&i| self.counts[i] != ZERO_ROW)
            .map(ComponentId::from_index)
            .collect();
        ids.sort_by_key(|id| id.name());
        ids
    }

    /// Sorted list of component names present in the set.
    pub fn components(&self) -> Vec<&'static str> {
        self.present().into_iter().map(|id| id.name()).collect()
    }

    /// Iterates over `(component, kind, count)` for every non-zero
    /// counter, components sorted by name, kinds in declaration order —
    /// the same deterministic order the original `BTreeMap` keyed by
    /// `(String, ActivityKind)` produced.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, ActivityKind, u64)> + '_ {
        self.present().into_iter().flat_map(move |id| {
            let row = *self.row(id);
            ActivityKind::ALL.into_iter().filter_map(move |k| {
                let n = row[k.index()];
                (n > 0).then_some((id.name(), k, n))
            })
        })
    }

    /// Merges another set into this one (counts add).
    pub fn merge(&mut self, other: &ActivitySet) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), ZERO_ROW);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            for (m, t) in mine.iter_mut().zip(theirs) {
                *m += t;
            }
        }
    }

    /// Returns the difference `self - baseline` (saturating at zero), used
    /// to isolate the activity of one measurement window.
    pub fn delta_from(&self, baseline: &ActivitySet) -> ActivitySet {
        let mut out = ActivitySet {
            counts: self.counts.clone(),
        };
        for (mine, base) in out.counts.iter_mut().zip(&baseline.counts) {
            for (m, b) in mine.iter_mut().zip(base) {
                *m = m.saturating_sub(*b);
            }
        }
        out
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|row| *row == ZERO_ROW)
    }
}

/// Two sets are equal when every component has identical counters; rows of
/// zeros (including trailing rows one set has and the other lacks) do not
/// distinguish them.
impl PartialEq for ActivitySet {
    fn eq(&self, other: &Self) -> bool {
        let n = self.counts.len().max(other.counts.len());
        (0..n).all(|i| {
            self.counts.get(i).unwrap_or(&ZERO_ROW) == other.counts.get(i).unwrap_or(&ZERO_ROW)
        })
    }
}

impl Eq for ActivitySet {}

impl fmt::Display for ActivitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "activity:")?;
        for (c, k, n) in self.iter() {
            writeln!(f, "  {c:<16} {k:<14} {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let ibex = ComponentId::intern("act-ibex");
        let pels = ComponentId::intern("act-pels");
        let mut a = ActivitySet::new();
        a.record(ibex, ActivityKind::InstrRetired, 10);
        a.record(ibex, ActivityKind::SramRead, 12);
        a.record(pels, ActivityKind::ScmRead, 4);
        assert_eq!(a.count("act-ibex", ActivityKind::InstrRetired), 10);
        assert_eq!(a.count("act-ibex", ActivityKind::ScmRead), 0);
        assert_eq!(a.component_total("act-ibex"), 22);
        assert_eq!(a.kind_total(ActivityKind::ScmRead), 4);
        assert_eq!(a.components(), vec!["act-ibex", "act-pels"]);
    }

    #[test]
    fn unknown_component_reads_as_zero() {
        let a = ActivitySet::new();
        assert_eq!(a.count("never-interned-component", ActivityKind::RegRead), 0);
        assert_eq!(a.component_total("never-interned-component"), 0);
    }

    #[test]
    fn zero_records_are_ignored() {
        let x = ComponentId::intern("act-zero");
        let mut a = ActivitySet::new();
        a.record(x, ActivityKind::RegRead, 0);
        assert!(a.is_empty());
    }

    #[test]
    fn merge_adds_counts() {
        let x = ComponentId::intern("act-mx");
        let y = ComponentId::intern("act-my");
        let mut a = ActivitySet::new();
        a.record(x, ActivityKind::RegRead, 1);
        let mut b = ActivitySet::new();
        b.record(x, ActivityKind::RegRead, 2);
        b.record(y, ActivityKind::RegWrite, 3);
        a.merge(&b);
        assert_eq!(a.count_id(x, ActivityKind::RegRead), 3);
        assert_eq!(a.count_id(y, ActivityKind::RegWrite), 3);
    }

    #[test]
    fn delta_isolates_window() {
        let x = ComponentId::intern("act-dx");
        let y = ComponentId::intern("act-dy");
        let mut base = ActivitySet::new();
        base.record(x, ActivityKind::BusTransfer, 5);
        let mut later = base.clone();
        later.record(x, ActivityKind::BusTransfer, 2);
        later.record(y, ActivityKind::EventPulse, 1);
        let d = later.delta_from(&base);
        assert_eq!(d.count_id(x, ActivityKind::BusTransfer), 2);
        assert_eq!(d.count_id(y, ActivityKind::EventPulse), 1);
    }

    #[test]
    fn equality_ignores_zero_rows() {
        let x = ComponentId::intern("act-eqx");
        let pad = ComponentId::intern("act-eqpad");
        let mut a = ActivitySet::new();
        a.record(x, ActivityKind::ClockCycle, 1);
        let mut b = ActivitySet::new();
        b.record(pad, ActivityKind::ClockCycle, 1);
        b.record(pad, ActivityKind::ClockCycle, 0);
        let mut c = ActivitySet::new();
        c.record(x, ActivityKind::ClockCycle, 1);
        // b has a row a lacks; c matches a exactly.
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn iter_is_sorted_by_name_then_kind() {
        let b = ComponentId::intern("act-iter-b");
        let a_id = ComponentId::intern("act-iter-a");
        let mut s = ActivitySet::new();
        s.record(b, ActivityKind::RegWrite, 1);
        s.record(a_id, ActivityKind::RegRead, 2);
        s.record(a_id, ActivityKind::ClockCycle, 3);
        let got: Vec<_> = s.iter().collect();
        assert_eq!(
            got,
            vec![
                ("act-iter-a", ActivityKind::ClockCycle, 3),
                ("act-iter-a", ActivityKind::RegRead, 2),
                ("act-iter-b", ActivityKind::RegWrite, 1),
            ]
        );
    }

    #[test]
    fn display_lists_all_entries() {
        let mut a = ActivitySet::new();
        a.record_named("act-disp", ActivityKind::ClockCycle, 7);
        let s = a.to_string();
        assert!(s.contains("clock_cycle"));
        assert!(s.contains('7'));
    }

    #[test]
    fn all_kinds_have_distinct_labels() {
        let mut labels: Vec<_> = ActivityKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ActivityKind::ALL.len());
    }

    #[test]
    fn kind_index_matches_declaration_order() {
        for (i, k) in ActivityKind::ALL.into_iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }
}
