//! Windowed activity timelines.
//!
//! A whole-run [`ActivitySet`](crate::ActivitySet) collapses time: it can
//! say *how much* switching happened but not *when*. A timeline slices the
//! run into consecutive cycle windows, each carrying the activity delta
//! that accrued inside it, so the power model can be evaluated per window
//! and the paper's Figure 5 bars become curves.
//!
//! Windows record their **actual** `[start_cycle, end_cycle)` span rather
//! than assuming a fixed width: the SoC's quiescence fast path skips whole
//! spans in O(1), and a sampler that forced a window boundary inside a
//! skip would perturb the very scheduler statistics it is observing. A
//! long skip therefore shows up as one long, low-activity window — which
//! is exactly what a power timeline should say about a sleeping system.

use crate::activity::ActivitySet;

/// One sampling window: the half-open cycle span `[start_cycle,
/// end_cycle)` and the activity recorded inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivityWindow {
    /// First cycle of the window (inclusive).
    pub start_cycle: u64,
    /// First cycle after the window (exclusive); always `> start_cycle`.
    pub end_cycle: u64,
    /// Activity delta accrued inside the window.
    pub activity: ActivitySet,
}

impl ActivityWindow {
    /// Window width in cycles.
    pub fn cycles(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }
}

/// A run's worth of consecutive [`ActivityWindow`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ActivityTimeline {
    /// Nominal window width the sampler was configured with; actual
    /// windows may be longer when a quiescence skip crossed a boundary.
    pub window_cycles: u64,
    /// Windows in cycle order; spans are contiguous and non-overlapping.
    pub windows: Vec<ActivityWindow>,
}

impl ActivityTimeline {
    /// Creates an empty timeline with the given nominal window width.
    pub fn new(window_cycles: u64) -> Self {
        ActivityTimeline {
            window_cycles,
            windows: Vec::new(),
        }
    }

    /// Number of windows captured.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no windows were captured.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Per-window totals of one activity kind summed across all
    /// components — a ready-to-plot series.
    pub fn kind_series(&self, kind: crate::ActivityKind) -> Vec<u64> {
        self.windows
            .iter()
            .map(|w| w.activity.kind_total(kind))
            .collect()
    }

    /// Sum of every window's activity — the whole-timeline image.
    pub fn total_activity(&self) -> ActivitySet {
        let mut total = ActivitySet::new();
        for w in &self.windows {
            total.merge(&w.activity);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActivityKind, ComponentId};

    fn window(start: u64, end: u64, pulses: u64) -> ActivityWindow {
        let mut activity = ActivitySet::new();
        activity.record(
            ComponentId::intern("timeline-test-periph"),
            ActivityKind::EventPulse,
            pulses,
        );
        ActivityWindow {
            start_cycle: start,
            end_cycle: end,
            activity,
        }
    }

    #[test]
    fn series_and_totals() {
        let mut t = ActivityTimeline::new(100);
        t.windows.push(window(0, 100, 3));
        t.windows.push(window(100, 450, 1)); // a skip stretched this one
        t.windows.push(window(450, 550, 0));
        assert_eq!(t.len(), 3);
        assert_eq!(t.kind_series(ActivityKind::EventPulse), vec![3, 1, 0]);
        assert_eq!(t.windows[1].cycles(), 350);
        assert_eq!(t.total_activity().kind_total(ActivityKind::EventPulse), 4);
    }

    #[test]
    fn empty_timeline() {
        let t = ActivityTimeline::new(64);
        assert!(t.is_empty());
        assert_eq!(t.kind_series(ActivityKind::ClockCycle), Vec::<u64>::new());
        assert!(t.total_activity().is_empty());
    }
}
