//! Kernel error type.

use std::error::Error;
use std::fmt;

/// Errors reported by the simulation kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// [`crate::Scheduler::advance`] was called with no registered clock.
    NoClocks,
    /// A FIFO push was attempted while the FIFO was full.
    FifoFull {
        /// Capacity of the FIFO that rejected the push.
        capacity: usize,
    },
    /// A FIFO pop was attempted while the FIFO was empty.
    FifoEmpty,
    /// A VCD identifier was requested for an unregistered signal.
    UnknownSignal(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoClocks => write!(f, "no clocks registered with the scheduler"),
            SimError::FifoFull { capacity } => {
                write!(f, "fifo full (capacity {capacity})")
            }
            SimError::FifoEmpty => write!(f, "fifo empty"),
            SimError::UnknownSignal(name) => write!(f, "unknown signal `{name}`"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let msgs = [
            SimError::NoClocks.to_string(),
            SimError::FifoFull { capacity: 4 }.to_string(),
            SimError::FifoEmpty.to_string(),
            SimError::UnknownSignal("x".into()).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn is_error_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<SimError>();
    }
}
