//! # pels-sim — deterministic synchronous simulation kernel
//!
//! This crate is the foundation of the PELS reproduction (DATE 2024,
//! Ottaviano et al.). The paper evaluates PELS with cycle-accurate RTL
//! simulation; since no HDL simulator substrate exists in Rust, this kernel
//! provides the equivalent abstraction: a **picosecond time base**, multiple
//! **clock domains**, a deterministic **edge scheduler**, and the building
//! blocks synchronous hardware models need (hardware [`Fifo`]s, event
//! [`trace::Trace`]s, switching [`activity::ActivitySet`] counters, and a
//! [`vcd::VcdWriter`] for waveform inspection).
//!
//! ## Design
//!
//! Models built on this kernel follow a *two-phase* discipline borrowed from
//! synchronous RTL semantics:
//!
//! 1. **comb** — combinational evaluation: read current state and inputs,
//!    compute next state and outputs. Nothing observable changes.
//! 2. **commit** — the clock edge: next state becomes current state.
//!
//! The property-based tests in the workspace assert that simulation results
//! are independent of the order components are evaluated in, which is the
//! correctness criterion for this discipline.
//!
//! ## Example
//!
//! ```
//! use pels_sim::{Clock, Frequency, Scheduler};
//!
//! // PELS at 27 MHz and the Ibex domain at 55 MHz (the paper's iso-latency
//! // operating points, Section IV-B).
//! let mut sched = Scheduler::new();
//! let pels = sched.add_clock(Clock::new("pels", Frequency::from_mhz(27.0)));
//! let ibex = sched.add_clock(Clock::new("ibex", Frequency::from_mhz(55.0)));
//!
//! let mut pels_edges = 0u64;
//! let mut ibex_edges = 0u64;
//! while sched.time().as_ps() < 1_000_000 {
//!     // 1 us
//!     let edge = sched.advance().expect("clocks are registered");
//!     if edge.clock == pels {
//!         pels_edges += 1;
//!     } else if edge.clock == ibex {
//!         ibex_edges += 1;
//!     }
//! }
//! assert!(pels_edges >= 26 && pels_edges <= 28);
//! assert!(ibex_edges >= 54 && ibex_edges <= 56);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod clock;
pub mod component;
pub mod error;
pub mod events;
pub mod fifo;
pub mod flow;
pub mod intern;
pub mod rng;
pub mod scheduler;
pub mod time;
pub mod timeline;
pub mod trace;
pub mod vcd;

pub use activity::{ActivityKind, ActivitySet};
pub use clock::{Clock, ClockId};
pub use component::{Component, TickPhase};
pub use error::SimError;
pub use events::EventVector;
pub use fifo::Fifo;
pub use flow::{FlowHop, FlowId, FlowTrace, FLOW_STAGES};
pub use intern::ComponentId;
pub use rng::Rng;
pub use scheduler::{Edge, Scheduler};
pub use time::{Frequency, SimTime};
pub use timeline::{ActivityTimeline, ActivityWindow};
pub use trace::{Trace, TraceEntry};
