//! Clock domains.

use crate::time::{Frequency, SimTime};
use std::fmt;

/// Identifier of a clock registered with a [`crate::Scheduler`].
///
/// Obtained from [`crate::Scheduler::add_clock`]; cheap to copy and compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClockId(pub(crate) usize);

impl ClockId {
    /// The raw index of this clock in registration order.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ClockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "clk{}", self.0)
    }
}

/// A free-running clock: a name, a frequency and an optional phase offset.
///
/// Rising edges occur at `phase + n * period` for `n = 0, 1, 2, ...`.
///
/// ```
/// use pels_sim::{Clock, Frequency, SimTime};
/// let clk = Clock::new("soc", Frequency::from_mhz(55.0));
/// assert_eq!(clk.edge_time(0), SimTime::ZERO);
/// assert_eq!(clk.edge_time(2).as_ps(), 2 * clk.frequency().period_ps());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clock {
    name: String,
    frequency: Frequency,
    phase: SimTime,
}

impl Clock {
    /// Creates a clock with rising edges starting at time zero.
    pub fn new(name: impl Into<String>, frequency: Frequency) -> Self {
        Clock {
            name: name.into(),
            frequency,
            phase: SimTime::ZERO,
        }
    }

    /// Creates a clock whose first rising edge is delayed by `phase`.
    ///
    /// Useful to model skewed domains or to interleave same-frequency
    /// domains deterministically.
    pub fn with_phase(name: impl Into<String>, frequency: Frequency, phase: SimTime) -> Self {
        Clock {
            name: name.into(),
            frequency,
            phase,
        }
    }

    /// The clock's name (used in traces and VCD dumps).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The clock's frequency.
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// The phase offset of the first rising edge.
    pub fn phase(&self) -> SimTime {
        self.phase
    }

    /// Absolute time of the `n`-th rising edge (0-based).
    pub fn edge_time(&self, n: u64) -> SimTime {
        self.phase + SimTime::from_ps(self.frequency.period_ps() * n)
    }

    /// Number of complete cycles elapsed at time `t`.
    pub fn cycles_at(&self, t: SimTime) -> u64 {
        let t = t.saturating_sub(self.phase);
        t.as_ps() / self.frequency.period_ps()
    }
}

impl fmt::Display for Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.name, self.frequency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_times_are_periodic() {
        let clk = Clock::new("a", Frequency::from_mhz(100.0));
        for n in 0..10 {
            assert_eq!(clk.edge_time(n).as_ps(), n * 10_000);
        }
    }

    #[test]
    fn phase_shifts_edges() {
        let clk = Clock::with_phase("b", Frequency::from_mhz(100.0), SimTime::from_ps(2_500));
        assert_eq!(clk.edge_time(0).as_ps(), 2_500);
        assert_eq!(clk.edge_time(1).as_ps(), 12_500);
    }

    #[test]
    fn cycles_at_counts_whole_periods() {
        let clk = Clock::new("c", Frequency::from_mhz(100.0));
        assert_eq!(clk.cycles_at(SimTime::from_ps(9_999)), 0);
        assert_eq!(clk.cycles_at(SimTime::from_ps(10_000)), 1);
        assert_eq!(clk.cycles_at(SimTime::from_us(1)), 100);
    }

    #[test]
    fn display_formats() {
        let clk = Clock::new("soc", Frequency::from_mhz(55.0));
        let s = format!("{clk}");
        assert!(s.contains("soc"));
        assert!(s.contains("MHz"));
        assert_eq!(format!("{}", ClockId(3)), "clk3");
    }
}
