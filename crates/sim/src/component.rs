//! The two-phase synchronous component contract.
//!
//! Hardware models in this workspace are plain structs that follow the
//! comb/commit discipline described in the crate docs. This module captures
//! the contract as a trait so generic harnesses (order-independence property
//! tests, tracing drivers) can operate over heterogeneous components.

/// The phase of the current tick, for components that want a single entry
/// point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TickPhase {
    /// Combinational evaluation: read state, compute next state/outputs.
    Comb,
    /// Clock edge: next state becomes current state.
    Commit,
}

/// A clocked hardware model.
///
/// Implementors must keep the two phases separate:
///
/// * during [`Component::comb`] the externally observable outputs of the
///   component must not change;
/// * during [`Component::commit`] no inputs may be read — only previously
///   computed next-state may be installed.
///
/// This makes the simulation result independent of the order components are
/// evaluated in within one cycle, mirroring synchronous RTL semantics.
///
/// ```
/// use pels_sim::{Component, TickPhase};
///
/// /// A toggling flip-flop.
/// #[derive(Default)]
/// struct Toggle {
///     q: bool,
///     next_q: bool,
/// }
///
/// impl Component for Toggle {
///     fn name(&self) -> &str {
///         "toggle"
///     }
///     fn comb(&mut self) {
///         self.next_q = !self.q;
///     }
///     fn commit(&mut self) {
///         self.q = self.next_q;
///     }
/// }
///
/// let mut t = Toggle::default();
/// t.tick(TickPhase::Comb);
/// t.tick(TickPhase::Commit);
/// assert!(t.q);
/// ```
pub trait Component {
    /// A short, stable name for traces and diagnostics.
    fn name(&self) -> &str;

    /// Combinational phase: compute next state from current state.
    fn comb(&mut self);

    /// Clock edge: install the next state computed by [`Component::comb`].
    fn commit(&mut self);

    /// Dispatches to [`Component::comb`] or [`Component::commit`].
    fn tick(&mut self, phase: TickPhase) {
        match phase {
            TickPhase::Comb => self.comb(),
            TickPhase::Commit => self.commit(),
        }
    }
}

/// Runs one full cycle (comb then commit) over a slice of components.
///
/// All `comb` calls happen before any `commit`, so the result is independent
/// of the slice order for components honouring the contract.
pub fn step_cycle(components: &mut [&mut dyn Component]) {
    for c in components.iter_mut() {
        c.comb();
    }
    for c in components.iter_mut() {
        c.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        value: u32,
        next: u32,
    }

    impl Component for Counter {
        fn name(&self) -> &str {
            "counter"
        }
        fn comb(&mut self) {
            self.next = self.value + 1;
        }
        fn commit(&mut self) {
            self.value = self.next;
        }
    }

    #[test]
    fn step_cycle_advances_all() {
        let mut a = Counter::default();
        let mut b = Counter::default();
        step_cycle(&mut [&mut a, &mut b]);
        step_cycle(&mut [&mut b, &mut a]); // order must not matter
        assert_eq!(a.value, 2);
        assert_eq!(b.value, 2);
    }

    /// A pair of cross-coupled registers swapping values — the classic test
    /// that comb/commit actually samples pre-edge state.
    struct Swap {
        v: u32,
        next: u32,
        other: u32, // sampled input
    }

    impl Component for Swap {
        fn name(&self) -> &str {
            "swap"
        }
        fn comb(&mut self) {
            self.next = self.other;
        }
        fn commit(&mut self) {
            self.v = self.next;
        }
    }

    #[test]
    fn two_phase_swaps_without_ordering_artifacts() {
        let mut a = Swap { v: 1, next: 0, other: 2 };
        let mut b = Swap { v: 2, next: 0, other: 1 };
        // Wire inputs (in a real model the harness samples outputs between
        // cycles; here we do it by hand).
        step_cycle(&mut [&mut a, &mut b]);
        assert_eq!((a.v, b.v), (2, 1));
    }
}
