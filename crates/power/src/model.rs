//! The activity → power model.

use crate::calibration::Calibration;
use crate::units::{Energy, Power};
use pels_sim::{ActivityKind, ActivitySet, SimTime};
use std::collections::BTreeMap;
use std::fmt;

/// Power attributed to one component over the measurement window.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentPower {
    /// Component name (matches the activity-set names).
    pub name: String,
    /// Activity-driven (dynamic) power, including clock tree.
    pub dynamic: Power,
    /// Leakage share.
    pub leakage: Power,
}

impl ComponentPower {
    /// Dynamic + leakage.
    pub fn total(&self) -> Power {
        self.dynamic + self.leakage
    }
}

/// The result of evaluating a measurement window.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    window: SimTime,
    components: Vec<ComponentPower>,
    constant: Power,
    kind_energy: BTreeMap<ActivityKind, Energy>,
}

impl PowerReport {
    /// The measurement window.
    pub fn window(&self) -> SimTime {
        self.window
    }

    /// Per-component shares, sorted descending by total power.
    pub fn components(&self) -> &[ComponentPower] {
        &self.components
    }

    /// The frequency-independent analog floor (FLLs, bias).
    pub fn constant(&self) -> Power {
        self.constant
    }

    /// A component's share, if present.
    pub fn component(&self, name: &str) -> Option<&ComponentPower> {
        self.components.iter().find(|c| c.name == name)
    }

    /// Total SoC power: components + analog floor.
    pub fn total(&self) -> Power {
        self.components.iter().map(ComponentPower::total).sum::<Power>() + self.constant
    }

    /// Power attributable to the memory system: SRAM and SCM access
    /// energy plus the SRAM component's clock/leakage share — the
    /// quantity behind the paper's 3.7×/4.3× comparison.
    pub fn memory_system(&self) -> Power {
        let access: Energy = [
            ActivityKind::SramRead,
            ActivityKind::SramWrite,
            ActivityKind::ScmRead,
            ActivityKind::ScmWrite,
        ]
        .iter()
        .filter_map(|k| self.kind_energy.get(k).copied())
        .sum();
        let sram_static = self
            .component("sram")
            .map(|c| c.leakage + self.clockless_dynamic_of("sram"))
            .unwrap_or(Power::ZERO);
        access.over(self.window) + sram_static
    }

    /// The clock-tree part of a component's dynamic power.
    fn clockless_dynamic_of(&self, name: &str) -> Power {
        // For the SRAM, dynamic = access energy + clock; access energy is
        // already reported via kind_energy, so return dynamic minus the
        // access part to avoid double counting.
        let Some(c) = self.component(name) else {
            return Power::ZERO;
        };
        let access: Energy = [ActivityKind::SramRead, ActivityKind::SramWrite]
            .iter()
            .filter_map(|k| self.kind_energy.get(k).copied())
            .sum();
        let access_p = access.over(self.window);
        if c.dynamic.as_uw() > access_p.as_uw() {
            Power::from_uw(c.dynamic.as_uw() - access_p.as_uw())
        } else {
            Power::ZERO
        }
    }

    /// Energy charged to an activity kind over the window.
    pub fn kind_energy(&self, kind: ActivityKind) -> Energy {
        self.kind_energy.get(&kind).copied().unwrap_or(Energy::ZERO)
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "power over {} (total {}):", self.window, self.total())?;
        for c in &self.components {
            writeln!(
                f,
                "  {:<18} dyn {:>12}  leak {:>12}",
                c.name,
                c.dynamic.to_string(),
                c.leakage.to_string()
            )?;
        }
        writeln!(f, "  {:<18} {:>12}", "analog floor", self.constant.to_string())
    }
}

/// The model: a calibration plus the SoC's component inventory (areas in
/// kGE drive clock-tree energy and leakage shares).
#[derive(Debug, Clone)]
pub struct PowerModel {
    calibration: Calibration,
    areas: BTreeMap<String, f64>,
}

impl PowerModel {
    /// Creates a model with the given calibration and no components.
    pub fn new(calibration: Calibration) -> Self {
        PowerModel {
            calibration,
            areas: BTreeMap::new(),
        }
    }

    /// The calibration in use.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// Registers a component and its logic area. Components appearing in
    /// the activity set without registration contribute event energy but
    /// no clock/leakage share.
    pub fn add_component(&mut self, name: impl Into<String>, area_kge: f64) -> &mut Self {
        self.areas.insert(name.into(), area_kge);
        self
    }

    /// Evaluates a measurement window.
    ///
    /// `activity` must contain a [`ActivityKind::ClockCycle`] entry per
    /// clocked component (the SoC harness records one per cycle the
    /// component's clock was running — WFI-gated components record
    /// none).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn report(&self, activity: &ActivitySet, window: SimTime) -> PowerReport {
        assert!(window.as_ps() > 0, "window must be non-zero");
        let mut per_component: BTreeMap<String, Energy> = BTreeMap::new();
        let mut kind_energy: BTreeMap<ActivityKind, Energy> = BTreeMap::new();

        for (component, kind, n) in activity.iter() {
            let e = if kind == ActivityKind::ClockCycle {
                let area = self.areas.get(component).copied().unwrap_or(0.0);
                self.calibration.clock_energy(area, n)
            } else {
                self.calibration.event_energy(kind, n)
            };
            *per_component
                .entry(component.to_owned())
                .or_insert(Energy::ZERO) += e;
            *kind_energy.entry(kind).or_insert(Energy::ZERO) += e;
        }

        // Every registered component leaks whether active or not.
        let mut components: Vec<ComponentPower> = Vec::new();
        let mut named: std::collections::BTreeSet<String> =
            per_component.keys().cloned().collect();
        named.extend(self.areas.keys().cloned());
        for name in named {
            let dynamic = per_component
                .get(&name)
                .copied()
                .unwrap_or(Energy::ZERO)
                .over(window);
            let mut leakage = self
                .calibration
                .logic_leakage(self.areas.get(&name).copied().unwrap_or(0.0));
            if name == "sram" {
                leakage += Power::from_uw(self.calibration.sram_leak_uw);
            }
            components.push(ComponentPower {
                name,
                dynamic,
                leakage,
            });
        }
        components.sort_by(|a, b| {
            b.total()
                .as_uw()
                .partial_cmp(&a.total().as_uw())
                .expect("power values are finite")
        });

        PowerReport {
            window,
            components,
            constant: Power::from_uw(self.calibration.p_const_uw),
            kind_energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        let mut m = PowerModel::new(Calibration::default());
        m.add_component("ibex", 27.0)
            .add_component("sram", 200.0)
            .add_component("pels.link0", 5.0);
        m
    }

    fn window() -> SimTime {
        SimTime::from_us(10)
    }

    #[test]
    fn empty_activity_still_leaks() {
        let m = model();
        let r = m.report(&ActivitySet::new(), window());
        let total = r.total().as_uw();
        let floor = m.calibration().p_const_uw
            + m.calibration().sram_leak_uw
            + m.calibration().leak_uw_per_kge * (27.0 + 200.0 + 5.0);
        assert!((total - floor).abs() < 1e-9);
    }

    #[test]
    fn clock_cycles_scale_with_area() {
        let m = model();
        let mut small = ActivitySet::new();
        small.record_named("pels.link0", ActivityKind::ClockCycle, 1000);
        let mut big = ActivitySet::new();
        big.record_named("ibex", ActivityKind::ClockCycle, 1000);
        let rs = m.report(&small, window());
        let rb = m.report(&big, window());
        let ds = rs.component("pels.link0").unwrap().dynamic.as_uw();
        let db = rb.component("ibex").unwrap().dynamic.as_uw();
        assert!((db / ds - 27.0 / 5.0).abs() < 1e-6);
    }

    #[test]
    fn unregistered_component_contributes_event_energy_only() {
        let m = model();
        let mut a = ActivitySet::new();
        a.record_named("mystery", ActivityKind::BusTransfer, 100);
        a.record_named("mystery", ActivityKind::ClockCycle, 1000);
        let r = m.report(&a, window());
        let c = r.component("mystery").unwrap();
        assert!(c.dynamic.as_uw() > 0.0, "event energy counted");
        assert_eq!(c.leakage.as_uw(), 0.0, "no area, no leakage");
        // ClockCycle with area 0 contributes nothing.
        let expected = m
            .calibration()
            .event_energy(ActivityKind::BusTransfer, 100)
            .over(window());
        assert!((c.dynamic.as_uw() - expected.as_uw()).abs() < 1e-9);
    }

    #[test]
    fn memory_system_power_tracks_sram_accesses() {
        let m = model();
        let mut quiet = ActivitySet::new();
        quiet.record_named("ibex", ActivityKind::InstrRetired, 100);
        let mut busy = quiet.clone();
        busy.record_named("sram", ActivityKind::SramRead, 10_000);
        let rq = m.report(&quiet, window());
        let rb = m.report(&busy, window());
        assert!(rb.memory_system().as_uw() > rq.memory_system().as_uw());
        // The non-memory parts are unchanged.
        assert!(
            (rb.component("ibex").unwrap().total().as_uw()
                - rq.component("ibex").unwrap().total().as_uw())
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn report_is_displayable_and_sorted() {
        let m = model();
        let mut a = ActivitySet::new();
        a.record_named("ibex", ActivityKind::SramRead, 1); // attributed to ibex name
        let r = m.report(&a, window());
        let s = r.to_string();
        assert!(s.contains("analog floor"));
        let totals: Vec<f64> = r.components().iter().map(|c| c.total().as_uw()).collect();
        assert!(totals.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn kind_energy_accessible() {
        let m = model();
        let mut a = ActivitySet::new();
        a.record_named("sram", ActivityKind::SramRead, 5);
        let r = m.report(&a, window());
        assert!(
            (r.kind_energy(ActivityKind::SramRead).as_pj()
                - 5.0 * m.calibration().e_sram_read_pj)
                .abs()
                < 1e-9
        );
        assert_eq!(r.kind_energy(ActivityKind::ScmRead).as_pj(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_rejected() {
        let m = model();
        let _ = m.report(&ActivitySet::new(), SimTime::ZERO);
    }
}
