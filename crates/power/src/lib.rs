//! # pels-power — activity-based power and kGE area models
//!
//! The paper evaluates PELS with Synopsys PrimeTime (power, on the
//! synthesized netlist with simulation activity) and Synopsys Design
//! Compiler (area, TSMC 65 nm, 250 MHz, TT, 25 °C). Neither tool exists in
//! this reproduction's substrate, so this crate supplies the analytical
//! equivalents (substitution documented in `DESIGN.md`):
//!
//! * **Power** ([`model`]): PrimeTime computes `Σ activity × effective
//!   capacitance + leakage`. We keep the activity exact — every model in
//!   the workspace counts its switching events into a
//!   [`pels_sim::ActivitySet`] — and replace extracted capacitances with
//!   per-event energies calibrated to published 65 nm figures
//!   ([`calibration`], provenance in the module docs). Because the paper
//!   reports power *ratios* (2.5×, 1.6×, 3.7×, 4.3×), and ratios are
//!   driven by activity rather than absolute capacitance, this preserves
//!   the evaluation's shape.
//! * **Area** ([`area`]): a bottom-up gate-equivalent model anchored to
//!   the paper's published synthesis points (PELS minimal ≈ 7 kGE, Ibex ≈
//!   27 kGE, PicoRV32 ≈ 14.5 kGE) that reproduces the Figure 6a sweep and
//!   the Figure 6b PULPissimo breakdown.
//! * **Time-resolved power** ([`timeline`]): evaluates the model once per
//!   window of a [`pels_sim::ActivityTimeline`], producing a
//!   [`PowerTimeline`] of per-component samples over simulated time —
//!   the Figure 5 bars as curves.
//! * **Energy & lifetime** ([`energy`], [`battery`]): integrates a
//!   [`PowerTimeline`] into a per-component [`EnergyLedger`] (blame rows
//!   partition the total exactly) and discharges a [`Battery`] model
//!   with its mean draw to project days-to-empty — the paper's 2.5×
//!   power ratio restated as the lifetime question ULP designers ask.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod battery;
pub mod calibration;
pub mod energy;
pub mod model;
pub mod timeline;
pub mod units;

pub use area::{pels_area_kge, pulpissimo_breakdown, AreaBlock, IBEX_KGE, PICORV32_KGE};
pub use battery::{Battery, LifetimeBlame, LifetimeReport, SocPoint};
pub use calibration::Calibration;
pub use energy::{BlameRow, EnergyLedger};
pub use model::{ComponentPower, PowerModel, PowerReport};
pub use timeline::{PowerSample, PowerTimeline};
pub use units::{Energy, Power};
