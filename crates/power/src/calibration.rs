//! 65 nm energy calibration.
//!
//! PrimeTime multiplies simulation activity by extracted capacitances; we
//! multiply the same activity by per-event energies taken from published
//! 65/40 nm low-power MCU characterizations. Provenance of the defaults:
//!
//! * **SRAM access** ≈ 10–20 pJ per 32-bit access for small (tens of KiB)
//!   65 nm macros — consistent with the PULP µDMA and Vega papers' memory
//!   dominance argument (paper refs \[10\], \[11\]).
//! * **SCM access** well under 1 pJ — standard-cell memories trade area
//!   for an order-of-magnitude energy advantage at small footprints
//!   (Teman et al., paper ref \[20\]); this asymmetry versus SRAM is the
//!   mechanism behind the paper's 3.7–4.3× memory-system power gap.
//! * **Core datapath** ≈ 3–5 pJ/instruction for a 2-stage RV32 in 65 nm
//!   (lowRISC Ibex characterizations; RI5CY near-threshold numbers in
//!   paper ref \[21\] scale similarly at nominal voltage).
//! * **Clock tree + registers** ≈ 0.05–0.12 pJ per kGE per cycle.
//! * **Constant analog power** — PULPissimo-class SoCs keep FLLs and bias
//!   circuits running (paper ref \[12\]); they contribute a
//!   frequency-independent floor that damps idle-power scaling (this is
//!   why the paper's iso-latency *idle* gap is 1.5× rather than the raw
//!   55/27 ≈ 2× frequency ratio).
//!
//! All values are exposed as plain fields so the benches can run
//! sensitivity sweeps.

use crate::units::{Energy, Power};

/// Per-event energies and static power for the 65 nm target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Energy per 32-bit SRAM read (pJ).
    pub e_sram_read_pj: f64,
    /// Energy per 32-bit SRAM write (pJ).
    pub e_sram_write_pj: f64,
    /// Energy per SCM line read (pJ).
    pub e_scm_read_pj: f64,
    /// Energy per SCM line write (pJ).
    pub e_scm_write_pj: f64,
    /// Energy per register-file read port access (pJ).
    pub e_reg_read_pj: f64,
    /// Energy per register-file write port access (pJ).
    pub e_reg_write_pj: f64,
    /// Energy per completed interconnect transfer (pJ).
    pub e_bus_transfer_pj: f64,
    /// Energy per stalled-request cycle on the interconnect (pJ).
    pub e_bus_stall_pj: f64,
    /// CPU datapath energy per retired instruction, excluding the fetch
    /// (pJ).
    pub e_instr_pj: f64,
    /// Energy per instruction fetch issued (decode buffers etc.; the SRAM
    /// read itself is counted by the SRAM) (pJ).
    pub e_fetch_pj: f64,
    /// PELS datapath energy per executed command (pJ).
    pub e_cmd_pj: f64,
    /// Energy per single-wire event pulse (pJ).
    pub e_event_pj: f64,
    /// Energy per interrupt-entry overhead cycle (pipeline flush,
    /// vector mux) (pJ).
    pub e_irq_cycle_pj: f64,
    /// Generic datapath energy per active (non-idle) component cycle
    /// (pJ).
    pub e_active_cycle_pj: f64,
    /// Clock-tree + register clocking energy per kGE per clocked cycle
    /// (pJ).
    pub e_clock_pj_per_kge: f64,
    /// Leakage per kGE of logic (µW).
    pub leak_uw_per_kge: f64,
    /// Leakage of the 192 KiB L2 SRAM (µW).
    pub sram_leak_uw: f64,
    /// Frequency-independent analog power: FLLs, bias, always-on control
    /// (µW).
    pub p_const_uw: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            e_sram_read_pj: 20.0,
            e_sram_write_pj: 22.0,
            e_scm_read_pj: 0.6,
            e_scm_write_pj: 0.8,
            e_reg_read_pj: 0.8,
            e_reg_write_pj: 1.0,
            e_bus_transfer_pj: 2.0,
            e_bus_stall_pj: 0.2,
            e_instr_pj: 5.0,
            e_fetch_pj: 1.2,
            e_cmd_pj: 1.0,
            e_event_pj: 0.1,
            e_irq_cycle_pj: 2.0,
            e_active_cycle_pj: 0.5,
            e_clock_pj_per_kge: 0.09,
            leak_uw_per_kge: 0.05,
            sram_leak_uw: 30.0,
            p_const_uw: 200.0,
        }
    }
}

impl Calibration {
    /// The default 65 nm calibration.
    pub fn tsmc65() -> Self {
        Self::default()
    }

    /// Energy for `n` occurrences of an activity kind (area-independent
    /// kinds only; `ClockCycle` is area-scaled by the model).
    pub fn event_energy(&self, kind: pels_sim::ActivityKind, n: u64) -> Energy {
        use pels_sim::ActivityKind as K;
        let per = match kind {
            K::SramRead => self.e_sram_read_pj,
            K::SramWrite => self.e_sram_write_pj,
            K::ScmRead => self.e_scm_read_pj,
            K::ScmWrite => self.e_scm_write_pj,
            K::RegRead => self.e_reg_read_pj,
            K::RegWrite => self.e_reg_write_pj,
            K::BusTransfer => self.e_bus_transfer_pj,
            K::BusStall => self.e_bus_stall_pj,
            K::InstrRetired => self.e_instr_pj,
            K::InstrFetch => self.e_fetch_pj,
            K::EventPulse => self.e_event_pj,
            K::IrqOverhead => self.e_irq_cycle_pj,
            K::ActiveCycle => self.e_active_cycle_pj,
            K::ClockCycle => 0.0, // handled with the component's area
            _ => 0.0,
        };
        Energy::from_pj(per * n as f64)
    }

    /// Clock energy for `cycles` cycles of a component of `area_kge`.
    pub fn clock_energy(&self, area_kge: f64, cycles: u64) -> Energy {
        Energy::from_pj(self.e_clock_pj_per_kge * area_kge * cycles as f64)
    }

    /// Leakage power for `area_kge` of logic.
    pub fn logic_leakage(&self, area_kge: f64) -> Power {
        Power::from_uw(self.leak_uw_per_kge * area_kge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pels_sim::ActivityKind;

    #[test]
    fn sram_dwarfs_scm_per_access() {
        let c = Calibration::default();
        let sram = c.event_energy(ActivityKind::SramRead, 1);
        let scm = c.event_energy(ActivityKind::ScmRead, 1);
        assert!(
            sram.as_pj() / scm.as_pj() > 10.0,
            "the SCM-vs-SRAM energy asymmetry drives the paper's result"
        );
    }

    #[test]
    fn event_energy_scales_linearly() {
        let c = Calibration::default();
        let one = c.event_energy(ActivityKind::BusTransfer, 1);
        let ten = c.event_energy(ActivityKind::BusTransfer, 10);
        assert!((ten.as_pj() - 10.0 * one.as_pj()).abs() < 1e-9);
    }

    #[test]
    fn clock_energy_scales_with_area_and_cycles() {
        let c = Calibration::default();
        let e = c.clock_energy(27.0, 1000);
        assert!((e.as_pj() - 0.09 * 27.0 * 1000.0).abs() < 1e-9);
    }

    #[test]
    fn clock_kind_not_double_counted_as_event() {
        let c = Calibration::default();
        assert_eq!(
            c.event_energy(ActivityKind::ClockCycle, 100).as_pj(),
            0.0
        );
    }

    #[test]
    fn leakage_positive() {
        let c = Calibration::default();
        assert!(c.logic_leakage(257.0).as_uw() > 0.0);
        assert!(c.sram_leak_uw > 0.0);
    }
}
