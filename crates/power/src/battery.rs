//! Battery model and lifetime projection.
//!
//! ULP designers buy *lifetime*, not watts: the question behind the
//! paper's 2.5× power claim is "how many more days does the node last?"
//! This module closes that gap by discharging a simple battery model
//! with an [`EnergyLedger`]'s time-weighted mean draw:
//!
//! * **capacity × nominal voltage** gives the stored energy;
//! * a **cutoff fraction** models the charge stranded below the
//!   regulator's minimum input voltage;
//! * a **rate-dependent discharge factor** (Peukert-style exponent
//!   around a rated draw) derates capacity at draws above the cell's
//!   rating;
//! * a **sleep-current floor** adds the always-on regulator /
//!   self-discharge load the SoC model does not see.
//!
//! The projection is deliberately analytical — mean draw over the
//! simulated span, linear state of charge — because the simulated
//! horizon (seconds to hours) is tiny against the projected lifetime
//! (months to years); anything fancier would be false precision.

use std::fmt::Write as _;

use crate::energy::EnergyLedger;
use crate::units::{Energy, Power};

/// Seconds per day, for lifetime conversions.
const SECONDS_PER_DAY: f64 = 86_400.0;

/// Number of points on the projected state-of-charge curve.
const SOC_POINTS: usize = 33;

/// An idealized primary cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Battery {
    /// Rated capacity, mAh.
    pub capacity_mah: f64,
    /// Nominal terminal voltage, V.
    pub nominal_v: f64,
    /// Peukert-style rate exponent (≥ 1.0; 1.0 = rate-independent).
    pub rate_exponent: f64,
    /// Reference discharge current for the rate exponent, mA.
    pub rated_draw_ma: f64,
    /// Always-on system floor added to the SoC draw (regulator
    /// quiescent current, cell self-discharge), µW.
    pub sleep_floor_uw: f64,
    /// Usable fraction of rated capacity before the voltage cutoff
    /// (0 < f ≤ 1).
    pub cutoff_fraction: f64,
}

impl Battery {
    /// A battery with the given capacity and nominal voltage, no rate
    /// derating, no sleep floor and no cutoff.
    ///
    /// # Panics
    ///
    /// Panics on non-positive or non-finite capacity/voltage.
    pub fn new(capacity_mah: f64, nominal_v: f64) -> Self {
        assert!(
            capacity_mah.is_finite() && capacity_mah > 0.0,
            "capacity must be finite and > 0"
        );
        assert!(
            nominal_v.is_finite() && nominal_v > 0.0,
            "voltage must be finite and > 0"
        );
        Battery {
            capacity_mah,
            nominal_v,
            rate_exponent: 1.0,
            rated_draw_ma: 1.0,
            sleep_floor_uw: 0.0,
            cutoff_fraction: 1.0,
        }
    }

    /// A CR2032-class lithium coin cell: 225 mAh at 3.0 V, mild rate
    /// derating around a 0.2 mA rated draw, a 1.2 µW sleep floor and
    /// 92% usable before cutoff. The default cell for duty-cycled
    /// sensor-node lifetime projections.
    pub fn coin_cell() -> Self {
        Battery::new(225.0, 3.0)
            .with_rate(1.08, 0.2)
            .with_sleep_floor(Power::from_uw(1.2))
            .with_cutoff(0.92)
    }

    /// Sets the Peukert-style rate exponent and its reference draw.
    ///
    /// # Panics
    ///
    /// Panics if `exponent < 1.0` or `rated_draw_ma <= 0`.
    pub fn with_rate(mut self, exponent: f64, rated_draw_ma: f64) -> Self {
        assert!(
            exponent.is_finite() && exponent >= 1.0,
            "rate exponent must be >= 1.0"
        );
        assert!(
            rated_draw_ma.is_finite() && rated_draw_ma > 0.0,
            "rated draw must be > 0"
        );
        self.rate_exponent = exponent;
        self.rated_draw_ma = rated_draw_ma;
        self
    }

    /// Sets the always-on sleep-current floor.
    pub fn with_sleep_floor(mut self, floor: Power) -> Self {
        self.sleep_floor_uw = floor.as_uw();
        self
    }

    /// Sets the usable fraction before voltage cutoff.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    pub fn with_cutoff(mut self, fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && fraction > 0.0 && fraction <= 1.0,
            "cutoff fraction must be in (0, 1]"
        );
        self.cutoff_fraction = fraction;
        self
    }

    /// Rated stored energy (capacity × nominal voltage), before cutoff
    /// and rate derating.
    pub fn rated_energy(&self) -> Energy {
        // mAh × V = mWh; × 3.6 = J; × 1e6 = µJ.
        Energy::from_uj(self.capacity_mah * self.nominal_v * 3.6 * 1e6)
    }

    /// Usable energy at a sustained draw, µJ: rated energy × cutoff,
    /// derated by `(draw / rated_draw)^(exponent − 1)` for draws above
    /// the cell's rating (draws at or below rating are not derated).
    pub fn usable_uj(&self, draw: Power) -> f64 {
        let base = self.rated_energy().as_uj() * self.cutoff_fraction;
        let draw_ma = draw.as_uw() / 1e3 / self.nominal_v;
        if draw_ma <= self.rated_draw_ma || self.rate_exponent == 1.0 {
            base
        } else {
            base / (draw_ma / self.rated_draw_ma).powf(self.rate_exponent - 1.0)
        }
    }

    /// Projects this battery's lifetime under the ledger's mean draw
    /// plus the sleep floor, blaming days of battery on each component.
    pub fn project(&self, ledger: &EnergyLedger) -> LifetimeReport {
        let soc_draw_uw = ledger.mean_power().as_uw();
        let mean_draw_uw = soc_draw_uw + self.sleep_floor_uw;
        let usable_uj = self.usable_uj(Power::from_uw(mean_draw_uw));
        let seconds = if mean_draw_uw > 0.0 {
            usable_uj / mean_draw_uw // µJ / µW = s
        } else {
            f64::INFINITY
        };
        let days = seconds / SECONDS_PER_DAY;

        // Days-of-battery blame: each row's share of the mean draw costs
        // the same share of the projected days, so the table telescopes
        // back to the total lifetime.
        let days_for = |uw: f64| {
            if mean_draw_uw > 0.0 {
                days * (uw / mean_draw_uw)
            } else {
                0.0
            }
        };
        let span_s = ledger.span().as_secs_f64();
        let uw_of = |uj: f64| if span_s > 0.0 { uj / span_s } else { 0.0 };
        let mut blame: Vec<LifetimeBlame> = ledger
            .blame()
            .into_iter()
            .map(|row| {
                let uw = uw_of(row.uj);
                LifetimeBlame {
                    name: row.name,
                    uw,
                    days_cost: days_for(uw),
                }
            })
            .collect();
        blame.push(LifetimeBlame {
            name: "(sleep floor)".to_string(),
            uw: self.sleep_floor_uw,
            days_cost: days_for(self.sleep_floor_uw),
        });

        let soc = (0..SOC_POINTS)
            .map(|i| {
                let f = i as f64 / (SOC_POINTS - 1) as f64;
                SocPoint {
                    t_days: days * f,
                    fraction: 1.0 - f,
                }
            })
            .collect();

        LifetimeReport {
            battery: self.clone(),
            mean_draw_uw,
            usable_uj,
            seconds,
            blame,
            soc,
        }
    }
}

/// One row of the days-of-battery blame table.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeBlame {
    /// Component name (or `"(analog floor)"` / `"(sleep floor)"`).
    pub name: String,
    /// The row's share of the mean draw, µW.
    pub uw: f64,
    /// Days of battery this row consumes; rows sum to the projected
    /// lifetime.
    pub days_cost: f64,
}

/// A point on the projected state-of-charge curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocPoint {
    /// Time since full, days.
    pub t_days: f64,
    /// Remaining usable charge, 1.0 (full) → 0.0 (cutoff).
    pub fraction: f64,
}

/// Projected battery lifetime under a measured mean draw.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeReport {
    /// The battery the projection used.
    pub battery: Battery,
    /// Mean draw the projection assumed (SoC + sleep floor), µW.
    pub mean_draw_uw: f64,
    /// Usable energy at that draw, µJ.
    pub usable_uj: f64,
    /// Projected seconds to cutoff (∞ if the draw is zero).
    pub seconds: f64,
    /// Days-of-battery blame rows; `days_cost` sums to [`Self::days`].
    pub blame: Vec<LifetimeBlame>,
    /// Linear state-of-charge curve from full to cutoff.
    pub soc: Vec<SocPoint>,
}

impl LifetimeReport {
    /// Projected days to cutoff.
    pub fn days(&self) -> f64 {
        self.seconds / SECONDS_PER_DAY
    }

    /// ASCII lifetime card: headline days, then the days-of-battery
    /// blame table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "projected lifetime: {:.1} days at {} mean draw ({:.0} mAh {:.1} V cell)",
            self.days(),
            Power::from_uw(self.mean_draw_uw),
            self.battery.capacity_mah,
            self.battery.nominal_v,
        );
        let width = self.blame.iter().map(|r| r.name.len()).max().unwrap_or(0);
        for row in &self.blame {
            let share = if self.mean_draw_uw > 0.0 {
                row.uw / self.mean_draw_uw
            } else {
                0.0
            };
            let bar = "#".repeat((share * 40.0).round() as usize);
            let _ = writeln!(
                out,
                "  {:<width$}  {:>12}  {:>9.1} days  {}",
                row.name,
                Power::from_uw(row.uw.max(0.0)).to_string(),
                row.days_cost,
                bar,
            );
        }
        out
    }

    /// Fixed-key integer metrics for a registry (`battery.*`; days in
    /// millidays, draw in nW, usable energy in mJ).
    pub fn metric_pairs(&self) -> Vec<(&'static str, u64)> {
        let days_milli = if self.seconds.is_finite() {
            (self.days() * 1e3).round() as u64
        } else {
            u64::MAX
        };
        vec![
            ("battery.days_milli", days_milli),
            ("battery.mean_draw_nw", (self.mean_draw_uw * 1e3).round() as u64),
            ("battery.usable_mj", (self.usable_uj / 1e3).round() as u64),
            ("battery.soc_points", self.soc.len() as u64),
        ]
    }

    /// JSON object fragment (canonical key order) for report export.
    pub fn to_json(&self) -> String {
        let mut blame = String::new();
        for (i, row) in self.blame.iter().enumerate() {
            if i > 0 {
                blame.push(',');
            }
            let _ = write!(
                blame,
                "{{\"name\":{:?},\"uw\":{},\"days_cost\":{}}}",
                row.name, row.uw, row.days_cost
            );
        }
        let mut soc = String::new();
        for (i, p) in self.soc.iter().enumerate() {
            if i > 0 {
                soc.push(',');
            }
            let _ = write!(soc, "[{},{}]", p.t_days, p.fraction);
        }
        let days = if self.seconds.is_finite() {
            self.days().to_string()
        } else {
            "null".to_string()
        };
        format!(
            "{{\"days\":{},\"mean_draw_uw\":{},\"usable_uj\":{},\"capacity_mah\":{},\"nominal_v\":{},\"blame\":[{}],\"soc\":[{}]}}",
            days, self.mean_draw_uw, self.usable_uj, self.battery.capacity_mah,
            self.battery.nominal_v, blame, soc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PowerModel;
    use crate::timeline::PowerTimeline;
    use crate::Calibration;
    use pels_sim::{
        ActivityKind, ActivitySet, ActivityTimeline, ActivityWindow, ComponentId, Frequency,
    };

    fn ledger(stretch: u64) -> EnergyLedger {
        let mut m = PowerModel::new(Calibration::default());
        m.add_component("ibex", 27.0).add_component("sram", 200.0);
        let mut t = ActivityTimeline::new(100);
        let mut activity = ActivitySet::new();
        activity.record(ComponentId::intern("ibex"), ActivityKind::ClockCycle, 100);
        activity.record(ComponentId::intern("sram"), ActivityKind::SramRead, 300);
        t.windows.push(ActivityWindow {
            start_cycle: 0,
            end_cycle: 100 + stretch,
            activity,
        });
        EnergyLedger::from_timeline(&PowerTimeline::from_activity(
            &m,
            &t,
            Frequency::from_mhz(100.0),
        ))
    }

    #[test]
    fn lower_draw_lasts_longer() {
        let cell = Battery::coin_cell();
        let busy = cell.project(&ledger(0));
        let idle = cell.project(&ledger(10_000_000));
        assert!(idle.days() > busy.days());
        assert!(busy.days() > 0.0);
        assert!(idle.mean_draw_uw < busy.mean_draw_uw);
    }

    #[test]
    fn blame_days_telescope_to_total() {
        let report = Battery::coin_cell().project(&ledger(1_000));
        let sum: f64 = report.blame.iter().map(|r| r.days_cost).sum();
        assert!(
            (sum - report.days()).abs() <= 1e-9 * report.days(),
            "blame days {sum} vs total {}",
            report.days()
        );
        // The sleep-floor row is present and costs > 0 days.
        let floor = report
            .blame
            .iter()
            .find(|r| r.name == "(sleep floor)")
            .expect("sleep floor row");
        assert!(floor.days_cost > 0.0);
    }

    #[test]
    fn rate_derating_shrinks_usable_energy() {
        let cell = Battery::new(225.0, 3.0).with_rate(1.2, 0.2).with_cutoff(0.9);
        let at_rating = cell.usable_uj(Power::from_uw(0.2 * 3.0 * 1e3));
        let above = cell.usable_uj(Power::from_uw(2.0 * 3.0 * 1e3));
        let below = cell.usable_uj(Power::from_uw(0.01 * 3.0 * 1e3));
        assert!(above < at_rating);
        assert_eq!(below, at_rating); // no derating at or below rating
        // Cutoff strands 10% of the rated energy.
        assert!((at_rating - cell.rated_energy().as_uj() * 0.9).abs() < 1e-3);
    }

    #[test]
    fn soc_curve_is_monotone_full_to_empty() {
        let report = Battery::coin_cell().project(&ledger(100));
        assert_eq!(report.soc.len(), SOC_POINTS);
        assert_eq!(report.soc[0].fraction, 1.0);
        assert_eq!(report.soc.last().unwrap().fraction, 0.0);
        assert!((report.soc.last().unwrap().t_days - report.days()).abs() < 1e-9);
        for pair in report.soc.windows(2) {
            assert!(pair[1].t_days > pair[0].t_days);
            assert!(pair[1].fraction < pair[0].fraction);
        }
    }

    #[test]
    fn zero_draw_projects_infinite_lifetime() {
        let report = Battery::new(100.0, 3.0).project(&EnergyLedger::new());
        assert!(report.seconds.is_infinite());
        assert_eq!(report.metric_pairs()[0].1, u64::MAX);
        assert!(report.to_json().contains("\"days\":null"));
    }

    #[test]
    fn render_and_metrics_are_populated() {
        let report = Battery::coin_cell().project(&ledger(1_000));
        let text = report.render();
        assert!(text.contains("projected lifetime"), "{text}");
        assert!(text.contains("(sleep floor)"), "{text}");
        let keys: Vec<&str> = report.metric_pairs().iter().map(|(k, _)| *k).collect();
        assert_eq!(
            keys,
            vec![
                "battery.days_milli",
                "battery.mean_draw_nw",
                "battery.usable_mj",
                "battery.soc_points"
            ]
        );
        assert!(report.metric_pairs().iter().all(|&(_, v)| v > 0));
        let json = report.to_json();
        assert!(json.contains("\"soc\":["));
        assert!(json.contains("\"blame\":["));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Battery::new(0.0, 3.0);
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn bad_cutoff_rejected() {
        let _ = Battery::new(1.0, 3.0).with_cutoff(0.0);
    }
}
