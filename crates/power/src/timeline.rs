//! Power over simulated time.
//!
//! Evaluates a [`PowerModel`] once per [`ActivityTimeline`] window,
//! turning the whole-run averaged [`PowerReport`](crate::PowerReport)
//! into a per-component power *curve* — the time-resolved view behind
//! the paper's Figure 5 comparison. Each sample carries the window's
//! span in simulated time, the total SoC power, and the per-component
//! breakdown, ready for counter-track export or a terminal sparkline.

use crate::model::PowerModel;
use pels_sim::{ActivityTimeline, Frequency, SimTime};

/// Power over one timeline window.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSample {
    /// Window start in simulated time.
    pub start: SimTime,
    /// Window end in simulated time (exclusive); always after `start`.
    pub end: SimTime,
    /// Total SoC power over the window (components + analog floor), µW.
    pub total_uw: f64,
    /// Per-component total power (dynamic + leakage), µW, sorted
    /// descending — the order [`PowerModel::report`] produces.
    pub components: Vec<(String, f64)>,
}

impl PowerSample {
    /// Window duration.
    pub fn duration(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }

    /// A component's power over this window, µW (0 if absent).
    pub fn component_uw(&self, name: &str) -> f64 {
        self.components
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| *p)
            .unwrap_or(0.0)
    }
}

/// A per-window power series derived from an activity timeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerTimeline {
    /// Samples in time order; spans are contiguous and non-overlapping.
    pub samples: Vec<PowerSample>,
}

impl PowerTimeline {
    /// Evaluates `model` over every window of `timeline`, converting
    /// window cycle spans to simulated time at `clock`'s period.
    ///
    /// Windows are evaluated independently, so a quiescence-stretched
    /// window (long span, little activity) correctly averages down to a
    /// low power, while a busy nominal-width window shows the peak.
    pub fn from_activity(
        model: &PowerModel,
        timeline: &ActivityTimeline,
        clock: Frequency,
    ) -> Self {
        let samples = timeline
            .windows
            .iter()
            .filter(|w| w.end_cycle > w.start_cycle)
            .map(|w| {
                let start = clock.cycles(w.start_cycle);
                let end = clock.cycles(w.end_cycle);
                let duration = SimTime::from_ps(end.as_ps() - start.as_ps());
                let report = model.report(&w.activity, duration);
                let components = report
                    .components()
                    .iter()
                    .map(|c| (c.name.clone(), c.total().as_uw()))
                    .collect();
                PowerSample {
                    start,
                    end,
                    total_uw: report.total().as_uw(),
                    components,
                }
            })
            .collect();
        PowerTimeline { samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the timeline holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The total-power series, µW — ready for a sparkline.
    pub fn total_series(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.total_uw).collect()
    }

    /// Sorted union of every component name appearing in any sample.
    pub fn component_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .samples
            .iter()
            .flat_map(|s| s.components.iter().map(|(n, _)| n.clone()))
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Time-weighted average total power over the whole timeline, µW.
    pub fn mean_total_uw(&self) -> f64 {
        let mut energy = 0.0; // µW·ps
        let mut span = 0.0;
        for s in &self.samples {
            let d = (s.end.as_ps() - s.start.as_ps()) as f64;
            energy += s.total_uw * d;
            span += d;
        }
        if span > 0.0 {
            energy / span
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Calibration;
    use pels_sim::{ActivityKind, ActivitySet, ActivityWindow, ComponentId};

    fn model() -> PowerModel {
        let mut m = PowerModel::new(Calibration::default());
        m.add_component("ibex", 27.0).add_component("sram", 200.0);
        m
    }

    fn busy_window(start: u64, end: u64, reads: u64) -> ActivityWindow {
        let mut activity = ActivitySet::new();
        let cycles = end - start;
        activity.record(
            ComponentId::intern("ibex"),
            ActivityKind::ClockCycle,
            cycles,
        );
        activity.record(ComponentId::intern("sram"), ActivityKind::SramRead, reads);
        ActivityWindow {
            start_cycle: start,
            end_cycle: end,
            activity,
        }
    }

    #[test]
    fn busy_windows_draw_more_than_idle_ones() {
        let mut t = ActivityTimeline::new(100);
        t.windows.push(busy_window(0, 100, 500));
        t.windows.push(ActivityWindow {
            start_cycle: 100,
            end_cycle: 200,
            activity: ActivitySet::new(),
        });
        let clock = Frequency::from_mhz(100.0);
        let pt = PowerTimeline::from_activity(&model(), &t, clock);
        assert_eq!(pt.len(), 2);
        assert!(pt.samples[0].total_uw > pt.samples[1].total_uw);
        // The idle window still pays leakage + the analog floor.
        assert!(pt.samples[1].total_uw > 0.0);
        // Window spans convert to simulated time at the clock period.
        assert_eq!(pt.samples[0].start, SimTime::ZERO);
        assert_eq!(pt.samples[0].end, clock.cycles(100));
        assert_eq!(pt.samples[1].end, clock.cycles(200));
        assert!(pt.samples[0].component_uw("sram") > 0.0);
        assert_eq!(pt.samples[0].component_uw("nonexistent"), 0.0);
    }

    #[test]
    fn quiescence_stretched_window_averages_down() {
        // Same activity over 10x the span => ~10x less dynamic power.
        let mut short = ActivityTimeline::new(100);
        short.windows.push(busy_window(0, 100, 200));
        let mut long = ActivityTimeline::new(100);
        long.windows.push({
            let mut w = busy_window(0, 1000, 200);
            w.activity = short.windows[0].activity.clone();
            w
        });
        let clock = Frequency::from_mhz(100.0);
        let m = model();
        let ps = PowerTimeline::from_activity(&m, &short, clock);
        let pl = PowerTimeline::from_activity(&m, &long, clock);
        assert!(ps.samples[0].total_uw > pl.samples[0].total_uw);
    }

    #[test]
    fn mean_is_time_weighted() {
        let mut t = ActivityTimeline::new(100);
        t.windows.push(busy_window(0, 100, 1000));
        t.windows.push(ActivityWindow {
            start_cycle: 100,
            end_cycle: 1100, // 10x longer idle stretch
            activity: ActivitySet::new(),
        });
        let pt = PowerTimeline::from_activity(&model(), &t, Frequency::from_mhz(100.0));
        let mean = pt.mean_total_uw();
        let naive = pt.total_series().iter().sum::<f64>() / 2.0;
        // The long idle window dominates the weighted mean.
        assert!(mean < naive);
        assert!(mean > 0.0);
        // Degenerate case: no samples.
        assert_eq!(PowerTimeline::default().mean_total_uw(), 0.0);
        assert!(PowerTimeline::default().is_empty());
    }

    #[test]
    fn mean_weights_quiescence_stretched_windows_by_duration() {
        // One nominal-width busy window next to a 99x-stretched idle
        // window: the weighted mean must equal the hand-computed
        // Σ(p·d)/Σd, which sits very close to the idle power.
        let mut t = ActivityTimeline::new(100);
        t.windows.push(busy_window(0, 100, 1000));
        t.windows.push(ActivityWindow {
            start_cycle: 100,
            end_cycle: 10_000, // quiescence-stretched: 99 windows' span
            activity: ActivitySet::new(),
        });
        let pt = PowerTimeline::from_activity(&model(), &t, Frequency::from_mhz(100.0));
        let (busy, idle) = (pt.samples[0].total_uw, pt.samples[1].total_uw);
        let expected = (busy * 100.0 + idle * 9_900.0) / 10_000.0;
        assert!((pt.mean_total_uw() - expected).abs() <= 1e-12 * expected);
        // The stretch dominates: only 1% of the busy/idle gap survives
        // into the mean, which stays strictly between the two powers.
        assert!(pt.mean_total_uw() - idle <= (busy - idle) * 0.0101);
        assert!(pt.mean_total_uw() > idle && pt.mean_total_uw() < busy);
    }

    #[test]
    fn component_names_are_sorted_union() {
        let mut t = ActivityTimeline::new(10);
        t.windows.push(busy_window(0, 10, 1));
        let pt = PowerTimeline::from_activity(&model(), &t, Frequency::from_mhz(50.0));
        let names = pt.component_names();
        assert!(names.contains(&"ibex".to_string()));
        assert!(names.contains(&"sram".to_string()));
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
