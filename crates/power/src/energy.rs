//! Integrated energy over simulated time.
//!
//! A [`PowerTimeline`] answers "how much power, when"; the
//! [`EnergyLedger`] integrates it into "how much energy, where". Every
//! sample contributes `power × duration` per component, so
//! quiescence-stretched windows (long span, little activity) are
//! weighted exactly by the time they cover — the property that makes
//! months of duty-cycled device time integrable from a simulation that
//! O(1)-skips the sleep.
//!
//! The ledger's blame table partitions the integrated total *bit-for-
//! bit*: the analog floor row is defined as the residual
//! `total − Σ components`, so the rows always telescope back to the
//! total, which is itself `mean power × span` by construction of the
//! mean (see [`EnergyLedger::mean_power`]).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::timeline::PowerTimeline;
use crate::units::{Energy, Power};
use pels_sim::SimTime;

/// Internal accumulation unit: µW·ps (= 1e-6 pJ = 1e-12 µJ).
///
/// This matches [`PowerTimeline::mean_total_uw`]'s accumulator exactly,
/// so the ledger total and the timeline mean are two views of the same
/// sum.
const UWPS_PER_UJ: f64 = 1e12;

/// Per-component integrated energy over a simulated span.
///
/// Built from a [`PowerTimeline`] (one sample per activity window) and
/// mergeable across runs: a fleet fold of ledgers in job input order is
/// deterministic regardless of worker count or completion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyLedger {
    /// Total covered span, ps.
    span_ps: u64,
    /// Number of integrated windows.
    windows: usize,
    /// Σ total power × duration, µW·ps (components + analog floor).
    total_uwps: f64,
    /// Per-component Σ power × duration, µW·ps, keyed by component name
    /// (BTreeMap ⇒ iteration in sorted-name order, deterministic).
    components: BTreeMap<String, f64>,
}

/// One row of the blame table: a component (or the analog floor) and
/// its integrated energy.
#[derive(Debug, Clone, PartialEq)]
pub struct BlameRow {
    /// Component name; the residual row is named `"(analog floor)"`.
    pub name: String,
    /// Integrated energy in microjoules.
    pub uj: f64,
    /// Fraction of the ledger total (0..=1; 0 if the total is zero).
    pub share: f64,
}

impl EnergyLedger {
    /// An empty ledger (zero span, zero energy) — the fold identity.
    pub fn new() -> Self {
        EnergyLedger::default()
    }

    /// Integrates a power timeline: every sample contributes
    /// `power × duration` to its components and to the total.
    pub fn from_timeline(timeline: &PowerTimeline) -> Self {
        let mut ledger = EnergyLedger::new();
        for s in &timeline.samples {
            let d = (s.end.as_ps() - s.start.as_ps()) as f64;
            ledger.span_ps += s.end.as_ps() - s.start.as_ps();
            ledger.windows += 1;
            ledger.total_uwps += s.total_uw * d;
            for (name, uw) in &s.components {
                *ledger.components.entry(name.clone()).or_insert(0.0) += uw * d;
            }
        }
        ledger
    }

    /// Folds another ledger into this one (per-component sums, spans
    /// and window counts add). Folding a job list in input order gives
    /// the same ledger on any worker count.
    pub fn merge(&mut self, other: &EnergyLedger) {
        self.span_ps = self.span_ps.saturating_add(other.span_ps);
        self.windows += other.windows;
        self.total_uwps += other.total_uwps;
        for (name, uwps) in &other.components {
            *self.components.entry(name.clone()).or_insert(0.0) += uwps;
        }
    }

    /// The covered span of simulated time.
    pub fn span(&self) -> SimTime {
        SimTime::from_ps(self.span_ps)
    }

    /// Number of integrated windows.
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// Total integrated energy (components + analog floor), µJ.
    pub fn total_uj(&self) -> f64 {
        self.total_uwps / UWPS_PER_UJ
    }

    /// Total integrated energy as an [`Energy`].
    pub fn total_energy(&self) -> Energy {
        // µW·ps = 1e-6 pJ.
        Energy::from_pj(self.total_uwps * 1e-6)
    }

    /// A component's integrated energy, µJ (0 if absent).
    pub fn component_uj(&self, name: &str) -> f64 {
        self.components.get(name).copied().unwrap_or(0.0) / UWPS_PER_UJ
    }

    /// Component names in sorted order.
    pub fn component_names(&self) -> Vec<&str> {
        self.components.keys().map(String::as_str).collect()
    }

    /// The residual energy not attributed to any component — the
    /// model's constant analog floor, µJ. Defined as
    /// `total − Σ components` so the blame rows partition the total
    /// exactly (bit-for-bit), absorbing any floating-point rounding.
    pub fn floor_uj(&self) -> f64 {
        (self.total_uwps - self.components_uwps()) / UWPS_PER_UJ
    }

    fn components_uwps(&self) -> f64 {
        self.components.values().sum()
    }

    /// Time-weighted mean power over the span. The total telescopes by
    /// construction: `mean_power × span = total` (they are the same sum
    /// divided and re-multiplied by the span).
    pub fn mean_power(&self) -> Power {
        if self.span_ps == 0 {
            return Power::ZERO;
        }
        Power::from_uw(self.total_uwps / self.span_ps as f64)
    }

    /// The blame table: components sorted by descending energy, then
    /// the analog-floor residual row. Shares are fractions of the
    /// total; the `uj` column sums exactly to [`EnergyLedger::total_uj`].
    pub fn blame(&self) -> Vec<BlameRow> {
        let total_uwps = self.total_uwps;
        let share = |uwps: f64| {
            if total_uwps > 0.0 {
                uwps / total_uwps
            } else {
                0.0
            }
        };
        let mut rows: Vec<BlameRow> = self
            .components
            .iter()
            .map(|(name, &uwps)| BlameRow {
                name: name.clone(),
                uj: uwps / UWPS_PER_UJ,
                share: share(uwps),
            })
            .collect();
        // Sort by descending energy, name-ascending tiebreak: the
        // BTreeMap source plus total-order comparison keeps this
        // deterministic.
        rows.sort_by(|a, b| b.uj.total_cmp(&a.uj).then(a.name.cmp(&b.name)));
        let floor = self.total_uwps - self.components_uwps();
        rows.push(BlameRow {
            name: "(analog floor)".to_string(),
            uj: floor / UWPS_PER_UJ,
            share: share(floor),
        });
        rows
    }

    /// ASCII blame table: one bar-chart row per component plus the
    /// analog-floor residual, captioned with the auto-scaled total,
    /// span and mean power.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "energy {} over {:.3} s  (mean {})",
            self.total_energy(),
            self.span().as_secs_f64(),
            self.mean_power(),
        );
        let rows = self.blame();
        let width = rows.iter().map(|r| r.name.len()).max().unwrap_or(0);
        for row in rows {
            let bar = "#".repeat((row.share * 40.0).round() as usize);
            let _ = writeln!(
                out,
                "  {:<width$}  {:>12}  {:>6.2}%  {}",
                row.name,
                Energy::from_uj(row.uj.max(0.0)).to_string(),
                row.share * 100.0,
                bar,
            );
        }
        out
    }

    /// Fixed-key integer metrics for a registry
    /// (`power.energy.*`; energies rounded to nanojoules, span to µs).
    pub fn metric_pairs(&self) -> Vec<(&'static str, u64)> {
        let nj = |uj: f64| (uj.max(0.0) * 1e3).round() as u64;
        vec![
            ("power.energy.total_nj", nj(self.total_uj())),
            ("power.energy.floor_nj", nj(self.floor_uj())),
            ("power.energy.span_us", self.span_ps / 1_000_000),
            ("power.energy.windows", self.windows as u64),
            ("power.energy.components", self.components.len() as u64),
        ]
    }

    /// JSON object fragment (canonical key order) for report export.
    pub fn to_json(&self) -> String {
        let mut comps = String::new();
        for (i, row) in self.blame().iter().enumerate() {
            if i > 0 {
                comps.push(',');
            }
            let _ = write!(
                comps,
                "{{\"name\":{:?},\"uj\":{},\"share\":{}}}",
                row.name, row.uj, row.share
            );
        }
        format!(
            "{{\"total_uj\":{},\"floor_uj\":{},\"span_s\":{},\"windows\":{},\"mean_uw\":{},\"blame\":[{}]}}",
            self.total_uj(),
            self.floor_uj(),
            self.span().as_secs_f64(),
            self.windows,
            self.mean_power().as_uw(),
            comps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PowerModel;
    use crate::Calibration;
    use pels_sim::{
        ActivityKind, ActivitySet, ActivityTimeline, ActivityWindow, ComponentId, Frequency,
    };

    fn model() -> PowerModel {
        let mut m = PowerModel::new(Calibration::default());
        m.add_component("ibex", 27.0).add_component("sram", 200.0);
        m
    }

    fn timeline(stretch: u64) -> PowerTimeline {
        let mut t = ActivityTimeline::new(100);
        let mut activity = ActivitySet::new();
        activity.record(ComponentId::intern("ibex"), ActivityKind::ClockCycle, 100);
        activity.record(ComponentId::intern("sram"), ActivityKind::SramRead, 300);
        t.windows.push(ActivityWindow {
            start_cycle: 0,
            end_cycle: 100,
            activity,
        });
        t.windows.push(ActivityWindow {
            start_cycle: 100,
            end_cycle: 100 + stretch,
            activity: ActivitySet::new(),
        });
        PowerTimeline::from_activity(&model(), &t, Frequency::from_mhz(100.0))
    }

    #[test]
    fn blame_rows_partition_the_total_bit_exactly() {
        let ledger = EnergyLedger::from_timeline(&timeline(10_000));
        let rows = ledger.blame();
        // Exact f64 equality: the floor row is the residual by
        // construction, so the partition telescopes bit-for-bit.
        let back: f64 = ledger.components.values().sum::<f64>()
            + (ledger.total_uwps - ledger.components_uwps());
        assert_eq!(back, ledger.total_uwps);
        let row_sum: f64 = rows.iter().map(|r| r.uj).sum();
        assert!((row_sum - ledger.total_uj()).abs() <= 1e-12 * ledger.total_uj().max(1.0));
        let share_sum: f64 = rows.iter().map(|r| r.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn total_telescopes_to_mean_power_times_span() {
        let pt = timeline(50_000);
        let ledger = EnergyLedger::from_timeline(&pt);
        // Same accumulation as PowerTimeline::mean_total_uw: mean × span
        // reconstructs the total within one rounding of the division.
        let span_ps = ledger.span().as_ps() as f64;
        let reconstructed = ledger.mean_power().as_uw() * span_ps;
        assert!((reconstructed - ledger.total_uwps).abs() <= 4.0 * f64::EPSILON * ledger.total_uwps);
        // And the ledger mean equals the timeline's duration-weighted mean.
        assert!((ledger.mean_power().as_uw() - pt.mean_total_uw()).abs() <= 1e-12);
    }

    #[test]
    fn quiescence_stretch_weights_energy_by_duration() {
        let short = EnergyLedger::from_timeline(&timeline(100));
        let long = EnergyLedger::from_timeline(&timeline(1_000_000));
        // The stretched ledger covers more time, so it accrues more
        // leakage/floor energy...
        assert!(long.total_uj() > short.total_uj());
        // ...but its mean power collapses toward the idle floor.
        assert!(long.mean_power().as_uw() < short.mean_power().as_uw());
        // The stretched span accrues proportionally more floor energy
        // (leakage and the analog floor pay per unit time).
        assert!(long.floor_uj() > short.floor_uj());
        assert!(long.component_uj("sram") > short.component_uj("sram"));
    }

    #[test]
    fn merge_is_input_order_deterministic() {
        let a = EnergyLedger::from_timeline(&timeline(100));
        let b = EnergyLedger::from_timeline(&timeline(5_000));
        let mut ab = EnergyLedger::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ab2 = EnergyLedger::new();
        ab2.merge(&a);
        ab2.merge(&b);
        assert_eq!(ab, ab2);
        assert_eq!(ab.windows(), a.windows() + b.windows());
        assert_eq!(ab.span(), SimTime::from_ps(a.span().as_ps() + b.span().as_ps()));
        assert!((ab.total_uj() - (a.total_uj() + b.total_uj())).abs() <= 1e-12);
        // Merging an empty ledger is the identity.
        let mut id = a.clone();
        id.merge(&EnergyLedger::new());
        assert_eq!(id, a);
    }

    #[test]
    fn empty_ledger_is_all_zeroes() {
        let e = EnergyLedger::new();
        assert_eq!(e.total_uj(), 0.0);
        assert_eq!(e.mean_power(), Power::ZERO);
        assert_eq!(e.span(), SimTime::ZERO);
        assert_eq!(e.windows(), 0);
        let rows = e.blame();
        assert_eq!(rows.len(), 1); // just the floor row
        assert_eq!(rows[0].share, 0.0);
    }

    #[test]
    fn render_and_json_mention_components() {
        let ledger = EnergyLedger::from_timeline(&timeline(1_000));
        let text = ledger.render();
        assert!(text.contains("sram"), "{text}");
        assert!(text.contains("(analog floor)"), "{text}");
        let json = ledger.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"total_uj\""));
        assert!(json.contains("\"blame\""));
        let keys: Vec<&str> = ledger.metric_pairs().iter().map(|(k, _)| *k).collect();
        assert!(keys.contains(&"power.energy.total_nj"));
        assert!(ledger.metric_pairs()[0].1 > 0);
    }
}
