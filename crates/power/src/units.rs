//! Energy and power quantities.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul};

use pels_sim::SimTime;

/// An energy amount in picojoules.
///
/// ```
/// use pels_power::Energy;
/// use pels_sim::SimTime;
/// let e = Energy::from_pj(500.0);
/// let p = e.over(SimTime::from_us(1));
/// assert!((p.as_uw() - 500.0).abs() < 1e-9); // 500 pJ / 1 us = 500 uW
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from picojoules.
    ///
    /// # Panics
    ///
    /// Panics on non-finite or negative values.
    pub fn from_pj(pj: f64) -> Self {
        assert!(pj.is_finite() && pj >= 0.0, "energy must be finite and >= 0");
        Energy(pj)
    }

    /// The value in picojoules.
    pub fn as_pj(self) -> f64 {
        self.0
    }

    /// The value in nanojoules.
    pub fn as_nj(self) -> f64 {
        self.0 / 1e3
    }

    /// Creates an energy from microjoules.
    ///
    /// # Panics
    ///
    /// Panics on non-finite or negative values.
    pub fn from_uj(uj: f64) -> Self {
        Energy::from_pj(uj * 1e6)
    }

    /// The value in microjoules.
    pub fn as_uj(self) -> f64 {
        self.0 / 1e6
    }

    /// The value in millijoules.
    pub fn as_mj(self) -> f64 {
        self.0 / 1e9
    }

    /// The value in joules.
    pub fn as_j(self) -> f64 {
        self.0 / 1e12
    }

    /// Average power when spread over `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn over(self, window: SimTime) -> Power {
        assert!(window.as_ps() > 0, "window must be non-zero");
        // pJ / ps = W; convert to µW.
        Power::from_uw(self.0 / window.as_ps() as f64 * 1e6)
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Mul<u64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: u64) -> Energy {
        Energy(self.0 * rhs as f64)
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Auto-scale through the full pJ → J range so blame tables at
        // long horizons stay readable.
        if self.0 >= 1e12 {
            write!(f, "{:.3} J", self.as_j())
        } else if self.0 >= 1e9 {
            write!(f, "{:.3} mJ", self.as_mj())
        } else if self.0 >= 1e6 {
            write!(f, "{:.3} uJ", self.as_uj())
        } else if self.0 >= 1e3 {
            write!(f, "{:.3} nJ", self.as_nj())
        } else {
            write!(f, "{:.3} pJ", self.0)
        }
    }
}

/// A power amount in microwatts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Power(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power from microwatts.
    ///
    /// # Panics
    ///
    /// Panics on non-finite or negative values.
    pub fn from_uw(uw: f64) -> Self {
        assert!(uw.is_finite() && uw >= 0.0, "power must be finite and >= 0");
        Power(uw)
    }

    /// The value in microwatts.
    pub fn as_uw(self) -> f64 {
        self.0
    }

    /// The value in milliwatts.
    pub fn as_mw(self) -> f64 {
        self.0 / 1e3
    }

    /// The value in watts.
    pub fn as_w(self) -> f64 {
        self.0 / 1e6
    }

    /// Energy consumed over `window` at this power.
    pub fn for_window(self, window: SimTime) -> Energy {
        // µW × ps = 1e-6 J/s × 1e-12 s = 1e-18 J = 1e-6 pJ.
        Energy::from_pj(self.0 * window.as_ps() as f64 * 1e-6)
    }

    /// Dimensionless ratio `self / other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn ratio_to(self, other: Power) -> f64 {
        assert!(other.0 > 0.0, "cannot take a ratio to zero power");
        self.0 / other.0
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}

impl Div<Power> for Power {
    type Output = f64;
    fn div(self, rhs: Power) -> f64 {
        self.ratio_to(rhs)
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::ZERO, Add::add)
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.3} W", self.as_w())
        } else if self.0 >= 1e3 {
            write!(f, "{:.3} mW", self.as_mw())
        } else {
            write!(f, "{:.3} uW", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_power_conversions_roundtrip() {
        let e = Energy::from_pj(1000.0);
        let w = SimTime::from_us(2);
        let p = e.over(w);
        assert!((p.as_uw() - 500.0).abs() < 1e-9); // 1 nJ / 2 us = 500 uW
        let back = p.for_window(w);
        assert!((back.as_pj() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = Energy::from_pj(1.0) + Energy::from_pj(2.0);
        assert_eq!(a.as_pj(), 3.0);
        let s: Energy = [Energy::from_pj(1.0); 4].into_iter().sum();
        assert_eq!(s.as_pj(), 4.0);
        let p = Power::from_uw(10.0) * 2.5;
        assert_eq!(p.as_uw(), 25.0);
        assert_eq!(Energy::from_pj(2.0) * 3u64, Energy::from_pj(6.0));
    }

    #[test]
    fn ratio_and_div() {
        let a = Power::from_uw(50.0);
        let b = Power::from_uw(20.0);
        assert!((a.ratio_to(b) - 2.5).abs() < 1e-12);
        assert!((a / b - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_scales() {
        assert_eq!(Energy::from_pj(1.5).to_string(), "1.500 pJ");
        assert_eq!(Energy::from_pj(1500.0).to_string(), "1.500 nJ");
        assert_eq!(Power::from_uw(999.0).to_string(), "999.000 uW");
        assert_eq!(Power::from_uw(1500.0).to_string(), "1.500 mW");
    }

    #[test]
    fn display_scales_to_long_horizon_units() {
        assert_eq!(Energy::from_uj(1.5).to_string(), "1.500 uJ");
        assert_eq!(Energy::from_uj(1500.0).to_string(), "1.500 mJ");
        assert_eq!(Energy::from_uj(2_430_000.0).to_string(), "2.430 J");
        assert_eq!(Power::from_uw(2.5e6).to_string(), "2.500 W");
    }

    #[test]
    fn microjoule_accessors_roundtrip() {
        let e = Energy::from_uj(3.25);
        assert!((e.as_uj() - 3.25).abs() < 1e-12);
        assert!((e.as_mj() - 3.25e-3).abs() < 1e-15);
        assert!((e.as_j() - 3.25e-6).abs() < 1e-18);
        assert!((e.as_pj() - 3.25e6).abs() < 1e-6);
        assert!((Power::from_uw(4.0e6).as_w() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_energy_rejected() {
        let _ = Energy::from_pj(-1.0);
    }

    #[test]
    #[should_panic(expected = "zero power")]
    fn zero_ratio_rejected() {
        let _ = Power::from_uw(1.0).ratio_to(Power::ZERO);
    }
}
