//! Gate-equivalent area model (Figure 6).
//!
//! Bottom-up inventory anchored to the paper's published synthesis points
//! (TSMC 65 nm, 250 MHz, TT, 25 °C):
//!
//! * PELS minimal configuration (1 link, 4 SCM lines) ≈ **7 kGE**;
//! * Ibex ≈ **27 kGE**, PicoRV32 ≈ **14.5 kGE** (both without their
//!   external SRAMs);
//! * a 4-link PELS ≈ **9.5 %** of PULPissimo's logic area and ≈ **1 %**
//!   including the 192 KiB SRAM.
//!
//! The structural form is `global + links × (link_logic + lines ×
//! line_cost)`: per-link cost covers the trigger unit (64-bit mask and
//! comparators, trigger FIFO), the execution-unit FSM + 32-bit datapath
//! and the bus master port; per-line cost covers 48 latch-based SCM bits
//! with their mux/decode.

/// Paper-reported Ibex area (kGE), no SRAM.
pub const IBEX_KGE: f64 = 27.0;

/// Paper-reported PicoRV32 area (kGE), no SRAM.
pub const PICORV32_KGE: f64 = 14.5;

/// Global PELS overhead: configuration registers, event broadcast and
/// action-line routing (kGE).
pub const PELS_GLOBAL_KGE: f64 = 2.0;

/// Per-link logic: trigger unit + execution unit + bus port (kGE).
pub const PELS_LINK_KGE: f64 = 3.8;

/// Per SCM line: 48 latch bits + read mux + write decode (kGE).
pub const PELS_SCM_LINE_KGE: f64 = 0.3;

/// Area of a PELS configuration in kGE.
///
/// ```
/// use pels_power::pels_area_kge;
/// // The paper's minimal configuration synthesizes to about 7 kGE.
/// assert!((pels_area_kge(1, 4) - 7.0).abs() < 0.1);
/// ```
///
/// # Panics
///
/// Panics if `links` or `scm_lines` is zero.
pub fn pels_area_kge(links: usize, scm_lines: usize) -> f64 {
    assert!(links >= 1, "at least one link");
    assert!(scm_lines >= 1, "at least one scm line");
    PELS_GLOBAL_KGE
        + links as f64 * (PELS_LINK_KGE + scm_lines as f64 * PELS_SCM_LINE_KGE)
}

/// One block of the PULPissimo area breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaBlock {
    /// Block name.
    pub name: &'static str,
    /// Area in kGE (SRAM expressed in kGE-equivalents).
    pub kge: f64,
}

/// PULPissimo logic inventory (kGE), without PELS and without SRAM.
///
/// Block sizes follow the PULPissimo papers' proportions: the processing
/// domain (Ibex + debug + core-local logic), the µDMA + peripheral
/// subsystem, the TCDM/APB interconnect, and SoC control (FLL wrappers,
/// ROM, pad control).
pub fn pulpissimo_logic_blocks() -> Vec<AreaBlock> {
    vec![
        AreaBlock {
            name: "processing domain",
            kge: 45.0,
        },
        AreaBlock {
            name: "peripherals",
            kge: 115.0,
        },
        AreaBlock {
            name: "interconnect",
            kge: 55.0,
        },
        AreaBlock {
            name: "soc control",
            kge: 18.0,
        },
    ]
}

/// kGE-equivalent of the 192 KiB L2 SRAM (bit-cell area expressed in
/// gate equivalents; macros are denser than logic, ≈ 1.4 GE/bit
/// including periphery at this size).
pub fn sram_kge_equivalent(kib: f64) -> f64 {
    kib * 1024.0 * 8.0 * 1.4 / 1000.0
}

/// The full Figure 6b breakdown: PULPissimo blocks plus a PELS of the
/// given configuration, with and without SRAM.
///
/// Returns `(blocks including PELS, pels fraction of logic, pels fraction
/// including SRAM)`.
pub fn pulpissimo_breakdown(links: usize, scm_lines: usize) -> (Vec<AreaBlock>, f64, f64) {
    let mut blocks = pulpissimo_logic_blocks();
    let pels = pels_area_kge(links, scm_lines);
    blocks.push(AreaBlock {
        name: "pels",
        kge: pels,
    });
    let logic_total: f64 = blocks.iter().map(|b| b.kge).sum();
    let sram = sram_kge_equivalent(192.0);
    let frac_logic = pels / logic_total;
    let frac_with_sram = pels / (logic_total + sram);
    (blocks, frac_logic, frac_with_sram)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_config_matches_paper_anchor() {
        let a = pels_area_kge(1, 4);
        assert!((a - 7.0).abs() < 0.1, "paper: about 7 kGE, got {a}");
    }

    #[test]
    fn minimal_config_beats_cores_by_paper_factors() {
        let a = pels_area_kge(1, 4);
        assert!(
            IBEX_KGE / a > 3.5 && IBEX_KGE / a < 4.5,
            "about 4x smaller than Ibex"
        );
        assert!(
            PICORV32_KGE / a > 1.8 && PICORV32_KGE / a < 2.3,
            "about 2x smaller than PicoRV32"
        );
    }

    #[test]
    fn area_is_linear_in_links() {
        let step = pels_area_kge(2, 4) - pels_area_kge(1, 4);
        for l in 2..8 {
            let d = pels_area_kge(l + 1, 4) - pels_area_kge(l, 4);
            assert!((d - step).abs() < 1e-9);
        }
    }

    #[test]
    fn more_scm_lines_cost_area() {
        assert!(pels_area_kge(4, 8) > pels_area_kge(4, 6));
        assert!(pels_area_kge(4, 6) > pels_area_kge(4, 4));
    }

    #[test]
    fn figure_6b_fractions_match_paper() {
        let (blocks, frac_logic, frac_sram) = pulpissimo_breakdown(4, 6);
        assert_eq!(blocks.len(), 5);
        assert!(
            (frac_logic - 0.095).abs() < 0.01,
            "paper: about 9.5% of logic, got {:.3}",
            frac_logic
        );
        assert!(
            (frac_sram - 0.01).abs() < 0.005,
            "paper: about 1% including the 192 KiB SRAM, got {:.4}",
            frac_sram
        );
    }

    #[test]
    fn eight_link_sweep_is_monotone() {
        let mut last = 0.0;
        for links in 1..=8 {
            for lines in [4, 6, 8] {
                let a = pels_area_kge(links, lines);
                assert!(a > 0.0);
                if lines == 4 {
                    assert!(a > last);
                    last = a;
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn zero_links_rejected() {
        let _ = pels_area_kge(0, 4);
    }
}
