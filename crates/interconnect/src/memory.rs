//! A word-addressed memory slave.
//!
//! Serves two roles in the reproduction: a generic test slave for the
//! fabric, and — with wait states — the model of SRAM-class endpoints whose
//! access cost the paper contrasts with PELS's private SCM.

use crate::apb::{ApbSlave, BusError, Dir};

/// A RAM-like APB slave of 32-bit words with configurable wait states and
/// access counters.
///
/// ```
/// use pels_interconnect::{ApbSlave, MemorySlave};
/// let mut m = MemorySlave::new(0x40);
/// m.write(0x8, 123)?;
/// assert_eq!(m.read(0x8)?, 123);
/// assert_eq!(m.reads(), 1);
/// # Ok::<(), pels_interconnect::BusError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemorySlave {
    words: Vec<u32>,
    wait_states: u32,
    reads: u64,
    writes: u64,
}

impl MemorySlave {
    /// Creates a zero-initialized memory of `size_bytes` (rounded up to a
    /// whole word), with zero wait states.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero.
    pub fn new(size_bytes: u32) -> Self {
        Self::with_wait_states(size_bytes, 0)
    }

    /// Creates a memory with the given access-phase wait states.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero.
    pub fn with_wait_states(size_bytes: u32, wait_states: u32) -> Self {
        assert!(size_bytes > 0, "memory must have non-zero size");
        let words = (size_bytes as usize).div_ceil(4);
        MemorySlave {
            words: vec![0; words],
            wait_states,
            reads: 0,
            writes: 0,
        }
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> u32 {
        (self.words.len() * 4) as u32
    }

    /// Direct (bus-less) view of word `index`, for test assertions.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn word(&self, index: u32) -> u32 {
        self.words[index as usize]
    }

    /// Direct (bus-less) store to word `index`, for preloading contents.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_word(&mut self, index: u32, value: u32) {
        self.words[index as usize] = value;
    }

    /// Completed bus reads.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Completed bus writes.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    fn index(&self, offset: u32) -> Result<usize, BusError> {
        let idx = (offset / 4) as usize;
        if !offset.is_multiple_of(4) || idx >= self.words.len() {
            Err(BusError::Slave { addr: offset })
        } else {
            Ok(idx)
        }
    }
}

impl ApbSlave for MemorySlave {
    fn read(&mut self, offset: u32) -> Result<u32, BusError> {
        let idx = self.index(offset)?;
        self.reads += 1;
        Ok(self.words[idx])
    }

    fn write(&mut self, offset: u32, value: u32) -> Result<(), BusError> {
        let idx = self.index(offset)?;
        self.writes += 1;
        self.words[idx] = value;
        Ok(())
    }

    fn wait_states(&self, _offset: u32, _dir: Dir) -> u32 {
        self.wait_states
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_rounds_up_to_words() {
        let m = MemorySlave::new(5);
        assert_eq!(m.size_bytes(), 8);
    }

    #[test]
    fn misaligned_access_errors() {
        let mut m = MemorySlave::new(16);
        assert!(m.read(2).is_err());
        assert!(m.write(7, 0).is_err());
        assert_eq!(m.reads() + m.writes(), 0);
    }

    #[test]
    fn out_of_range_access_errors() {
        let mut m = MemorySlave::new(16);
        assert!(m.read(16).is_err());
        assert!(m.write(20, 1).is_err());
    }

    #[test]
    fn counters_track_accesses() {
        let mut m = MemorySlave::new(16);
        m.write(0, 1).unwrap();
        m.read(0).unwrap();
        m.read(4).unwrap();
        assert_eq!((m.reads(), m.writes()), (2, 1));
    }

    #[test]
    fn preload_and_inspect() {
        let mut m = MemorySlave::new(16);
        m.set_word(3, 99);
        assert_eq!(m.word(3), 99);
        assert_eq!(m.read(12).unwrap(), 99);
    }

    #[test]
    #[should_panic(expected = "non-zero size")]
    fn zero_size_panics() {
        let _ = MemorySlave::new(0);
    }
}
