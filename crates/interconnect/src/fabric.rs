//! The bus fabric: master ports, decode, arbitration and APB phase timing.

use crate::addr::{AddrRange, AddressMap};
use crate::apb::{ApbRequest, ApbResponse, ApbSlave, BusError, Dir};
use crate::arbiter::{Arbiter, ArbiterKind};
use pels_sim::{ActivityKind, ActivitySet, ComponentId};
use std::fmt;

/// Handle to a master port, returned by [`ApbFabric::add_master`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MasterId(usize);

impl MasterId {
    /// Raw port index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a slave, returned by [`ApbFabric::add_slave`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlaveId(usize);

impl SlaveId {
    /// Raw slave index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Fabric topology (paper Section IV-A: "the topology of the system
/// interconnect ... affect(s) the number of links that can access a group
/// of peripherals in parallel").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Topology {
    /// One transfer at a time anywhere on the bus — a single-channel APB,
    /// PULPissimo's peripheral-bus configuration.
    #[default]
    Shared,
    /// One concurrent transfer per slave — a crossbar in front of the APB
    /// endpoints; masters targeting different slaves proceed in parallel.
    PerSlaveCrossbar,
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::Shared => f.write_str("shared"),
            Topology::PerSlaveCrossbar => f.write_str("per-slave crossbar"),
        }
    }
}

/// Per-master arbitration statistics, cumulative over the fabric's
/// lifetime (unlike the windowed [`ApbFabric::drain_activity`] counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MasterStats {
    /// The master port's interned name (`ibex`, `pels.link0`, …).
    pub name: &'static str,
    /// Requests granted a lane.
    pub grants: u64,
    /// Master-cycles spent with a request pending but not granted.
    pub stall_cycles: u64,
}

/// Aggregate fabric statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Completed transfers.
    pub transfers: u64,
    /// Completed reads.
    pub reads: u64,
    /// Completed writes.
    pub writes: u64,
    /// Master-cycles spent with a request pending but not granted.
    pub stall_cycles: u64,
    /// Cycles with at least one transfer in flight.
    pub busy_cycles: u64,
    /// Transfers that failed to decode.
    pub decode_errors: u64,
    /// Transfers the slave rejected.
    pub slave_errors: u64,
}

#[derive(Debug, Clone, Copy)]
enum Phase {
    Setup,
    Access { remaining: u32 },
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    master: usize,
    /// Decoded `(slave index, offset)`; `None` when decode failed.
    target: Option<(usize, u32)>,
    request: ApbRequest,
    phase: Phase,
}

#[derive(Debug)]
struct MasterPort {
    id: ComponentId,
    pending: Option<ApbRequest>,
    response: Option<ApbResponse>,
    /// Windowed stall count, reset by `drain_activity`.
    stall_cycles: u64,
    /// Lifetime grant count.
    grants: u64,
    /// Lifetime stall count (never reset).
    stall_total: u64,
}

/// The peripheral interconnect.
///
/// Generic over the slave type `S` so integrations can use concrete slaves
/// (tests), or `Box<dyn ...>` trait objects (the SoC), and still reach the
/// typed slave through [`ApbFabric::slave_mut`].
///
/// Drive it by calling [`ApbFabric::issue`] from master models during the
/// combinational phase of a cycle and [`ApbFabric::tick`] exactly once per
/// cycle after all masters have run.
#[derive(Debug)]
pub struct ApbFabric<S> {
    topology: Topology,
    arbiter_kind: ArbiterKind,
    masters: Vec<MasterPort>,
    slaves: Vec<S>,
    map: AddressMap,
    /// One lane per concurrent transfer: lane 0 only for [`Topology::Shared`];
    /// one lane per slave plus a decode-error lane for the crossbar.
    lanes: Vec<Option<InFlight>>,
    arbiters: Vec<Box<dyn Arbiter>>,
    cycle: u64,
    stats: FabricStats,
    id: ComponentId,
    /// Slaves whose `read`/`write` executed during the most recent tick
    /// (bit per slave index).
    touched: u64,
    /// `(slave index, master index)` for every successful write committed
    /// during the most recent tick — the causal-flow layer uses this to
    /// attribute register-write effects (e.g. a GPIO pad change) to the
    /// master that caused them.
    write_commits: Vec<(usize, usize)>,
}

impl<S: ApbSlave> ApbFabric<S> {
    /// Creates a single-channel (shared) fabric with round-robin
    /// arbitration — the paper's configuration.
    pub fn shared() -> Self {
        Self::with_config(Topology::Shared, ArbiterKind::RoundRobin)
    }

    /// Creates a per-slave crossbar fabric with round-robin arbitration.
    pub fn crossbar() -> Self {
        Self::with_config(Topology::PerSlaveCrossbar, ArbiterKind::RoundRobin)
    }

    /// Creates a fabric with an explicit topology and arbitration policy.
    pub fn with_config(topology: Topology, arbiter_kind: ArbiterKind) -> Self {
        let mut fabric = ApbFabric {
            topology,
            arbiter_kind,
            masters: Vec::new(),
            slaves: Vec::new(),
            map: AddressMap::new(),
            lanes: Vec::new(),
            arbiters: Vec::new(),
            cycle: 0,
            stats: FabricStats::default(),
            id: ComponentId::intern("fabric"),
            touched: 0,
            write_commits: Vec::new(),
        };
        fabric.rebuild_lanes();
        fabric
    }

    fn rebuild_lanes(&mut self) {
        let n = match self.topology {
            Topology::Shared => 1,
            // One lane per slave + one for decode errors.
            Topology::PerSlaveCrossbar => self.slaves.len() + 1,
        };
        self.lanes = (0..n).map(|_| None).collect();
        self.arbiters = (0..n).map(|_| self.arbiter_kind.build()).collect();
    }

    /// The configured topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The configured arbitration policy.
    pub fn arbiter_kind(&self) -> ArbiterKind {
        self.arbiter_kind
    }

    /// Registers a master port.
    pub fn add_master(&mut self, name: impl AsRef<str>) -> MasterId {
        self.masters.push(MasterPort {
            id: ComponentId::intern(name.as_ref()),
            pending: None,
            response: None,
            stall_cycles: 0,
            grants: 0,
            stall_total: 0,
        });
        MasterId(self.masters.len() - 1)
    }

    /// Maps `slave` at `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` overlaps an already-mapped slave — bus maps are
    /// static hardware configuration, so this is a construction bug, not a
    /// runtime condition.
    pub fn add_slave(&mut self, range: AddrRange, slave: S) -> SlaveId {
        let idx = self.slaves.len();
        if let Err(e) = self.map.insert(range, idx) {
            panic!("fabric address map conflict: {e}");
        }
        self.slaves.push(slave);
        self.rebuild_lanes();
        SlaveId(idx)
    }

    /// Immutable access to a slave model.
    pub fn slave(&self, id: SlaveId) -> &S {
        &self.slaves[id.0]
    }

    /// Mutable access to a slave model (for SoC harnesses that need to tick
    /// peripheral-internal state).
    pub fn slave_mut(&mut self, id: SlaveId) -> &mut S {
        &mut self.slaves[id.0]
    }

    /// Iterates mutably over all slaves with their ids.
    pub fn slaves_mut(&mut self) -> impl Iterator<Item = (SlaveId, &mut S)> {
        self.slaves
            .iter_mut()
            .enumerate()
            .map(|(i, s)| (SlaveId(i), s))
    }

    /// Mutable access to the slave at raw index `idx` — the accessor
    /// active-list schedulers use to visit a sparse subset of slaves
    /// without walking [`ApbFabric::slaves_mut`].
    ///
    /// # Panics
    ///
    /// Panics if `idx >= slave_count()`.
    pub fn slave_mut_at(&mut self, idx: usize) -> &mut S {
        &mut self.slaves[idx]
    }

    /// Number of registered slaves.
    pub fn slave_count(&self) -> usize {
        self.slaves.len()
    }

    /// Number of registered master ports.
    pub fn master_count(&self) -> usize {
        self.masters.len()
    }

    /// Name given to a master port.
    pub fn master_name(&self, id: MasterId) -> &str {
        self.masters[id.0].id.name()
    }

    /// Whether `master` can accept a new request this cycle.
    pub fn can_issue(&self, master: MasterId) -> bool {
        let port = &self.masters[master.0];
        port.pending.is_none() && !self.master_in_flight(master.0)
    }

    fn master_in_flight(&self, master: usize) -> bool {
        self.lanes
            .iter()
            .flatten()
            .any(|f| f.master == master)
    }

    /// Queues a request on `master`'s port; it will arbitrate from the next
    /// [`ApbFabric::tick`].
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Busy`] if the master already has a request
    /// pending or in flight.
    pub fn issue(&mut self, master: MasterId, request: ApbRequest) -> Result<(), BusError> {
        if !self.can_issue(master) {
            return Err(BusError::Busy);
        }
        self.masters[master.0].pending = Some(request);
        Ok(())
    }

    /// Takes the response registered for `master`, if any.
    pub fn take_response(&mut self, master: MasterId) -> Option<ApbResponse> {
        self.masters[master.0].response.take()
    }

    /// Peeks at the registered response without consuming it.
    pub fn response(&self, master: MasterId) -> Option<&ApbResponse> {
        self.masters[master.0].response.as_ref()
    }

    /// Current fabric cycle (number of [`ApbFabric::tick`] calls).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// Per-master lifetime arbitration statistics, in port order.
    pub fn master_stats(&self) -> Vec<MasterStats> {
        self.masters
            .iter()
            .map(|p| MasterStats {
                name: p.id.name(),
                grants: p.grants,
                stall_cycles: p.stall_total,
            })
            .collect()
    }

    /// Lane index a request on `addr` arbitrates in.
    fn lane_of(&self, target: Option<(usize, u32)>) -> usize {
        match self.topology {
            Topology::Shared => 0,
            Topology::PerSlaveCrossbar => match target {
                Some((slave, _)) => slave,
                None => self.slaves.len(), // decode-error lane
            },
        }
    }

    /// Advances the bus by one clock cycle.
    ///
    /// Phase order within the tick:
    /// 1. in-flight transfers advance (setup → access; access completion
    ///    performs the slave read/write and registers the response);
    /// 2. lanes that were idle at the start of the cycle grant one pending
    ///    request each (its setup phase is this cycle).
    ///
    /// Completion and a new grant never share a lane in one cycle, giving
    /// the APB back-to-back rate of one transfer per two cycles.
    pub fn tick(&mut self) {
        self.touched = 0;
        if !self.write_commits.is_empty() {
            self.write_commits.clear();
        }
        // Quiescent fast path: nothing pending, nothing in flight. Only
        // the cycle counter advances — stall/busy accounting would be
        // zero this cycle anyway.
        if self.masters.iter().all(|p| p.pending.is_none())
            && self.lanes.iter().all(Option::is_none)
        {
            self.cycle += 1;
            return;
        }
        let lanes_free_at_start: Vec<bool> = self.lanes.iter().map(|l| l.is_none()).collect();

        // Phase 1: advance in-flight transfers.
        #[allow(clippy::needless_range_loop)] // lane indexes two arrays
        for lane in 0..self.lanes.len() {
            let Some(mut flight) = self.lanes[lane].take() else {
                continue;
            };
            // A transfer granted (setup) in cycle N reaches its access
            // phase in cycle N+1; with zero wait states it completes there.
            let finish = match flight.phase {
                Phase::Setup => {
                    let waits = match flight.target {
                        Some((slave, offset)) => {
                            self.slaves[slave].wait_states(offset, flight.request.dir)
                        }
                        None => 0,
                    };
                    if waits == 0 {
                        true
                    } else {
                        flight.phase = Phase::Access { remaining: waits - 1 };
                        false
                    }
                }
                Phase::Access { remaining: 0 } => true,
                Phase::Access { remaining } => {
                    flight.phase = Phase::Access {
                        remaining: remaining - 1,
                    };
                    false
                }
            };
            if finish {
                let result = self.complete(&flight);
                self.masters[flight.master].response = Some(ApbResponse {
                    request: flight.request,
                    result,
                    completed_cycle: self.cycle,
                });
                self.stats.transfers += 1;
                match flight.request.dir {
                    Dir::Read => self.stats.reads += 1,
                    Dir::Write => self.stats.writes += 1,
                }
            } else {
                self.lanes[lane] = Some(flight);
            }
        }

        // Phase 2: grant new transfers on lanes idle at the start of the
        // cycle.
        let decoded: Vec<Option<(usize, u32)>> = self
            .masters
            .iter()
            .map(|p| p.pending.map(|r| self.map.decode(r.addr)).unwrap_or(None))
            .collect();
        #[allow(clippy::needless_range_loop)] // lane indexes two arrays
        for lane in 0..self.lanes.len() {
            if !lanes_free_at_start[lane] || self.lanes[lane].is_some() {
                continue;
            }
            let requests: Vec<bool> = self
                .masters
                .iter()
                .enumerate()
                .map(|(m, p)| {
                    p.pending.is_some() && self.lane_of(decoded[m]) == lane
                })
                .collect();
            if let Some(granted) = self.arbiters[lane].grant(&requests) {
                let request = self.masters[granted]
                    .pending
                    .take()
                    .expect("granted master has a pending request");
                self.masters[granted].grants += 1;
                self.lanes[lane] = Some(InFlight {
                    master: granted,
                    target: decoded[granted],
                    request,
                    phase: Phase::Setup,
                });
            }
        }

        // Accounting.
        for port in &mut self.masters {
            if port.pending.is_some() {
                port.stall_cycles += 1;
                port.stall_total += 1;
                self.stats.stall_cycles += 1;
            }
        }
        // Busy = a transfer occupied a lane at the start of the cycle
        // (setup/access in progress) or was granted during it.
        if lanes_free_at_start.iter().any(|&free| !free)
            || self.lanes.iter().any(Option::is_some)
        {
            self.stats.busy_cycles += 1;
        }
        self.cycle += 1;
    }

    fn complete(&mut self, flight: &InFlight) -> Result<u32, BusError> {
        match flight.target {
            None => {
                self.stats.decode_errors += 1;
                Err(BusError::Decode {
                    addr: flight.request.addr,
                })
            }
            Some((slave, offset)) => {
                if slave < 64 {
                    self.touched |= 1 << slave;
                }
                let r = match flight.request.dir {
                    Dir::Read => self.slaves[slave].read(offset),
                    Dir::Write => self.slaves[slave]
                        .write(offset, flight.request.wdata)
                        .map(|()| 0),
                };
                if r.is_err() {
                    self.stats.slave_errors += 1;
                } else if flight.request.dir == Dir::Write {
                    self.write_commits.push((slave, flight.master));
                }
                r
            }
        }
    }

    /// Slaves whose `read`/`write` executed during the most recent
    /// [`ApbFabric::tick`], as a bit-per-slave-index mask. Slave indexes
    /// ≥ 64 are not representable (no SoC here comes close).
    pub fn touched_slaves(&self) -> u64 {
        self.touched
    }

    /// `(slave index, master index)` for every write committed during the
    /// most recent [`ApbFabric::tick`].
    pub fn write_commits(&self) -> &[(usize, usize)] {
        &self.write_commits
    }

    /// Shared access to a slave by raw index (as reported by
    /// [`ApbFabric::write_commits`]).
    pub fn slave_at(&self, idx: usize) -> &S {
        &self.slaves[idx]
    }

    /// Whether the fabric is completely idle: no request pending at any
    /// master port and no transfer in flight on any lane. A quiescent
    /// fabric's [`ApbFabric::tick`] only advances the cycle counter.
    pub fn is_quiescent(&self) -> bool {
        self.masters.iter().all(|p| p.pending.is_none())
            && self.lanes.iter().all(Option::is_none)
    }

    /// Advances the cycle counter by `k` without ticking — the
    /// whole-span equivalent of `k` quiescent [`ApbFabric::tick`]s.
    /// Callers must have checked [`ApbFabric::is_quiescent`].
    pub fn skip_cycles(&mut self, k: u64) {
        debug_assert!(self.is_quiescent());
        self.cycle += k;
    }

    /// Slaves targeted by a pending or in-flight request right now, as a
    /// bit-per-slave-index mask. A slave in this mask will be read or
    /// written on some upcoming tick unless the master withdraws.
    pub fn targeted_slaves(&self) -> u64 {
        let mut mask = 0u64;
        for port in &self.masters {
            if let Some(req) = port.pending {
                if let Some((slave, _)) = self.map.decode(req.addr) {
                    if slave < 64 {
                        mask |= 1 << slave;
                    }
                }
            }
        }
        for flight in self.lanes.iter().flatten() {
            if let Some((slave, _)) = flight.target {
                if slave < 64 {
                    mask |= 1 << slave;
                }
            }
        }
        mask
    }

    /// Drains per-master stall counts and aggregate transfer counts into an
    /// [`ActivitySet`]; counters restart from zero.
    pub fn drain_activity(&mut self, into: &mut ActivitySet) {
        for port in &mut self.masters {
            into.record(port.id, ActivityKind::BusStall, port.stall_cycles);
            port.stall_cycles = 0;
        }
        into.record(self.id, ActivityKind::BusTransfer, self.stats.transfers);
        into.record(self.id, ActivityKind::ActiveCycle, self.stats.busy_cycles);
        self.stats.transfers = 0;
        self.stats.busy_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemorySlave;

    fn fabric_1m_2s() -> (ApbFabric<MemorySlave>, MasterId, SlaveId, SlaveId) {
        let mut f = ApbFabric::shared();
        let m = f.add_master("m0");
        let s0 = f.add_slave(AddrRange::new(0x1000, 0x100), MemorySlave::new(0x100));
        let s1 = f.add_slave(AddrRange::new(0x2000, 0x100), MemorySlave::new(0x100));
        (f, m, s0, s1)
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (mut f, m, s0, _) = fabric_1m_2s();
        f.issue(m, ApbRequest::write(0x1010, 0xCAFE)).unwrap();
        f.tick(); // setup
        f.tick(); // access
        let resp = f.take_response(m).unwrap();
        assert!(resp.result.is_ok());
        assert_eq!(f.slave(s0).word(0x10 / 4), 0xCAFE);

        f.issue(m, ApbRequest::read(0x1010)).unwrap();
        f.tick();
        f.tick();
        assert_eq!(f.take_response(m).unwrap().rdata(), 0xCAFE);
    }

    #[test]
    fn transfer_takes_exactly_two_cycles() {
        let (mut f, m, _, _) = fabric_1m_2s();
        f.issue(m, ApbRequest::read(0x1000)).unwrap();
        f.tick(); // setup
        assert!(f.response(m).is_none());
        f.tick(); // access
        let resp = f.response(m).expect("response after access");
        assert_eq!(resp.completed_cycle, 1);
    }

    #[test]
    fn wait_states_extend_access_phase() {
        let mut f: ApbFabric<MemorySlave> = ApbFabric::shared();
        let m = f.add_master("m0");
        f.add_slave(
            AddrRange::new(0x0, 0x100),
            MemorySlave::with_wait_states(0x100, 2),
        );
        f.issue(m, ApbRequest::read(0x0)).unwrap();
        for _ in 0..3 {
            f.tick();
            assert!(f.response(m).is_none());
        }
        f.tick(); // setup + 2 waits + access = 4 ticks
        assert!(f.response(m).is_some());
    }

    #[test]
    fn decode_error_reported() {
        let (mut f, m, _, _) = fabric_1m_2s();
        f.issue(m, ApbRequest::read(0xDEAD_0000)).unwrap();
        f.tick();
        f.tick();
        let resp = f.take_response(m).unwrap();
        assert_eq!(
            resp.result,
            Err(BusError::Decode { addr: 0xDEAD_0000 })
        );
        assert_eq!(f.stats().decode_errors, 1);
    }

    #[test]
    fn busy_master_cannot_double_issue() {
        let (mut f, m, _, _) = fabric_1m_2s();
        f.issue(m, ApbRequest::read(0x1000)).unwrap();
        assert_eq!(f.issue(m, ApbRequest::read(0x1004)), Err(BusError::Busy));
        f.tick(); // granted -> in flight
        assert_eq!(f.issue(m, ApbRequest::read(0x1004)), Err(BusError::Busy));
        f.tick();
        let _ = f.take_response(m);
        assert!(f.can_issue(m));
    }

    #[test]
    fn shared_topology_serializes_masters() {
        let mut f: ApbFabric<MemorySlave> = ApbFabric::shared();
        let a = f.add_master("a");
        let b = f.add_master("b");
        f.add_slave(AddrRange::new(0x0, 0x100), MemorySlave::new(0x100));
        f.add_slave(AddrRange::new(0x100, 0x100), MemorySlave::new(0x100));
        f.issue(a, ApbRequest::write(0x0, 1)).unwrap();
        f.issue(b, ApbRequest::write(0x100, 2)).unwrap();
        f.tick(); // a setup (round-robin: a first)
        f.tick(); // a access -> done
        assert!(f.take_response(a).is_some());
        assert!(f.response(b).is_none());
        f.tick(); // b setup
        f.tick(); // b access
        assert!(f.take_response(b).is_some());
    }

    #[test]
    fn crossbar_runs_disjoint_slaves_in_parallel() {
        let mut f: ApbFabric<MemorySlave> = ApbFabric::crossbar();
        let a = f.add_master("a");
        let b = f.add_master("b");
        f.add_slave(AddrRange::new(0x0, 0x100), MemorySlave::new(0x100));
        f.add_slave(AddrRange::new(0x100, 0x100), MemorySlave::new(0x100));
        f.issue(a, ApbRequest::write(0x0, 1)).unwrap();
        f.issue(b, ApbRequest::write(0x100, 2)).unwrap();
        f.tick();
        f.tick();
        // Both complete in the same two cycles.
        assert!(f.take_response(a).is_some());
        assert!(f.take_response(b).is_some());
    }

    #[test]
    fn crossbar_still_serializes_same_slave() {
        let mut f: ApbFabric<MemorySlave> = ApbFabric::crossbar();
        let a = f.add_master("a");
        let b = f.add_master("b");
        f.add_slave(AddrRange::new(0x0, 0x100), MemorySlave::new(0x100));
        f.issue(a, ApbRequest::write(0x0, 1)).unwrap();
        f.issue(b, ApbRequest::write(0x4, 2)).unwrap();
        f.tick();
        f.tick();
        let done = [f.take_response(a).is_some(), f.take_response(b).is_some()];
        assert_eq!(done.iter().filter(|&&d| d).count(), 1);
    }

    #[test]
    fn round_robin_alternates_contending_masters() {
        let mut f: ApbFabric<MemorySlave> = ApbFabric::shared();
        let a = f.add_master("a");
        let b = f.add_master("b");
        f.add_slave(AddrRange::new(0x0, 0x100), MemorySlave::new(0x100));
        let mut order = Vec::new();
        for _ in 0..4 {
            if f.can_issue(a) {
                f.issue(a, ApbRequest::read(0x0)).unwrap();
            }
            if f.can_issue(b) {
                f.issue(b, ApbRequest::read(0x4)).unwrap();
            }
            f.tick();
            if f.take_response(a).is_some() {
                order.push('a');
            }
            if f.take_response(b).is_some() {
                order.push('b');
            }
        }
        assert_eq!(order, vec!['a', 'b']);
    }

    #[test]
    fn stats_and_activity_drain() {
        let (mut f, m, _, _) = fabric_1m_2s();
        f.issue(m, ApbRequest::write(0x1000, 5)).unwrap();
        f.tick();
        f.tick();
        let stats = f.stats();
        assert_eq!(stats.transfers, 1);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.busy_cycles, 2);
        let mut a = ActivitySet::new();
        f.drain_activity(&mut a);
        assert_eq!(a.count("fabric", ActivityKind::BusTransfer), 1);
        // Drained: second drain adds nothing.
        let mut a2 = ActivitySet::new();
        f.drain_activity(&mut a2);
        assert_eq!(a2.count("fabric", ActivityKind::BusTransfer), 0);
    }

    #[test]
    fn master_stats_track_grants_and_stalls_cumulatively() {
        let mut f: ApbFabric<MemorySlave> = ApbFabric::shared();
        let a = f.add_master("ms-test-a");
        let b = f.add_master("ms-test-b");
        f.add_slave(AddrRange::new(0x0, 0x100), MemorySlave::new(0x100));
        f.issue(a, ApbRequest::read(0x0)).unwrap();
        f.issue(b, ApbRequest::read(0x4)).unwrap();
        for _ in 0..4 {
            f.tick();
        }
        let stats = f.master_stats();
        assert_eq!(stats[0].name, "ms-test-a");
        assert_eq!(stats[0].grants, 1);
        assert_eq!(stats[1].grants, 1);
        // b waited while a's transfer occupied the shared lane.
        assert!(stats[1].stall_cycles > 0);
        // Unlike the windowed activity counters, master stats survive a
        // drain.
        let mut acts = ActivitySet::new();
        f.drain_activity(&mut acts);
        assert_eq!(f.master_stats()[1].stall_cycles, stats[1].stall_cycles);
    }

    #[test]
    fn crossbar_decode_error_uses_error_lane() {
        let mut f: ApbFabric<MemorySlave> = ApbFabric::crossbar();
        let a = f.add_master("a");
        let b = f.add_master("b");
        f.add_slave(AddrRange::new(0x0, 0x100), MemorySlave::new(0x100));
        // a: unmapped address (error lane); b: valid slave — both proceed
        // in parallel because they arbitrate in different lanes.
        f.issue(a, ApbRequest::read(0xDEAD_0000)).unwrap();
        f.issue(b, ApbRequest::write(0x0, 9)).unwrap();
        f.tick();
        f.tick();
        assert!(matches!(
            f.take_response(a).unwrap().result,
            Err(BusError::Decode { .. })
        ));
        assert!(f.take_response(b).unwrap().result.is_ok());
    }

    #[test]
    #[should_panic(expected = "address map conflict")]
    fn overlapping_slave_panics() {
        let mut f: ApbFabric<MemorySlave> = ApbFabric::shared();
        f.add_slave(AddrRange::new(0x0, 0x100), MemorySlave::new(0x100));
        f.add_slave(AddrRange::new(0x80, 0x100), MemorySlave::new(0x100));
    }
}
