//! Address ranges and the slave address map.

use crate::apb::BusError;
use std::fmt;

/// A half-open byte-address range `[base, base + size)`.
///
/// ```
/// use pels_interconnect::AddrRange;
/// let r = AddrRange::new(0x1A10_0000, 0x1000); // PULPissimo-style APB slot
/// assert!(r.contains(0x1A10_0FFC));
/// assert!(!r.contains(0x1A10_1000));
/// assert_eq!(r.offset_of(0x1A10_0004), Some(0x4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrRange {
    base: u32,
    size: u32,
}

impl AddrRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or `base + size` overflows `u32`.
    pub fn new(base: u32, size: u32) -> Self {
        assert!(size > 0, "address range must have non-zero size");
        assert!(
            base.checked_add(size - 1).is_some(),
            "address range {base:#x}+{size:#x} overflows the 32-bit space"
        );
        AddrRange { base, size }
    }

    /// The first address in the range.
    pub const fn base(&self) -> u32 {
        self.base
    }

    /// The range size in bytes.
    pub const fn size(&self) -> u32 {
        self.size
    }

    /// The last address in the range.
    pub const fn last(&self) -> u32 {
        self.base + (self.size - 1)
    }

    /// Whether `addr` falls inside the range.
    pub const fn contains(&self, addr: u32) -> bool {
        addr >= self.base && addr <= self.last()
    }

    /// Byte offset of `addr` from the base, if contained.
    pub fn offset_of(&self, addr: u32) -> Option<u32> {
        self.contains(addr).then(|| addr - self.base)
    }

    /// Whether two ranges share any address.
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        self.base <= other.last() && other.base <= self.last()
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#010x}, {:#010x}]", self.base, self.last())
    }
}

/// An ordered map from address ranges to slave indices.
///
/// Overlap is rejected at insertion time so decode is always unambiguous —
/// the behavioural equivalent of a bus decoder that is correct by
/// construction.
#[derive(Debug, Clone, Default)]
pub struct AddressMap {
    entries: Vec<(AddrRange, usize)>,
}

impl AddressMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a range mapping to `slave`.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Overlap`] if `range` overlaps an existing entry.
    pub fn insert(&mut self, range: AddrRange, slave: usize) -> Result<(), BusError> {
        for (existing, _) in &self.entries {
            if existing.overlaps(&range) {
                return Err(BusError::Overlap {
                    base: range.base(),
                    conflicting_base: existing.base(),
                });
            }
        }
        self.entries.push((range, slave));
        Ok(())
    }

    /// Decodes `addr` to `(slave index, offset within the slave)`.
    pub fn decode(&self, addr: u32) -> Option<(usize, u32)> {
        self.entries
            .iter()
            .find_map(|(r, s)| r.offset_of(addr).map(|off| (*s, off)))
    }

    /// Number of mapped ranges.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(range, slave index)` entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (AddrRange, usize)> + '_ {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_basics() {
        let r = AddrRange::new(0x100, 0x10);
        assert_eq!(r.base(), 0x100);
        assert_eq!(r.last(), 0x10F);
        assert!(r.contains(0x100) && r.contains(0x10F));
        assert!(!r.contains(0xFF) && !r.contains(0x110));
        assert_eq!(r.offset_of(0x108), Some(8));
        assert_eq!(r.offset_of(0x110), None);
    }

    #[test]
    fn range_at_top_of_address_space() {
        let r = AddrRange::new(0xFFFF_FF00, 0x100);
        assert_eq!(r.last(), 0xFFFF_FFFF);
        assert!(r.contains(0xFFFF_FFFF));
    }

    #[test]
    #[should_panic(expected = "non-zero size")]
    fn zero_size_rejected() {
        let _ = AddrRange::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflowing_range_rejected() {
        let _ = AddrRange::new(0xFFFF_FFFF, 2);
    }

    #[test]
    fn overlap_detection() {
        let a = AddrRange::new(0x100, 0x100);
        assert!(a.overlaps(&AddrRange::new(0x1FF, 1)));
        assert!(a.overlaps(&AddrRange::new(0x0, 0x101)));
        assert!(!a.overlaps(&AddrRange::new(0x200, 0x10)));
        assert!(!a.overlaps(&AddrRange::new(0x0, 0x100)));
    }

    #[test]
    fn map_decodes_to_slave_and_offset() {
        let mut m = AddressMap::new();
        m.insert(AddrRange::new(0x1000, 0x100), 0).unwrap();
        m.insert(AddrRange::new(0x2000, 0x100), 1).unwrap();
        assert_eq!(m.decode(0x1004), Some((0, 4)));
        assert_eq!(m.decode(0x20FC), Some((1, 0xFC)));
        assert_eq!(m.decode(0x3000), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn map_rejects_overlap() {
        let mut m = AddressMap::new();
        m.insert(AddrRange::new(0x1000, 0x100), 0).unwrap();
        let err = m.insert(AddrRange::new(0x10FF, 0x10), 1).unwrap_err();
        assert!(matches!(err, BusError::Overlap { .. }));
        assert_eq!(m.len(), 1);
    }
}
