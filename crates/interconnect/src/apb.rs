//! APB transfer types and the slave contract.

use std::error::Error;
use std::fmt;

/// Errors signalled on the bus (PSLVERR and decode failures) or detected at
/// fabric-configuration time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BusError {
    /// No slave is mapped at the requested address.
    Decode {
        /// The undecodable address.
        addr: u32,
    },
    /// The slave responded with an error (PSLVERR): offset not implemented,
    /// write to a read-only register, ...
    Slave {
        /// The offending address.
        addr: u32,
    },
    /// A master issued a request while one was already outstanding.
    Busy,
    /// An address range being added to the fabric overlaps an existing one.
    Overlap {
        /// Base of the rejected range.
        base: u32,
        /// Base of the already-mapped range it collides with.
        conflicting_base: u32,
    },
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::Decode { addr } => write!(f, "no slave mapped at {addr:#010x}"),
            BusError::Slave { addr } => write!(f, "slave error at {addr:#010x}"),
            BusError::Busy => write!(f, "master already has an outstanding request"),
            BusError::Overlap {
                base,
                conflicting_base,
            } => write!(
                f,
                "address range at {base:#010x} overlaps range at {conflicting_base:#010x}"
            ),
        }
    }
}

impl Error for BusError {}

/// Direction of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Read transfer (PWRITE = 0).
    Read,
    /// Write transfer (PWRITE = 1).
    Write,
}

/// One APB transfer request as issued by a master.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApbRequest {
    /// Byte address (word-aligned for 32-bit transfers).
    pub addr: u32,
    /// Transfer direction.
    pub dir: Dir,
    /// Write data (ignored for reads).
    pub wdata: u32,
}

impl ApbRequest {
    /// A 32-bit read from `addr`.
    pub fn read(addr: u32) -> Self {
        ApbRequest {
            addr,
            dir: Dir::Read,
            wdata: 0,
        }
    }

    /// A 32-bit write of `wdata` to `addr`.
    pub fn write(addr: u32, wdata: u32) -> Self {
        ApbRequest {
            addr,
            dir: Dir::Write,
            wdata,
        }
    }

    /// Whether this is a write.
    pub fn is_write(&self) -> bool {
        self.dir == Dir::Write
    }
}

impl fmt::Display for ApbRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dir {
            Dir::Read => write!(f, "R {:#010x}", self.addr),
            Dir::Write => write!(f, "W {:#010x} <= {:#010x}", self.addr, self.wdata),
        }
    }
}

/// A completed transfer, delivered to the issuing master's response
/// register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApbResponse {
    /// The originating request.
    pub request: ApbRequest,
    /// Read data, or the error. For writes `Ok(0)`.
    pub result: Result<u32, BusError>,
    /// Fabric cycle at which the access phase completed.
    pub completed_cycle: u64,
}

impl ApbResponse {
    /// Read data of a successful read.
    ///
    /// # Panics
    ///
    /// Panics if the transfer failed.
    pub fn rdata(&self) -> u32 {
        self.result.expect("bus transfer failed")
    }
}

/// The memory-mapped-slave contract.
///
/// `read`/`write` are invoked exactly once per transfer, during the access
/// phase, with the **offset from the slave's mapped base** (the paper's
/// sequenced-action encoding also addresses peripherals by a word offset
/// from a per-link base, Section III-2).
pub trait ApbSlave {
    /// Access-phase read.
    ///
    /// # Errors
    ///
    /// Implementations return [`BusError::Slave`] for unimplemented
    /// offsets.
    fn read(&mut self, offset: u32) -> Result<u32, BusError>;

    /// Access-phase write.
    ///
    /// # Errors
    ///
    /// Implementations return [`BusError::Slave`] for unimplemented or
    /// read-only offsets.
    fn write(&mut self, offset: u32, value: u32) -> Result<(), BusError>;

    /// Extra access-phase cycles for the given offset (default 0 — a
    /// zero-wait-state APB slave).
    fn wait_states(&self, _offset: u32, _dir: Dir) -> u32 {
        0
    }
}

impl<S: ApbSlave + ?Sized> ApbSlave for Box<S> {
    fn read(&mut self, offset: u32) -> Result<u32, BusError> {
        (**self).read(offset)
    }
    fn write(&mut self, offset: u32, value: u32) -> Result<(), BusError> {
        (**self).write(offset, value)
    }
    fn wait_states(&self, offset: u32, dir: Dir) -> u32 {
        (**self).wait_states(offset, dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_constructors() {
        let r = ApbRequest::read(0x10);
        assert_eq!(r.dir, Dir::Read);
        assert!(!r.is_write());
        let w = ApbRequest::write(0x10, 7);
        assert!(w.is_write());
        assert_eq!(w.wdata, 7);
    }

    #[test]
    fn request_display() {
        assert_eq!(ApbRequest::read(0x10).to_string(), "R 0x00000010");
        assert_eq!(
            ApbRequest::write(0x10, 0xFF).to_string(),
            "W 0x00000010 <= 0x000000ff"
        );
    }

    #[test]
    fn response_rdata_unwraps() {
        let resp = ApbResponse {
            request: ApbRequest::read(0),
            result: Ok(42),
            completed_cycle: 3,
        };
        assert_eq!(resp.rdata(), 42);
    }

    #[test]
    #[should_panic(expected = "bus transfer failed")]
    fn response_rdata_panics_on_error() {
        let resp = ApbResponse {
            request: ApbRequest::read(0),
            result: Err(BusError::Decode { addr: 0 }),
            completed_cycle: 0,
        };
        let _ = resp.rdata();
    }

    #[test]
    fn bus_error_messages() {
        assert!(BusError::Decode { addr: 0x40 }.to_string().contains("0x00000040"));
        assert!(BusError::Busy.to_string().contains("outstanding"));
    }

    #[test]
    fn boxed_slave_forwards() {
        struct S(u32);
        impl ApbSlave for S {
            fn read(&mut self, _o: u32) -> Result<u32, BusError> {
                Ok(self.0)
            }
            fn write(&mut self, _o: u32, v: u32) -> Result<(), BusError> {
                self.0 = v;
                Ok(())
            }
        }
        let mut b: Box<dyn ApbSlave> = Box::new(S(5));
        assert_eq!(b.read(0).unwrap(), 5);
        b.write(0, 9).unwrap();
        assert_eq!(b.read(0).unwrap(), 9);
        assert_eq!(b.wait_states(0, Dir::Read), 0);
    }
}
