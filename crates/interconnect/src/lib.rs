//! # pels-interconnect — APB-class peripheral interconnect
//!
//! Models the PULPissimo peripheral-bus path PELS issues *sequenced actions*
//! on (paper Sections III and IV-A): an APB-style single-channel bus (or,
//! optionally, a per-slave crossbar) in front of memory-mapped peripherals,
//! with **round-robin arbitration** among bus masters to guarantee fair
//! bandwidth distribution, exactly as the paper relies on PULPissimo's
//! round-robin arbiters.
//!
//! ## Timing model
//!
//! A transfer granted in cycle *N* performs its APB **setup** phase in *N*
//! and its **access** phase in *N + 1 + wait-states*; the slave commits a
//! write (or samples read data) at the end of the access phase, and the
//! master's response register is visible to the master from the following
//! cycle. With zero wait states the bus is occupied for 2 cycles per
//! transfer and a master observes read data 2 cycles after issuing — the
//! timing from which the paper's 7-cycle sequenced action and 3-cycle
//! `capture` derive (see `pels-core`).
//!
//! ## Example
//!
//! ```
//! use pels_interconnect::{AddrRange, ApbFabric, ApbRequest, MemorySlave};
//!
//! let mut fabric: ApbFabric<MemorySlave> = ApbFabric::shared();
//! let m = fabric.add_master("cpu");
//! fabric.add_slave(AddrRange::new(0x1000, 0x100), MemorySlave::new(0x100));
//!
//! fabric.issue(m, ApbRequest::write(0x1004, 0xdead_beef)).unwrap();
//! fabric.tick(); // setup
//! fabric.tick(); // access: write commits
//! let resp = fabric.take_response(m).expect("write completed");
//! assert!(resp.result.is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod apb;
pub mod arbiter;
pub mod fabric;
pub mod memory;

pub use addr::{AddrRange, AddressMap};
pub use apb::{ApbRequest, ApbResponse, ApbSlave, BusError};
pub use arbiter::{Arbiter, ArbiterKind, FixedPriority, RoundRobin};
pub use fabric::{ApbFabric, FabricStats, MasterId, MasterStats, SlaveId, Topology};
pub use memory::MemorySlave;
