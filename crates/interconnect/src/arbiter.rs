//! Bus arbiters.
//!
//! PULPissimo's interconnect uses round-robin arbitration to guarantee fair
//! bandwidth distribution among masters (paper Section IV-A); a
//! fixed-priority alternative is provided for the arbitration ablation,
//! which shows the worst-case link-latency divergence the paper warns about
//! in Section III-1.

use std::fmt;

/// Chooses one requester among a set each cycle.
///
/// `Send` is a supertrait so fabrics (which box their arbiters) can move
/// across worker threads in batch sweeps.
pub trait Arbiter: fmt::Debug + Send {
    /// Grants one of the requesting indices (`requests[i] == true`), or
    /// `None` if nobody requests.
    fn grant(&mut self, requests: &[bool]) -> Option<usize>;

    /// Stable policy name for reports.
    fn policy(&self) -> &'static str;

    /// Resets internal state (e.g. the round-robin pointer).
    fn reset(&mut self);
}

/// Selects an arbiter implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ArbiterKind {
    /// Fair rotating-priority arbitration (the paper's configuration).
    #[default]
    RoundRobin,
    /// Lowest index always wins — starves high indices under contention.
    FixedPriority,
}

impl ArbiterKind {
    /// Instantiates the arbiter.
    pub fn build(self) -> Box<dyn Arbiter> {
        match self {
            ArbiterKind::RoundRobin => Box::new(RoundRobin::new()),
            ArbiterKind::FixedPriority => Box::new(FixedPriority),
        }
    }
}

impl fmt::Display for ArbiterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArbiterKind::RoundRobin => f.write_str("round-robin"),
            ArbiterKind::FixedPriority => f.write_str("fixed-priority"),
        }
    }
}

/// Rotating-priority (round-robin) arbiter.
///
/// After granting index *i*, the highest priority for the next arbitration
/// is *i + 1*, so every requester is served within `N` grants under full
/// contention.
///
/// ```
/// use pels_interconnect::{Arbiter, RoundRobin};
/// let mut rr = RoundRobin::new();
/// let all = [true, true, true];
/// assert_eq!(rr.grant(&all), Some(0));
/// assert_eq!(rr.grant(&all), Some(1));
/// assert_eq!(rr.grant(&all), Some(2));
/// assert_eq!(rr.grant(&all), Some(0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates an arbiter whose initial highest priority is index 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Arbiter for RoundRobin {
    fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        let n = requests.len();
        if n == 0 {
            return None;
        }
        for k in 0..n {
            let i = (self.next + k) % n;
            if requests[i] {
                self.next = (i + 1) % n;
                return Some(i);
            }
        }
        None
    }

    fn policy(&self) -> &'static str {
        "round-robin"
    }

    fn reset(&mut self) {
        self.next = 0;
    }
}

/// Fixed-priority arbiter: lowest requesting index always wins.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedPriority;

impl Arbiter for FixedPriority {
    fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        requests.iter().position(|&r| r)
    }

    fn policy(&self) -> &'static str {
        "fixed-priority"
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_fair_under_full_contention() {
        let mut rr = RoundRobin::new();
        let reqs = [true; 4];
        let mut grants = [0u32; 4];
        for _ in 0..400 {
            grants[rr.grant(&reqs).unwrap()] += 1;
        }
        assert_eq!(grants, [100; 4]);
    }

    #[test]
    fn round_robin_skips_idle_masters() {
        let mut rr = RoundRobin::new();
        assert_eq!(rr.grant(&[false, true, false]), Some(1));
        assert_eq!(rr.grant(&[true, false, true]), Some(2));
        assert_eq!(rr.grant(&[true, false, true]), Some(0));
    }

    #[test]
    fn round_robin_none_when_idle() {
        let mut rr = RoundRobin::new();
        assert_eq!(rr.grant(&[false, false]), None);
        assert_eq!(rr.grant(&[]), None);
    }

    #[test]
    fn round_robin_reset_restores_priority() {
        let mut rr = RoundRobin::new();
        let _ = rr.grant(&[true, true]);
        rr.reset();
        assert_eq!(rr.grant(&[true, true]), Some(0));
    }

    #[test]
    fn fixed_priority_starves_high_indices() {
        let mut fp = FixedPriority;
        for _ in 0..10 {
            assert_eq!(fp.grant(&[true, true, true]), Some(0));
        }
        assert_eq!(fp.grant(&[false, false, true]), Some(2));
    }

    #[test]
    fn kind_builds_matching_policy() {
        assert_eq!(ArbiterKind::RoundRobin.build().policy(), "round-robin");
        assert_eq!(
            ArbiterKind::FixedPriority.build().policy(),
            "fixed-priority"
        );
        assert_eq!(ArbiterKind::default(), ArbiterKind::RoundRobin);
    }
}
