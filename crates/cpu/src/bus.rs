//! The CPU ↔ platform memory interface.
//!
//! Ibex in PULPissimo sees two timing classes of memory: the tightly
//! coupled L2 SRAM (instruction fetches, data — fixed short latency) and
//! the APB peripheral space (variable latency: arbitration + wait states).
//! [`CpuBus`] exposes exactly that split: [`CpuBus::data`] either
//! completes immediately with a known extra cost ([`DataResult::Done`]) or
//! goes [`DataResult::Pending`] and finishes asynchronously through
//! [`CpuBus::poll`] while the pipeline stalls.

/// A data-side memory request (always a 32-bit word transaction; the core
/// performs sub-word extraction/merging itself, like Ibex's LSU).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataReq {
    /// Word-aligned byte address.
    pub addr: u32,
    /// Write (vs read).
    pub write: bool,
    /// Write data (full word; pre-merged by the core).
    pub wdata: u32,
    /// Byte-lane strobe for writes (`0b1111` = full word).
    pub strobe: u8,
}

impl DataReq {
    /// A full-word read.
    pub fn read(addr: u32) -> Self {
        DataReq {
            addr,
            write: false,
            wdata: 0,
            strobe: 0,
        }
    }

    /// A write of the byte lanes selected by `strobe`.
    pub fn write(addr: u32, wdata: u32, strobe: u8) -> Self {
        DataReq {
            addr,
            write: true,
            wdata,
            strobe,
        }
    }
}

/// Outcome of issuing a [`DataReq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataResult {
    /// Completed in this cycle with `extra_cycles` of additional stall
    /// beyond the base load/store cost (L2 path).
    Done {
        /// Read data (0 for writes).
        value: u32,
        /// Extra stall cycles (e.g. SRAM banking conflicts).
        extra_cycles: u32,
    },
    /// Issued to the peripheral interconnect; the result arrives via
    /// [`CpuBus::poll`] some cycles later.
    Pending,
    /// The address decodes nowhere or the slave rejected the access.
    Fault,
}

/// The platform seen by the core.
pub trait CpuBus {
    /// Fetches the instruction word at `addr`. Single-cycle issue; the
    /// implementation charges fetch activity to the memory it reads.
    fn fetch(&mut self, addr: u32) -> u32;

    /// Reads the instruction word at `addr` with **no side effects** —
    /// no fetch accounting, no activity charged. The superblock bulk
    /// verifier peeks every word a sealed block covers before deciding
    /// to execute it; the real fetch traffic is emitted afterwards (or
    /// by the per-step path, on a mismatch).
    fn peek_fetch(&self, addr: u32) -> u32;

    /// Charges `n` word fetches' accounting without transferring data:
    /// the bulk verifier already peeked the words, so this emits the
    /// same fetch-count/activity side effects `n` [`CpuBus::fetch`]
    /// calls would, in one step.
    fn charge_fetches(&mut self, n: u32);

    /// Issues a data access.
    fn data(&mut self, req: DataReq) -> DataResult;

    /// Polls for the completion of a [`DataResult::Pending`] access:
    /// `None` while in flight, then `Some(Ok(rdata))` or `Some(Err(()))`
    /// on a bus error.
    fn poll(&mut self) -> Option<Result<u32, ()>>;
}

/// A flat-memory bus for unit tests and self-contained examples: every
/// access is an L2-class access with zero extra cycles, except an optional
/// "slow region" which exercises the pending path.
#[derive(Debug, Clone)]
pub struct SimpleBus {
    words: Vec<u32>,
    slow_base: u32,
    slow_size: u32,
    slow_latency: u32,
    pending: Option<(DataReq, u32)>,
    /// Instruction fetches issued.
    pub fetches: u64,
    /// Data reads issued.
    pub reads: u64,
    /// Data writes issued.
    pub writes: u64,
}

impl SimpleBus {
    /// Creates a bus backed by `size_bytes` of zeroed memory.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero.
    pub fn new(size_bytes: u32) -> Self {
        assert!(size_bytes > 0, "memory must have non-zero size");
        SimpleBus {
            words: vec![0; (size_bytes as usize).div_ceil(4)],
            slow_base: u32::MAX,
            slow_size: 0,
            slow_latency: 0,
            pending: None,
            fetches: 0,
            reads: 0,
            writes: 0,
        }
    }

    /// Declares `[base, base+size)` as a slow region answering after
    /// `latency` polls — a stand-in for the APB path.
    pub fn set_slow_region(&mut self, base: u32, size: u32, latency: u32) {
        self.slow_base = base;
        self.slow_size = size;
        self.slow_latency = latency;
    }

    /// Loads `words` at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the program does not fit.
    pub fn load(&mut self, addr: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            let idx = (addr / 4) as usize + i;
            self.words[idx] = w;
        }
    }

    /// Direct word view for assertions.
    pub fn word(&self, addr: u32) -> u32 {
        self.words[(addr / 4) as usize]
    }

    fn in_slow(&self, addr: u32) -> bool {
        self.slow_size > 0 && addr >= self.slow_base && addr - self.slow_base < self.slow_size
    }

    fn access(&mut self, req: DataReq) -> Result<u32, ()> {
        let idx = (req.addr / 4) as usize;
        if idx >= self.words.len() {
            return Err(());
        }
        if req.write {
            self.writes += 1;
            let mut w = self.words[idx];
            for lane in 0..4 {
                if req.strobe & (1 << lane) != 0 {
                    let mask = 0xFFu32 << (lane * 8);
                    w = (w & !mask) | (req.wdata & mask);
                }
            }
            self.words[idx] = w;
            Ok(0)
        } else {
            self.reads += 1;
            Ok(self.words[idx])
        }
    }
}

impl CpuBus for SimpleBus {
    fn fetch(&mut self, addr: u32) -> u32 {
        self.fetches += 1;
        self.words
            .get((addr / 4) as usize)
            .copied()
            .unwrap_or(0)
    }

    fn peek_fetch(&self, addr: u32) -> u32 {
        self.words
            .get((addr / 4) as usize)
            .copied()
            .unwrap_or(0)
    }

    fn charge_fetches(&mut self, n: u32) {
        self.fetches += u64::from(n);
    }

    fn data(&mut self, req: DataReq) -> DataResult {
        if self.in_slow(req.addr) {
            self.pending = Some((req, self.slow_latency));
            return DataResult::Pending;
        }
        match self.access(req) {
            Ok(value) => DataResult::Done {
                value,
                extra_cycles: 0,
            },
            Err(()) => DataResult::Fault,
        }
    }

    fn poll(&mut self) -> Option<Result<u32, ()>> {
        let (req, remaining) = self.pending.take()?;
        if remaining > 0 {
            self.pending = Some((req, remaining - 1));
            return None;
        }
        Some(self.access(req).map_err(|_| ()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strobe_merges_byte_lanes() {
        let mut b = SimpleBus::new(64);
        b.load(0, &[0xAABB_CCDD]);
        let r = b.data(DataReq::write(0, 0x1122_3344, 0b0101));
        assert!(matches!(r, DataResult::Done { .. }));
        assert_eq!(b.word(0), 0xAA22_CC44);
    }

    #[test]
    fn out_of_range_faults() {
        let mut b = SimpleBus::new(16);
        assert_eq!(b.data(DataReq::read(64)), DataResult::Fault);
    }

    #[test]
    fn slow_region_goes_pending_then_completes() {
        let mut b = SimpleBus::new(64);
        b.load(32, &[7]);
        b.set_slow_region(32, 4, 2);
        assert_eq!(b.data(DataReq::read(32)), DataResult::Pending);
        assert_eq!(b.poll(), None);
        assert_eq!(b.poll(), None);
        assert_eq!(b.poll(), Some(Ok(7)));
        assert_eq!(b.poll(), None, "pending consumed");
    }

    #[test]
    fn counters_track_traffic() {
        let mut b = SimpleBus::new(64);
        let _ = b.fetch(0);
        let _ = b.data(DataReq::read(0));
        let _ = b.data(DataReq::write(4, 1, 0xF));
        assert_eq!((b.fetches, b.reads, b.writes), (1, 1, 1));
    }
}
