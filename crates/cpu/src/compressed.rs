//! RV32C — the compressed instruction extension.
//!
//! Ibex is an RV32IMC core; real baseline firmware is compiled with the
//! C extension, which matters for the paper's memory-activity argument
//! (compressed code halves fetch traffic per instruction for much of the
//! instruction mix). Each 16-bit encoding expands to its 32-bit
//! equivalent [`Instr`], the standard implementation technique (and
//! Ibex's actual decompressor structure).

use crate::decode::DecodeError;
use crate::instr::{AluOp, BranchOp, Instr, LoadOp, StoreOp};

#[inline]
fn creg(bits: u16) -> u8 {
    // Compressed register fields address x8..x15.
    (bits & 0x7) as u8 + 8
}

/// Sign-extends the low `bits` bits of `v`.
#[inline]
fn sext(v: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((v << shift) as i32) >> shift
}

/// Whether a 16-bit parcel is a compressed instruction (the two low bits
/// of a 32-bit encoding are always `11`).
pub fn is_compressed(halfword: u16) -> bool {
    halfword & 0b11 != 0b11
}

/// Decodes one 16-bit compressed instruction into its expanded 32-bit
/// form.
///
/// # Errors
///
/// Returns [`DecodeError`] for reserved or unsupported (floating-point)
/// encodings.
pub fn decode_compressed(halfword: u16, pc: u32) -> Result<Instr, DecodeError> {
    let illegal = || DecodeError {
        word: u32::from(halfword),
        pc,
    };
    let op = halfword & 0b11;
    let funct3 = (halfword >> 13) & 0b111;
    let w = u32::from(halfword);

    match (op, funct3) {
        // ---- Quadrant 0 ----
        (0b00, 0b000) => {
            // C.ADDI4SPN: addi rd', x2, nzuimm
            let imm = ((w >> 7) & 0x30) // imm[5:4]
                | ((w >> 1) & 0x3C0)    // imm[9:6]
                | ((w >> 4) & 0x4)      // imm[2]
                | ((w >> 2) & 0x8); // imm[3]
            if imm == 0 {
                return Err(illegal()); // includes the all-zero illegal encoding
            }
            Ok(Instr::AluImm {
                op: AluOp::Add,
                rd: creg(halfword >> 2),
                rs1: 2,
                imm: imm as i32,
            })
        }
        (0b00, 0b010) => {
            // C.LW: lw rd', offset(rs1')
            let imm = ((w >> 7) & 0x38) | ((w << 1) & 0x40) | ((w >> 4) & 0x4);
            Ok(Instr::Load {
                op: LoadOp::Word,
                rd: creg(halfword >> 2),
                rs1: creg(halfword >> 7),
                offset: imm as i32,
            })
        }
        (0b00, 0b110) => {
            // C.SW: sw rs2', offset(rs1')
            let imm = ((w >> 7) & 0x38) | ((w << 1) & 0x40) | ((w >> 4) & 0x4);
            Ok(Instr::Store {
                op: StoreOp::Word,
                rs1: creg(halfword >> 7),
                rs2: creg(halfword >> 2),
                offset: imm as i32,
            })
        }

        // ---- Quadrant 1 ----
        (0b01, 0b000) => {
            // C.ADDI (C.NOP when rd=0): addi rd, rd, imm
            let rd = ((halfword >> 7) & 0x1F) as u8;
            let imm = sext(((w >> 7) & 0x20) | ((w >> 2) & 0x1F), 6);
            Ok(Instr::AluImm {
                op: AluOp::Add,
                rd,
                rs1: rd,
                imm,
            })
        }
        (0b01, 0b001) => {
            // C.JAL: jal x1, offset
            Ok(Instr::Jal {
                rd: 1,
                offset: cj_offset(w),
            })
        }
        (0b01, 0b010) => {
            // C.LI: addi rd, x0, imm
            let rd = ((halfword >> 7) & 0x1F) as u8;
            let imm = sext(((w >> 7) & 0x20) | ((w >> 2) & 0x1F), 6);
            Ok(Instr::AluImm {
                op: AluOp::Add,
                rd,
                rs1: 0,
                imm,
            })
        }
        (0b01, 0b011) => {
            let rd = ((halfword >> 7) & 0x1F) as u8;
            if rd == 2 {
                // C.ADDI16SP: addi x2, x2, nzimm
                let imm = sext(
                    ((w >> 3) & 0x200)
                        | ((w >> 2) & 0x10)
                        | ((w << 1) & 0x40)
                        | ((w << 4) & 0x180)
                        | ((w << 3) & 0x20),
                    10,
                );
                if imm == 0 {
                    return Err(illegal());
                }
                Ok(Instr::AluImm {
                    op: AluOp::Add,
                    rd: 2,
                    rs1: 2,
                    imm,
                })
            } else {
                // C.LUI: lui rd, nzimm
                let imm = sext(((w << 5) & 0x20000) | ((w << 10) & 0x1F000), 18) as u32;
                if imm == 0 {
                    return Err(illegal());
                }
                Ok(Instr::Lui {
                    rd,
                    imm: imm & 0xFFFF_F000,
                })
            }
        }
        (0b01, 0b100) => {
            let rd = creg(halfword >> 7);
            match (halfword >> 10) & 0b11 {
                0b00 => {
                    // C.SRLI
                    let shamt = ((w >> 7) & 0x20) | ((w >> 2) & 0x1F);
                    Ok(Instr::AluImm {
                        op: AluOp::Srl,
                        rd,
                        rs1: rd,
                        imm: shamt as i32,
                    })
                }
                0b01 => {
                    // C.SRAI
                    let shamt = ((w >> 7) & 0x20) | ((w >> 2) & 0x1F);
                    Ok(Instr::AluImm {
                        op: AluOp::Sra,
                        rd,
                        rs1: rd,
                        imm: shamt as i32,
                    })
                }
                0b10 => {
                    // C.ANDI
                    let imm = sext(((w >> 7) & 0x20) | ((w >> 2) & 0x1F), 6);
                    Ok(Instr::AluImm {
                        op: AluOp::And,
                        rd,
                        rs1: rd,
                        imm,
                    })
                }
                _ => {
                    // Register-register group.
                    if halfword & (1 << 12) != 0 {
                        return Err(illegal()); // C.SUBW/C.ADDW are RV64
                    }
                    let rs2 = creg(halfword >> 2);
                    let op = match (halfword >> 5) & 0b11 {
                        0b00 => AluOp::Sub,
                        0b01 => AluOp::Xor,
                        0b10 => AluOp::Or,
                        _ => AluOp::And,
                    };
                    Ok(Instr::Alu {
                        op,
                        rd,
                        rs1: rd,
                        rs2,
                    })
                }
            }
        }
        (0b01, 0b101) => Ok(Instr::Jal {
            rd: 0,
            offset: cj_offset(w),
        }),
        (0b01, 0b110) | (0b01, 0b111) => {
            // C.BEQZ / C.BNEZ: branch rs1', x0
            let offset = sext(
                ((w >> 4) & 0x100)
                    | ((w >> 7) & 0x18)
                    | ((w << 1) & 0xC0)
                    | ((w >> 2) & 0x6)
                    | ((w << 3) & 0x20),
                9,
            );
            Ok(Instr::Branch {
                op: if funct3 == 0b110 {
                    BranchOp::Eq
                } else {
                    BranchOp::Ne
                },
                rs1: creg(halfword >> 7),
                rs2: 0,
                offset,
            })
        }

        // ---- Quadrant 2 ----
        (0b10, 0b000) => {
            // C.SLLI
            let rd = ((halfword >> 7) & 0x1F) as u8;
            let shamt = ((w >> 7) & 0x20) | ((w >> 2) & 0x1F);
            Ok(Instr::AluImm {
                op: AluOp::Sll,
                rd,
                rs1: rd,
                imm: shamt as i32,
            })
        }
        (0b10, 0b010) => {
            // C.LWSP: lw rd, offset(x2)
            let rd = ((halfword >> 7) & 0x1F) as u8;
            if rd == 0 {
                return Err(illegal());
            }
            let imm = ((w >> 7) & 0x20) | ((w >> 2) & 0x1C) | ((w << 4) & 0xC0);
            Ok(Instr::Load {
                op: LoadOp::Word,
                rd,
                rs1: 2,
                offset: imm as i32,
            })
        }
        (0b10, 0b100) => {
            let rs1 = ((halfword >> 7) & 0x1F) as u8;
            let rs2 = ((halfword >> 2) & 0x1F) as u8;
            let bit12 = halfword & (1 << 12) != 0;
            match (bit12, rs1, rs2) {
                (false, 0, _) => Err(illegal()),
                (false, _, 0) => Ok(Instr::Jalr {
                    // C.JR
                    rd: 0,
                    rs1,
                    offset: 0,
                }),
                (false, _, _) => Ok(Instr::Alu {
                    // C.MV: add rd, x0, rs2
                    op: AluOp::Add,
                    rd: rs1,
                    rs1: 0,
                    rs2,
                }),
                (true, 0, 0) => Ok(Instr::Ebreak),
                (true, _, 0) => Ok(Instr::Jalr {
                    // C.JALR
                    rd: 1,
                    rs1,
                    offset: 0,
                }),
                (true, _, _) => Ok(Instr::Alu {
                    // C.ADD: add rd, rd, rs2
                    op: AluOp::Add,
                    rd: rs1,
                    rs1,
                    rs2,
                }),
            }
        }
        (0b10, 0b110) => {
            // C.SWSP: sw rs2, offset(x2)
            let imm = ((w >> 7) & 0x3C) | ((w >> 1) & 0xC0);
            Ok(Instr::Store {
                op: StoreOp::Word,
                rs1: 2,
                rs2: ((halfword >> 2) & 0x1F) as u8,
                offset: imm as i32,
            })
        }
        _ => Err(illegal()),
    }
}

/// The CJ-format offset (C.J / C.JAL).
fn cj_offset(w: u32) -> i32 {
    sext(
        ((w >> 1) & 0x800)
            | ((w >> 7) & 0x10)
            | ((w >> 1) & 0x300)
            | ((w << 2) & 0x400)
            | ((w >> 1) & 0x40)
            | ((w << 1) & 0x80)
            | ((w >> 2) & 0xE)
            | ((w << 3) & 0x20),
        12,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parcel_classification() {
        assert!(is_compressed(0x0001)); // c.nop
        assert!(is_compressed(0x4501)); // c.li
        assert!(!is_compressed(0x0013)); // addi (32-bit low parcel)
    }

    // Golden encodings cross-checked against the RISC-V spec listings /
    // GNU as output.
    #[test]
    fn golden_expansions() {
        // c.nop = 0x0001 -> addi x0, x0, 0
        assert_eq!(
            decode_compressed(0x0001, 0).unwrap(),
            Instr::AluImm { op: AluOp::Add, rd: 0, rs1: 0, imm: 0 }
        );
        // c.li a0, 5 = 0x4515
        assert_eq!(
            decode_compressed(0x4515, 0).unwrap(),
            Instr::AluImm { op: AluOp::Add, rd: 10, rs1: 0, imm: 5 }
        );
        // c.addi a0, -1 = 0x157d
        assert_eq!(
            decode_compressed(0x157D, 0).unwrap(),
            Instr::AluImm { op: AluOp::Add, rd: 10, rs1: 10, imm: -1 }
        );
        // c.mv a0, a1 = 0x852e
        assert_eq!(
            decode_compressed(0x852E, 0).unwrap(),
            Instr::Alu { op: AluOp::Add, rd: 10, rs1: 0, rs2: 11 }
        );
        // c.add a0, a1 = 0x952e
        assert_eq!(
            decode_compressed(0x952E, 0).unwrap(),
            Instr::Alu { op: AluOp::Add, rd: 10, rs1: 10, rs2: 11 }
        );
        // c.lw a2, 0(a0) = 0x4110
        assert_eq!(
            decode_compressed(0x4110, 0).unwrap(),
            Instr::Load { op: LoadOp::Word, rd: 12, rs1: 10, offset: 0 }
        );
        // c.sw a2, 4(a0) = 0xc150
        assert_eq!(
            decode_compressed(0xC150, 0).unwrap(),
            Instr::Store { op: StoreOp::Word, rs1: 10, rs2: 12, offset: 4 }
        );
        // c.j +8 relative = 0xa021
        assert_eq!(
            decode_compressed(0xA021, 0).unwrap(),
            Instr::Jal { rd: 0, offset: 8 }
        );
        // c.jr ra = 0x8082
        assert_eq!(
            decode_compressed(0x8082, 0).unwrap(),
            Instr::Jalr { rd: 0, rs1: 1, offset: 0 }
        );
        // c.beqz a0, +6 = 0xc119
        assert_eq!(
            decode_compressed(0xC119, 0).unwrap(),
            Instr::Branch { op: BranchOp::Eq, rs1: 10, rs2: 0, offset: 6 }
        );
        // c.slli a0, 1 = 0x0506
        assert_eq!(
            decode_compressed(0x0506, 0).unwrap(),
            Instr::AluImm { op: AluOp::Sll, rd: 10, rs1: 10, imm: 1 }
        );
        // c.lwsp a0, 8(sp) = 0x4522
        assert_eq!(
            decode_compressed(0x4522, 0).unwrap(),
            Instr::Load { op: LoadOp::Word, rd: 10, rs1: 2, offset: 8 }
        );
        // c.swsp a0, 12(sp) = 0xc62a
        assert_eq!(
            decode_compressed(0xC62A, 0).unwrap(),
            Instr::Store { op: StoreOp::Word, rs1: 2, rs2: 10, offset: 12 }
        );
        // c.addi4spn a0, sp, 16 = 0x0808
        assert_eq!(
            decode_compressed(0x0808, 0).unwrap(),
            Instr::AluImm { op: AluOp::Add, rd: 10, rs1: 2, imm: 16 }
        );
        // c.addi16sp sp, -64 = 0x7139
        assert_eq!(
            decode_compressed(0x7139, 0).unwrap(),
            Instr::AluImm { op: AluOp::Add, rd: 2, rs1: 2, imm: -64 }
        );
        // c.lui a0, 0x1 = 0x6505
        assert_eq!(
            decode_compressed(0x6505, 0).unwrap(),
            Instr::Lui { rd: 10, imm: 0x1000 }
        );
        // c.sub a0, a1 = 0x8d0d
        assert_eq!(
            decode_compressed(0x8D0D, 0).unwrap(),
            Instr::Alu { op: AluOp::Sub, rd: 10, rs1: 10, rs2: 11 }
        );
        // c.andi a0, 0xf = 0x893d
        assert_eq!(
            decode_compressed(0x893D, 0).unwrap(),
            Instr::AluImm { op: AluOp::And, rd: 10, rs1: 10, imm: 0xF }
        );
        // c.ebreak = 0x9002
        assert_eq!(decode_compressed(0x9002, 0).unwrap(), Instr::Ebreak);
    }

    #[test]
    fn reserved_encodings_rejected() {
        assert!(decode_compressed(0x0000, 0).is_err()); // all-zero
        assert!(decode_compressed(0x4002, 4).is_err()); // c.lwsp with rd=0
        assert!(decode_compressed(0x8002, 4).is_err()); // c.jr with rs1=0
    }

    #[test]
    fn cj_offset_handles_negative() {
        // c.j -4: offset field for -4 = 0xbfed (from GNU as).
        assert_eq!(
            decode_compressed(0xBFED, 0).unwrap(),
            Instr::Jal { rd: 0, offset: -6 }
        );
    }
}
