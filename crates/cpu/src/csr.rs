//! Machine-mode control and status registers.

/// CSR addresses used by the core.
pub mod addr {
    /// Machine status.
    pub const MSTATUS: u16 = 0x300;
    /// Machine interrupt enable.
    pub const MIE: u16 = 0x304;
    /// Machine trap vector base (Ibex: vectored mode).
    pub const MTVEC: u16 = 0x305;
    /// Machine scratch.
    pub const MSCRATCH: u16 = 0x340;
    /// Machine exception PC.
    pub const MEPC: u16 = 0x341;
    /// Machine trap cause.
    pub const MCAUSE: u16 = 0x342;
    /// Machine interrupt pending.
    pub const MIP: u16 = 0x344;
    /// Machine cycle counter (low).
    pub const MCYCLE: u16 = 0xB00;
    /// Machine retired-instruction counter (low).
    pub const MINSTRET: u16 = 0xB02;
    /// Machine cycle counter (high).
    pub const MCYCLEH: u16 = 0xB80;
    /// Machine retired-instruction counter (high).
    pub const MINSTRETH: u16 = 0xB82;
    /// Hart id.
    pub const MHARTID: u16 = 0xF14;
}

/// `mstatus.MIE` bit.
pub const MSTATUS_MIE: u32 = 1 << 3;
/// `mstatus.MPIE` bit.
pub const MSTATUS_MPIE: u32 = 1 << 7;

/// The machine-mode CSR file.
///
/// Follows Ibex's programmer's model where it matters for the paper's
/// baseline: vectored interrupt dispatch through `mtvec`, `mie`/`mip` with
/// the machine-external bit (11) and the 15 fast-interrupt bits (16..31).
///
/// ```
/// use pels_cpu::csr::{addr, CsrFile, MSTATUS_MIE};
/// let mut c = CsrFile::new();
/// c.write(addr::MSTATUS, MSTATUS_MIE);
/// assert!(c.interrupts_enabled());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CsrFile {
    /// `mstatus` (only MIE/MPIE are implemented).
    pub mstatus: u32,
    /// `mie` interrupt-enable mask.
    pub mie: u32,
    /// `mip` pending mask (driven by the platform each cycle).
    pub mip: u32,
    /// `mtvec` trap vector base; bit 0 set = vectored (Ibex is always
    /// vectored, so the mode bits are kept but ignored).
    pub mtvec: u32,
    /// `mscratch`.
    pub mscratch: u32,
    /// `mepc`.
    pub mepc: u32,
    /// `mcause`.
    pub mcause: u32,
    /// `mcycle` (maintained by the core).
    pub mcycle: u64,
    /// `minstret` (maintained by the core).
    pub minstret: u64,
}

impl CsrFile {
    /// Creates a reset CSR file (all zeros: interrupts disabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads CSR `a`; unknown addresses read as zero (Ibex returns zero
    /// for unimplemented but non-trapping CSRs we don't model).
    pub fn read(&self, a: u16) -> u32 {
        match a {
            addr::MSTATUS => self.mstatus,
            addr::MIE => self.mie,
            addr::MTVEC => self.mtvec,
            addr::MSCRATCH => self.mscratch,
            addr::MEPC => self.mepc,
            addr::MCAUSE => self.mcause,
            addr::MIP => self.mip,
            addr::MCYCLE => self.mcycle as u32,
            addr::MINSTRET => self.minstret as u32,
            addr::MCYCLEH => (self.mcycle >> 32) as u32,
            addr::MINSTRETH => (self.minstret >> 32) as u32,
            addr::MHARTID => 0,
            _ => 0,
        }
    }

    /// Writes CSR `a`; read-only and unknown addresses are ignored.
    pub fn write(&mut self, a: u16, v: u32) {
        match a {
            addr::MSTATUS => self.mstatus = v & (MSTATUS_MIE | MSTATUS_MPIE),
            addr::MIE => self.mie = v,
            addr::MTVEC => self.mtvec = v,
            addr::MSCRATCH => self.mscratch = v,
            addr::MEPC => self.mepc = v & !1,
            addr::MCAUSE => self.mcause = v,
            // MIP is platform-driven; MCYCLE/MINSTRET/MHARTID read-only.
            _ => {}
        }
    }

    /// Whether global machine interrupts are enabled.
    pub fn interrupts_enabled(&self) -> bool {
        self.mstatus & MSTATUS_MIE != 0
    }

    /// Lowest pending-and-enabled interrupt line, if any.
    pub fn pending_interrupt(&self) -> Option<u32> {
        let active = self.mip & self.mie;
        (active != 0).then(|| active.trailing_zeros())
    }

    /// Performs interrupt entry: saves state, disables interrupts, and
    /// returns the handler address (vectored dispatch).
    pub fn enter_interrupt(&mut self, pc: u32, cause: u32) -> u32 {
        self.mepc = pc;
        self.mcause = 0x8000_0000 | cause;
        let mie_was = self.mstatus & MSTATUS_MIE != 0;
        self.mstatus &= !MSTATUS_MIE;
        if mie_was {
            self.mstatus |= MSTATUS_MPIE;
        } else {
            self.mstatus &= !MSTATUS_MPIE;
        }
        (self.mtvec & !0x3) + 4 * cause
    }

    /// Performs `mret`: restores the interrupt-enable state and returns
    /// the resume address.
    pub fn exit_interrupt(&mut self) -> u32 {
        if self.mstatus & MSTATUS_MPIE != 0 {
            self.mstatus |= MSTATUS_MIE;
        } else {
            self.mstatus &= !MSTATUS_MIE;
        }
        self.mstatus |= MSTATUS_MPIE;
        self.mepc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_interrupt_respects_enable_masks() {
        let mut c = CsrFile::new();
        c.mip = 0b1010_0000;
        assert_eq!(c.pending_interrupt(), None);
        c.mie = 0b1000_0000;
        assert_eq!(c.pending_interrupt(), Some(7));
        c.mie = 0b1010_0000;
        assert_eq!(c.pending_interrupt(), Some(5), "lowest line wins");
    }

    #[test]
    fn interrupt_entry_exit_roundtrip() {
        let mut c = CsrFile::new();
        c.write(addr::MSTATUS, MSTATUS_MIE);
        c.write(addr::MTVEC, 0x100);
        let handler = c.enter_interrupt(0x80, 11);
        assert_eq!(handler, 0x100 + 44);
        assert_eq!(c.mepc, 0x80);
        assert_eq!(c.mcause, 0x8000_000B);
        assert!(!c.interrupts_enabled());
        let resume = c.exit_interrupt();
        assert_eq!(resume, 0x80);
        assert!(c.interrupts_enabled());
    }

    #[test]
    fn nested_entry_with_interrupts_disabled_keeps_them_disabled() {
        let mut c = CsrFile::new();
        c.write(addr::MTVEC, 0x100);
        let _ = c.enter_interrupt(0x80, 3); // MIE was 0
        let _ = c.exit_interrupt();
        assert!(!c.interrupts_enabled());
    }

    #[test]
    fn read_only_csrs_ignore_writes() {
        let mut c = CsrFile::new();
        c.mcycle = 99;
        c.write(addr::MCYCLE, 0);
        assert_eq!(c.read(addr::MCYCLE), 99);
        c.write(addr::MIP, 0xFF);
        assert_eq!(c.mip, 0);
    }

    #[test]
    fn mepc_is_even() {
        let mut c = CsrFile::new();
        c.write(addr::MEPC, 0x81);
        assert_eq!(c.mepc, 0x80);
    }

    #[test]
    fn counter_high_halves_read_back() {
        let mut c = CsrFile::new();
        c.mcycle = 0x1_2345_6789;
        c.minstret = 0x2_0000_0001;
        assert_eq!(c.read(addr::MCYCLE), 0x2345_6789);
        assert_eq!(c.read(addr::MCYCLEH), 1);
        assert_eq!(c.read(addr::MINSTRET), 1);
        assert_eq!(c.read(addr::MINSTRETH), 2);
    }

    #[test]
    fn unknown_csrs_read_zero() {
        let c = CsrFile::new();
        assert_eq!(c.read(0x7C0), 0);
    }
}
