//! Ibex-like cycle costs.
//!
//! The baseline of the paper's evaluation is the lowRISC Ibex core in its
//! 2-stage, single-issue configuration (paper Section IV-A). The constants
//! here follow the Ibex reference guide's instruction-timing table; they
//! are what make the measured 16-cycle interrupt-handling latency and the
//! iso-latency frequency pair (27 MHz vs 55 MHz) come out of executed
//! code rather than assumption.

/// Cycles for a simple ALU / CSR instruction.
pub const ALU: u32 = 1;

/// Minimum cycles for a load when the memory answers immediately
/// (address phase + response/writeback).
pub const LOAD_BASE: u32 = 2;

/// Minimum cycles for a store when the memory answers immediately.
pub const STORE_BASE: u32 = 2;

/// Cycles for a taken branch (fetch redirect flushes the 2-stage
/// pipeline).
pub const BRANCH_TAKEN: u32 = 3;

/// Cycles for a not-taken branch.
pub const BRANCH_NOT_TAKEN: u32 = 1;

/// Cycles for `jal`/`jalr`.
pub const JUMP: u32 = 2;

/// Cycles for a multiply (single-cycle multiplier configuration).
pub const MUL: u32 = 1;

/// Cycles for a divide/remainder (iterative divider).
pub const DIV: u32 = 37;

/// Cycles from an interrupt being recognized to the first handler
/// instruction entering execute (pipeline flush + vector fetch).
pub const IRQ_ENTRY: u32 = 4;

/// Cycles for `mret` (pipeline flush + refetch at `mepc`).
pub const MRET: u32 = 4;

/// Cycles to wake from `wfi` once an interrupt is pending (clock
/// un-gating), before [`IRQ_ENTRY`] applies.
pub const WFI_WAKE: u32 = 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn relative_ordering_matches_ibex_documentation() {
        assert!(ALU <= LOAD_BASE);
        assert!(BRANCH_NOT_TAKEN < BRANCH_TAKEN);
        assert!(JUMP < BRANCH_TAKEN);
        assert!(MUL < DIV);
        assert!(IRQ_ENTRY >= 2, "interrupt entry flushes a 2-stage pipe");
    }
}
