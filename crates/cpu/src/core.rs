//! The cycle-stepped Ibex-class core.

use crate::bus::{CpuBus, DataReq, DataResult};
use crate::compressed::{decode_compressed, is_compressed};
use crate::csr::CsrFile;
use crate::decode::{decode, DecodeError};
use crate::instr::{AluOp, BranchOp, CsrOp, CsrSrc, Instr, LoadOp, MulDivOp, StoreOp};
use crate::regs::RegFile;
use crate::timing;
use pels_sim::{ActivityKind, ActivitySet, ComponentId};

/// Why the core stopped executing (tests and scenarios use [`Instr::Ecall`]
/// / [`Instr::Ebreak`] as a program-exit convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltCause {
    /// `ecall` executed.
    Ecall,
    /// `ebreak` executed.
    Ebreak,
    /// An undecodable instruction word.
    IllegalInstruction(DecodeError),
    /// A data access faulted on the bus.
    BusFault {
        /// The faulting address.
        addr: u32,
    },
}

/// Pipeline state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuState {
    /// Fetching and executing.
    Running,
    /// Stalled on an in-flight peripheral-bus access.
    MemWait,
    /// Asleep in `wfi`, clock gated.
    Sleeping,
    /// Stopped (see [`HaltCause`]).
    Halted,
}

#[derive(Debug, Clone, Copy)]
struct PendingLoad {
    rd: u8,
    op: LoadOp,
    byte_in_word: u32,
    is_load: bool,
    addr: u32,
}

/// Entries in the direct-mapped decoded-instruction cache, indexed by
/// `pc` bits `[1..]` (the pc is always halfword-aligned).
const DECODE_CACHE_ENTRIES: usize = 512;

/// One decoded-instruction cache line.
///
/// `raw` holds the exact instruction bits the decode came from (16-bit
/// parcels zero-extended) and is re-verified against the freshly fetched
/// bits on every hit, so the cache can never replay a stale decode —
/// stores into the instruction stream are caught without any explicit
/// invalidation traffic. `pc` doubles as the tag; an odd value can never
/// match a real (even) pc, so it marks the line invalid.
#[derive(Debug, Clone, Copy)]
struct DecodedLine {
    pc: u32,
    raw: u32,
    instr: Instr,
}

const INVALID_LINE: DecodedLine = DecodedLine {
    pc: 1,
    raw: 0,
    instr: Instr::Fence,
};

/// Entries in the direct-mapped superblock cache, indexed by the block's
/// start pc bits `[1..]`.
const SUPERBLOCK_ENTRIES: usize = 64;

/// Maximum instructions chained into one superblock.
const SUPERBLOCK_MAX_LEN: usize = 32;

/// One decoded instruction inside a superblock: the decode plus the raw
/// bits it came from, re-verified against a fresh fetch on every block
/// execution (the same stale-decode defence as [`DecodedLine`]).
#[derive(Debug, Clone, Copy)]
struct BlockStep {
    pc: u32,
    raw: u32,
    size: u32,
    instr: Instr,
}

const INVALID_STEP: BlockStep = BlockStep {
    pc: 1,
    raw: 0,
    size: 0,
    instr: Instr::Fence,
};

/// How a fused step's raw bits sit in memory, precomputed at seal time so
/// the per-step re-verify is a single fetch + compare on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchKind {
    /// 32-bit instruction, word aligned: the whole word must match.
    Word,
    /// 16-bit parcel in the low half of its word.
    LowHalf,
    /// 16-bit parcel in the high half of its word.
    HighHalf,
    /// 32-bit instruction straddling a word boundary (second fetch).
    Straddle,
}

/// Pre-resolved fetch/verify plan for one architectural instruction
/// inside a fused superblock.
#[derive(Debug, Clone, Copy)]
struct StepFetch {
    /// Word-aligned address of the (first) fetch.
    aligned: u32,
    /// Expected raw bits, positioned per `kind`.
    raw: u32,
    kind: FetchKind,
}

const INVALID_FETCH: StepFetch = StepFetch {
    aligned: 0,
    raw: 0,
    kind: FetchKind::Word,
};

/// A specialized host-level operation compiled from one or two sealed
/// block steps: register indices and immediates are pre-resolved out of
/// [`Instr`], pcs (fallthroughs, jump/branch targets, `auipc` results)
/// are constant-folded, and a small set of two-instruction patterns is
/// collapsed into single ops. Execution skips the general
/// decode/`execute` dispatch entirely.
#[derive(Debug, Clone, Copy)]
enum FusedOp {
    /// `lui`/`auipc`: the result is a seal-time constant.
    SetImm { rd: u8, value: u32 },
    /// `rd = rs1 op imm`.
    AluImm { op: AluOp, rd: u8, rs1: u8, imm: u32 },
    /// `rd = rs1 op rs2`.
    Alu { op: AluOp, rd: u8, rs1: u8, rs2: u8 },
    /// M-extension op with its extra stall precomputed.
    MulDiv {
        op: MulDivOp,
        rd: u8,
        rs1: u8,
        rs2: u8,
        extra: u32,
    },
    /// `jal` with link and target constant-folded.
    Jal { rd: u8, link: u32, target: u32 },
    /// `jalr` (target depends on `rs1`; link is constant).
    Jalr {
        rd: u8,
        rs1: u8,
        offset: u32,
        link: u32,
    },
    /// Conditional branch with both successor pcs constant-folded.
    Branch {
        op: BranchOp,
        rs1: u8,
        rs2: u8,
        taken: u32,
        fallthrough: u32,
    },
    /// Fused `lui rd, hi` + `addi rd, rd, lo`: the folded constant is
    /// materialised in one write (the intermediate value is dead).
    LuiAddi { rd: u8, value: u32 },
    /// Fused ALU-immediate chain through one live destination
    /// (`op1 rd, rs1, imm1` + `op2 rd, rd, imm2`, `rd != x0`).
    AluImmPair {
        rd: u8,
        rs1: u8,
        op1: AluOp,
        imm1: u32,
        op2: AluOp,
        imm2: u32,
    },
    /// Fused compare + sealing branch (`slt[u] rd, rs1, rs2` +
    /// `beq`/`bne` of `rd` against `x0`): the comparison feeds the
    /// branch decision directly.
    CmpBranch {
        rd: u8,
        rs1: u8,
        rs2: u8,
        unsigned: bool,
        /// Branch taken when the comparison result is this value.
        taken_if_set: bool,
        taken: u32,
        fallthrough: u32,
    },
}

/// One element of a block's fused program: the op, which sealed steps it
/// covers (for the generic-path fallback on budget boundaries and verify
/// aborts), and the pc it retires to. The constituents' verify plans
/// live in the parallel `BlockLine::fused_fetch` array so the
/// bulk-verified fast path never touches them.
#[derive(Debug, Clone, Copy)]
struct FusedEntry {
    op: FusedOp,
    /// Index of the first covered step in `BlockLine::steps`.
    step: u8,
    /// Architectural instructions covered (1 or 2).
    n: u8,
    /// pc after the entry retires (control-flow ops override it).
    next_pc: u32,
}

const INVALID_FUSED: FusedEntry = FusedEntry {
    op: FusedOp::SetImm { rd: 0, value: 0 },
    step: 0,
    n: 1,
    next_pc: 0,
};

/// Per-step verify plans of one fused entry (the per-step fallback path
/// only — the bulk-verified fast path checks whole words instead).
#[derive(Debug, Clone, Copy)]
struct FusedFetch {
    /// Verify plan of the first constituent.
    fetch: StepFetch,
    /// Verify plan of the second constituent (`n == 2` only).
    fetch2: StepFetch,
}

const INVALID_FUSED_FETCH: FusedFetch = FusedFetch {
    fetch: INVALID_FETCH,
    fetch2: INVALID_FETCH,
};

/// Upper bound on distinct aligned words a block's sequential execution
/// fetches: one per 4-byte step plus one for a trailing straddle.
const SUPERBLOCK_MAX_WORDS: usize = SUPERBLOCK_MAX_LEN + 1;

/// One word of a block's bulk-verify plan: which bits of the word belong
/// to instruction parcels, and what they must still hold. Bits outside
/// `mask` (e.g. the unused half past a final compressed step) may change
/// freely without staling the block.
#[derive(Debug, Clone, Copy)]
struct VerifyWord {
    aligned: u32,
    expected: u32,
    mask: u32,
}

const INVALID_WORD: VerifyWord = VerifyWord {
    aligned: 1,
    expected: 0,
    mask: 0,
};

/// One superblock cache line: up to [`SUPERBLOCK_MAX_LEN`] consecutive
/// decoded instructions starting at `start`, plus the fused program and
/// bulk-verify plan compiled from them at seal time. As with the decode
/// cache, an odd `start` can never match a real pc and marks the line
/// invalid.
#[derive(Debug, Clone, Copy)]
struct BlockLine {
    start: u32,
    len: u32,
    steps: [BlockStep; SUPERBLOCK_MAX_LEN],
    /// Entries of the fused program (each covers 1–2 steps).
    fused_len: u32,
    fused: [FusedEntry; SUPERBLOCK_MAX_LEN],
    /// Verify plans parallel to `fused` (per-step fallback only).
    fused_fetch: [FusedFetch; SUPERBLOCK_MAX_LEN],
    /// Words of the bulk-verify plan, in fetch order.
    words_len: u32,
    words: [VerifyWord; SUPERBLOCK_MAX_WORDS],
    /// Worst-case cycles the whole block can bill (every branch on its
    /// slower outcome): a budget at or above this covers the block.
    max_cycles: u32,
}

const INVALID_BLOCK: BlockLine = BlockLine {
    start: 1,
    len: 0,
    steps: [INVALID_STEP; SUPERBLOCK_MAX_LEN],
    fused_len: 0,
    fused: [INVALID_FUSED; SUPERBLOCK_MAX_LEN],
    fused_fetch: [INVALID_FUSED_FETCH; SUPERBLOCK_MAX_LEN],
    words_len: 0,
    words: [INVALID_WORD; SUPERBLOCK_MAX_WORDS],
    max_cycles: 0,
};

/// In-progress superblock accumulator, grown as a side effect of
/// single-step execution (so chaining costs no extra fetches or decodes).
#[derive(Debug)]
struct BlockChain {
    start: u32,
    next_pc: u32,
    len: u32,
    steps: [BlockStep; SUPERBLOCK_MAX_LEN],
}

/// How an instruction participates in superblock chaining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepClass {
    /// Register-only: chains, and the block continues past it.
    Chain,
    /// Branch/jump: executes inside a block but terminates it.
    Close,
    /// Bus access, CSR/system, `fence`, or trap-capable: never enters a
    /// block; the chain ends just before it.
    Break,
}

fn classify(instr: &Instr) -> StepClass {
    match instr {
        Instr::Lui { .. }
        | Instr::Auipc { .. }
        | Instr::AluImm { .. }
        | Instr::Alu { .. }
        | Instr::MulDiv { .. } => StepClass::Chain,
        Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Branch { .. } => StepClass::Close,
        _ => StepClass::Break,
    }
}

/// Precomputes a step's fetch/verify plan from its pc, size and raw bits.
fn step_fetch(step: &BlockStep) -> StepFetch {
    let aligned = step.pc & !3;
    let kind = match (step.pc & 2 == 0, step.size) {
        (true, 4) => FetchKind::Word,
        (true, _) => FetchKind::LowHalf,
        (false, 2) => FetchKind::HighHalf,
        (false, _) => FetchKind::Straddle,
    };
    StepFetch {
        aligned,
        raw: step.raw,
        kind,
    }
}

/// Compiles sealed block steps into the block's fused program, returning
/// the entry count. Each entry covers one step, or two when a fusable
/// pattern matches (see [`fuse_pair`]).
fn compile_fused(
    steps: &[BlockStep],
    out: &mut [FusedEntry; SUPERBLOCK_MAX_LEN],
    fetches: &mut [FusedFetch; SUPERBLOCK_MAX_LEN],
) -> u32 {
    let mut n = 0usize;
    let mut i = 0usize;
    while i < steps.len() {
        let (op, covered) = match steps
            .get(i + 1)
            .and_then(|b| fuse_pair(&steps[i], b))
        {
            Some(op) => (op, 2usize),
            None => (fuse_one(&steps[i]), 1usize),
        };
        let last = &steps[i + covered - 1];
        out[n] = FusedEntry {
            op,
            step: i as u8,
            n: covered as u8,
            next_pc: last.pc.wrapping_add(last.size),
        };
        fetches[n] = FusedFetch {
            fetch: step_fetch(&steps[i]),
            fetch2: if covered == 2 {
                step_fetch(last)
            } else {
                INVALID_FETCH
            },
        };
        n += 1;
        i += covered;
    }
    n as u32
}

/// Compiles a block's bulk-verify plan: every aligned word its
/// sequential execution fetches, in fetch order, with the bits covered
/// by instruction parcels. Also returns the block's worst-case cycle
/// bill (every branch taken on its slower outcome), so `run_block` can
/// tell when a budget is guaranteed to cover the whole block.
fn compile_words(
    steps: &[BlockStep],
    out: &mut [VerifyWord; SUPERBLOCK_MAX_WORDS],
) -> (u32, u32) {
    fn push(
        out: &mut [VerifyWord; SUPERBLOCK_MAX_WORDS],
        n: &mut usize,
        aligned: u32,
        expected: u32,
        mask: u32,
    ) {
        // Sequential steps revisit a word only consecutively, exactly
        // like the prefetch buffer: merge into the open word.
        if *n > 0 && out[*n - 1].aligned == aligned {
            out[*n - 1].expected |= expected;
            out[*n - 1].mask |= mask;
        } else {
            out[*n] = VerifyWord {
                aligned,
                expected,
                mask,
            };
            *n += 1;
        }
    }
    let mut n = 0usize;
    let mut max_cycles = 0u32;
    for step in steps {
        let fs = step_fetch(step);
        match fs.kind {
            FetchKind::Word => push(out, &mut n, fs.aligned, fs.raw, 0xFFFF_FFFF),
            FetchKind::LowHalf => push(out, &mut n, fs.aligned, fs.raw, 0xFFFF),
            FetchKind::HighHalf => push(out, &mut n, fs.aligned, fs.raw << 16, 0xFFFF_0000),
            FetchKind::Straddle => {
                push(out, &mut n, fs.aligned, (fs.raw & 0xFFFF) << 16, 0xFFFF_0000);
                push(out, &mut n, fs.aligned + 4, fs.raw >> 16, 0xFFFF);
            }
        }
        max_cycles += match step.instr {
            Instr::MulDiv { op, .. } => match op {
                MulDivOp::Mul | MulDivOp::Mulh | MulDivOp::Mulhsu | MulDivOp::Mulhu => timing::MUL,
                _ => timing::DIV,
            },
            Instr::Jal { .. } | Instr::Jalr { .. } => timing::JUMP,
            Instr::Branch { .. } => timing::BRANCH_TAKEN.max(timing::BRANCH_NOT_TAKEN),
            _ => timing::ALU,
        };
    }
    (n as u32, max_cycles)
}

/// Specializes one block step: register indices and immediates lifted
/// out of [`Instr`], pcs (`auipc` results, link values, jump/branch
/// targets, fallthroughs) constant-folded, M-extension stall
/// precomputed.
fn fuse_one(step: &BlockStep) -> FusedOp {
    let pc = step.pc;
    let next_pc = pc.wrapping_add(step.size);
    match step.instr {
        Instr::Lui { rd, imm } => FusedOp::SetImm { rd, value: imm },
        Instr::Auipc { rd, imm } => FusedOp::SetImm {
            rd,
            value: pc.wrapping_add(imm),
        },
        Instr::AluImm { op, rd, rs1, imm } => FusedOp::AluImm {
            op,
            rd,
            rs1,
            imm: imm as u32,
        },
        Instr::Alu { op, rd, rs1, rs2 } => FusedOp::Alu { op, rd, rs1, rs2 },
        Instr::MulDiv { op, rd, rs1, rs2 } => {
            let cost = match op {
                MulDivOp::Mul | MulDivOp::Mulh | MulDivOp::Mulhsu | MulDivOp::Mulhu => timing::MUL,
                _ => timing::DIV,
            };
            FusedOp::MulDiv {
                op,
                rd,
                rs1,
                rs2,
                extra: cost - 1,
            }
        }
        Instr::Jal { rd, offset } => FusedOp::Jal {
            rd,
            link: next_pc,
            target: pc.wrapping_add(offset as u32),
        },
        Instr::Jalr { rd, rs1, offset } => FusedOp::Jalr {
            rd,
            rs1,
            offset: offset as u32,
            link: next_pc,
        },
        Instr::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => FusedOp::Branch {
            op,
            rs1,
            rs2,
            taken: pc.wrapping_add(offset as u32),
            fallthrough: next_pc,
        },
        // `classify` admits only the arms above into blocks.
        _ => unreachable!("non-chainable instruction inside a sealed block"),
    }
}

/// Tries to fuse two adjacent steps into one op. Every pattern has a
/// zero-stall ALU head writing `rd != x0` (so the budget-boundary and
/// stale-second fallbacks can retire the head standalone, and so the
/// `x0` discard special case can't change semantics):
///
/// - `lui rd, hi` + `addi rd, rd, lo`: the folded 32-bit constant;
/// - `op1 rd, rs1, imm1` + `op2 rd, rd, imm2`: an ALU-immediate chain
///   through one live destination (the intermediate value is dead);
/// - `slt`/`sltu rd, rs1, rs2` + `beq`/`bne` of `rd` against `x0`
///   (either operand order): the comparison feeds the branch directly.
fn fuse_pair(a: &BlockStep, b: &BlockStep) -> Option<FusedOp> {
    match (a.instr, b.instr) {
        (
            Instr::Lui { rd, imm },
            Instr::AluImm {
                op: AluOp::Add,
                rd: rd2,
                rs1,
                imm: lo,
            },
        ) if rd != 0 && rd2 == rd && rs1 == rd => Some(FusedOp::LuiAddi {
            rd,
            value: imm.wrapping_add(lo as u32),
        }),
        (
            Instr::AluImm {
                op: op1,
                rd,
                rs1,
                imm: imm1,
            },
            Instr::AluImm {
                op: op2,
                rd: rd2,
                rs1: rs1b,
                imm: imm2,
            },
        ) if rd != 0 && rd2 == rd && rs1b == rd => Some(FusedOp::AluImmPair {
            rd,
            rs1,
            op1,
            imm1: imm1 as u32,
            op2,
            imm2: imm2 as u32,
        }),
        (
            Instr::Alu {
                op: cmp,
                rd,
                rs1,
                rs2,
            },
            Instr::Branch {
                op: br,
                rs1: b1,
                rs2: b2,
                offset,
            },
        ) if rd != 0
            && matches!(cmp, AluOp::Slt | AluOp::Sltu)
            && matches!(br, BranchOp::Eq | BranchOp::Ne)
            && ((b1 == rd && b2 == 0) || (b1 == 0 && b2 == rd)) =>
        {
            Some(FusedOp::CmpBranch {
                rd,
                rs1,
                rs2,
                unsigned: cmp == AluOp::Sltu,
                taken_if_set: br == BranchOp::Ne,
                taken: b.pc.wrapping_add(offset as u32),
                fallthrough: b.pc.wrapping_add(b.size),
            })
        }
        _ => None,
    }
}

/// Cumulative superblock-layer counters (see [`Cpu::superblock_stats`]).
///
/// Like the decode-cache hit/miss counts, these describe the *host-side
/// accelerator*, not the modelled hardware — they legitimately differ
/// between superblock and single-step runs of the same workload, so
/// differential tests must not compare them across modes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SuperblockStats {
    /// Blocks sealed into the block cache.
    pub blocks_built: u64,
    /// Block-cache entries executed by [`Cpu::run_block`].
    pub block_runs: u64,
    /// Instructions retired from inside blocks.
    pub block_instrs: u64,
    /// Cycles billed in bulk by [`Cpu::run_block`].
    pub block_cycles: u64,
    /// Raw-bits re-verification failures (self-modified code caught at
    /// block execution time).
    pub verify_aborts: u64,
    /// Fused ops executed by the fused tier (each covers 1–2 retired
    /// instructions).
    pub fused_ops: u64,
    /// Fused ops covering two architectural instructions.
    pub fused_pairs: u64,
}

/// The Ibex-class RV32IM core.
///
/// Drive it with one [`Cpu::tick`] per clock cycle, passing the sampled
/// interrupt lines. All architectural effects (register/memory updates)
/// happen in the first cycle of an instruction; the remaining cycles of a
/// multi-cycle instruction are modelled as stall.
#[derive(Debug)]
pub struct Cpu {
    id: ComponentId,
    pc: u32,
    regs: RegFile,
    /// Machine-mode CSRs (public: scenarios preset `mtvec`/`mie`).
    pub csrs: CsrFile,
    state: CpuState,
    halt_cause: Option<HaltCause>,
    stall: u32,
    pending: Option<PendingLoad>,
    last_irq_ack: Option<u32>,
    /// Core cycle of the most recent `mret`, for the causal-flow layer
    /// (polled by the SoC only when flow tracing is on).
    mret_taken: Option<u64>,
    /// One-word prefetch buffer (Ibex-style): consecutive 16-bit parcels
    /// of the same word cost a single memory fetch.
    fetch_buf: Option<(u32, u32)>,
    /// Direct-mapped decoded-instruction cache. Purely a host-side
    /// accelerator: fetch traffic, timing and architectural effects are
    /// identical with the cache on or off (see [`Cpu::fetch_decode`]).
    dcache: Box<[DecodedLine; DECODE_CACHE_ENTRIES]>,
    dcache_enabled: bool,
    dcache_hits: u64,
    dcache_misses: u64,
    /// Direct-mapped superblock cache: chains of decoded instructions
    /// executed and billed in bulk by [`Cpu::run_block`]. Like the decode
    /// cache, purely a host-side accelerator — every step re-verifies its
    /// raw bits against a fresh fetch, so execution is bit-identical with
    /// blocks on or off.
    blocks: Box<[BlockLine; SUPERBLOCK_ENTRIES]>,
    /// Superblock under construction (grown during single-step execution).
    chain: Box<BlockChain>,
    sb_enabled: bool,
    /// Whether sealed blocks execute through their fused program (the
    /// specialized op array) or the generic decoded-step loop. Both
    /// tiers are bit-identical; the flag exists so benchmarks and
    /// differential tests can measure the unfused superblock tier.
    fuse_enabled: bool,
    sb: SuperblockStats,
    /// A fetch completed by `run_block`'s verify step whose instruction
    /// could not execute inside the block (the raw bits were stale):
    /// `(pc, raw, size)` handed to the next `fetch_decode` so the fetch
    /// traffic already paid is not paid again.
    handoff: Option<(u32, u32, u32)>,
    // Statistics / activity.
    cycles: u64,
    retired: u64,
    fetches: u64,
    irq_entries: u64,
    irq_overhead_cycles: u64,
    sleep_cycles: u64,
    stall_cycles: u64,
}

impl Cpu {
    /// Creates a core that will start fetching at `reset_pc`.
    pub fn new(reset_pc: u32) -> Self {
        Self::with_name("ibex", reset_pc)
    }

    /// Creates a core with an explicit activity/trace name.
    pub fn with_name(name: impl AsRef<str>, reset_pc: u32) -> Self {
        Cpu {
            id: ComponentId::intern(name.as_ref()),
            pc: reset_pc,
            regs: RegFile::new(),
            csrs: CsrFile::new(),
            state: CpuState::Running,
            halt_cause: None,
            stall: 0,
            pending: None,
            last_irq_ack: None,
            mret_taken: None,
            fetch_buf: None,
            dcache: Box::new([INVALID_LINE; DECODE_CACHE_ENTRIES]),
            dcache_enabled: true,
            dcache_hits: 0,
            dcache_misses: 0,
            blocks: Box::new([INVALID_BLOCK; SUPERBLOCK_ENTRIES]),
            chain: Box::new(BlockChain {
                start: 1,
                next_pc: 1,
                len: 0,
                steps: [INVALID_STEP; SUPERBLOCK_MAX_LEN],
            }),
            sb_enabled: true,
            fuse_enabled: true,
            sb: SuperblockStats::default(),
            handoff: None,
            cycles: 0,
            retired: 0,
            fetches: 0,
            irq_entries: 0,
            irq_overhead_cycles: 0,
            sleep_cycles: 0,
            stall_cycles: 0,
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Reads an architectural register.
    pub fn reg(&self, r: u8) -> u32 {
        self.regs.get(r)
    }

    /// Writes an architectural register (test/bring-up convenience).
    pub fn set_reg(&mut self, r: u8, v: u32) {
        self.regs.set(r, v);
    }

    /// Pipeline state.
    pub fn state(&self) -> CpuState {
        self.state
    }

    /// Whether the core is in `wfi` sleep.
    pub fn is_sleeping(&self) -> bool {
        self.state == CpuState::Sleeping
    }

    /// Whether the core halted, and why.
    pub fn halt_cause(&self) -> Option<HaltCause> {
        self.halt_cause
    }

    /// Elapsed core cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Retired instructions.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Interrupt entries taken.
    pub fn irq_entries(&self) -> u64 {
        self.irq_entries
    }

    /// Takes the line of the most recent interrupt entry — the
    /// claim/acknowledge signal a platform interrupt controller uses to
    /// clear an edge-latched pending bit.
    pub fn take_irq_ack(&mut self) -> Option<u32> {
        self.last_irq_ack.take()
    }

    /// Takes the core cycle of the most recent `mret`, if one retired
    /// since the last poll — the handler-exit observation point of the
    /// causal-flow layer.
    pub fn take_mret(&mut self) -> Option<u64> {
        self.mret_taken.take()
    }

    /// Cycles spent asleep in `wfi`.
    pub fn sleep_cycles(&self) -> u64 {
        self.sleep_cycles
    }

    /// Enables or disables the decoded-instruction cache. The cache is a
    /// host-side accelerator only — both settings execute bit-identically
    /// (same fetch counts, timing and architectural effects); differential
    /// tests run the same workload under both to prove it. Disabling also
    /// flushes, so re-enabling starts cold with clean statistics.
    pub fn set_decode_cache_enabled(&mut self, enabled: bool) {
        if !enabled {
            self.flush_decode_cache();
            self.dcache_hits = 0;
            self.dcache_misses = 0;
        }
        self.dcache_enabled = enabled;
    }

    /// Whether the decoded-instruction cache is active.
    pub fn decode_cache_enabled(&self) -> bool {
        self.dcache_enabled
    }

    /// Decoded-instruction cache `(hits, misses)` since reset/disable.
    /// Block-level counters for the superblock layer built on top of the
    /// cache live in [`Cpu::superblock_stats`].
    pub fn decode_cache_stats(&self) -> (u64, u64) {
        (self.dcache_hits, self.dcache_misses)
    }

    /// Enables or disables superblock execution ([`Cpu::run_block`]).
    /// Like the decode cache, superblocks are a host-side accelerator
    /// only — both settings execute bit-identically (same fetch counts,
    /// timing and architectural effects); the differential suites in
    /// `tests/active_path.rs` and `crates/cpu/tests/decode_cache.rs` run
    /// the same workloads under both to prove it. Disabling also flushes
    /// the block cache and clears the statistics.
    pub fn set_superblocks_enabled(&mut self, enabled: bool) {
        if !enabled {
            self.flush_superblocks();
            self.sb = SuperblockStats::default();
        }
        self.sb_enabled = enabled;
    }

    /// Whether superblock execution is active.
    pub fn superblocks_enabled(&self) -> bool {
        self.sb_enabled
    }

    /// Enables or disables op fusion inside sealed superblocks. With
    /// fusion off, [`Cpu::run_block`] walks the generic decoded-step
    /// loop instead of the fused program — bit-identical either way (the
    /// fused tier re-verifies the same raw bits and bills the same
    /// cycles), so no flush is needed on toggle; the fused program is
    /// compiled unconditionally at seal time.
    pub fn set_fusion_enabled(&mut self, enabled: bool) {
        self.fuse_enabled = enabled;
    }

    /// Whether sealed blocks execute through their fused programs.
    pub fn fusion_enabled(&self) -> bool {
        self.fuse_enabled
    }

    /// Cumulative superblock counters since reset/disable.
    pub fn superblock_stats(&self) -> SuperblockStats {
        self.sb
    }

    /// Publishes the core's cumulative counters into an observability
    /// registry under the `cpu.` prefix. Gauges (overwrite semantics), so
    /// publishing is idempotent at any given point in a run.
    pub fn publish_metrics(&self, reg: &mut pels_obs::MetricsRegistry) {
        reg.set_named("cpu.cycles", self.cycles);
        reg.set_named("cpu.retired", self.retired);
        reg.set_named("cpu.fetches", self.fetches);
        reg.set_named("cpu.decode_cache.hits", self.dcache_hits);
        reg.set_named("cpu.decode_cache.misses", self.dcache_misses);
        reg.set_named("cpu.irq.entries", self.irq_entries);
        reg.set_named("cpu.irq.overhead_cycles", self.irq_overhead_cycles);
        reg.set_named("cpu.sleep_cycles", self.sleep_cycles);
        reg.set_named("cpu.stall_cycles", self.stall_cycles);
        reg.set_named("cpu.superblock.blocks_built", self.sb.blocks_built);
        reg.set_named("cpu.superblock.runs", self.sb.block_runs);
        reg.set_named("cpu.superblock.instrs", self.sb.block_instrs);
        reg.set_named("cpu.superblock.cycles", self.sb.block_cycles);
        reg.set_named("cpu.superblock.verify_aborts", self.sb.verify_aborts);
        reg.set_named("cpu.fused.ops", self.sb.fused_ops);
        reg.set_named("cpu.fused.pairs", self.sb.fused_pairs);
    }

    /// Invalidates every decoded-instruction cache line and superblock
    /// (the `fence.i` path; stores need no invalidation because hits and
    /// block steps re-verify the raw instruction bits).
    fn flush_decode_cache(&mut self) {
        self.dcache.fill(INVALID_LINE);
        self.flush_superblocks();
    }

    /// Invalidates every superblock line and abandons the chain under
    /// construction.
    fn flush_superblocks(&mut self) {
        for line in self.blocks.iter_mut() {
            line.start = 1;
        }
        self.chain.len = 0;
    }

    /// Accounts `k` cycles of WFI sleep (or halt) in one step, exactly as
    /// `k` calls to [`Cpu::tick`] would: `mcycle`/cycle/sleep counters
    /// advance, nothing else changes. Returns `false` — with no state
    /// mutated beyond mirroring `irq` into `mip`, which every tick does
    /// anyway — when the core is running, stalled, or a pending enabled
    /// interrupt would wake it, in which case the caller must tick
    /// normally.
    pub fn skip_idle_cycles(&mut self, k: u64, irq: u32) -> bool {
        self.csrs.mip = irq;
        match self.state {
            CpuState::Halted => {}
            CpuState::Sleeping => {
                if self.csrs.pending_interrupt().is_some() {
                    return false;
                }
                self.sleep_cycles += k;
            }
            _ => return false,
        }
        self.cycles += k;
        self.csrs.mcycle += k;
        true
    }

    /// Advances one clock cycle. `irq` carries the sampled interrupt
    /// lines (wired into `mip`).
    pub fn tick(&mut self, bus: &mut impl CpuBus, irq: u32) {
        self.cycles += 1;
        self.csrs.mcycle += 1;
        self.csrs.mip = irq;

        match self.state {
            CpuState::Halted => {}
            CpuState::Sleeping => {
                // WFI wakes on pending & mie-enabled interrupts regardless
                // of mstatus.MIE (RISC-V priv. spec; Ibex behaviour).
                if self.csrs.pending_interrupt().is_some() {
                    self.state = CpuState::Running;
                    self.stall = timing::WFI_WAKE;
                    self.stall_cycles += u64::from(timing::WFI_WAKE);
                } else {
                    self.sleep_cycles += 1;
                }
            }
            _ if self.stall > 0 => {
                self.stall -= 1;
                self.stall_cycles += 1;
            }
            CpuState::MemWait => {
                if let Some(result) = bus.poll() {
                    let p = self.pending.take().expect("memwait without pending op");
                    match result {
                        Ok(rdata) => {
                            if p.is_load {
                                let v = extract_load(p.op, rdata, p.byte_in_word);
                                self.regs.set(p.rd, v);
                            }
                            self.state = CpuState::Running;
                        }
                        Err(()) => self.halt(HaltCause::BusFault { addr: p.addr }),
                    }
                } else {
                    self.stall_cycles += 1;
                }
            }
            CpuState::Running => {
                if self.csrs.interrupts_enabled() {
                    if let Some(line) = self.csrs.pending_interrupt() {
                        self.pc = self.csrs.enter_interrupt(self.pc, line);
                        self.stall = timing::IRQ_ENTRY - 1;
                        self.irq_entries += 1;
                        self.irq_overhead_cycles += u64::from(timing::IRQ_ENTRY);
                        self.last_irq_ack = Some(line);
                        return;
                    }
                }
                match self.fetch_decode(bus) {
                    Ok((instr, raw, size)) => {
                        if self.sb_enabled {
                            self.superblock_note(instr, raw, size);
                        }
                        self.execute(instr, size, bus);
                    }
                    Err(e) => self.halt(HaltCause::IllegalInstruction(e)),
                }
            }
        }
    }

    /// Runs until the core halts or sleeps, up to `max_cycles`. Returns
    /// the cycles consumed. Interrupt lines are held at `irq`.
    ///
    /// Uses [`Cpu::run_block`] opportunistically; the result is
    /// bit-identical to ticking `max_cycles` times.
    pub fn run(&mut self, bus: &mut impl CpuBus, irq: u32, max_cycles: u64) -> u64 {
        let start = self.cycles;
        while self.cycles - start < max_cycles {
            if self.state == CpuState::Halted || self.state == CpuState::Sleeping {
                break;
            }
            let remaining = max_cycles - (self.cycles - start);
            if self.run_block(bus, irq, remaining) == 0 {
                self.tick(bus, irq);
            }
        }
        self.cycles - start
    }

    /// Executes cached superblocks starting at the current pc, billing
    /// their cycles in bulk, for at most `budget` cycles. Returns the
    /// cycles consumed (0 when nothing could run in bulk — the caller
    /// must then [`Cpu::tick`] normally).
    ///
    /// The contract is exact equivalence: after `run_block` returns `k`,
    /// every architectural and accounting observable (registers, pc,
    /// CSRs, fetch traffic and prefetch-buffer state, `retired`,
    /// `stall_cycles`, pipeline state) matches what `k` consecutive
    /// [`Cpu::tick`] calls with the same `irq` image would have produced.
    /// That holds because:
    ///
    /// - blocks contain only register-only and branch/jump instructions
    ///   (see [`StepClass`]) — nothing that can touch the bus, CSRs,
    ///   `mie`/`mstatus`, or trap — so one interrupt-deliverability check
    ///   on entry covers the whole span;
    /// - each step re-fetches its raw bits through the prefetch buffer
    ///   (the exact traffic `fetch_decode` would generate) and verifies
    ///   them; a mismatch (self-modified code) aborts the block and hands
    ///   the already-fetched bits to the next `fetch_decode`;
    /// - an instruction's trailing stall is converted to bulk cycles only
    ///   up to the budget; any remainder stays in `stall` for the
    ///   per-cycle path, exactly as if the budget boundary had fallen
    ///   mid-stall.
    pub fn run_block(&mut self, bus: &mut impl CpuBus, irq: u32, budget: u64) -> u64 {
        if !self.sb_enabled || budget == 0 || self.state != CpuState::Running {
            return 0;
        }
        self.csrs.mip = irq;
        let mut used: u64 = 0;
        // Leftover multi-cycle-instruction stall: burn it in bulk,
        // exactly as that many stall ticks would.
        if self.stall > 0 {
            let take = u64::from(self.stall).min(budget);
            self.stall -= take as u32;
            self.stall_cycles += take;
            used = take;
        }
        // One interrupt check per entry: `mip` is pinned for the whole
        // span and block instructions cannot write `mie`/`mstatus`, so
        // deliverability cannot change until the block path exits.
        let irq_deliverable =
            self.csrs.interrupts_enabled() && self.csrs.pending_interrupt().is_some();
        if !irq_deliverable {
            // Bulk-verified blocks, by cache index: nothing inside
            // `run_block` can write memory (block steps are
            // register-only or control flow), so a block verified once
            // stays verified for the whole call — repeat iterations of a
            // hot loop charge the sweep's fetch accounting without
            // re-comparing.
            let mut verified: u64 = 0;
            'blocks: while used < budget {
                let idx = (self.pc >> 1) as usize & (SUPERBLOCK_ENTRIES - 1);
                if self.blocks[idx].start != self.pc {
                    break;
                }
                self.sb.block_runs += 1;
                if self.fuse_enabled {
                    let flen = self.blocks[idx].fused_len as usize;
                    // Budget covers the block even on its worst-case
                    // timing path: verify every word once up front, then
                    // execute the fused program with no per-step
                    // re-verify or budget checks. On a verify miss,
                    // `bulk_verify` backs out with no side effects and
                    // the per-step loop below aborts bit-exactly.
                    let covered = budget - used >= u64::from(self.blocks[idx].max_cycles);
                    let clean = covered
                        && if verified & (1 << idx) != 0 {
                            // Already verified this call: charge the
                            // sweep's exact fetch accounting. Memory is
                            // frozen for the whole call, so the word
                            // values (including the last word re-peeked
                            // into the prefetch buffer) are unchanged.
                            let wl = self.blocks[idx].words_len as usize;
                            let first = self.blocks[idx].words[0].aligned;
                            let last = self.blocks[idx].words[wl - 1].aligned;
                            let hit0 = matches!(self.fetch_buf, Some((a, _)) if a == first);
                            let misses = wl as u32 - u32::from(hit0);
                            self.fetches += u64::from(misses);
                            bus.charge_fetches(misses);
                            self.fetch_buf = Some((last, bus.peek_fetch(last)));
                            true
                        } else {
                            let ok = self.bulk_verify(idx, bus);
                            if ok {
                                verified |= 1 << idx;
                            }
                            ok
                        };
                    if clean {
                        for e in 0..flen {
                            let entry = self.blocks[idx].fused[e];
                            used += self.execute_fused(&entry, budget - used);
                            self.sb.block_instrs += u64::from(entry.n);
                            self.sb.fused_ops += 1;
                            if entry.n == 2 {
                                self.sb.fused_pairs += 1;
                            }
                        }
                        continue;
                    }
                    // Fused tier, per-step: walk the specialized op
                    // array compiled at seal time. Each entry
                    // re-verifies its raw bits (the exact fetch traffic
                    // `fetch_decode` would generate) before executing,
                    // so self-modifying code aborts bit-exactly, as in
                    // the generic loop below.
                    for e in 0..flen {
                        if used == budget {
                            break 'blocks;
                        }
                        let entry = self.blocks[idx].fused[e];
                        debug_assert_eq!(
                            self.pc, self.blocks[idx].steps[entry.step as usize].pc,
                            "fused program tracks the step layout"
                        );
                        let ff = self.blocks[idx].fused_fetch[e];
                        if let Some((raw, size)) = self.verify_step(ff.fetch, bus) {
                            self.abort_block(idx, self.pc, raw, size);
                            break 'blocks;
                        }
                        if entry.n == 2 {
                            if budget - used < 2 {
                                // No room for both halves: retire the
                                // head through the generic path (pair
                                // heads are zero-stall ALU ops, so it
                                // fits the one remaining cycle exactly).
                                let step = self.blocks[idx].steps[entry.step as usize];
                                self.execute(step.instr, step.size, bus);
                                self.sb.block_instrs += 1;
                                debug_assert_eq!(self.stall, 0);
                                used += 1;
                                break 'blocks;
                            }
                            if let Some((raw, size)) = self.verify_step(ff.fetch2, bus) {
                                // Second half went stale: retire the head
                                // generically, then abort at the second
                                // half's pc with the fresh bits. The head
                                // is a register-only op, so fetching the
                                // second half before executing it is
                                // traffic-identical to the generic order.
                                let step = self.blocks[idx].steps[entry.step as usize];
                                self.execute(step.instr, step.size, bus);
                                self.sb.block_instrs += 1;
                                used += 1;
                                self.abort_block(idx, self.pc, raw, size);
                                break 'blocks;
                            }
                        }
                        used += self.execute_fused(&entry, budget - used);
                        self.sb.block_instrs += u64::from(entry.n);
                        self.sb.fused_ops += 1;
                        if entry.n == 2 {
                            self.sb.fused_pairs += 1;
                        }
                    }
                } else {
                    let len = self.blocks[idx].len as usize;
                    for k in 0..len {
                        if used == budget {
                            break 'blocks;
                        }
                        let step = self.blocks[idx].steps[k];
                        let pc = self.pc;
                        debug_assert_eq!(pc, step.pc, "superblock layout is sequential");
                        // Re-fetch through the prefetch buffer — the exact
                        // traffic `fetch_decode` would generate — and verify
                        // the cached raw bits (self-modifying-code safety).
                        let aligned = pc & !3;
                        let word = self.fetch_word(aligned, bus);
                        let low_half = if pc & 2 == 0 {
                            (word & 0xFFFF) as u16
                        } else {
                            (word >> 16) as u16
                        };
                        let (raw, size) = if is_compressed(low_half) {
                            (u32::from(low_half), 2)
                        } else if pc & 2 == 0 {
                            (word, 4)
                        } else {
                            let next = self.fetch_word(aligned + 4, bus);
                            (u32::from(low_half) | (next << 16), 4)
                        };
                        if raw != step.raw || size != step.size {
                            // Stale decode: drop the block and hand the
                            // freshly fetched bits to the per-cycle path.
                            self.abort_block(idx, pc, raw, size);
                            break 'blocks;
                        }
                        self.execute(step.instr, step.size, bus);
                        self.sb.block_instrs += 1;
                        // Convert the instruction's stall into bulk cycles up
                        // to the budget; a remainder stays in `stall` for the
                        // per-cycle path.
                        let extra = u64::from(self.stall);
                        let take = extra.min(budget - used - 1);
                        self.stall -= take as u32;
                        self.stall_cycles += take;
                        used += 1 + take;
                        if self.state != CpuState::Running {
                            break 'blocks;
                        }
                    }
                }
            }
        }
        self.sb.block_cycles += used;
        self.cycles += used;
        self.csrs.mcycle += used;
        used
    }

    /// Verifies every covered instruction bit of the sealed block at
    /// `idx` in one sweep. Phase one peeks each word of the block's
    /// verify plan with no side effects (the first word may still sit in
    /// the prefetch buffer, whose contents are what the per-step path
    /// would compare against); on a full match, phase two charges
    /// exactly the fetch accounting the per-step path's sequential
    /// `fetch_word` calls would generate and returns `true`. On any
    /// mismatch it
    /// returns `false` with **no** side effects, so the per-step loop
    /// re-verifies and aborts bit-exactly.
    fn bulk_verify(&mut self, idx: usize, bus: &mut impl CpuBus) -> bool {
        let wlen = self.blocks[idx].words_len as usize;
        let mut misses = 0u32;
        let mut last = (0u32, 0u32);
        for w in 0..wlen {
            let vw = self.blocks[idx].words[w];
            let word = match self.fetch_buf {
                // Only the first fetch can hit the buffer: every later
                // word is read right after its predecessor replaced it.
                Some((a, v)) if w == 0 && a == vw.aligned => v,
                _ => {
                    misses += 1;
                    bus.peek_fetch(vw.aligned)
                }
            };
            if (word ^ vw.expected) & vw.mask != 0 {
                return false;
            }
            last = (vw.aligned, word);
        }
        if wlen > 0 {
            // Emit the sweep's exact fetch accounting in one step: every
            // peeked word is one fetch the per-step path would issue, and
            // the buffer ends holding the block's last word.
            self.fetches += u64::from(misses);
            bus.charge_fetches(misses);
            self.fetch_buf = Some(last);
        }
        true
    }

    /// Verifies one fused step's raw bits against a fresh fetch through
    /// the prefetch buffer, generating exactly the traffic
    /// [`Cpu::fetch_decode`] would. Returns `None` when the bits match;
    /// on a mismatch returns the freshly reconstructed `(raw, size)` for
    /// the abort handoff — including the second fetch of a straddling
    /// replacement, and skipping it when the replacement is compressed,
    /// just as the generic fetch path would.
    fn verify_step(&mut self, fs: StepFetch, bus: &mut impl CpuBus) -> Option<(u32, u32)> {
        let word = self.fetch_word(fs.aligned, bus);
        match fs.kind {
            FetchKind::Word => {
                if word == fs.raw {
                    return None;
                }
                let low = (word & 0xFFFF) as u16;
                Some(if is_compressed(low) {
                    (u32::from(low), 2)
                } else {
                    (word, 4)
                })
            }
            FetchKind::LowHalf => {
                if word & 0xFFFF == fs.raw {
                    return None;
                }
                let low = (word & 0xFFFF) as u16;
                Some(if is_compressed(low) {
                    (u32::from(low), 2)
                } else {
                    (word, 4)
                })
            }
            FetchKind::HighHalf => {
                if word >> 16 == fs.raw {
                    return None;
                }
                let low = (word >> 16) as u16;
                Some(if is_compressed(low) {
                    (u32::from(low), 2)
                } else {
                    let next = self.fetch_word(fs.aligned + 4, bus);
                    (u32::from(low) | (next << 16), 4)
                })
            }
            FetchKind::Straddle => {
                let low = (word >> 16) as u16;
                if is_compressed(low) {
                    // The first parcel turned compressed: the generic
                    // path would never issue the second fetch.
                    return Some((u32::from(low), 2));
                }
                let next = self.fetch_word(fs.aligned + 4, bus);
                let raw = u32::from(low) | (next << 16);
                if raw == fs.raw {
                    None
                } else {
                    Some((raw, 4))
                }
            }
        }
    }

    /// Drops the block at `idx` (stale raw bits caught by the verify)
    /// and hands the freshly fetched bits at `pc` to the next
    /// `fetch_decode` so the fetch traffic already paid is not repeated.
    fn abort_block(&mut self, idx: usize, pc: u32, raw: u32, size: u32) {
        self.sb.verify_aborts += 1;
        self.blocks[idx].start = 1;
        self.handoff = Some((pc, raw, size));
    }

    /// Executes one fused entry, updating architectural state and
    /// accounting exactly as its constituent instructions would through
    /// `execute` + the generic loop's stall conversion, and returns the
    /// cycles consumed (`>= entry.n`; a stall remainder past `remaining`
    /// stays in `stall` for the per-cycle path). The caller guarantees
    /// `remaining >= entry.n`. Fused ops are register-only or
    /// block-sealing control flow, so the pipeline stays `Running`.
    fn execute_fused(&mut self, entry: &FusedEntry, remaining: u64) -> u64 {
        let mut extra: u32 = 0;
        let mut next_pc = entry.next_pc;
        match entry.op {
            FusedOp::SetImm { rd, value } => self.regs.set(rd, value),
            FusedOp::AluImm { op, rd, rs1, imm } => {
                let a = self.regs.read(rs1);
                self.regs.set(rd, alu(op, a, imm));
            }
            FusedOp::Alu { op, rd, rs1, rs2 } => {
                let a = self.regs.read(rs1);
                let b = self.regs.read(rs2);
                self.regs.set(rd, alu(op, a, b));
            }
            FusedOp::MulDiv {
                op,
                rd,
                rs1,
                rs2,
                extra: e,
            } => {
                let a = self.regs.read(rs1);
                let b = self.regs.read(rs2);
                self.regs.set(rd, muldiv(op, a, b));
                extra = e;
            }
            FusedOp::Jal { rd, link, target } => {
                self.regs.set(rd, link);
                next_pc = target;
                extra = timing::JUMP - 1;
            }
            FusedOp::Jalr {
                rd,
                rs1,
                offset,
                link,
            } => {
                let target = self.regs.read(rs1).wrapping_add(offset) & !1;
                self.regs.set(rd, link);
                next_pc = target;
                extra = timing::JUMP - 1;
            }
            FusedOp::Branch {
                op,
                rs1,
                rs2,
                taken,
                fallthrough,
            } => {
                let a = self.regs.read(rs1);
                let b = self.regs.read(rs2);
                let t = match op {
                    BranchOp::Eq => a == b,
                    BranchOp::Ne => a != b,
                    BranchOp::Lt => (a as i32) < (b as i32),
                    BranchOp::Ge => (a as i32) >= (b as i32),
                    BranchOp::Ltu => a < b,
                    BranchOp::Geu => a >= b,
                };
                if t {
                    next_pc = taken;
                    extra = timing::BRANCH_TAKEN - 1;
                } else {
                    next_pc = fallthrough;
                    extra = timing::BRANCH_NOT_TAKEN - 1;
                }
            }
            FusedOp::LuiAddi { rd, value } => {
                // `lui` writes rd; `addi` reads it and writes it again.
                // The intermediate value is dead but its port activity
                // is architectural.
                self.regs.set(rd, value);
                self.regs.count_ports(1, 1);
            }
            FusedOp::AluImmPair {
                rd,
                rs1,
                op1,
                imm1,
                op2,
                imm2,
            } => {
                let a = self.regs.read(rs1);
                self.regs.set(rd, alu(op2, alu(op1, a, imm1), imm2));
                self.regs.count_ports(1, 1);
            }
            FusedOp::CmpBranch {
                rd,
                rs1,
                rs2,
                unsigned,
                taken_if_set,
                taken,
                fallthrough,
            } => {
                let a = self.regs.read(rs1);
                let b = self.regs.read(rs2);
                let cond = if unsigned {
                    a < b
                } else {
                    (a as i32) < (b as i32)
                };
                self.regs.set(rd, u32::from(cond));
                // The sealing branch reads rd and x0.
                self.regs.count_ports(2, 0);
                if cond == taken_if_set {
                    next_pc = taken;
                    extra = timing::BRANCH_TAKEN - 1;
                } else {
                    next_pc = fallthrough;
                    extra = timing::BRANCH_NOT_TAKEN - 1;
                }
            }
        }
        self.pc = next_pc;
        let n = u64::from(entry.n);
        self.retired += n;
        self.csrs.minstret += n;
        // Bill the last constituent's trailing stall exactly as
        // `retire` + the generic loop's bulk conversion would: the whole
        // stall is accounted, and the part past the budget stays in
        // `stall` for the per-cycle path. Pair heads are zero-stall, so
        // only the last constituent ever contributes.
        let extra64 = u64::from(extra);
        let take = extra64.min(remaining - n);
        self.stall = extra - take as u32;
        self.stall_cycles += extra64 + take;
        n + take
    }

    /// Grows the superblock chain with the instruction about to execute
    /// at the current pc. Called from the single-step path, so chaining
    /// is a free side effect of normal execution — no extra fetches or
    /// decodes ever happen on a block's behalf.
    fn superblock_note(&mut self, instr: Instr, raw: u32, size: u32) {
        let pc = self.pc;
        if self.chain.len > 0 && pc != self.chain.next_pc {
            // Control arrived from elsewhere (interrupt entry, a partial
            // block run): the accumulated prefix is still a valid block.
            self.seal_chain();
        }
        let class = classify(&instr);
        if self.chain.len > 0 {
            match class {
                StepClass::Chain => {
                    self.chain_push(pc, raw, size, instr);
                    if self.chain.len as usize == SUPERBLOCK_MAX_LEN {
                        self.seal_chain();
                    }
                }
                StepClass::Close => {
                    self.chain_push(pc, raw, size, instr);
                    self.seal_chain();
                }
                StepClass::Break => self.seal_chain(),
            }
        } else if class == StepClass::Chain {
            // Start a new chain — unless a fresh block already starts
            // here (a hot loop would otherwise rebuild its block on every
            // single-stepped iteration).
            let idx = (pc >> 1) as usize & (SUPERBLOCK_ENTRIES - 1);
            let line = &self.blocks[idx];
            if line.start == pc && line.steps[0].raw == raw {
                return;
            }
            self.chain.start = pc;
            self.chain.len = 0;
            self.chain_push(pc, raw, size, instr);
        }
    }

    fn chain_push(&mut self, pc: u32, raw: u32, size: u32, instr: Instr) {
        let c = &mut self.chain;
        c.steps[c.len as usize] = BlockStep { pc, raw, size, instr };
        c.len += 1;
        c.next_pc = pc.wrapping_add(size);
    }

    /// Stores the accumulated chain into the block cache (if it is long
    /// enough to be worth executing in bulk) and resets the accumulator.
    fn seal_chain(&mut self) {
        let len = self.chain.len;
        self.chain.len = 0;
        if len < 2 {
            return;
        }
        let start = self.chain.start;
        let idx = (start >> 1) as usize & (SUPERBLOCK_ENTRIES - 1);
        let line = &mut self.blocks[idx];
        line.start = start;
        line.len = len;
        line.steps[..len as usize].copy_from_slice(&self.chain.steps[..len as usize]);
        line.fused_len =
            compile_fused(&self.chain.steps[..len as usize], &mut line.fused, &mut line.fused_fetch);
        let (wlen, max_cycles) = compile_words(&self.chain.steps[..len as usize], &mut line.words);
        line.words_len = wlen;
        line.max_cycles = max_cycles;
        self.sb.blocks_built += 1;
    }

    fn halt(&mut self, cause: HaltCause) {
        self.state = CpuState::Halted;
        self.halt_cause = Some(cause);
    }

    /// Fetches and decodes the instruction at `pc`, handling 16-bit
    /// (compressed) parcels and 32-bit instructions straddling a word
    /// boundary (which costs a second fetch, as in Ibex's prefetch
    /// buffer).
    ///
    /// The fetch itself always runs — `fetches` accounting and
    /// prefetch-buffer state stay bit-identical whether the decode cache
    /// hits or not; a hit only replaces the `decode`/`decode_compressed`
    /// work with a tag + raw-bits compare against the fetched word.
    ///
    /// Returns `(instr, raw, size)`; the raw bits feed the superblock
    /// chain builder.
    fn fetch_decode(&mut self, bus: &mut impl CpuBus) -> Result<(Instr, u32, u32), DecodeError> {
        let pc = self.pc;
        // A block verify abort already fetched this instruction's bits;
        // reuse them so the fetch traffic is not paid twice.
        if let Some((hpc, raw, size)) = self.handoff.take() {
            if hpc == pc {
                let instr = if size == 2 {
                    decode_compressed(raw as u16, pc)?
                } else {
                    decode(raw, pc)?
                };
                return Ok((instr, raw, size));
            }
        }
        let aligned = pc & !3;
        let word = self.fetch_word(aligned, bus);
        let low_half = if pc & 2 == 0 {
            (word & 0xFFFF) as u16
        } else {
            (word >> 16) as u16
        };
        let idx = (pc >> 1) as usize & (DECODE_CACHE_ENTRIES - 1);
        if is_compressed(low_half) {
            let raw = u32::from(low_half);
            if self.dcache_enabled {
                let line = self.dcache[idx];
                if line.pc == pc && line.raw == raw {
                    self.dcache_hits += 1;
                    return Ok((line.instr, raw, 2));
                }
            }
            let instr = decode_compressed(low_half, pc)?;
            self.fill_decode_cache(idx, pc, raw, instr);
            return Ok((instr, raw, 2));
        }
        let full = if pc & 2 == 0 {
            word
        } else {
            // 32-bit instruction straddling the word boundary.
            let next = self.fetch_word(aligned + 4, bus);
            u32::from(low_half) | (next << 16)
        };
        if self.dcache_enabled {
            let line = self.dcache[idx];
            if line.pc == pc && line.raw == full {
                self.dcache_hits += 1;
                return Ok((line.instr, full, 4));
            }
        }
        let instr = decode(full, pc)?;
        self.fill_decode_cache(idx, pc, full, instr);
        Ok((instr, full, 4))
    }

    fn fill_decode_cache(&mut self, idx: usize, pc: u32, raw: u32, instr: Instr) {
        if self.dcache_enabled {
            self.dcache_misses += 1;
            self.dcache[idx] = DecodedLine { pc, raw, instr };
        }
    }

    /// Reads an instruction word through the prefetch buffer.
    fn fetch_word(&mut self, aligned: u32, bus: &mut impl CpuBus) -> u32 {
        if let Some((addr, word)) = self.fetch_buf {
            if addr == aligned {
                return word;
            }
        }
        let word = bus.fetch(aligned);
        self.fetches += 1;
        self.fetch_buf = Some((aligned, word));
        word
    }

    fn retire(&mut self, extra_stall: u32) {
        self.retired += 1;
        self.csrs.minstret += 1;
        self.stall = extra_stall;
        self.stall_cycles += u64::from(extra_stall);
    }

    fn execute(&mut self, instr: Instr, size: u32, bus: &mut impl CpuBus) {
        let next_pc = self.pc.wrapping_add(size);
        match instr {
            Instr::Lui { rd, imm } => {
                self.regs.set(rd, imm);
                self.pc = next_pc;
                self.retire(timing::ALU - 1);
            }
            Instr::Auipc { rd, imm } => {
                self.regs.set(rd, self.pc.wrapping_add(imm));
                self.pc = next_pc;
                self.retire(timing::ALU - 1);
            }
            Instr::Jal { rd, offset } => {
                self.regs.set(rd, next_pc);
                self.pc = self.pc.wrapping_add(offset as u32);
                self.retire(timing::JUMP - 1);
            }
            Instr::Jalr { rd, rs1, offset } => {
                let target = self.regs.read(rs1).wrapping_add(offset as u32) & !1;
                self.regs.set(rd, next_pc);
                self.pc = target;
                self.retire(timing::JUMP - 1);
            }
            Instr::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let a = self.regs.read(rs1);
                let b = self.regs.read(rs2);
                let taken = match op {
                    BranchOp::Eq => a == b,
                    BranchOp::Ne => a != b,
                    BranchOp::Lt => (a as i32) < (b as i32),
                    BranchOp::Ge => (a as i32) >= (b as i32),
                    BranchOp::Ltu => a < b,
                    BranchOp::Geu => a >= b,
                };
                if taken {
                    self.pc = self.pc.wrapping_add(offset as u32);
                    self.retire(timing::BRANCH_TAKEN - 1);
                } else {
                    self.pc = next_pc;
                    self.retire(timing::BRANCH_NOT_TAKEN - 1);
                }
            }
            Instr::Load { op, rd, rs1, offset } => {
                let addr = self.regs.read(rs1).wrapping_add(offset as u32);
                if misaligned(op_width_load(op), addr) {
                    self.halt(HaltCause::BusFault { addr });
                    return;
                }
                let word_addr = addr & !3;
                let byte = addr & 3;
                match bus.data(DataReq::read(word_addr)) {
                    DataResult::Done { value, extra_cycles } => {
                        self.regs.set(rd, extract_load(op, value, byte));
                        self.pc = next_pc;
                        self.retire(timing::LOAD_BASE - 1 + extra_cycles);
                    }
                    DataResult::Pending => {
                        self.pending = Some(PendingLoad {
                            rd,
                            op,
                            byte_in_word: byte,
                            is_load: true,
                            addr,
                        });
                        self.pc = next_pc;
                        self.retired += 1;
                        self.csrs.minstret += 1;
                        self.state = CpuState::MemWait;
                    }
                    DataResult::Fault => self.halt(HaltCause::BusFault { addr }),
                }
            }
            Instr::Store {
                op,
                rs1,
                rs2,
                offset,
            } => {
                // A store may hit the instruction stream: drop the
                // prefetch buffer (trivially conservative).
                self.fetch_buf = None;
                let addr = self.regs.read(rs1).wrapping_add(offset as u32);
                if misaligned(op_width_store(op), addr) {
                    self.halt(HaltCause::BusFault { addr });
                    return;
                }
                let word_addr = addr & !3;
                let byte = addr & 3;
                let value = self.regs.read(rs2);
                let (wdata, strobe) = merge_store(op, value, byte);
                match bus.data(DataReq::write(word_addr, wdata, strobe)) {
                    DataResult::Done { extra_cycles, .. } => {
                        self.pc = next_pc;
                        self.retire(timing::STORE_BASE - 1 + extra_cycles);
                    }
                    DataResult::Pending => {
                        self.pending = Some(PendingLoad {
                            rd: 0,
                            op: LoadOp::Word,
                            byte_in_word: 0,
                            is_load: false,
                            addr,
                        });
                        self.pc = next_pc;
                        self.retired += 1;
                        self.csrs.minstret += 1;
                        self.state = CpuState::MemWait;
                    }
                    DataResult::Fault => self.halt(HaltCause::BusFault { addr }),
                }
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                let a = self.regs.read(rs1);
                self.regs.set(rd, alu(op, a, imm as u32));
                self.pc = next_pc;
                self.retire(timing::ALU - 1);
            }
            Instr::Alu { op, rd, rs1, rs2 } => {
                let a = self.regs.read(rs1);
                let b = self.regs.read(rs2);
                self.regs.set(rd, alu(op, a, b));
                self.pc = next_pc;
                self.retire(timing::ALU - 1);
            }
            Instr::MulDiv { op, rd, rs1, rs2 } => {
                let a = self.regs.read(rs1);
                let b = self.regs.read(rs2);
                self.regs.set(rd, muldiv(op, a, b));
                self.pc = next_pc;
                let cost = match op {
                    MulDivOp::Mul | MulDivOp::Mulh | MulDivOp::Mulhsu | MulDivOp::Mulhu => {
                        timing::MUL
                    }
                    _ => timing::DIV,
                };
                self.retire(cost - 1);
            }
            Instr::Csr { op, rd, src, csr } => {
                let old = self.csrs.read(csr);
                let operand = match src {
                    CsrSrc::Reg(rs1) => self.regs.read(rs1),
                    CsrSrc::Imm(i) => u32::from(i),
                };
                let write_needed = match src {
                    // csrrs/csrrc with x0 / imm 0 must not write.
                    CsrSrc::Reg(0) | CsrSrc::Imm(0) => op == CsrOp::ReadWrite,
                    _ => true,
                };
                if write_needed {
                    let new = match op {
                        CsrOp::ReadWrite => operand,
                        CsrOp::ReadSet => old | operand,
                        CsrOp::ReadClear => old & !operand,
                    };
                    self.csrs.write(csr, new);
                }
                self.regs.set(rd, old);
                self.pc = next_pc;
                self.retire(timing::ALU - 1);
            }
            Instr::Fence => {
                // Covers both `fence` and `fence.i` (the decoder folds the
                // whole MISC-MEM opcode into one instruction): any fence
                // re-synchronises the instruction stream, so drop every
                // cached decode.
                self.flush_decode_cache();
                self.pc = next_pc;
                self.retire(timing::ALU - 1);
            }
            Instr::Ecall => self.halt(HaltCause::Ecall),
            Instr::Ebreak => self.halt(HaltCause::Ebreak),
            Instr::Mret => {
                self.pc = self.csrs.exit_interrupt();
                self.mret_taken = Some(self.cycles);
                self.retire(timing::MRET - 1);
            }
            Instr::Wfi => {
                self.pc = next_pc;
                self.retired += 1;
                self.csrs.minstret += 1;
                self.state = CpuState::Sleeping;
            }
        }
    }

    /// Drains accumulated activity (fetches, retired instructions,
    /// register-file ports, interrupt overhead) into `into`.
    pub fn drain_activity(&mut self, into: &mut ActivitySet) {
        into.record(self.id, ActivityKind::InstrFetch, self.fetches);
        into.record(self.id, ActivityKind::InstrRetired, self.retired);
        into.record(
            self.id,
            ActivityKind::IrqOverhead,
            self.irq_overhead_cycles,
        );
        let (r, w) = self.regs.take_port_counts();
        into.record(self.id, ActivityKind::RegRead, r);
        into.record(self.id, ActivityKind::RegWrite, w);
        self.fetches = 0;
        self.retired = 0;
        self.irq_overhead_cycles = 0;
    }
}

fn misaligned(width: u32, addr: u32) -> bool {
    !addr.is_multiple_of(width)
}

fn op_width_load(op: LoadOp) -> u32 {
    match op {
        LoadOp::Byte | LoadOp::ByteU => 1,
        LoadOp::Half | LoadOp::HalfU => 2,
        LoadOp::Word => 4,
    }
}

fn op_width_store(op: StoreOp) -> u32 {
    match op {
        StoreOp::Byte => 1,
        StoreOp::Half => 2,
        StoreOp::Word => 4,
    }
}

fn extract_load(op: LoadOp, word: u32, byte: u32) -> u32 {
    match op {
        LoadOp::Word => word,
        LoadOp::Byte => (((word >> (byte * 8)) & 0xFF) as i8) as i32 as u32,
        LoadOp::ByteU => (word >> (byte * 8)) & 0xFF,
        LoadOp::Half => (((word >> (byte * 8)) & 0xFFFF) as i16) as i32 as u32,
        LoadOp::HalfU => (word >> (byte * 8)) & 0xFFFF,
    }
}

fn merge_store(op: StoreOp, value: u32, byte: u32) -> (u32, u8) {
    match op {
        StoreOp::Word => (value, 0b1111),
        StoreOp::Half => ((value & 0xFFFF) << (byte * 8), 0b0011 << byte),
        StoreOp::Byte => ((value & 0xFF) << (byte * 8), 1 << byte),
    }
}

fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Sll => a.wrapping_shl(b & 31),
        AluOp::Srl => a.wrapping_shr(b & 31),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
    }
}

fn muldiv(op: MulDivOp, a: u32, b: u32) -> u32 {
    match op {
        MulDivOp::Mul => a.wrapping_mul(b),
        MulDivOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
        MulDivOp::Mulhsu => (((a as i32 as i64) * b as i64) >> 32) as u32,
        MulDivOp::Mulhu => ((u64::from(a) * u64::from(b)) >> 32) as u32,
        MulDivOp::Div => {
            if b == 0 {
                u32::MAX
            } else if a == 0x8000_0000 && b == u32::MAX {
                a
            } else {
                ((a as i32) / (b as i32)) as u32
            }
        }
        MulDivOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        MulDivOp::Rem => {
            if b == 0 {
                a
            } else if a == 0x8000_0000 && b == u32::MAX {
                0
            } else {
                ((a as i32) % (b as i32)) as u32
            }
        }
        MulDivOp::Remu => a.checked_rem(b).unwrap_or(a),
    }
}

#[cfg(test)]
#[allow(clippy::vec_init_then_push)]
mod tests {
    use super::*;
    use crate::asm;
    use crate::bus::SimpleBus;

    fn run_program(program: &[u32], max: u64) -> (Cpu, SimpleBus) {
        let mut bus = SimpleBus::new(64 * 1024);
        bus.load(0, program);
        let mut cpu = Cpu::new(0);
        cpu.run(&mut bus, 0, max);
        (cpu, bus)
    }

    #[test]
    fn arithmetic_program() {
        let mut p = vec![];
        p.extend(asm::li32(1, 100));
        p.extend(asm::li32(2, 42));
        p.push(asm::sub(3, 1, 2)); // 58
        p.push(asm::slli(4, 3, 2)); // 232
        p.push(asm::xori(5, 4, 0xFF)); // 232 ^ 255 = 23
        p.push(asm::ecall());
        let (cpu, _) = run_program(&p, 100);
        assert_eq!(cpu.halt_cause(), Some(HaltCause::Ecall));
        assert_eq!(cpu.reg(3), 58);
        assert_eq!(cpu.reg(4), 232);
        assert_eq!(cpu.reg(5), 23);
    }

    #[test]
    fn loads_and_stores_all_widths() {
        let mut p = vec![];
        p.extend(asm::li32(1, 0x1000)); // base
        p.extend(asm::li32(2, 0xDEAD_BEEF));
        p.push(asm::sw(1, 2, 0));
        p.push(asm::lw(3, 1, 0));
        p.push(asm::lb(4, 1, 0)); // 0xEF sign-extended
        p.push(asm::lbu(5, 1, 0));
        p.push(asm::lh(6, 1, 2)); // 0xDEAD sign-extended
        p.push(asm::lhu(7, 1, 2));
        p.push(asm::sb(1, 2, 4)); // byte 0xEF at 0x1004
        p.push(asm::sh(1, 2, 8)); // half 0xBEEF at 0x1008
        p.push(asm::ecall());
        let (cpu, bus) = run_program(&p, 100);
        assert_eq!(cpu.reg(3), 0xDEAD_BEEF);
        assert_eq!(cpu.reg(4), 0xFFFF_FFEF);
        assert_eq!(cpu.reg(5), 0xEF);
        assert_eq!(cpu.reg(6), 0xFFFF_DEAD);
        assert_eq!(cpu.reg(7), 0xDEAD);
        assert_eq!(bus.word(0x1004) & 0xFF, 0xEF);
        assert_eq!(bus.word(0x1008) & 0xFFFF, 0xBEEF);
    }

    #[test]
    fn branch_loop_counts() {
        // for (i = 0; i != 5; i++) sum += i;  => sum = 10
        let mut p = vec![];
        p.push(asm::addi(1, 0, 0)); // i
        p.push(asm::addi(2, 0, 0)); // sum
        p.push(asm::addi(3, 0, 5)); // limit
        // loop:
        p.push(asm::add(2, 2, 1));
        p.push(asm::addi(1, 1, 1));
        p.push(asm::bne(1, 3, -8));
        p.push(asm::ecall());
        let (cpu, _) = run_program(&p, 200);
        assert_eq!(cpu.reg(2), 10);
    }

    #[test]
    fn jal_and_jalr_link() {
        let mut p = vec![];
        p.push(asm::jal(1, 12)); // skip two instructions
        p.push(asm::addi(2, 0, 99)); // skipped
        p.push(asm::ecall()); // skipped
        p.push(asm::jalr(3, 1, 0)); // jump back to pc=4
        let (cpu, _) = run_program(&p, 100);
        assert_eq!(cpu.halt_cause(), Some(HaltCause::Ecall));
        assert_eq!(cpu.reg(1), 4);
        assert_eq!(cpu.reg(2), 99);
        assert_eq!(cpu.reg(3), 16);
    }

    #[test]
    fn muldiv_results() {
        let mut p = vec![];
        p.extend(asm::li32(1, 7));
        p.extend(asm::li32(2, 0xFFFF_FFFD)); // -3
        p.push(asm::mul(3, 1, 2)); // -21
        p.push(asm::div(4, 2, 1)); // -3 / 7 = 0
        p.push(asm::rem(5, 2, 1)); // -3 % 7 = -3
        p.push(asm::divu(6, 2, 1)); // big / 7
        p.push(asm::mulhu(7, 2, 2));
        p.push(asm::ecall());
        let (cpu, _) = run_program(&p, 200);
        assert_eq!(cpu.reg(3) as i32, -21);
        assert_eq!(cpu.reg(4), 0);
        assert_eq!(cpu.reg(5) as i32, -3);
        assert_eq!(cpu.reg(6), 0xFFFF_FFFD / 7);
        assert_eq!(cpu.reg(7), ((0xFFFF_FFFDu64 * 0xFFFF_FFFDu64) >> 32) as u32);
    }

    #[test]
    fn division_by_zero_follows_spec() {
        let mut p = vec![];
        p.extend(asm::li32(1, 10));
        p.push(asm::div(2, 1, 0));
        p.push(asm::rem(3, 1, 0));
        p.push(asm::ecall());
        let (cpu, _) = run_program(&p, 100);
        assert_eq!(cpu.reg(2), u32::MAX);
        assert_eq!(cpu.reg(3), 10);
    }

    #[test]
    fn timing_alu_is_one_cycle() {
        let p = [asm::addi(1, 0, 1), asm::addi(2, 0, 2), asm::ecall()];
        let mut bus = SimpleBus::new(4096);
        bus.load(0, &p);
        let mut cpu = Cpu::new(0);
        cpu.tick(&mut bus, 0);
        assert_eq!(cpu.reg(1), 1);
        cpu.tick(&mut bus, 0);
        assert_eq!(cpu.reg(2), 2);
    }

    #[test]
    fn timing_load_takes_two_cycles() {
        let p = [asm::lw(1, 0, 0x100), asm::addi(2, 0, 1), asm::ecall()];
        let mut bus = SimpleBus::new(4096);
        bus.load(0, &p);
        bus.load(0x100, &[77]);
        let mut cpu = Cpu::new(0);
        cpu.tick(&mut bus, 0); // load issues + completes, stall 1
        assert_eq!(cpu.reg(1), 77);
        cpu.tick(&mut bus, 0); // stall cycle
        assert_eq!(cpu.reg(2), 0);
        cpu.tick(&mut bus, 0); // addi
        assert_eq!(cpu.reg(2), 1);
    }

    #[test]
    fn timing_taken_branch_three_cycles() {
        let p = [
            asm::beq(0, 0, 8), // taken: 3 cycles
            asm::ecall(),
            asm::addi(1, 0, 1),
            asm::ecall(),
        ];
        let mut bus = SimpleBus::new(4096);
        bus.load(0, &p);
        let mut cpu = Cpu::new(0);
        cpu.tick(&mut bus, 0);
        cpu.tick(&mut bus, 0);
        cpu.tick(&mut bus, 0);
        assert_eq!(cpu.reg(1), 0, "target not yet executed");
        cpu.tick(&mut bus, 0);
        assert_eq!(cpu.reg(1), 1);
    }

    #[test]
    fn slow_region_stalls_pipeline() {
        let p = [asm::lw(1, 0, 0x200), asm::addi(2, 0, 5), asm::ecall()];
        let mut bus = SimpleBus::new(4096);
        bus.load(0, &p);
        bus.load(0x200, &[123]);
        bus.set_slow_region(0x200, 4, 3);
        let mut cpu = Cpu::new(0);
        let used = cpu.run(&mut bus, 0, 100);
        assert_eq!(cpu.reg(1), 123);
        assert_eq!(cpu.reg(2), 5);
        assert!(used > 5, "waited on the slow bus ({used} cycles)");
    }

    #[test]
    fn wfi_sleeps_until_interrupt_then_vectors() {
        // mtvec = 0x100 (vectored); enable line 11; wfi; after wake the
        // handler at 0x100 + 4*11 runs and writes x5.
        let mut p = vec![];
        p.extend(asm::li32(1, 0x100));
        p.push(asm::csrrw(0, crate::csr::addr::MTVEC, 1));
        p.extend(asm::li32(2, 1 << 11));
        p.push(asm::csrrw(0, crate::csr::addr::MIE, 2));
        p.push(asm::csrrsi(0, crate::csr::addr::MSTATUS, 8)); // MIE
        p.push(asm::wfi());
        let mut bus = SimpleBus::new(4096);
        bus.load(0, &p);
        bus.load(0x100 + 4 * 11, &[asm::jal(0, 0x100)]); // vector: jump to 0x22C
        bus.load(0x22C, &[asm::addi(5, 0, 42), asm::mret()]);
        let mut cpu = Cpu::new(0);
        cpu.run(&mut bus, 0, 100);
        assert!(cpu.is_sleeping());
        let slept_at = cpu.cycles();
        // Hold the line high; core wakes, vectors, runs the handler.
        for _ in 0..40 {
            cpu.tick(&mut bus, 1 << 11);
        }
        assert_eq!(cpu.reg(5), 42);
        // Level-triggered line held high: the handler re-enters after each
        // mret, so at least one entry must have happened.
        assert!(cpu.irq_entries() >= 1);
        assert!(cpu.cycles() > slept_at);
        // mret returned after the wfi; with the line still pending the
        // handler re-enters (level-triggered), which is fine — what
        // matters here is that state was restored.
        assert!(cpu.csrs.mepc > 0);
    }

    #[test]
    fn interrupt_not_taken_when_disabled() {
        let p = [asm::addi(1, 1, 1), asm::jal(0, -4)];
        let mut bus = SimpleBus::new(4096);
        bus.load(0, &p);
        let mut cpu = Cpu::new(0);
        for _ in 0..50 {
            cpu.tick(&mut bus, 0xFFFF_FFFF);
        }
        assert_eq!(cpu.irq_entries(), 0);
    }

    #[test]
    fn illegal_instruction_halts_with_cause() {
        let (cpu, _) = run_program(&[0xFFFF_FFFF], 10);
        assert!(matches!(
            cpu.halt_cause(),
            Some(HaltCause::IllegalInstruction(_))
        ));
    }

    #[test]
    fn misaligned_word_access_faults() {
        let mut p = vec![];
        p.extend(asm::li32(1, 0x1001));
        p.push(asm::lw(2, 1, 0));
        let (cpu, _) = run_program(&p, 10);
        assert_eq!(
            cpu.halt_cause(),
            Some(HaltCause::BusFault { addr: 0x1001 })
        );
    }

    #[test]
    fn csr_set_clear_semantics() {
        let mut p = vec![];
        p.push(asm::csrrwi(0, crate::csr::addr::MSCRATCH, 0b1010));
        p.push(asm::csrrsi(1, crate::csr::addr::MSCRATCH, 0b0101)); // old in x1
        p.push(asm::csrrci(2, crate::csr::addr::MSCRATCH, 0b0011)); // old in x2
        p.push(asm::csrrs(3, crate::csr::addr::MSCRATCH, 0)); // read-only
        p.push(asm::ecall());
        let (cpu, _) = run_program(&p, 50);
        assert_eq!(cpu.reg(1), 0b1010);
        assert_eq!(cpu.reg(2), 0b1111);
        assert_eq!(cpu.reg(3), 0b1100);
    }

    #[test]
    fn activity_drain_reports_fetches_and_retires() {
        let (mut cpu, _) = run_program(&[asm::addi(1, 0, 1), asm::ecall()], 10);
        let mut a = ActivitySet::new();
        cpu.drain_activity(&mut a);
        assert_eq!(a.count("ibex", ActivityKind::InstrFetch), 2);
        assert!(a.count("ibex", ActivityKind::RegWrite) >= 1);
    }

    /// Packs two 16-bit parcels into a little-endian program word.
    fn pack16(lo: u16, hi: u16) -> u32 {
        u32::from(lo) | (u32::from(hi) << 16)
    }

    #[test]
    fn compressed_program_executes_with_halfword_pc() {
        // c.li a0, 5 ; c.li a1, 7 ; c.add a0, a1 ; c.ebreak
        let p = [
            pack16(0x4515, 0x459D), // c.li a0,5 | c.li a1,7
            pack16(0x952E, 0x9002), // c.add a0,a1 | c.ebreak
        ];
        let mut bus = SimpleBus::new(4096);
        bus.load(0, &p);
        let mut cpu = Cpu::new(0);
        cpu.run(&mut bus, 0, 50);
        assert_eq!(cpu.halt_cause(), Some(HaltCause::Ebreak));
        assert_eq!(cpu.reg(10), 12);
        assert_eq!(cpu.retired(), 3);
    }

    #[test]
    fn straddling_32bit_instruction_costs_extra_fetch() {
        // c.nop, then a 32-bit addi straddling the word boundary.
        let addi = asm::addi(1, 0, 42);
        let p = [
            pack16(0x0001, (addi & 0xFFFF) as u16),
            pack16((addi >> 16) as u16, 0x9002), // ...addi hi | c.ebreak
        ];
        let mut bus = SimpleBus::new(4096);
        bus.load(0, &p);
        let mut cpu = Cpu::new(0);
        cpu.run(&mut bus, 0, 50);
        assert_eq!(cpu.reg(1), 42);
        assert_eq!(cpu.halt_cause(), Some(HaltCause::Ebreak));
        // With the prefetch buffer: c.nop fetches word 0; the straddling
        // addi reuses word 0 and fetches word 1; c.ebreak reuses word 1.
        assert_eq!(bus.fetches, 2);
    }

    #[test]
    fn compressed_branch_and_jump_use_halfword_offsets() {
        // 0x0: c.beqz a0, +6  (a0 == 0 -> taken, to 0x6)
        // 0x2: c.li a1, 1     (skipped)
        // 0x4: c.li a2, 2     (skipped)
        // 0x6: c.li a3, 3
        // 0x8: c.ebreak
        let p = [
            pack16(0xC119, 0x4585), // c.beqz a0,+6 | c.li a1,1
            pack16(0x4609, 0x468D), // c.li a2,2 | c.li a3,3
            pack16(0x9002, 0x0001),
        ];
        let mut bus = SimpleBus::new(4096);
        bus.load(0, &p);
        let mut cpu = Cpu::new(0);
        cpu.run(&mut bus, 0, 50);
        assert_eq!(cpu.reg(11), 0, "skipped");
        assert_eq!(cpu.reg(12), 0, "skipped");
        assert_eq!(cpu.reg(13), 3, "branch target executed");
    }

    #[test]
    fn compressed_code_halves_fetch_traffic() {
        // The same loop body in compressed form issues ~half the fetch
        // words of the 32-bit form (the memory-activity argument for C).
        // 32-bit: addi x5,x5,1 x20; ecall.
        let mut wide = vec![];
        for _ in 0..20 {
            wide.push(asm::addi(5, 5, 1));
        }
        wide.push(asm::ecall());
        let mut bus_w = SimpleBus::new(4096);
        bus_w.load(0, &wide);
        let mut cpu_w = Cpu::new(0);
        cpu_w.run(&mut bus_w, 0, 200);
        // Compressed: c.addi x5, 1 = 0x0285.
        let mut narrow = vec![];
        for _ in 0..10 {
            narrow.push(pack16(0x0285, 0x0285));
        }
        narrow.push(pack16(0x9002, 0x0001)); // c.ebreak
        let mut bus_n = SimpleBus::new(4096);
        bus_n.load(0, &narrow);
        let mut cpu_n = Cpu::new(0);
        cpu_n.run(&mut bus_n, 0, 200);
        assert_eq!(cpu_w.reg(5), 20);
        assert_eq!(cpu_n.reg(5), 20);
        assert!(
            bus_n.fetches <= bus_w.fetches / 2 + 2,
            "compressed {} vs wide {}",
            bus_n.fetches,
            bus_w.fetches
        );
    }

    #[test]
    fn minstret_counts_retired() {
        let (cpu, _) = run_program(
            &[asm::addi(1, 0, 1), asm::addi(2, 0, 2), asm::ecall()],
            10,
        );
        assert_eq!(cpu.csrs.minstret, 2); // ecall halts without retiring
        assert_eq!(cpu.retired(), 2);
    }
}
