//! RV32IM instruction encoders.
//!
//! The baseline interrupt handlers of the paper's evaluation are written
//! directly with these encoders (there is no external toolchain in this
//! reproduction). Each function returns the 32-bit instruction word;
//! programs are slices of words loaded into L2.
//!
//! # Panics
//!
//! All encoders validate register indices (`< 32`) and immediate ranges
//! and panic on violations — an out-of-range operand is a bug in the
//! embedded program, not a runtime condition.

#![allow(clippy::too_many_arguments)]

fn check_reg(r: u8) {
    assert!(r < 32, "register x{r} out of range");
}

fn check_imm12(imm: i32) {
    assert!(
        (-2048..=2047).contains(&imm),
        "immediate {imm} exceeds 12 bits"
    );
}

fn r_type(funct7: u32, rs2: u8, rs1: u8, funct3: u32, rd: u8, opcode: u32) -> u32 {
    check_reg(rd);
    check_reg(rs1);
    check_reg(rs2);
    (funct7 << 25)
        | (u32::from(rs2) << 20)
        | (u32::from(rs1) << 15)
        | (funct3 << 12)
        | (u32::from(rd) << 7)
        | opcode
}

fn i_type(imm: i32, rs1: u8, funct3: u32, rd: u8, opcode: u32) -> u32 {
    check_reg(rd);
    check_reg(rs1);
    check_imm12(imm);
    ((imm as u32) << 20)
        | (u32::from(rs1) << 15)
        | (funct3 << 12)
        | (u32::from(rd) << 7)
        | opcode
}

fn s_type(imm: i32, rs2: u8, rs1: u8, funct3: u32) -> u32 {
    check_reg(rs1);
    check_reg(rs2);
    check_imm12(imm);
    let imm = imm as u32;
    ((imm >> 5) << 25)
        | (u32::from(rs2) << 20)
        | (u32::from(rs1) << 15)
        | (funct3 << 12)
        | ((imm & 0x1F) << 7)
        | 0x23
}

fn b_type(offset: i32, rs2: u8, rs1: u8, funct3: u32) -> u32 {
    check_reg(rs1);
    check_reg(rs2);
    assert!(
        (-4096..=4094).contains(&offset) && offset % 2 == 0,
        "branch offset {offset} invalid"
    );
    let imm = offset as u32;
    (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3F) << 25)
        | (u32::from(rs2) << 20)
        | (u32::from(rs1) << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xF) << 8)
        | (((imm >> 11) & 1) << 7)
        | 0x63
}

/// `lui rd, imm[31:12]` — `imm` is the final 32-bit value (low 12 bits
/// must be zero).
///
/// # Panics
///
/// Panics if the low 12 bits of `imm` are non-zero.
pub fn lui(rd: u8, imm: u32) -> u32 {
    check_reg(rd);
    assert!(imm & 0xFFF == 0, "lui immediate must be 4 KiB aligned");
    imm | (u32::from(rd) << 7) | 0x37
}

/// `auipc rd, imm[31:12]`.
///
/// # Panics
///
/// Panics if the low 12 bits of `imm` are non-zero.
pub fn auipc(rd: u8, imm: u32) -> u32 {
    check_reg(rd);
    assert!(imm & 0xFFF == 0, "auipc immediate must be 4 KiB aligned");
    imm | (u32::from(rd) << 7) | 0x17
}

/// `jal rd, offset` (PC-relative, even, ±1 MiB).
///
/// # Panics
///
/// Panics on out-of-range or odd offsets.
pub fn jal(rd: u8, offset: i32) -> u32 {
    check_reg(rd);
    assert!(
        (-(1 << 20)..(1 << 20)).contains(&offset) && offset % 2 == 0,
        "jal offset {offset} invalid"
    );
    let imm = offset as u32;
    (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xFF) << 12)
        | (u32::from(rd) << 7)
        | 0x6F
}

/// `jalr rd, offset(rs1)`.
pub fn jalr(rd: u8, rs1: u8, offset: i32) -> u32 {
    i_type(offset, rs1, 0b000, rd, 0x67)
}

/// `beq rs1, rs2, offset`.
pub fn beq(rs1: u8, rs2: u8, offset: i32) -> u32 {
    b_type(offset, rs2, rs1, 0b000)
}
/// `bne rs1, rs2, offset`.
pub fn bne(rs1: u8, rs2: u8, offset: i32) -> u32 {
    b_type(offset, rs2, rs1, 0b001)
}
/// `blt rs1, rs2, offset`.
pub fn blt(rs1: u8, rs2: u8, offset: i32) -> u32 {
    b_type(offset, rs2, rs1, 0b100)
}
/// `bge rs1, rs2, offset`.
pub fn bge(rs1: u8, rs2: u8, offset: i32) -> u32 {
    b_type(offset, rs2, rs1, 0b101)
}
/// `bltu rs1, rs2, offset`.
pub fn bltu(rs1: u8, rs2: u8, offset: i32) -> u32 {
    b_type(offset, rs2, rs1, 0b110)
}
/// `bgeu rs1, rs2, offset`.
pub fn bgeu(rs1: u8, rs2: u8, offset: i32) -> u32 {
    b_type(offset, rs2, rs1, 0b111)
}

/// `lb rd, offset(rs1)`.
pub fn lb(rd: u8, rs1: u8, offset: i32) -> u32 {
    i_type(offset, rs1, 0b000, rd, 0x03)
}
/// `lh rd, offset(rs1)`.
pub fn lh(rd: u8, rs1: u8, offset: i32) -> u32 {
    i_type(offset, rs1, 0b001, rd, 0x03)
}
/// `lw rd, offset(rs1)`.
pub fn lw(rd: u8, rs1: u8, offset: i32) -> u32 {
    i_type(offset, rs1, 0b010, rd, 0x03)
}
/// `lbu rd, offset(rs1)`.
pub fn lbu(rd: u8, rs1: u8, offset: i32) -> u32 {
    i_type(offset, rs1, 0b100, rd, 0x03)
}
/// `lhu rd, offset(rs1)`.
pub fn lhu(rd: u8, rs1: u8, offset: i32) -> u32 {
    i_type(offset, rs1, 0b101, rd, 0x03)
}

/// `sb rs2, offset(rs1)`.
pub fn sb(rs1: u8, rs2: u8, offset: i32) -> u32 {
    s_type(offset, rs2, rs1, 0b000)
}
/// `sh rs2, offset(rs1)`.
pub fn sh(rs1: u8, rs2: u8, offset: i32) -> u32 {
    s_type(offset, rs2, rs1, 0b001)
}
/// `sw rs2, offset(rs1)`.
pub fn sw(rs1: u8, rs2: u8, offset: i32) -> u32 {
    s_type(offset, rs2, rs1, 0b010)
}

/// `addi rd, rs1, imm`.
pub fn addi(rd: u8, rs1: u8, imm: i32) -> u32 {
    i_type(imm, rs1, 0b000, rd, 0x13)
}
/// `slti rd, rs1, imm`.
pub fn slti(rd: u8, rs1: u8, imm: i32) -> u32 {
    i_type(imm, rs1, 0b010, rd, 0x13)
}
/// `sltiu rd, rs1, imm`.
pub fn sltiu(rd: u8, rs1: u8, imm: i32) -> u32 {
    i_type(imm, rs1, 0b011, rd, 0x13)
}
/// `xori rd, rs1, imm`.
pub fn xori(rd: u8, rs1: u8, imm: i32) -> u32 {
    i_type(imm, rs1, 0b100, rd, 0x13)
}
/// `ori rd, rs1, imm`.
pub fn ori(rd: u8, rs1: u8, imm: i32) -> u32 {
    i_type(imm, rs1, 0b110, rd, 0x13)
}
/// `andi rd, rs1, imm`.
pub fn andi(rd: u8, rs1: u8, imm: i32) -> u32 {
    i_type(imm, rs1, 0b111, rd, 0x13)
}

fn shift_imm(funct7: u32, shamt: u8, rs1: u8, funct3: u32, rd: u8) -> u32 {
    assert!(shamt < 32, "shift amount {shamt} out of range");
    r_type(funct7, shamt, rs1, funct3, rd, 0x13)
}

/// `slli rd, rs1, shamt`.
pub fn slli(rd: u8, rs1: u8, shamt: u8) -> u32 {
    shift_imm(0, shamt, rs1, 0b001, rd)
}
/// `srli rd, rs1, shamt`.
pub fn srli(rd: u8, rs1: u8, shamt: u8) -> u32 {
    shift_imm(0, shamt, rs1, 0b101, rd)
}
/// `srai rd, rs1, shamt`.
pub fn srai(rd: u8, rs1: u8, shamt: u8) -> u32 {
    shift_imm(0b0100000, shamt, rs1, 0b101, rd)
}

/// `add rd, rs1, rs2`.
pub fn add(rd: u8, rs1: u8, rs2: u8) -> u32 {
    r_type(0, rs2, rs1, 0b000, rd, 0x33)
}
/// `sub rd, rs1, rs2`.
pub fn sub(rd: u8, rs1: u8, rs2: u8) -> u32 {
    r_type(0b0100000, rs2, rs1, 0b000, rd, 0x33)
}
/// `sll rd, rs1, rs2`.
pub fn sll(rd: u8, rs1: u8, rs2: u8) -> u32 {
    r_type(0, rs2, rs1, 0b001, rd, 0x33)
}
/// `slt rd, rs1, rs2`.
pub fn slt(rd: u8, rs1: u8, rs2: u8) -> u32 {
    r_type(0, rs2, rs1, 0b010, rd, 0x33)
}
/// `sltu rd, rs1, rs2`.
pub fn sltu(rd: u8, rs1: u8, rs2: u8) -> u32 {
    r_type(0, rs2, rs1, 0b011, rd, 0x33)
}
/// `xor rd, rs1, rs2`.
pub fn xor(rd: u8, rs1: u8, rs2: u8) -> u32 {
    r_type(0, rs2, rs1, 0b100, rd, 0x33)
}
/// `srl rd, rs1, rs2`.
pub fn srl(rd: u8, rs1: u8, rs2: u8) -> u32 {
    r_type(0, rs2, rs1, 0b101, rd, 0x33)
}
/// `sra rd, rs1, rs2`.
pub fn sra(rd: u8, rs1: u8, rs2: u8) -> u32 {
    r_type(0b0100000, rs2, rs1, 0b101, rd, 0x33)
}
/// `or rd, rs1, rs2`.
pub fn or(rd: u8, rs1: u8, rs2: u8) -> u32 {
    r_type(0, rs2, rs1, 0b110, rd, 0x33)
}
/// `and rd, rs1, rs2`.
pub fn and(rd: u8, rs1: u8, rs2: u8) -> u32 {
    r_type(0, rs2, rs1, 0b111, rd, 0x33)
}

/// `mul rd, rs1, rs2`.
pub fn mul(rd: u8, rs1: u8, rs2: u8) -> u32 {
    r_type(1, rs2, rs1, 0b000, rd, 0x33)
}
/// `mulh rd, rs1, rs2`.
pub fn mulh(rd: u8, rs1: u8, rs2: u8) -> u32 {
    r_type(1, rs2, rs1, 0b001, rd, 0x33)
}
/// `mulhsu rd, rs1, rs2`.
pub fn mulhsu(rd: u8, rs1: u8, rs2: u8) -> u32 {
    r_type(1, rs2, rs1, 0b010, rd, 0x33)
}
/// `mulhu rd, rs1, rs2`.
pub fn mulhu(rd: u8, rs1: u8, rs2: u8) -> u32 {
    r_type(1, rs2, rs1, 0b011, rd, 0x33)
}
/// `div rd, rs1, rs2`.
pub fn div(rd: u8, rs1: u8, rs2: u8) -> u32 {
    r_type(1, rs2, rs1, 0b100, rd, 0x33)
}
/// `divu rd, rs1, rs2`.
pub fn divu(rd: u8, rs1: u8, rs2: u8) -> u32 {
    r_type(1, rs2, rs1, 0b101, rd, 0x33)
}
/// `rem rd, rs1, rs2`.
pub fn rem(rd: u8, rs1: u8, rs2: u8) -> u32 {
    r_type(1, rs2, rs1, 0b110, rd, 0x33)
}
/// `remu rd, rs1, rs2`.
pub fn remu(rd: u8, rs1: u8, rs2: u8) -> u32 {
    r_type(1, rs2, rs1, 0b111, rd, 0x33)
}

fn csr_type(csr: u16, field: u8, funct3: u32, rd: u8) -> u32 {
    check_reg(rd);
    assert!(field < 32, "csr source field {field} out of range");
    assert!(csr < 0x1000, "csr address {csr:#x} out of range");
    (u32::from(csr) << 20) | (u32::from(field) << 15) | (funct3 << 12) | (u32::from(rd) << 7) | 0x73
}

/// `csrrw rd, csr, rs1`.
pub fn csrrw(rd: u8, csr: u16, rs1: u8) -> u32 {
    csr_type(csr, rs1, 0b001, rd)
}
/// `csrrs rd, csr, rs1`.
pub fn csrrs(rd: u8, csr: u16, rs1: u8) -> u32 {
    csr_type(csr, rs1, 0b010, rd)
}
/// `csrrc rd, csr, rs1`.
pub fn csrrc(rd: u8, csr: u16, rs1: u8) -> u32 {
    csr_type(csr, rs1, 0b011, rd)
}
/// `csrrwi rd, csr, imm5`.
pub fn csrrwi(rd: u8, csr: u16, imm5: u8) -> u32 {
    csr_type(csr, imm5, 0b101, rd)
}
/// `csrrsi rd, csr, imm5`.
pub fn csrrsi(rd: u8, csr: u16, imm5: u8) -> u32 {
    csr_type(csr, imm5, 0b110, rd)
}
/// `csrrci rd, csr, imm5`.
pub fn csrrci(rd: u8, csr: u16, imm5: u8) -> u32 {
    csr_type(csr, imm5, 0b111, rd)
}

/// `fence`.
pub fn fence() -> u32 {
    0x0000_000F
}
/// `fence.i` (Zifencei instruction-stream synchronisation).
pub fn fence_i() -> u32 {
    0x0000_100F
}
/// `ecall`.
pub fn ecall() -> u32 {
    0x0000_0073
}
/// `ebreak`.
pub fn ebreak() -> u32 {
    0x0010_0073
}
/// `mret`.
pub fn mret() -> u32 {
    0x3020_0073
}
/// `wfi`.
pub fn wfi() -> u32 {
    0x1050_0073
}

/// `nop` (`addi x0, x0, 0`).
pub fn nop() -> u32 {
    addi(0, 0, 0)
}

/// Materializes an arbitrary 32-bit constant into `rd` as a
/// `lui`+`addi` pair (always two instructions, for predictable timing).
pub fn li32(rd: u8, value: u32) -> [u32; 2] {
    let low = (value & 0xFFF) as i32;
    let low = if low >= 0x800 { low - 0x1000 } else { low };
    let high = value.wrapping_sub(low as u32) & 0xFFFF_F000;
    [lui(rd, high), addi(rd, rd, low)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use crate::instr::Instr;

    #[test]
    fn li32_materializes_any_constant() {
        for v in [0u32, 1, 0xFFF, 0x800, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x8000_0000] {
            let [a, b] = li32(5, v);
            let (Instr::Lui { imm, .. }, Instr::AluImm { imm: low, .. }) =
                (decode(a, 0).unwrap(), decode(b, 0).unwrap())
            else {
                panic!("unexpected decode");
            };
            assert_eq!(imm.wrapping_add(low as u32), v, "value {v:#x}");
        }
    }

    #[test]
    fn nop_is_canonical() {
        assert_eq!(nop(), 0x0000_0013);
    }

    #[test]
    fn known_golden_encodings() {
        // Cross-checked against the RISC-V spec examples / GNU as.
        assert_eq!(addi(1, 2, 3), 0x0031_0093);
        assert_eq!(lw(5, 6, 8), 0x0083_2283);
        assert_eq!(sw(6, 5, 12), 0x0053_2623);
        assert_eq!(add(3, 1, 2), 0x0020_81B3);
        assert_eq!(jal(0, 8), 0x0080_006F);
        assert_eq!(beq(1, 2, 8), 0x0020_8463);
    }

    #[test]
    #[should_panic(expected = "12 bits")]
    fn addi_rejects_large_immediate() {
        let _ = addi(1, 2, 5000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn register_index_validated() {
        let _ = add(32, 0, 0);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn lui_rejects_low_bits() {
        let _ = lui(1, 0x123);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn branch_offset_must_be_even() {
        let _ = beq(1, 2, 3);
    }
}
